"""Ablation: ring placement on an oversubscribed two-tier fabric.

The paper's testbed is one switch; real datacenters oversubscribe ToR
uplinks (Sec. VII-C cites Facebook/Google designs).  This ablation runs
the ring exchange over a 2-rack fabric with 4:1 oversubscription and
compares node orderings: rack-aligned (one core hop per rack boundary)
vs rack-interleaved (every hop crosses the core).
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.network import (
    Network,
    Simulation,
    TwoTierFabric,
    rack_aligned_ring_order,
    rack_interleaved_ring_order,
)

MB = 2**20
BLOCK = 8 * MB  # per-hop block of a 64 MB model over 8 nodes


def _ring_exchange_time(order, oversubscription):
    sim = Simulation()
    fabric = TwoTierFabric(sim, 2, 4, oversubscription=oversubscription)
    net = Network(sim, fabric, train_packets=880)
    n = len(order)

    def node(idx):
        def proc():
            nxt = order[(order.index(order[idx]) + 1) % n]
            src = order[idx]
            for _ in range(2 * (n - 1)):
                yield net.send(src, nxt, BLOCK)

        return proc

    procs = [sim.process(node(i)()) for i in range(n)]
    out = []
    sim.all_of(procs).add_callback(lambda e: out.append(sim.now))
    sim.run()
    return out[0]


@pytest.fixture(scope="module")
def times():
    sim = Simulation()
    probe = TwoTierFabric(sim, 2, 4)
    aligned = rack_aligned_ring_order(probe)
    interleaved = rack_interleaved_ring_order(probe)
    out = {}
    for oversub in (1.0, 4.0, 8.0):
        out[("aligned", oversub)] = _ring_exchange_time(aligned, oversub)
        out[("interleaved", oversub)] = _ring_exchange_time(
            interleaved, oversub
        )
    return out


def test_fabric_placement(benchmark, times):
    results = run_once(benchmark, lambda: times)
    print_header(
        "Ablation: ring placement on 2-rack fabric (8 nodes, 8 MB blocks)"
    )
    print_row("oversub", "aligned (s)", "interleaved (s)", "penalty")
    for oversub in (1.0, 4.0, 8.0):
        a = results[("aligned", oversub)]
        b = results[("interleaved", oversub)]
        print_row(f"{oversub:g}:1", f"{a:.3f}", f"{b:.3f}", f"{b / a:.2f}x")


def test_no_penalty_without_oversubscription(times):
    a = times[("aligned", 1.0)]
    b = times[("interleaved", 1.0)]
    assert b == pytest.approx(a, rel=0.25)


def test_interleaving_penalized_by_oversubscription(times):
    for oversub in (4.0, 8.0):
        assert times[("interleaved", oversub)] > times[("aligned", oversub)] * 1.5


def test_aligned_ring_mostly_immune(times):
    # The aligned ring crosses the core on only 2 of 8 hops, so even
    # 8:1 oversubscription costs it far less than the interleaved ring.
    assert times[("aligned", 8.0)] < times[("interleaved", 8.0)] / 2
