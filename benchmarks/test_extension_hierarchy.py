"""Extension bench: hierarchical worker groups (Fig 1c) at scale.

The paper presents the worker group as the building block and sketches
hierarchical composition.  This bench measures the two-level exchange
against the flat ring and the WA tree as the cluster grows, at paper
message sizes.
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.distributed import GroupLayout
from repro.transport import ClusterComm, ClusterConfig

MB = 2**20
MODEL_BYTES = 98 * MB  # ResNet-50


def _flat_ring_time(num_nodes, nbytes):
    from repro.perfmodel import simulate_ring_exchange

    return simulate_ring_exchange(num_nodes, nbytes).total_s


def _wa_time(num_nodes, nbytes):
    from repro.perfmodel import simulate_wa_exchange

    return simulate_wa_exchange(num_nodes, nbytes).total_s


def _hier_time(num_nodes, group_size, nbytes):
    """Two-level exchange with sized messages (timing only)."""
    layout = GroupLayout.even(num_nodes, group_size)
    comm = ClusterComm(ClusterConfig(num_nodes=num_nodes, train_packets=4400))

    def node(i):
        def proc():
            group = layout.group_of(i)
            leader = group[0]
            rank = group.index(i)
            g = len(group)
            # level 1: ring inside the group
            block = nbytes // g
            nxt = group[(rank + 1) % g]
            prv = group[(rank - 1) % g]
            for _ in range(2 * (g - 1)):
                ep = comm.endpoints[i]
                ep.isend_message(ep.build_message(nxt, nbytes=block))
                yield comm.endpoints[i].recv(prv)
            # level 2: leader ring + downstream broadcast
            leaders = list(layout.leaders)
            if i == leader and len(leaders) > 1:
                li = leaders.index(i)
                lblock = nbytes // len(leaders)
                lnxt = leaders[(li + 1) % len(leaders)]
                lprv = leaders[(li - 1) % len(leaders)]
                for _ in range(2 * (len(leaders) - 1)):
                    ep = comm.endpoints[i]
                    ep.isend_message(ep.build_message(lnxt, nbytes=lblock))
                    yield comm.endpoints[i].recv(lprv)
                events = [
                    comm.endpoints[i].isend_message(
                        comm.endpoints[i].build_message(member, nbytes=nbytes)
                    )
                    for member in group[1:]
                ]
                yield comm.sim.all_of(events)
            elif len(leaders) > 1:
                yield comm.endpoints[i].recv(leader)

        return proc

    for i in range(num_nodes):
        comm.sim.process(node(i)())
    return comm.run()


@pytest.fixture(scope="module")
def times():
    out = {}
    for nodes in (8, 16):
        out[("WA", nodes)] = _wa_time(nodes, MODEL_BYTES)
        out[("flat ring", nodes)] = _flat_ring_time(nodes, MODEL_BYTES)
        out[("hier 4x" + str(nodes // 4), nodes)] = _hier_time(
            nodes, 4, MODEL_BYTES
        )
    return out


def test_hierarchy_vs_flat(benchmark, times):
    results = run_once(benchmark, lambda: times)
    print_header("Extension: hierarchical groups vs flat ring (ResNet-50)")
    print_row("scheme / nodes", "time (s)")
    for (scheme, nodes), t in results.items():
        print_row(f"{scheme} @ {nodes}", f"{t:.3f}")


def test_both_ring_schemes_beat_wa(times):
    for nodes in (8, 16):
        wa = times[("WA", nodes)]
        assert times[("flat ring", nodes)] < wa
        assert times[(f"hier 4x{nodes // 4}", nodes)] < wa


def test_flat_ring_wins_at_this_scale(times):
    # The flat ring is bandwidth-optimal; the hierarchy's downstream
    # full-vector broadcast costs extra.  Hierarchy pays off only when
    # ring latency terms (2(p-1) alpha) dominate — far beyond 16 nodes
    # at these message sizes.  Recording the crossover's direction here.
    for nodes in (8, 16):
        assert times[("flat ring", nodes)] <= times[(f"hier 4x{nodes // 4}", nodes)]
