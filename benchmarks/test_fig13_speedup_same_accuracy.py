"""Fig 13: speedup at *equal final accuracy*.

Lossy compression costs a modest number of extra epochs (one or two in
the paper); even so INC+C trains 2.2-3.1x faster than WA.  The paper's
epoch counts calibrate the paper-scale estimate; a functional run on
the HDC proxy measures epochs-to-target-accuracy with and without
compression to confirm the "small extra epochs" effect.
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.distributed import train_distributed
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.perfmodel import FIG13_EPOCHS, equal_accuracy_speedup
from repro.transport import ClusterConfig

MODELS = ("AlexNet", "HDC", "ResNet-50", "VGG-16")
PAPER_SPEEDUP = {"AlexNet": 3.1, "HDC": 2.7, "ResNet-50": 3.0, "VGG-16": 2.2}


def test_fig13_speedups(benchmark):
    results = run_once(
        benchmark, lambda: {m: equal_accuracy_speedup(m) for m in MODELS}
    )
    print_header("Fig 13: speedup at the same final accuracy")
    print_row("model", "epochs WA", "epochs INC+C", "acc", "ours", "paper")
    for model in MODELS:
        sp = results[model]
        print_row(
            model,
            str(sp.wa_epochs),
            str(sp.inc_epochs),
            f"{sp.final_accuracy:.3f}",
            f"{sp.speedup:.2f}x",
            f"{PAPER_SPEEDUP[model]:.1f}x",
        )
    for model in MODELS:
        sp = results[model]
        # Band: within ~45% of the paper's speedup, and >1.5x always.
        # (Tiny models over-speed-up slightly in simulation: per-message
        # host software overheads the model omits damp the real system.)
        assert sp.speedup > 1.5
        assert sp.speedup == pytest.approx(PAPER_SPEEDUP[model], rel=0.45)


def test_fig13_epoch_counts_match_paper():
    for model, (wa, inc, acc) in FIG13_EPOCHS.items():
        # The lossy system needs at most 2 extra epochs in the paper.
        assert 0 <= inc - wa <= 2
        assert 0 < acc <= 1


def test_fig13_functional_epochs_to_accuracy(benchmark):
    """Measure iterations-to-target with and without lossy compression.

    Trains the real HDC net on 4 ring workers; the compressed run may
    need a few more iterations to hit the same test accuracy, but the
    overhead stays small (paper: 1-2 extra epochs out of ~17-90).
    """

    def run():
        target = 0.90
        out = {}
        for compressed in (False, True):
            result = train_distributed(
                algorithm="ring",
                build_net=lambda s: build_hdc(seed=s),
                make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
                dataset=hdc_dataset(train_size=600, test_size=150, seed=0),
                num_workers=4,
                iterations=60,
                batch_size=25,
                cluster=ClusterConfig(num_nodes=4, compression=compressed),
                compress_gradients=compressed,
                eval_every=5,
            )
            reached = next(
                (
                    (idx + 1) * 5
                    for idx, acc in enumerate(result.eval_top1)
                    if acc >= target
                ),
                None,
            )
            out[compressed] = (reached, result.final_top1)
        return out

    results = run_once(benchmark, run)
    print_header("Fig 13 (functional): iterations to reach 90% top-1, HDC")
    print_row("system", "iters to 90%", "final top-1")
    for compressed, (reached, final) in results.items():
        label = "INC+C" if compressed else "INC"
        print_row(label, str(reached), f"{final:.3f}")
    plain_reached, plain_final = results[False]
    comp_reached, comp_final = results[True]
    assert plain_reached is not None and comp_reached is not None
    # Compression costs at most a modest convergence delay...
    assert comp_reached <= plain_reached * 2.0
    # ...and the same final accuracy regime (within 5 points).
    assert comp_final > plain_final - 0.05
