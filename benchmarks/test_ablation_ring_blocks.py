"""Ablation: ring block-partition granularity.

Algorithm 1 fixes the block count at N (one per worker).  What if the
vector were exchanged in fewer, larger steps (a naive neighbour
rotation of full vectors) or finer ones?  The N-block reduce-scatter +
all-gather is the bandwidth-optimal point: each node moves
2(N-1)/N x n bytes; a full-vector rotation moves (N-1) x n.  Finer
partitions move the same bytes in more steps — no further win, only
more per-message latency.
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.transport import ClusterComm, ClusterConfig

MB = 2**20


def _rotate_full_vector_time(num_workers, nbytes):
    """1-block alternative: rotate full vectors around the ring N-1 times."""
    comm = ClusterComm(ClusterConfig(num_nodes=num_workers))

    def node(i):
        def proc():
            nxt = (i + 1) % num_workers
            prv = (i - 1) % num_workers
            for _ in range(num_workers - 1):
                ep = comm.endpoints[i]
                ep.isend_message(ep.build_message(nxt, nbytes=nbytes))
                yield comm.endpoints[i].recv(prv)

        return proc

    for i in range(num_workers):
        comm.sim.process(node(i)())
    return comm.run()


def _blocked_exchange_time(num_workers, nbytes, blocks_per_node):
    """Algorithm 1 generalized to ``N * blocks_per_node`` blocks.

    Per step each node ships one block; P1 + P2 take
    ``2 (N-1) blocks_per_node`` steps and move ``2 (N-1)/N x n`` bytes
    per node regardless of the multiplier.
    """
    total_blocks = num_workers * blocks_per_node
    block_nbytes = max(1, nbytes // total_blocks)
    steps = 2 * (num_workers - 1) * blocks_per_node
    comm = ClusterComm(ClusterConfig(num_nodes=num_workers))

    def node(i):
        def proc():
            nxt = (i + 1) % num_workers
            prv = (i - 1) % num_workers
            for _ in range(steps):
                ep = comm.endpoints[i]
                ep.isend_message(ep.build_message(nxt, nbytes=block_nbytes))
                yield comm.endpoints[i].recv(prv)

        return proc

    for i in range(num_workers):
        comm.sim.process(node(i)())
    return comm.run()


def test_block_partition_is_the_win(benchmark):
    def run():
        n = 64 * MB
        p = 4
        return {
            "rotate full vector": _rotate_full_vector_time(p, n),
            "Algorithm 1 (N blocks)": _blocked_exchange_time(p, n, 1),
            "2N blocks": _blocked_exchange_time(p, n, 2),
            "4N blocks": _blocked_exchange_time(p, n, 4),
        }

    results = run_once(benchmark, run)
    print_header("Ablation: ring granularity, 64 MB vector, 4 workers")
    print_row("scheme", "time (s)")
    for name, t in results.items():
        print_row(name, f"{t:.3f}")

    naive = results["rotate full vector"]
    blocked = results["Algorithm 1 (N blocks)"]
    # Rotation moves (N-1) x n per node; Algorithm 1 moves 2(N-1)/N x n
    # = 1.5n at N=4 versus 3n: expect roughly half the time.
    assert blocked < naive * 0.7
    # Finer than N blocks is not faster (same bytes, more messages).
    assert results["2N blocks"] == pytest.approx(blocked, rel=0.15)
    assert results["4N blocks"] == pytest.approx(blocked, rel=0.15)
