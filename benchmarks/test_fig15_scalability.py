"""Fig 15: gradient-exchange time vs cluster size (WA vs INC).

The WA exchange grows almost linearly with worker count (all traffic
and summation converge on the aggregator); the INCEPTIONN ring stays
nearly flat because the per-node share (p-1)/p saturates.  Normalized
to the four-node WA case, exactly as the paper plots it.
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.dnn import PAPER_MODELS
from repro.perfmodel import (
    CostParameters,
    compute_profile_for,
    ring_exchange_time,
    simulate_ring_exchange,
    simulate_wa_exchange,
    wa_exchange_time,
)

MODELS = ("AlexNet", "HDC", "ResNet-50", "VGG-16")
NODE_COUNTS = (4, 6, 8)


@pytest.fixture(scope="module")
def exchange_times():
    out = {}
    for model in MODELS:
        spec = PAPER_MODELS[model]
        profile = compute_profile_for(model)
        out[model] = {
            (alg, p): (
                simulate_wa_exchange if alg == "WA" else simulate_ring_exchange
            )(p, spec.nbytes, profile=profile).total_s
            for alg in ("WA", "INC")
            for p in NODE_COUNTS
        }
    return out


def test_fig15_scalability(benchmark, exchange_times):
    results = run_once(benchmark, lambda: exchange_times)
    for model in MODELS:
        times = results[model]
        base = times[("WA", 4)]
        print_header(f"Fig 15 ({model}): gradient exchange time (norm. to 4-node WA)")
        print_row("nodes", *[str(p) for p in NODE_COUNTS])
        for alg in ("WA", "INC"):
            print_row(alg, *[f"{times[(alg, p)] / base:.2f}" for p in NODE_COUNTS])


@pytest.mark.parametrize("model", MODELS)
def test_fig15_wa_grows_nearly_linearly(exchange_times, model):
    times = exchange_times[model]
    growth = times[("WA", 8)] / times[("WA", 4)]
    assert growth > 1.5  # paper: "almost linearly"


@pytest.mark.parametrize("model", ["AlexNet", "ResNet-50", "VGG-16"])
def test_fig15_ring_stays_nearly_constant(exchange_times, model):
    times = exchange_times[model]
    growth = times[("INC", 8)] / times[("INC", 4)]
    assert growth < 1.3  # paper: "remains almost constant" for big models


@pytest.mark.parametrize("model", MODELS)
def test_fig15_ring_beats_wa_at_every_size(exchange_times, model):
    times = exchange_times[model]
    for p in NODE_COUNTS:
        assert times[("INC", p)] < times[("WA", p)]


def test_fig15_simulation_tracks_analytical_model(benchmark):
    """The event simulation and the paper's closed form agree on shape."""

    def run():
        spec = PAPER_MODELS["AlexNet"]
        profile = compute_profile_for("AlexNet")
        params = CostParameters.from_rates(2e-6, 10e9, profile.sum_bandwidth_bps)
        rows = {}
        for p in NODE_COUNTS:
            rows[p] = (
                simulate_wa_exchange(p, spec.nbytes, profile=profile).total_s,
                wa_exchange_time(p, spec.nbytes, params),
                simulate_ring_exchange(p, spec.nbytes, profile=profile).total_s,
                ring_exchange_time(p, spec.nbytes, params),
            )
        return rows

    rows = run_once(benchmark, run)
    print_header("Fig 15 (support): simulation vs analytical model, AlexNet")
    print_row("nodes", "WA sim", "WA model", "INC sim", "INC model")
    for p, (wa_s, wa_m, inc_s, inc_m) in rows.items():
        print_row(str(p), f"{wa_s:.2f}", f"{wa_m:.2f}", f"{inc_s:.2f}", f"{inc_m:.2f}")
    # The simulation runs above the closed form (headers, FIFO queueing,
    # store-and-forward hops the formula idealizes away) but tracks its
    # shape; the WA gap grows with p because the formula assumes a
    # tree-structured broadcast the testbed star does not have.
    for p, (wa_s, wa_m, inc_s, inc_m) in rows.items():
        assert wa_s == pytest.approx(wa_m, rel=0.6)
        assert inc_s == pytest.approx(inc_m, rel=0.6)
