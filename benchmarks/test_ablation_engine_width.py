"""Ablation: Compression Engine width (number of CBs).

The reference design uses eight Compression Blocks so one 256-bit burst
retires per 100 MHz cycle (3.2 GB/s) — comfortably above the 10 GbE
line rate, so the engine never throttles the NIC.  Narrower engines
save area but fall below line rate and become the bottleneck; this
bench quantifies where the knee sits, both at the engine level and in
end-to-end message timing.
"""

import numpy as np
import pytest

from conftest import print_header, print_row, run_once
from repro.core import ErrorBound
from repro.hardware import CompressionEngine, engine_throughput_bps
from repro.network import (
    Network,
    NicTimingModel,
    Simulation,
    SwitchedStar,
    TOS_COMPRESS,
)
from repro.hardware import engine_latency_s

BOUND = ErrorBound(10)
WIDTHS = (1, 2, 4, 8, 16)
LINE_RATE_BPS = 10e9 / 8  # bytes/second of 10 GbE


def test_engine_width_throughput(benchmark):
    def run():
        out = {}
        payload = (
            np.random.default_rng(0).standard_normal(8 * 500) * 0.05
        ).astype(np.float32).tobytes()
        reference = None
        for width in WIDTHS:
            engine = CompressionEngine(BOUND, num_blocks=width)
            stream, stats = engine.compress(payload)
            if reference is None:
                reference = stream
            assert stream == reference  # width never changes the bits
            out[width] = (engine.throughput_bps(), stats.cycles)
        return out

    results = run_once(benchmark, run)
    print_header("Ablation: engine width vs streaming throughput")
    print_row("CBs", "GB/s", "cycles/500 bursts", "> line rate?")
    for width, (bps, cycles) in results.items():
        print_row(
            str(width),
            f"{bps / 1e9:.2f}",
            str(cycles),
            "yes" if bps >= LINE_RATE_BPS else "NO",
        )
    # 8 CBs (the paper's design point) is the narrowest width that
    # clears the 10 GbE line rate with margin.
    assert results[8][0] >= LINE_RATE_BPS * 2
    assert results[4][0] >= LINE_RATE_BPS
    assert results[2][0] < LINE_RATE_BPS


def test_engine_width_end_to_end(benchmark):
    def run():
        nbytes = 16 * 2**20
        times = {}
        for width in WIDTHS:
            sim = Simulation()
            topo = SwitchedStar(sim, 2)
            nic = NicTimingModel(
                compression=True,
                engine_latency_s=engine_latency_s(),
                engine_throughput_bps=engine_throughput_bps(width),
            )
            net = Network(sim, topo, nics={0: nic, 1: nic})
            done = {}
            ev = net.send(
                0, 1, nbytes, tos=TOS_COMPRESS, compressed_nbytes=nbytes // 8
            )
            ev.add_callback(lambda e: done.setdefault("t", sim.now))
            sim.run()
            times[width] = done["t"]
        return times

    times = run_once(benchmark, run)
    print_header("Ablation: engine width vs 16 MB compressed transfer time")
    print_row("CBs", "time (ms)")
    for width, t in times.items():
        print_row(str(width), f"{1e3 * t:.2f}")
    # Narrow engines gate the transfer; 8 and 16 CBs are equivalent
    # because the wire (not the engine) limits them.
    assert times[1] > times[8] * 3
    assert times[16] == pytest.approx(times[8], rel=0.05)
    assert times[8] < times[4] + 1e-9 or times[8] == pytest.approx(times[4], rel=0.3)
