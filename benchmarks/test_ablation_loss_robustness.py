"""Ablation: gradient-exchange robustness to packet loss.

The paper assumes a healthy fabric; here we inject Bernoulli train loss
with retransmission and ask whether the ring's advantage over WA holds.
The ring sends more, smaller messages (2(N-1) per node), so it takes
more loss *events*, but each retransmission is cheap; WA's few huge
transfers lose big trains.  Both degrade smoothly and the ordering
survives realistic loss rates.
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.network import LossModel, Network, RetransmitPolicy, Simulation, SwitchedStar

MB = 2**20
MODEL_BYTES = 64 * MB


def _wa_time(num_workers, nbytes, drop):
    sim = Simulation()
    topo = SwitchedStar(sim, num_workers + 1)
    net = Network(
        sim,
        topo,
        train_packets=880,
        loss=LossModel(drop_probability=drop, seed=1) if drop else None,
        retransmit=RetransmitPolicy(max_attempts=64),
    )
    agg = num_workers
    done = []
    gather = [net.send(w, agg, nbytes) for w in range(num_workers)]

    def then_scatter(_):
        scatter = [net.send(agg, w, nbytes) for w in range(num_workers)]
        sim.all_of(scatter).add_callback(lambda e: done.append(sim.now))

    sim.all_of(gather).add_callback(then_scatter)
    sim.run()
    return done[0]


def _ring_time(num_workers, nbytes, drop):
    sim = Simulation()
    topo = SwitchedStar(sim, num_workers)
    net = Network(
        sim,
        topo,
        train_packets=880,
        loss=LossModel(drop_probability=drop, seed=1) if drop else None,
        retransmit=RetransmitPolicy(max_attempts=64),
    )
    block = nbytes // num_workers
    procs = []

    def node(i):
        def proc():
            # Step-coupled ring approximation: a node proceeds to the
            # next step once its own block lands at the successor (with
            # symmetric links this coincides with its predecessor's
            # delivery to it).
            nxt = (i + 1) % num_workers
            for _ in range(2 * (num_workers - 1)):
                yield net.send(i, nxt, block)

        return proc

    for i in range(num_workers):
        procs.append(sim.process(node(i)()))
    out = []
    sim.all_of(procs).add_callback(lambda e: out.append(sim.now))
    sim.run()
    return out[0]


@pytest.fixture(scope="module")
def sweep():
    rates = (0.0, 0.01, 0.05)
    return {
        (alg, drop): (_wa_time if alg == "WA" else _ring_time)(4, MODEL_BYTES, drop)
        for alg in ("WA", "INC")
        for drop in rates
    }


def test_loss_robustness(benchmark, sweep):
    results = run_once(benchmark, lambda: sweep)
    print_header("Ablation: exchange time under packet loss (64 MB, 4 workers)")
    print_row("loss rate", "WA (s)", "INC (s)", "INC speedup")
    for drop in (0.0, 0.01, 0.05):
        wa, inc = results[("WA", drop)], results[("INC", drop)]
        print_row(f"{drop:.0%}", f"{wa:.3f}", f"{inc:.3f}", f"{wa / inc:.2f}x")


def test_ordering_survives_loss(sweep):
    for drop in (0.0, 0.01, 0.05):
        assert sweep[("INC", drop)] < sweep[("WA", drop)]


def test_loss_degrades_both(sweep):
    for alg in ("WA", "INC"):
        assert sweep[(alg, 0.05)] > sweep[(alg, 0.0)]
