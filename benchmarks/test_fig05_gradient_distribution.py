"""Fig 5: distribution of gradient values across training stages.

The codec's two founding observations, measured on real training runs:
values fall in (-1, 1) and the distribution peaks tightly around zero,
at the early, middle and final stages alike.
"""

import numpy as np

from conftest import print_header, print_row, run_once
from repro.core import value_histogram

STAGE_NAMES = ("early", "middle", "final")


def _stage_stats(trace):
    stats = {}
    for stage, (iteration, grads) in zip(STAGE_NAMES, sorted(trace.items())):
        inside = float(np.mean(np.abs(grads) < 1.0))
        near_zero = float(np.mean(np.abs(grads) < 0.01))
        freqs, edges = value_histogram(grads, bins=41)
        center = freqs[len(freqs) // 2]
        stats[stage] = {
            "iteration": iteration,
            "inside_unit": inside,
            "near_zero": near_zero,
            "peak_bin": center,
            "std": float(np.std(grads)),
        }
    return stats


def _report(name, stats):
    print_header(f"Fig 5 ({name}): gradient value distribution by stage")
    print_row("stage", "|g|<1", "|g|<0.01", "peak bin", "std")
    for stage in STAGE_NAMES:
        s = stats[stage]
        print_row(
            f"{stage} (iter {s['iteration']})",
            f"{s['inside_unit']:.4f}",
            f"{s['near_zero']:.3f}",
            f"{s['peak_bin']:.3f}",
            f"{s['std']:.4f}",
        )


def test_fig5_hdc(benchmark, hdc_gradient_trace):
    stats = run_once(benchmark, lambda: _stage_stats(hdc_gradient_trace))
    _report("HDC", stats)
    for stage in STAGE_NAMES:
        # Essentially all values inside (-1, 1)...
        assert stats[stage]["inside_unit"] > 0.995
        # ...with a tight near-zero peak.
        assert stats[stage]["near_zero"] > 0.5
        assert stats[stage]["peak_bin"] > 0.2


def test_fig5_cnn_proxy(benchmark, cnn_gradient_trace):
    stats = run_once(benchmark, lambda: _stage_stats(cnn_gradient_trace))
    _report("AlexNet proxy", stats)
    for stage in STAGE_NAMES:
        assert stats[stage]["inside_unit"] > 0.99
        assert stats[stage]["near_zero"] > 0.4


def test_fig5_distribution_persists_across_stages(hdc_gradient_trace):
    """The shape is stable over training, which is what lets one codec
    configuration serve the whole run."""
    stats = _stage_stats(hdc_gradient_trace)
    concentrations = [stats[s]["near_zero"] for s in STAGE_NAMES]
    assert max(concentrations) - min(concentrations) < 0.5
