"""Ablation: the tag/payload codec vs alternatives at equal error bound.

Compares INCEPTIONN's 2-bit-tag scheme against plain truncation and the
SZ-like predictive coder on the ratio/error/complexity trade-off, at the
same absolute error target.  The design claim: for gradient-shaped data
the tag scheme gets most of SZ's ratio with none of its sequential
(prediction-chain) structure — which is what makes it implementable as
eight independent combinational blocks in the NIC.
"""

import numpy as np
import pytest

from conftest import print_header, print_row, run_once
from repro.baselines import sz_like, truncate_lsbs
from repro.core import ErrorBound, compression_ratio, max_abs_error, roundtrip


def _gradientlike(n=200_000, seed=0):
    rng = np.random.default_rng(seed)
    core = rng.standard_normal(n).astype(np.float32) * 0.002
    tail = rng.standard_normal(n).astype(np.float32) * 0.1
    mask = rng.random(n) < 0.1
    return np.where(mask, tail, core).astype(np.float32)


def test_codec_vs_alternatives_at_equal_bound(benchmark):
    def run():
        values = _gradientlike()
        out = {}
        for exp in (10, 8, 6):
            bound = ErrorBound(exp)
            inc_ratio = compression_ratio(values, bound)
            inc_err = max_abs_error(values, roundtrip(values, bound))
            sz_ratio = sz_like.compression_ratio(values, bound.bound)
            sz_out = sz_like.decompress(
                sz_like.compress(values, bound.bound), bound.bound
            )
            sz_err = max_abs_error(values, sz_out)
            # Truncation width with comparable worst-case error on
            # (-1,1): drop enough mantissa LSBs that the absolute error
            # near 1.0 is ~bound -> keep (exp) fraction bits.
            bits = 23 - exp
            tr_ratio = 32.0 / (32 - bits)
            tr_err = max_abs_error(values, truncate_lsbs(values, bits))
            out[exp] = {
                "INC": (inc_ratio, inc_err),
                "SZ-like": (sz_ratio, sz_err),
                "trunc": (tr_ratio, tr_err),
            }
        return out

    results = run_once(benchmark, run)
    print_header("Ablation: ratio and max error at equal error target")
    print_row("bound / scheme", "ratio", "max err")
    for exp, row in results.items():
        for scheme, (ratio, err) in row.items():
            print_row(f"2^-{exp} {scheme}", f"{ratio:.2f}", f"{err:.2e}")

    for exp, row in results.items():
        bound = 2.0**-exp
        inc_ratio, inc_err = row["INC"]
        tr_ratio, tr_err = row["trunc"]
        # All schemes respect their error target.
        assert inc_err < bound
        assert row["SZ-like"][1] <= bound * 1.001
        # The codec clearly beats equal-error truncation on ratio.
        assert inc_ratio > tr_ratio * 1.5


def test_codec_is_parallel_sz_is_sequential(benchmark):
    """Structural check behind the hardware argument: INCEPTIONN's codec
    is value-parallel (compressing a permutation permutes the output),
    while the SZ-like coder is order-dependent (prediction chain)."""

    def run():
        values = _gradientlike(n=4096, seed=1)
        perm = np.random.default_rng(2).permutation(values.size)
        bound = ErrorBound(10)
        inc_direct = roundtrip(values, bound)[perm]
        inc_permuted = roundtrip(values[perm], bound)
        sz_direct = sz_like.compress(values, bound.bound)
        sz_permuted = sz_like.compress(values[perm], bound.bound)
        return inc_direct, inc_permuted, len(sz_direct), len(sz_permuted)

    inc_direct, inc_permuted, sz_a, sz_b = run_once(benchmark, run)
    np.testing.assert_array_equal(inc_direct, inc_permuted)
    # The SZ-like stream generally changes size under permutation —
    # evidence of cross-value coupling (we only assert it ran).
    assert sz_a > 0 and sz_b > 0
