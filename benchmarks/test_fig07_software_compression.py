"""Fig 7: software-based compression makes training *slower* overall.

Running Snappy or SZ (or even simple truncation packing) on the host
CPU reduces communication but adds (de)compression time that swamps the
saving for communication-bound models.  Uses the calibrated software
cost model plus our measured from-scratch codec ratios.
"""

import numpy as np
import pytest

from conftest import print_header, print_row, run_once
from repro.baselines import (
    SOFTWARE_CODECS,
    baseline_training_time,
    snappy_like,
    software_training_time,
    sz_like,
)
from repro.dnn import PAPER_MODELS
from repro.perfmodel import TABLE2, TABLE2_ITERATIONS

SCHEMES = ("base", "snappy", "sz", "truncation")


def _per_iteration_times(model_name):
    row = TABLE2[model_name]
    compute = (row.forward + row.backward + row.gpu_copy + row.gradient_sum
               + row.update) / TABLE2_ITERATIONS
    comm = row.communicate / TABLE2_ITERATIONS
    nbytes = PAPER_MODELS[model_name].nbytes
    times = {"base": baseline_training_time(compute, comm)}
    for name in ("snappy", "sz", "truncation"):
        times[name] = software_training_time(
            compute, comm, nbytes, SOFTWARE_CODECS[name]
        )
    return times


def test_fig7_software_compression_normalized_times(benchmark):
    results = run_once(
        benchmark,
        lambda: {m: _per_iteration_times(m) for m in ("AlexNet", "HDC")},
    )
    print_header("Fig 7: normalized training time with software compression")
    print_row("model", *SCHEMES)
    for model, times in results.items():
        base = times["base"]
        print_row(model, *[f"{times[s] / base:.2f}" for s in SCHEMES])

    alexnet = results["AlexNet"]
    # Software compression increases AlexNet's training time (paper: 2-4x).
    assert alexnet["snappy"] > alexnet["base"] * 1.3
    assert alexnet["sz"] > alexnet["base"] * 1.5
    # Truncation packing saves little at best.
    assert alexnet["truncation"] > alexnet["base"] * 0.8


def test_fig7_measured_ratios_justify_cost_model(benchmark):
    """Cross-check the cost model's ratios against our real codecs."""

    def run():
        rng = np.random.default_rng(0)
        grads = (rng.standard_normal(100_000) * 0.01).astype(np.float32)
        return {
            "snappy": snappy_like.compression_ratio(grads.tobytes()),
            "sz": sz_like.compression_ratio(grads, 2**-8),
        }

    measured = run_once(benchmark, run)
    print_header("Fig 7 (support): measured software codec ratios")
    print_row("codec", "measured", "modelled")
    for name, ratio in measured.items():
        print_row(name, f"{ratio:.2f}", f"{SOFTWARE_CODECS[name].ratio:.2f}")
    # Lossless stays poor; error-bounded lossy does better.
    assert measured["snappy"] < 2.0
    assert measured["sz"] > measured["snappy"]
