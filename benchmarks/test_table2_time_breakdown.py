"""Table II: time breakdown of 100 training iterations (5-node WA).

Compute rows are calibrated to the paper (they depend on the authors'
GPUs); the Communicate row is *simulated* by the network model and
compared against the paper's measurement.
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.perfmodel import TABLE2, paper_breakdown, simulated_breakdown

MODELS = ("AlexNet", "HDC", "ResNet-50", "VGG-16")
SIM_ITERATIONS = 10  # scaled to 100 for reporting


def _simulate_all():
    scale = 100 / SIM_ITERATIONS
    out = {}
    for model in MODELS:
        bd = simulated_breakdown(model, iterations=SIM_ITERATIONS)
        out[model] = {
            "forward": bd.forward * scale,
            "backward": bd.backward * scale,
            "gpu_copy": bd.gpu_copy * scale,
            "gradient_sum": bd.gradient_sum * scale,
            "communicate": bd.communicate * scale,
            "update": bd.update * scale,
        }
    return out


@pytest.fixture(scope="module")
def simulated():
    return _simulate_all()


def test_table2_breakdown(benchmark, simulated):
    results = run_once(benchmark, lambda: simulated)
    for model in MODELS:
        paper = paper_breakdown(model)
        ours = results[model]
        total = sum(ours.values())
        print_header(f"Table II ({model}): seconds per 100 iterations")
        print_row("phase", "ours", "paper", "ours %", "paper %")
        paper_rows = {
            "forward": paper.forward,
            "backward": paper.backward,
            "gpu_copy": paper.gpu_copy,
            "gradient_sum": paper.gradient_sum,
            "communicate": paper.communicate,
            "update": paper.update,
        }
        for phase, paper_value in paper_rows.items():
            print_row(
                phase,
                f"{ours[phase]:.2f}",
                f"{paper_value:.2f}",
                f"{100 * ours[phase] / total:.1f}",
                f"{100 * paper_value / paper.total:.1f}",
            )
        print_row("total", f"{total:.2f}", f"{paper.total:.2f}", "", "")


@pytest.mark.parametrize("model", MODELS)
def test_table2_communication_dominates(simulated, model):
    ours = simulated[model]
    total = sum(ours.values())
    paper_frac = TABLE2[model].communication_fraction
    ours_frac = ours["communicate"] / total
    # Shape: communication is the bottleneck everywhere (paper: >70%).
    assert ours_frac > 0.45
    # And within 0.25 of the paper's fraction.
    assert abs(ours_frac - paper_frac) < 0.25


def test_table2_model_ordering_preserved(simulated):
    """Bigger models communicate longer: HDC < ResNet-50 < AlexNet < VGG."""
    comm = {m: simulated[m]["communicate"] for m in MODELS}
    assert comm["HDC"] < comm["ResNet-50"] < comm["AlexNet"] < comm["VGG-16"]
