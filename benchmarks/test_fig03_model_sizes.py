"""Fig 3: model sizes and the communication share of training time.

(a) Weight/gradient sizes of AlexNet, VGG-16, ResNet-152.
(b) Percentage of total training time spent exchanging g and w on the
    five-node worker-aggregator cluster with 10 GbE.
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.dnn import PAPER_MODELS
from repro.perfmodel import simulated_breakdown

FIG3_MODELS = ("AlexNet", "ResNet-152", "VGG-16")
#: Fig 3(b)'s approximate bar heights.
PAPER_COMM_PERCENT = {"AlexNet": 75.7, "ResNet-152": 80.0, "VGG-16": 70.9}


def test_fig3a_model_sizes(benchmark):
    sizes = run_once(
        benchmark, lambda: {m: PAPER_MODELS[m].size_mb for m in FIG3_MODELS}
    )
    print_header("Fig 3(a): model size (MB)")
    print_row("model", "ours", "paper")
    for model in FIG3_MODELS:
        print_row(model, f"{sizes[model]:.0f}", f"{PAPER_MODELS[model].size_mb:.0f}")
    assert sizes["VGG-16"] > sizes["AlexNet"] > sizes["ResNet-152"] * 0.9
    assert sizes["AlexNet"] == 233
    assert sizes["VGG-16"] == 525


def test_fig3b_communication_fraction(benchmark):
    def run():
        return {
            m: simulated_breakdown(m, num_workers=4, iterations=5)
            for m in FIG3_MODELS
        }

    breakdowns = run_once(benchmark, run)
    print_header("Fig 3(b): % of training time spent communicating (5-node WA)")
    print_row("model", "ours %", "paper %")
    for model in FIG3_MODELS:
        bd = breakdowns[model]
        ours = 100 * bd.communicate / bd.total
        print_row(model, f"{ours:.1f}", f"{PAPER_COMM_PERCENT[model]:.1f}")
        # Shape: communication dominates training for every model.
        assert ours > 50.0
