"""Fig 4: impact of floating-point truncation on training accuracy.

Truncating gradients (g only) is far gentler than truncating weights
(w only / w & g): weight-precision loss accumulates over iterations.
Trained on the HDC net and the convolutional AlexNet proxy over the
synthetic datasets (see DESIGN.md substitutions).
"""

import numpy as np
import pytest

from conftest import print_header, print_row, run_once
from repro.baselines import truncate_lsbs
from repro.dnn import (
    LRSchedule,
    SGD,
    LocalTrainer,
    build_hdc,
    build_mini_cnn,
    cnn_dataset,
    hdc_dataset,
)

TRUNCATIONS = (16, 22, 24)
TARGETS = ("g only", "w only", "w & g")


def _train_with_truncation(
    build, dataset, batch_size, iterations, lr, bits, target, seed=0
):
    net = build(seed)
    opt = SGD(LRSchedule(lr), momentum=0.9, weight_decay=5e-5)
    trainer = LocalTrainer(net, opt, dataset, batch_size, seed=seed)
    for _ in range(iterations):
        _, grad = trainer.local_gradient()
        if target in ("g only", "w & g") and bits:
            grad = truncate_lsbs(grad, bits)
        trainer.apply_gradient(grad)
        if target in ("w only", "w & g") and bits:
            net.set_parameter_vector(
                truncate_lsbs(net.parameter_vector(), bits)
            )
    top1, _ = trainer.evaluate()
    return top1


def _sweep(build, dataset, batch_size, iterations, lr):
    results = {"baseline": _train_with_truncation(
        build, dataset, batch_size, iterations, lr, 0, "g only"
    )}
    for target in TARGETS:
        for bits in TRUNCATIONS:
            results[(target, bits)] = _train_with_truncation(
                build, dataset, batch_size, iterations, lr, bits, target
            )
    return results


@pytest.fixture(scope="module")
def hdc_results():
    ds = hdc_dataset(train_size=600, test_size=150, seed=0)
    return _sweep(build_hdc, ds, batch_size=25, iterations=120, lr=0.05)


@pytest.fixture(scope="module")
def cnn_results():
    ds = cnn_dataset(train_size=400, test_size=100, seed=0)
    return _sweep(build_mini_cnn, ds, batch_size=32, iterations=70, lr=0.05)


def _report(name, results):
    print_header(f"Fig 4 ({name}): top-1 accuracy under truncation")
    print_row("target", *[f"{b}b-T" for b in TRUNCATIONS], "no-trunc")
    for target in TARGETS:
        print_row(
            target,
            *[f"{results[(target, b)]:.3f}" for b in TRUNCATIONS],
            f"{results['baseline']:.3f}",
        )


def test_fig4_hdc(benchmark, hdc_results):
    results = run_once(benchmark, lambda: hdc_results)
    _report("HDC", results)
    base = results["baseline"]
    # Gradient truncation at 16 bits is essentially harmless.
    assert results[("g only", 16)] > base - 0.08
    # Aggressive *weight* truncation (24 LSBs: mantissa gone plus an
    # exponent bit) is much worse than the same truncation of gradients.
    assert results[("g only", 24)] >= results[("w only", 24)]
    assert results[("w only", 24)] < base - 0.15


def test_fig4_cnn_proxy(benchmark, cnn_results):
    results = run_once(benchmark, lambda: cnn_results)
    _report("AlexNet proxy", results)
    base = results["baseline"]
    assert results[("g only", 16)] > base - 0.10
    # For the complex (convolutional) model, truncating weights by 24
    # bits is detrimental (paper: "detrimentally affects the accuracy").
    assert results[("w & g", 24)] < base - 0.15


def test_fig4_gradients_more_tolerant_on_average(hdc_results, cnn_results):
    """Aggregate claim: g-only beats w-only at every truncation width."""
    margins = []
    for results in (hdc_results, cnn_results):
        for bits in TRUNCATIONS:
            margins.append(
                results[("g only", bits)] - results[("w only", bits)]
            )
    assert np.mean(margins) > 0.0
