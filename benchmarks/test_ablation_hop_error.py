"""Ablation: per-hop lossy error accumulation in the ring.

The NIC compresses *every* hop of Algorithm 1.  How much error does a
full exchange accumulate versus compressing the aggregate once?  Design
facts verified: reduce-scatter hops each add at most one bound of error
to partial sums; all-gather re-compressions are free (reconstructed
values are codec fixed points), so error grows with ring size but stays
a small multiple of the bound — not with the number of *hops squared*.
"""

import numpy as np
import pytest

from conftest import print_header, print_row, run_once
from repro.core import ErrorBound, roundtrip
from repro.distributed import ring_exchange
from repro.transport import ClusterComm, ClusterConfig

BOUND = ErrorBound(10)


def _ring_error(n, seed=0):
    rng = np.random.default_rng(seed)
    vectors = [
        (rng.standard_normal(4096) * 0.05).astype(np.float32) for _ in range(n)
    ]
    comm = ClusterComm(
        ClusterConfig(num_nodes=n, compression=True, bound=BOUND)
    )
    results = {}

    def node(i):
        def proc():
            results[i] = yield from ring_exchange(
                comm.endpoints[i], vectors[i], n, compressible=True
            )

        return proc

    for i in range(n):
        comm.sim.process(node(i)())
    comm.run()
    exact = np.sum(vectors, axis=0)
    ring_err = max(float(np.max(np.abs(results[i] - exact))) for i in range(n))
    once_err = float(np.max(np.abs(roundtrip(exact, BOUND) - exact)))
    return ring_err, once_err


def test_hop_error_vs_compress_once(benchmark):
    results = run_once(
        benchmark, lambda: {n: _ring_error(n, seed=n) for n in (2, 4, 8)}
    )
    print_header("Ablation: ring error accumulation vs compress-once")
    print_row("ring size", "ring err", "once err", "x bound")
    for n, (ring_err, once_err) in results.items():
        print_row(
            str(n),
            f"{ring_err:.2e}",
            f"{once_err:.2e}",
            f"{ring_err / BOUND.bound:.2f}",
        )
    for n, (ring_err, once_err) in results.items():
        # Per-hop compression costs more error than compress-once...
        assert ring_err >= once_err * 0.5
        # ...but stays a small multiple of the bound (not hop-quadratic).
        assert ring_err <= (n + 1) * BOUND.bound


def test_allgather_recompression_is_exact(benchmark):
    """A codec fixed point re-compresses to itself: the P2 leg adds zero
    extra error regardless of how many hops it crosses."""

    def run():
        rng = np.random.default_rng(0)
        values = (rng.standard_normal(10_000) * 0.1).astype(np.float32)
        once = roundtrip(values, BOUND)
        many = once
        for _ in range(16):
            many = roundtrip(many, BOUND)
        return once, many

    once, many = run_once(benchmark, run)
    np.testing.assert_array_equal(once, many)
