"""Extension bench: INCEPTIONN's codec vs related-work compressors.

Runs the codec (with and without error feedback) next to 1-bit SGD,
TernGrad, QSGD and Deep Gradient Compression on the same training task:
compression ratio on live gradients, plus final accuracy after equal
iterations.  This is the comparison the paper's Sec. IX discusses
qualitatively; here it is measured.
"""

import numpy as np
import pytest

from conftest import print_header, print_row, run_once
from repro.baselines import DeepGradientCompression, OneBitSGD, qsgd, terngrad
from repro.core import ErrorBound, compression_ratio, feedback_hook, roundtrip
from repro.dnn import LRSchedule, SGD, LocalTrainer, build_hdc, hdc_dataset

ITERATIONS = 100


def _train_with(hook_factory):
    ds = hdc_dataset(train_size=600, test_size=150, seed=0)
    net = build_hdc(seed=0)
    # 0.02: the noisier quantizers (TernGrad scales by max|g|) diverge
    # at the 0.05 used elsewhere; all schemes are stable here.
    opt = SGD(LRSchedule(0.02), momentum=0.9, weight_decay=5e-5)
    trainer = LocalTrainer(net, opt, ds, batch_size=25, seed=0)
    hook = hook_factory()
    ratios = []
    for iteration in range(ITERATIONS):
        _, grad = trainer.local_gradient()
        grad, ratio = hook(iteration, grad)
        if ratio is not None:
            ratios.append(ratio)
        trainer.apply_gradient(grad)
    top1, _ = trainer.evaluate()
    return top1, float(np.mean(ratios)) if ratios else float("nan")


def _baseline_factory():
    return lambda i, g: (g, None)


def _inc_factory(bound):
    return lambda i, g: (roundtrip(g, bound), compression_ratio(g, bound))


def _inc_ef_factory(bound):
    inner = feedback_hook(bound)
    return lambda i, g: (inner(i, g), compression_ratio(g, bound))


def _onebit_factory():
    q = OneBitSGD()

    def hook(i, g):
        r = q.quantize(g)
        return r.values, r.compression_ratio

    return hook


def _terngrad_factory():
    rng = np.random.default_rng(11)

    def hook(i, g):
        r = terngrad(g, rng)
        return r.values, r.compression_ratio

    return hook


def _qsgd_factory():
    rng = np.random.default_rng(13)

    def hook(i, g):
        r = qsgd(g, rng, bits=4)
        return r.values, r.compression_ratio

    return hook


def _dgc_factory():
    sparsifier = DeepGradientCompression(sparsity=0.99)

    def hook(i, g):
        r = sparsifier.sparsify(g)
        return r.values, r.compression_ratio

    return hook


def _schemes():
    """Name -> zero-argument factory producing a fresh stateful hook."""
    return {
        "lossless": _baseline_factory,
        "INC(2^-10)": lambda: _inc_factory(ErrorBound(10)),
        "INC(2^-6)": lambda: _inc_factory(ErrorBound(6)),
        "INC(2^-6)+EF": lambda: _inc_ef_factory(ErrorBound(6)),
        "1-bit SGD": _onebit_factory,
        "TernGrad": _terngrad_factory,
        "QSGD(4b)": _qsgd_factory,
        "DGC(99%)": _dgc_factory,
    }


@pytest.fixture(scope="module")
def comparison():
    return {name: _train_with(factory) for name, factory in _schemes().items()}


def test_compressor_comparison(benchmark, comparison):
    results = run_once(benchmark, lambda: comparison)
    print_header(
        f"Extension: compressor comparison (HDC, {ITERATIONS} iterations)"
    )
    print_row("scheme", "top-1", "avg ratio")
    for name, (top1, ratio) in results.items():
        print_row(name, f"{top1:.3f}", f"{ratio:.1f}" if ratio == ratio else "-")


def test_all_schemes_train(comparison):
    base = comparison["lossless"][0]
    for name, (top1, _) in comparison.items():
        assert top1 > base - 0.25, name


def test_inc_competitive_with_quantizers(comparison):
    inc_top1, inc_ratio = comparison["INC(2^-10)"]
    for rival in ("TernGrad", "QSGD(4b)"):
        rival_top1, _ = comparison[rival]
        assert inc_top1 > rival_top1 - 0.1


def test_error_feedback_recovers_aggressive_bound(comparison):
    plain_top1, _ = comparison["INC(2^-6)"]
    ef_top1, _ = comparison["INC(2^-6)+EF"]
    assert ef_top1 >= plain_top1 - 0.02


def test_dgc_highest_ratio_inc_highest_fidelity(comparison):
    # DGC trades delay for extreme sparsity; INC keeps every value fresh
    # within the bound.  Both character points should show.
    assert comparison["DGC(99%)"][1] > comparison["INC(2^-10)"][1]
