"""Fig 14: compression ratio and accuracy impact of the lossy schemes.

(a) Average compression ratio of 16/22/24-bit truncation vs INCEPTIONN
    at error bounds 2^-10, 2^-8, 2^-6 — truncation is capped at 4x while
    the codec reaches ~15x at relaxed bounds.
(b) Relative top-1 accuracy after training the same number of epochs:
    the codec's bounded error preserves accuracy where aggressive
    truncation collapses it.
"""

import numpy as np
import pytest

from conftest import print_header, print_row, run_once
from repro.baselines import truncate_lsbs, truncation_ratio
from repro.core import ErrorBound, compression_ratio, roundtrip
from repro.dnn import (
    LRSchedule,
    SGD,
    LocalTrainer,
    build_hdc,
    hdc_dataset,
)

BOUNDS = (10, 8, 6)
TRUNCS = (16, 22, 24)


def test_fig14a_compression_ratios(
    benchmark, hdc_gradient_trace, cnn_gradient_trace, shell_gradients
):
    def run():
        traces = {
            "HDC (real)": list(hdc_gradient_trace.values()),
            "AlexNet proxy (real)": list(cnn_gradient_trace.values()),
            "AlexNet (shell)": [shell_gradients["AlexNet"]],
            "VGG-16 (shell)": [shell_gradients["VGG-16"]],
            "ResNet-50 (shell)": [shell_gradients["ResNet-50"]],
        }
        out = {}
        for name, grads in traces.items():
            row = {}
            for bits in TRUNCS:
                row[f"{bits}b-T"] = truncation_ratio(bits)
            for b in BOUNDS:
                ratios = [compression_ratio(g, ErrorBound(b)) for g in grads]
                row[f"INC(2^-{b})"] = float(np.mean(ratios))
            out[name] = row
        return out

    results = run_once(benchmark, run)
    columns = [f"{b}b-T" for b in TRUNCS] + [f"INC(2^-{b})" for b in BOUNDS]
    print_header("Fig 14(a): average compression ratio")
    print_row("model", *columns, width=12)
    for name, row in results.items():
        print_row(name, *[f"{row[c]:.2f}" for c in columns], width=12)

    for name, row in results.items():
        # Truncation tops out at 4x; the codec beats it at every bound
        # and approaches ~15x at 2^-6 on real traces (paper: "close to
        # 15x").  Shell mixtures are calibrated to the 2^-10 rows of
        # Table III (each paper bound was a separate training run), so
        # their relaxed-bound ratios are held to a looser floor.
        assert row["INC(2^-10)"] > row["24b-T"]
        assert row["INC(2^-6)"] >= row["INC(2^-8)"] >= row["INC(2^-10)"]
        floor = 10.0 if "real" in name else 5.0
        assert row["INC(2^-6)"] > floor
        assert row["INC(2^-6)"] <= 16.0


def test_fig14b_relative_accuracy(benchmark):
    def run():
        ds = hdc_dataset(train_size=600, test_size=150, seed=0)

        def train(hook):
            net = build_hdc(seed=0)
            opt = SGD(LRSchedule(0.05), momentum=0.9, weight_decay=5e-5)
            trainer = LocalTrainer(net, opt, ds, batch_size=25, seed=0)
            for iteration in range(120):
                _, grad = trainer.local_gradient()
                trainer.apply_gradient(hook(grad))
            return trainer.evaluate()[0]

        results = {"Base": train(lambda g: g)}
        for bits in TRUNCS:
            results[f"{bits}b-T"] = train(lambda g, b=bits: truncate_lsbs(g, b))
        for b in BOUNDS:
            bound = ErrorBound(b)
            results[f"INC(2^-{b})"] = train(
                lambda g, bd=bound: roundtrip(g, bd)
            )
        return results

    results = run_once(benchmark, run)
    base = results["Base"]
    print_header("Fig 14(b): relative top-1 accuracy after equal epochs (HDC)")
    print_row("scheme", "top-1", "relative")
    for name, acc in results.items():
        print_row(name, f"{acc:.3f}", f"{acc / base:.3f}")

    # The codec at every bound stays within a couple of points of
    # lossless training (paper: <2% absolute for the same epochs).
    for b in BOUNDS:
        assert results[f"INC(2^-{b})"] > base - 0.08
    # Moderate truncation is fine for simple nets, but the codec at its
    # most aggressive setting is at least as good as 24-bit truncation.
    assert results["INC(2^-6)"] >= results["24b-T"] - 0.02
