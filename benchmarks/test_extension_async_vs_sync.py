"""Extension bench: asynchronous parameter server vs the synchronous pair.

Sec. IX positions INCEPTIONN against HogWild!/DistBelief/SSP-style
asynchrony.  This bench puts them on the same simulated cluster with
straggling workers (jittered compute) and reports wall-clock, accuracy
and observed staleness.
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.distributed import ComputeProfile, train_async_ps, train_distributed
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.transport import ClusterConfig

ITERS = 25
JITTER = 0.8
PROFILE = ComputeProfile(forward_s=2e-3, backward_s=6e-3, update_s=1e-3)


def _dataset():
    return hdc_dataset(train_size=600, test_size=150, seed=0)


def _sync(algorithm):
    num_nodes = 5 if algorithm == "wa" else 4
    return train_distributed(
        algorithm=algorithm,
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.01), momentum=0.9),
        dataset=_dataset(),
        num_workers=4,
        iterations=ITERS,
        batch_size=16,
        cluster=ClusterConfig(num_nodes=num_nodes),
        profile=PROFILE,
    )


def _async(max_staleness=None):
    return train_async_ps(
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.01), momentum=0.9),
        dataset=_dataset(),
        num_workers=4,
        iterations_per_worker=ITERS,
        batch_size=16,
        cluster=ClusterConfig(num_nodes=5),
        profile=PROFILE,
        compute_jitter=JITTER,
        max_staleness=max_staleness,
    )


@pytest.fixture(scope="module")
def runs():
    return {
        "sync WA": _sync("wa"),
        "sync INC (ring)": _sync("ring"),
        "async PS": _async(None),
        "async PS (SSP s=2)": _async(2),
    }


def test_async_vs_sync(benchmark, runs):
    results = run_once(benchmark, lambda: runs)
    print_header("Extension: async parameter server vs synchronous systems")
    print_row("system", "top-1", "sim time (s)", "staleness")
    for name, run in results.items():
        staleness = (
            f"{run.mean_staleness:.2f}" if hasattr(run, "mean_staleness") else "-"
        )
        print_row(
            name,
            f"{run.final_top1:.3f}",
            f"{run.virtual_time_s:.3f}",
            staleness,
        )


def test_everyone_learns(runs):
    for name, run in runs.items():
        assert run.final_top1 > 0.5, name


def test_async_tolerates_stragglers(runs):
    # The synchronous WA pays for the slowest worker every iteration;
    # async does not.
    assert runs["async PS"].virtual_time_s <= runs["sync WA"].virtual_time_s * 1.2


def test_ssp_bound_respected(runs):
    ssp = runs["async PS (SSP s=2)"]
    # Server-observed staleness can exceed the progress gap slightly
    # (messages in flight), but must stay in the same regime.
    assert ssp.max_observed_staleness <= 2 + 4  # bound + workers in flight


def test_ring_still_wins_on_throughput(runs):
    # INCEPTIONN's answer to asynchrony: make the synchronous exchange
    # cheap instead of hiding it — the ring beats async here because
    # its communication is balanced, not serialized at a server.
    assert (
        runs["sync INC (ring)"].virtual_time_s
        < runs["async PS"].virtual_time_s * 1.5
    )
