"""Table I: training hyper-parameters of the benchmark DNNs."""

from conftest import print_header, print_row, run_once
from repro.dnn import PAPER_MODELS

TABLE1_MODELS = ("AlexNet", "HDC", "ResNet-50", "VGG-16")


def test_table1_hyperparameters(benchmark):
    rows = run_once(
        benchmark, lambda: {m: PAPER_MODELS[m].hyper for m in TABLE1_MODELS}
    )
    print_header("Table I: hyper-parameters")
    print_row("parameter", *TABLE1_MODELS)
    print_row("batch/node", *[str(rows[m].per_node_batch) for m in TABLE1_MODELS])
    print_row("LR", *[f"{rows[m].learning_rate:g}" for m in TABLE1_MODELS])
    print_row("LR reduction", *[f"{rows[m].lr_reduction:g}" for m in TABLE1_MODELS])
    print_row(
        "LR period",
        *[str(rows[m].lr_reduction_every) for m in TABLE1_MODELS],
    )
    print_row("momentum", *[f"{rows[m].momentum:g}" for m in TABLE1_MODELS])
    print_row(
        "weight decay", *[f"{rows[m].weight_decay:g}" for m in TABLE1_MODELS]
    )
    print_row(
        "iterations", *[str(rows[m].training_iterations) for m in TABLE1_MODELS]
    )

    # Paper values, verbatim.
    assert [rows[m].per_node_batch for m in TABLE1_MODELS] == [64, 25, 16, 64]
    assert [rows[m].learning_rate for m in TABLE1_MODELS] == [0.01, 0.1, 0.1, 0.01]
    assert [rows[m].lr_reduction for m in TABLE1_MODELS] == [10, 5, 10, 10]
    assert [rows[m].lr_reduction_every for m in TABLE1_MODELS] == [
        100_000, 2_000, 200_000, 100_000,
    ]
    assert all(rows[m].momentum == 0.9 for m in TABLE1_MODELS)
    assert [rows[m].weight_decay for m in TABLE1_MODELS] == [
        0.00005, 0.00005, 0.0001, 0.00005,
    ]
    assert [rows[m].training_iterations for m in TABLE1_MODELS] == [
        320_000, 10_000, 600_000, 370_000,
    ]


def test_table1_optimizers_constructible(benchmark):
    def run():
        return {m: PAPER_MODELS[m].hyper.make_optimizer() for m in TABLE1_MODELS}

    optimizers = run_once(benchmark, run)
    for m in TABLE1_MODELS:
        assert optimizers[m].lr == PAPER_MODELS[m].hyper.learning_rate
