"""Shared fixtures and report helpers for the paper-reproduction benches.

Every file in this directory regenerates one table or figure of the
INCEPTIONN paper (plus ablations).  Benches print their rows next to
the paper's reported values and assert the qualitative *shape* (who
wins, by roughly what factor) rather than absolute numbers — our
substrate is a simulator, not the authors' testbed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn import (
    LRSchedule,
    SGD,
    build_hdc,
    build_mini_cnn,
    capture_gradient_trace,
    cnn_dataset,
    hdc_dataset,
)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def print_row(label: str, *columns: str, width: int = 14) -> None:
    print(f"{label:<24}" + "".join(f"{c:>{width}}" for c in columns))


@pytest.fixture(scope="session")
def hdc_gradient_trace():
    """Gradient snapshots from a real HDC training run (early/mid/final)."""
    ds = hdc_dataset(train_size=800, test_size=100, seed=0)
    net = build_hdc(seed=0)
    opt = SGD(LRSchedule(0.05), momentum=0.9, weight_decay=5e-5)
    iterations = 120
    return capture_gradient_trace(
        net,
        opt,
        ds,
        batch_size=25,
        iterations=iterations,
        capture_at=[1, iterations // 2, iterations - 1],
        seed=0,
    )


@pytest.fixture(scope="session")
def cnn_gradient_trace():
    """Gradient snapshots from the convolutional AlexNet proxy."""
    ds = cnn_dataset(train_size=400, test_size=80, seed=0)
    net = build_mini_cnn(seed=0)
    opt = SGD(LRSchedule(0.05), momentum=0.9, weight_decay=5e-5)
    iterations = 60
    return capture_gradient_trace(
        net,
        opt,
        ds,
        batch_size=32,
        iterations=iterations,
        capture_at=[1, iterations // 2, iterations - 1],
        seed=0,
    )


@pytest.fixture(scope="session")
def shell_gradients():
    """Synthetic gradient vectors for the paper-scale shell models."""
    from repro.dnn import PAPER_MODELS

    rng = np.random.default_rng(42)
    return {
        name: spec.synthetic_gradients(rng, size=1 << 18)
        for name, spec in PAPER_MODELS.items()
    }


def run_once(benchmark, fn):
    """Benchmark an expensive experiment exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
