"""Table III: bitwidth distribution of compressed gradients.

For each model and error bound, the fraction of values landing in the
2/10/18/34-bit encoding classes.  Structural paper facts checked:
most values compress to the 2-bit (tag-only) class, the 18-bit class
vanishes at the relaxed 2^-6 bound, and 34-bit codes are negligible.
"""

import numpy as np
import pytest

from conftest import print_header, print_row, run_once
from repro.core import ErrorBound, bitwidth_distribution

BOUNDS = (10, 8, 6)

#: Table III rows for reference printing (paper values, %).
PAPER_TABLE3 = {
    ("AlexNet", 10): (74.9, 3.9, 21.1, 0.1),
    ("AlexNet", 8): (82.5, 14.8, 2.6, 0.1),
    ("AlexNet", 6): (93.0, 7.0, 0.0, 0.1),
    ("HDC", 10): (92.0, 6.5, 1.5, 0.0),
    ("HDC", 8): (95.7, 3.4, 0.9, 0.0),
    ("HDC", 6): (98.1, 1.6, 0.4, 0.0),
    ("ResNet-50", 10): (81.6, 17.9, 0.5, 0.0),
    ("ResNet-50", 8): (92.3, 7.7, 0.1, 0.0),
    ("ResNet-50", 6): (97.6, 2.4, 0.0, 0.0),
    ("VGG-16", 10): (94.2, 0.9, 4.9, 0.0),
    ("VGG-16", 8): (96.2, 3.8, 0.0, 0.0),
    ("VGG-16", 6): (97.3, 2.7, 0.0, 0.0),
}


@pytest.fixture(scope="module")
def distributions(request):
    hdc = request.getfixturevalue("hdc_gradient_trace")
    cnn = request.getfixturevalue("cnn_gradient_trace")
    shells = request.getfixturevalue("shell_gradients")
    sources = {
        "HDC": np.concatenate(list(hdc.values())),
        "AlexNet": shells["AlexNet"],
        "AlexNet proxy": np.concatenate(list(cnn.values())),
        "ResNet-50": shells["ResNet-50"],
        "VGG-16": shells["VGG-16"],
    }
    return {
        (name, b): bitwidth_distribution(grads, ErrorBound(b))
        for name, grads in sources.items()
        for b in BOUNDS
    }


def test_table3_bitwidth_distribution(benchmark, distributions):
    results = run_once(benchmark, lambda: distributions)
    print_header("Table III: bitwidth distribution of compressed gradients (%)")
    print_row("model / bound", "2-bit", "10-bit", "18-bit", "34-bit")
    for (name, b), dist in sorted(results.items()):
        row = dist.as_row
        print_row(
            f"{name} 2^-{b}",
            *[f"{100 * row[k]:.1f}" for k in ("2-bit", "10-bit", "18-bit", "34-bit")],
        )
        paper = PAPER_TABLE3.get((name, b))
        if paper:
            print_row("  (paper)", *[f"{v:.1f}" for v in paper])


@pytest.mark.parametrize("name", ["HDC", "AlexNet", "ResNet-50", "VGG-16"])
def test_table3_two_bit_class_dominates(distributions, name):
    for b in BOUNDS:
        dist = distributions[(name, b)]
        assert dist.as_row["2-bit"] > 0.5


@pytest.mark.parametrize("name", ["HDC", "AlexNet", "ResNet-50", "VGG-16"])
def test_table3_relaxed_bound_grows_zero_class(distributions, name):
    fractions = [distributions[(name, b)].as_row["2-bit"] for b in BOUNDS]
    assert fractions[0] <= fractions[1] <= fractions[2]


@pytest.mark.parametrize("name", ["HDC", "AlexNet", "ResNet-50", "VGG-16"])
def test_table3_18bit_class_vanishes_at_relaxed_bound(distributions, name):
    # At 2^-6 the BIT8 class covers all of [2^-6, 1): 18-bit codes go to
    # zero exactly as the paper reports.
    assert distributions[(name, 6)].as_row["18-bit"] == 0.0


def test_table3_34bit_codes_negligible(distributions):
    for dist in distributions.values():
        assert dist.as_row["34-bit"] < 0.01


def test_table3_real_trace_matches_paper_magnitudes(distributions):
    """HDC is trained for real here; its 2-bit fraction should land in
    the paper's 92-98% band (our synthetic-task gradients are somewhat
    less sparse early in training, so the floor is relaxed to 60%)."""
    for b in BOUNDS:
        frac = distributions[("HDC", b)].as_row["2-bit"]
        assert 0.60 < frac <= 1.0
