"""Fig 12: training time of WA / WA+C / INC / INC+C (same iterations).

Paper findings reproduced here:
* INC alone trains 31-52% faster than WA (no compression anywhere);
* WA+C only compresses the gradient leg (~30% less communication);
* INC+C compresses both legs of every hop: 2.2-3.1x overall speedup.

Paper-scale rows use the calibrated estimator; a functional end-to-end
HDC run cross-checks the ordering with *real* training.
"""

import pytest

from conftest import print_header, print_row, run_once
from repro.distributed import train_distributed
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.perfmodel import CONFIGURATIONS, compute_profile_for, fig12_estimates
from repro.transport import ClusterConfig

MODELS = ("AlexNet", "HDC", "ResNet-50", "VGG-16")

#: Fig 12's reported reduction of total training time INC vs WA.
PAPER_INC_REDUCTION = {
    "AlexNet": 0.52, "HDC": 0.38, "ResNet-50": 0.49, "VGG-16": 0.31,
}


@pytest.fixture(scope="module")
def estimates():
    return {m: fig12_estimates(m) for m in MODELS}


def test_fig12_paper_scale(benchmark, estimates):
    results = run_once(benchmark, lambda: estimates)
    print_header("Fig 12: normalized training time (same iterations)")
    print_row("model", *CONFIGURATIONS, "paper INC+C")
    paper_incc = {"AlexNet": 1 / 3.1, "HDC": 1 / 2.7, "ResNet-50": 1 / 3.0,
                  "VGG-16": 1 / 2.2}
    for model in MODELS:
        est = results[model]
        base = est["WA"].iteration_s
        print_row(
            model,
            *[f"{est[c].iteration_s / base:.2f}" for c in CONFIGURATIONS],
            f"~{paper_incc[model]:.2f}",
        )
    for model in MODELS:
        est = results[model]
        base = est["WA"].iteration_s
        # Ordering: WA > WA+C > INC > INC+C for comm-bound models.
        assert est["WA+C"].iteration_s < base
        assert est["INC"].iteration_s < est["WA+C"].iteration_s
        assert est["INC+C"].iteration_s < est["INC"].iteration_s


@pytest.mark.parametrize("model", MODELS)
def test_fig12_inc_reduction_band(estimates, model):
    est = estimates[model]
    reduction = 1 - est["INC"].iteration_s / est["WA"].iteration_s
    # Paper: 31-52% shorter without compression; allow a generous band.
    assert PAPER_INC_REDUCTION[model] - 0.25 < reduction < PAPER_INC_REDUCTION[model] + 0.25


@pytest.mark.parametrize("model", ["AlexNet", "ResNet-50"])
def test_fig12_full_system_speedup_band(estimates, model):
    est = estimates[model]
    speedup = est["WA"].iteration_s / est["INC+C"].iteration_s
    assert 2.0 < speedup < 4.5  # paper: 2.2-3.1x


def test_fig12_functional_cross_check(benchmark):
    """Real HDC training through the simulated cluster: same ordering."""

    def run():
        times = {}
        profile = compute_profile_for("HDC")
        for conf in CONFIGURATIONS:
            algorithm = "wa" if conf.startswith("WA") else "ring"
            compressed = conf.endswith("+C")
            num_nodes = 5 if algorithm == "wa" else 4
            result = train_distributed(
                algorithm=algorithm,
                build_net=lambda s: build_hdc(seed=s),
                make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
                dataset=hdc_dataset(train_size=400, test_size=100, seed=0),
                num_workers=4,
                iterations=8,
                batch_size=25,
                cluster=ClusterConfig(num_nodes=num_nodes, compression=compressed),
                profile=profile,
                compress_gradients=compressed,
            )
            times[conf] = result.virtual_time_s
        return times

    times = run_once(benchmark, run)
    print_header("Fig 12 (functional cross-check, real HDC training)")
    base = times["WA"]
    print_row("config", *CONFIGURATIONS)
    print_row("norm time", *[f"{times[c] / base:.2f}" for c in CONFIGURATIONS])
    assert times["INC"] < times["WA"]
    assert times["INC+C"] < times["INC"]
    assert times["WA+C"] <= times["WA"]
