"""CLI smoke and behaviour tests."""

import numpy as np
import pytest

from repro.cli import main


def _gradients(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * 0.02).astype(np.float32)


def test_compress_decompress_roundtrip(tmp_path, capsys):
    src = tmp_path / "grads.npy"
    np.save(src, _gradients())
    packed = tmp_path / "grads.incgrad"
    out = tmp_path / "restored.npy"

    assert main(["compress", str(src), str(packed), "--bound", "10"]) == 0
    assert "x)" in capsys.readouterr().out
    assert main(["decompress", str(packed), str(out)]) == 0
    restored = np.load(out)
    assert np.max(np.abs(restored - _gradients())) < 2**-10


def test_compress_raw_float32(tmp_path):
    src = tmp_path / "grads.f32"
    src.write_bytes(_gradients().tobytes())
    packed = tmp_path / "grads.incgrad"
    assert main(["compress", str(src), str(packed)]) == 0
    assert packed.stat().st_size < src.stat().st_size


def test_compress_misaligned_raw_rejected(tmp_path):
    src = tmp_path / "bad.f32"
    src.write_bytes(b"\x00" * 7)
    with pytest.raises(SystemExit):
        main(["compress", str(src), str(tmp_path / "x.incgrad")])


def test_stats_reports_all_bounds(tmp_path, capsys):
    src = tmp_path / "grads.npy"
    np.save(src, _gradients())
    assert main(["stats", str(src)]) == 0
    out = capsys.readouterr().out
    for marker in ("2^-10", "2^-8", "2^-6", "ratio"):
        assert marker in out


def test_simulate_prints_times(capsys):
    assert main(
        ["simulate", "--model", "HDC", "--configuration", "INC+C", "--workers", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "iteration" in out and "communication" in out


def test_train_smoke(capsys):
    assert main(
        ["train", "--algorithm", "ring", "--iterations", "5", "--workers", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "top-1" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_exchange_with_trace_writes_valid_file(tmp_path, capsys):
    from repro.obs import load_trace

    out = tmp_path / "trace.json"
    chrome = tmp_path / "chrome.json"
    assert main([
        "exchange", "--workers", "4", "--iterations", "1",
        "--mbytes", "1", "--trace", str(out), "--trace-chrome", str(chrome),
    ]) == 0
    doc = load_trace(out)  # load_trace validates
    assert doc["meta"]["command"] == "exchange"
    assert doc["meta"]["workers"] == 4
    assert doc["events"]
    import json

    assert json.loads(chrome.read_text())["traceEvents"]


def test_train_with_trace_writes_valid_file(tmp_path, capsys):
    from repro.obs import load_trace

    out = tmp_path / "trace.json"
    assert main([
        "train", "--workers", "4", "--compress", "--iterations", "2",
        "--trace", str(out),
    ]) == 0
    doc = load_trace(out)
    assert doc["meta"]["command"] == "train"
    assert doc["meta"]["codec"] == "inceptionn"
    # Compressed run: every traced message is on the compression ToS.
    sends = [e for e in doc["events"] if e["name"] == "msg.send"]
    assert sends and all(e["args"]["compressed"] for e in sends)


def test_trace_run_validate_summary_chrome(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main([
        "trace", "run", str(out), "--workers", "4", "--mbytes", "1",
        "--compress",
    ]) == 0
    assert main(["trace", "validate", str(out)]) == 0
    assert "valid repro.trace v1" in capsys.readouterr().out
    assert main(["trace", "summary", str(out)]) == 0
    summary = capsys.readouterr().out
    assert "msg.send" in summary and "counters:" in summary
    chrome = tmp_path / "chrome.json"
    assert main(["trace", "chrome", str(out), str(chrome)]) == 0
    import json

    assert json.loads(chrome.read_text())["traceEvents"]


def test_trace_validate_rejects_corrupt_file(tmp_path, capsys):
    import json

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "repro.trace", "version": 1}))
    assert main(["trace", "validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_trace_schema_prints_json(capsys):
    import json

    assert main(["trace", "schema"]) == 0
    schema = json.loads(capsys.readouterr().out)
    assert schema["title"].startswith("repro.trace")


def test_strategies_lists_the_registry(capsys):
    assert main(["strategies"]) == 0
    out = capsys.readouterr().out
    for name in ("ring", "wa", "async_ps", "hierarchy", "local_sgd",
                 "stale_async"):
        assert name in out
    # Server-backed strategies advertise their extra node.
    assert "4+1" in out


def test_train_strategy_local_sgd(capsys):
    assert main([
        "train", "--strategy", "local_sgd", "--sync-period", "2",
        "--iterations", "4", "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert out.startswith("local_sgd")
    assert "2 sync rounds" in out


def test_train_strategy_stale_async(capsys):
    assert main([
        "train", "--strategy", "stale_async", "--staleness", "1",
        "--iterations", "3", "--workers", "2", "--jitter", "0.3",
    ]) == 0
    out = capsys.readouterr().out
    assert out.startswith("stale_async")
    assert "mean staleness" in out


def test_train_unknown_strategy_rejected():
    with pytest.raises(SystemExit, match="unknown strategy"):
        main(["train", "--strategy", "bogus", "--iterations", "2"])


def test_train_legacy_algorithm_alias_still_works(capsys):
    assert main([
        "train", "--algorithm", "wa", "--iterations", "3", "--workers", "2",
    ]) == 0
    assert capsys.readouterr().out.startswith("wa")


def test_train_lossy_run_defaults_to_retransmission(capsys):
    # --loss-rate without an explicit --retransmit must imply the
    # default policy: a synchronous exchange on a dropping fabric
    # starves without retransmission.
    assert main([
        "train", "--strategy", "ring", "--iterations", "2", "--workers", "2",
        "--loss-rate", "0.01",
    ]) == 0
    assert "top-1" in capsys.readouterr().out
