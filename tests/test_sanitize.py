"""The runtime determinism sanitizer: replay check, injected races,
and clean passes over every registered strategy."""

import json

import pytest

from repro.network import SeededTieBreak, Simulation
from repro.obs import Tracer, diff_traces, trace_fingerprint
from repro.sanitize import (
    Scenario,
    ScenarioOutcome,
    StrategyScenario,
    outcome_fingerprint,
    sanitize,
)


class RacyScenario(Scenario):
    """Deliberate equal-timestamp race: outcome = callback arrival order.

    Several processes append their id at the same simulated instant;
    the 'result' is that order.  FIFO replays are identical, but the
    order is pure event-queue accident — a seeded tie-break flips it.
    """

    name = "injected-race"

    def __init__(self, actors=6):
        self.actors = actors

    def execute(self, tie_break, tracer):
        sim = Simulation(tie_break=tie_break)
        arrivals = []
        for actor in range(self.actors):
            sim.timeout(1.0).add_callback(
                lambda _, a=actor: arrivals.append(a)
            )
        sim.run()
        for index, actor in enumerate(arrivals):
            tracer.instant("apply", cat="async", ts=1.0, node=actor, seq=index)
        return ScenarioOutcome(
            fingerprint=outcome_fingerprint(tuple(arrivals)),
            details={"order": list(arrivals)},
            events=list(tracer.events),
            virtual_time_s=sim.now,
        )


class OrderInsensitiveScenario(RacyScenario):
    """Same racy arrivals, but the outcome reduces order-insensitively."""

    name = "order-insensitive"

    def execute(self, tie_break, tracer):
        outcome = super().execute(tie_break, Tracer())
        total = sum(outcome.details["order"])
        return ScenarioOutcome(
            fingerprint=outcome_fingerprint(total),
            details={"total": total},
            events=[],
            virtual_time_s=outcome.virtual_time_s,
        )


class TestInjectedRace:
    def test_race_detected(self):
        report = sanitize(RacyScenario())
        assert report.replay_clean  # identical seeds still replay
        assert report.race_detected
        assert report.racy_seed in (1, 2, 3)
        assert not report.passed

    def test_race_diff_points_at_first_divergent_event(self):
        report = sanitize(RacyScenario())
        assert report.race_diff is not None
        assert not report.race_diff.identical
        diverged = report.race_diff.a_event
        assert diverged["name"] == "apply"
        # the diff index is the first reordered apply, not the stream end
        assert report.race_diff.divergence_index < 6

    def test_report_renders_and_serializes(self):
        report = sanitize(RacyScenario())
        text = report.render()
        assert "RACE" in text and "FAIL" in text
        blob = json.dumps(report.to_dict(), default=str)
        assert "injected-race" in blob

    def test_order_insensitive_outcome_passes(self):
        """The same scheduling nondeterminism is fine if the semantic
        outcome does not depend on it."""
        report = sanitize(OrderInsensitiveScenario())
        assert report.passed


class NonReplayableScenario(Scenario):
    """Replay nondeterminism: carries state across execute() calls."""

    name = "impure"

    def __init__(self):
        self.calls = 0

    def execute(self, tie_break, tracer):
        self.calls += 1
        tracer.instant("step", cat="phase", ts=0.0, call=self.calls)
        return ScenarioOutcome(
            fingerprint=outcome_fingerprint(self.calls),
            details={"calls": self.calls},
            events=list(tracer.events),
            virtual_time_s=0.0,
        )


def test_replay_nondeterminism_detected():
    report = sanitize(NonReplayableScenario(), perturb_seeds=(1,))
    assert not report.replay_clean
    assert report.replay_diff is not None
    assert not report.passed
    assert "NONDETERMINISTIC" in report.render()


class TestFingerprints:
    def test_outcome_fingerprint_is_bit_exact_on_arrays(self):
        import numpy as np

        a = np.ones(4, dtype=np.float32)
        b = np.ones(4, dtype=np.float32)
        assert outcome_fingerprint(a) == outcome_fingerprint(b)
        b[0] = np.nextafter(np.float32(1.0), np.float32(2.0))
        assert outcome_fingerprint(a) != outcome_fingerprint(b)
        # dtype and shape are part of the identity
        assert outcome_fingerprint(a) != outcome_fingerprint(
            a.astype(np.float64)
        )
        assert outcome_fingerprint(a) != outcome_fingerprint(a.reshape(2, 2))

    def test_trace_fingerprint_orders_matter(self):
        t1, t2 = Tracer(), Tracer()
        t1.instant("x", cat="phase", ts=0.0)
        t1.instant("y", cat="phase", ts=0.0)
        t2.instant("y", cat="phase", ts=0.0)
        t2.instant("x", cat="phase", ts=0.0)
        assert trace_fingerprint(t1.events) != trace_fingerprint(t2.events)

    def test_diff_traces_prefix_and_context(self):
        t1, t2 = Tracer(), Tracer()
        for i in range(5):
            t1.instant(f"e{i}", cat="phase", ts=float(i))
            t2.instant(f"e{i}", cat="phase", ts=float(i))
        t1.instant("extra", cat="phase", ts=9.0)
        diff = diff_traces(t1.events, t2.events, context=2)
        assert not diff.identical
        assert diff.divergence_index == 5  # strict prefix
        assert diff.b_event is None
        assert len(diff.context_a) <= 5

        same = diff_traces(t1.events, t1.events)
        assert same.identical and same.divergence_index is None

    def test_diff_rejects_negative_context(self):
        with pytest.raises(ValueError):
            diff_traces([], [], context=-1)


# Strategy smokes: every registered schedule must pass the sanitizer.
# Kept tiny (2 workers, 1 iteration) so the whole matrix stays cheap;
# the CI sanitize job runs the larger 4-worker scenarios.
@pytest.mark.parametrize(
    "strategy", ["ring", "wa", "hierarchy", "async_ps", "local_sgd", "stale_async"]
)
def test_strategy_scenarios_pass(strategy):
    report = sanitize(
        StrategyScenario(
            strategy=strategy,
            workers=2,
            iterations=1,
            train_size=60,
            test_size=20,
        ),
        perturb_seeds=(1, 2),
    )
    assert report.replay_clean, report.render()
    assert not report.race_detected, report.render()


def test_lossy_scenario_passes_with_timing_notes_allowed():
    report = sanitize(
        StrategyScenario(
            strategy="ring",
            workers=2,
            iterations=1,
            loss_rate=0.05,
            train_size=60,
            test_size=20,
        ),
        perturb_seeds=(1,),
    )
    assert report.passed, report.render()
    # timing shifts, if any, are informational — never a failure
    for shift in report.timing_shifts:
        assert report.passed
