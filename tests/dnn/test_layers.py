"""Layer tests including numerical gradient checks."""

import numpy as np
import pytest

from repro.dnn import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU


def _numeric_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def _check_input_grad(layer, x, atol=1e-2):
    """Compare backward() against numeric input gradient of sum(output)."""
    out = layer.forward(x.copy(), training=True)
    analytic = layer.backward(np.ones_like(out))

    x_var = x.copy()

    def f():
        return float(layer.forward(x_var, training=True).sum())

    # Recompute forward once to restore cache for determinism.
    numeric = _numeric_grad(f, x_var)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestDense:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Dense(5, 3, rng)
        out = layer.forward(np.ones((4, 5), dtype=np.float32))
        assert out.shape == (4, 3)

    def test_parameter_gradients(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        analytic_w = layer.grads["W"].copy()

        def loss():
            return float(layer.forward(x).sum())

        numeric_w = _numeric_grad(loss, layer.params["W"])
        np.testing.assert_allclose(analytic_w, numeric_w, atol=1e-2)
        np.testing.assert_allclose(
            layer.grads["b"], np.full(3, 2.0), atol=1e-5
        )

    def test_input_gradient(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 3, rng)
        _check_input_grad(layer, rng.standard_normal((2, 4)).astype(np.float32))

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2), dtype=np.float32))


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(layer.forward(x), [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]], dtype=np.float32)
        layer.forward(x)
        grad = layer.backward(np.array([[5.0, 5.0]], dtype=np.float32))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((3, 3), dtype=np.float32)
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_preserves_expectation(self):
        layer = Dropout(0.4, np.random.default_rng(0))
        x = np.ones((200, 200), dtype=np.float32)
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, np.random.default_rng(1))
        x = np.ones((10, 10), dtype=np.float32)
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, out)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestConv2D:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        layer = Conv2D(3, 8, kernel_size=3, rng=rng, padding=1)
        out = layer.forward(np.zeros((2, 3, 8, 8), dtype=np.float32))
        assert out.shape == (2, 8, 8, 8)

    def test_stride_and_no_padding(self):
        rng = np.random.default_rng(0)
        layer = Conv2D(1, 2, kernel_size=3, rng=rng, stride=2)
        out = layer.forward(np.zeros((1, 1, 7, 7), dtype=np.float32))
        assert out.shape == (1, 2, 3, 3)

    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(3)
        layer = Conv2D(2, 1, kernel_size=2, rng=rng)
        x = rng.standard_normal((1, 2, 3, 3)).astype(np.float32)
        out = layer.forward(x)
        w, b = layer.params["W"], layer.params["b"]
        expected = np.zeros((1, 1, 2, 2), dtype=np.float32)
        for i in range(2):
            for j in range(2):
                patch = x[0, :, i : i + 2, j : j + 2]
                expected[0, 0, i, j] = (patch * w[0]).sum() + b[0]
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_input_gradient(self):
        rng = np.random.default_rng(4)
        layer = Conv2D(2, 3, kernel_size=3, rng=rng, padding=1)
        _check_input_grad(
            layer, rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        )

    def test_weight_gradient(self):
        rng = np.random.default_rng(5)
        layer = Conv2D(1, 1, kernel_size=2, rng=rng)
        x = rng.standard_normal((2, 1, 3, 3)).astype(np.float32)
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        analytic = layer.grads["W"].copy()

        def loss():
            return float(layer.forward(x).sum())

        numeric = _numeric_grad(loss, layer.params["W"])
        np.testing.assert_allclose(analytic, numeric, atol=1e-2)

    def test_invalid_geometry(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel_size=0, rng=rng)
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel_size=3, rng=rng, stride=0)


class TestMaxPool2D:
    def test_forward(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_max(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        assert grad[0, 0, 1, 1] == 1.0  # position of 5
        assert grad[0, 0, 0, 0] == 0.0

    def test_ties_split_gradient(self):
        layer = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.sum() == pytest.approx(1.0)

    def test_indivisible_size_rejected(self):
        layer = MaxPool2D(2)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 5, 4), dtype=np.float32))
