"""Loss and optimizer tests."""

import numpy as np
import pytest

from repro.dnn import LRSchedule, SGD, SoftmaxCrossEntropy, build_hdc


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32)
        labels = np.array([0, 1])
        assert loss.forward(logits, labels) < 1e-4

    def test_uniform_prediction_log_c(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 10), dtype=np.float32)
        labels = np.zeros(4, dtype=np.int64)
        assert loss.forward(logits, labels) == pytest.approx(np.log(10), rel=1e-4)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((3, 5)).astype(np.float32)
        labels = np.array([1, 3, 0])
        loss = SoftmaxCrossEntropy()
        loss.forward(logits, labels)
        analytic = loss.backward()

        eps = 1e-3
        numeric = np.zeros_like(logits, dtype=np.float64)
        probe = SoftmaxCrossEntropy()
        for i in range(3):
            for j in range(5):
                logits[i, j] += eps
                up = probe.forward(logits, labels)
                logits[i, j] -= 2 * eps
                down = probe.forward(logits, labels)
                logits[i, j] += eps
                numeric[i, j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-3)

    def test_shape_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros(3, dtype=np.float32), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((3, 2), dtype=np.float32), np.zeros(2, dtype=int))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestLRSchedule:
    def test_constant_without_reduction(self):
        sched = LRSchedule(base_lr=0.1)
        assert sched.lr_at(0) == sched.lr_at(10_000) == 0.1

    def test_step_reduction(self):
        # Table I style: divide by 10 every 100k iterations.
        sched = LRSchedule(base_lr=0.01, factor=10, every=100_000)
        assert sched.lr_at(0) == 0.01
        assert sched.lr_at(99_999) == 0.01
        assert sched.lr_at(100_000) == pytest.approx(0.001)
        assert sched.lr_at(200_000) == pytest.approx(0.0001)

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            LRSchedule(0.1).lr_at(-1)


class TestSGD:
    def _tiny_net(self):
        from repro.dnn import Dense, Sequential

        rng = np.random.default_rng(0)
        return Sequential([Dense(3, 2, rng)])

    def test_plain_sgd_step(self):
        net = self._tiny_net()
        opt = SGD(LRSchedule(0.5), momentum=0.0)
        before = net.parameter_vector()
        grad = np.ones(net.num_parameters, dtype=np.float32)
        opt.step_with_vector(net, grad)
        after = net.parameter_vector()
        np.testing.assert_allclose(after, before - 0.5, rtol=1e-5)

    def test_momentum_accelerates(self):
        net_plain, net_mom = self._tiny_net(), self._tiny_net()
        opt_plain = SGD(LRSchedule(0.1), momentum=0.0)
        opt_mom = SGD(LRSchedule(0.1), momentum=0.9)
        grad = np.ones(net_plain.num_parameters, dtype=np.float32)
        for _ in range(3):
            opt_plain.step_with_vector(net_plain, grad)
            opt_mom.step_with_vector(net_mom, grad)
        moved_plain = np.abs(
            net_plain.parameter_vector() - self._tiny_net().parameter_vector()
        ).sum()
        moved_mom = np.abs(
            net_mom.parameter_vector() - self._tiny_net().parameter_vector()
        ).sum()
        assert moved_mom > moved_plain

    def test_weight_decay_shrinks_weights(self):
        net = self._tiny_net()
        opt = SGD(LRSchedule(0.1), momentum=0.0, weight_decay=0.1)
        zero_grad = np.zeros(net.num_parameters, dtype=np.float32)
        before = net.parameter_vector()
        opt.step_with_vector(net, zero_grad)
        after = net.parameter_vector()
        assert np.abs(after).sum() < np.abs(before).sum()

    def test_iteration_counter_drives_schedule(self):
        net = self._tiny_net()
        opt = SGD(LRSchedule(1.0, factor=10, every=2), momentum=0.0)
        grad = np.zeros(net.num_parameters, dtype=np.float32)
        assert opt.lr == 1.0
        opt.step_with_vector(net, grad)
        opt.step_with_vector(net, grad)
        assert opt.lr == pytest.approx(0.1)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(LRSchedule(0.1), momentum=1.0)
        with pytest.raises(ValueError):
            SGD(LRSchedule(0.1), weight_decay=-0.1)

    def test_step_without_gradients_raises(self):
        net = build_hdc(seed=0)
        opt = SGD(LRSchedule(0.1))
        with pytest.raises(RuntimeError):
            opt.step(net)
