"""Dataset and training-loop tests, including end-to-end learnability."""

import numpy as np
import pytest

from repro.dnn import (
    LRSchedule,
    SGD,
    build_hdc,
    build_mini_cnn,
    capture_gradient_trace,
    cnn_dataset,
    hdc_dataset,
    top1_accuracy,
    train_single_node,
)
from repro.dnn.data import synthetic_images


class TestDatasets:
    def test_deterministic_given_seed(self):
        a = hdc_dataset(train_size=100, test_size=20, seed=7)
        b = hdc_dataset(train_size=100, test_size=20, seed=7)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.test_y, b.test_y)

    def test_different_seeds_differ(self):
        a = hdc_dataset(train_size=100, test_size=20, seed=1)
        b = hdc_dataset(train_size=100, test_size=20, seed=2)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_shapes(self):
        flat = hdc_dataset(train_size=50, test_size=10)
        assert flat.train_x.shape == (50, 784)
        images = cnn_dataset(train_size=40, test_size=10)
        assert images.train_x.shape == (40, 3, 16, 16)

    def test_sharding_partitions_train_set(self):
        ds = hdc_dataset(train_size=100, test_size=10)
        shards = [ds.shard(i, 4) for i in range(4)]
        assert sum(s.train_size for s in shards) == 100
        # Shards are disjoint: rebuilding the union recovers every row.
        union = np.concatenate([s.train_x for s in shards])
        assert union.shape == ds.train_x.shape
        # Test set is shared, not sharded.
        np.testing.assert_array_equal(shards[0].test_x, ds.test_x)

    def test_shard_bounds_checked(self):
        ds = hdc_dataset(train_size=10, test_size=5)
        with pytest.raises(ValueError):
            ds.shard(4, 4)

    def test_minibatches_cover_epoch(self):
        ds = hdc_dataset(train_size=100, test_size=10)
        rng = np.random.default_rng(0)
        batches = list(ds.minibatches(32, rng))
        assert sum(len(x) for x, _ in batches) == 100

    def test_sample_batch_shape(self):
        ds = hdc_dataset(train_size=100, test_size=10)
        x, y = ds.sample_batch(25, np.random.default_rng(0))
        assert x.shape == (25, 784) and y.shape == (25,)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            synthetic_images(num_classes=1)
        ds = hdc_dataset(train_size=10, test_size=5)
        with pytest.raises(ValueError):
            list(ds.minibatches(0, np.random.default_rng(0)))


class TestTraining:
    def test_hdc_learns_synthetic_digits(self):
        ds = hdc_dataset(train_size=800, test_size=200, seed=0)
        net = build_hdc(seed=0)
        opt = SGD(LRSchedule(0.05), momentum=0.9, weight_decay=5e-5)
        chance = top1_accuracy(net.predict(ds.test_x), ds.test_y)
        result = train_single_node(
            net, opt, ds, batch_size=25, iterations=150, seed=0
        )
        assert result.final_top1 > max(0.5, chance + 0.3)
        assert result.losses[-1] < result.losses[0]

    def test_mini_cnn_learns(self):
        ds = cnn_dataset(train_size=400, test_size=100, seed=0)
        net = build_mini_cnn(seed=0)
        opt = SGD(LRSchedule(0.05), momentum=0.9)
        result = train_single_node(
            net, opt, ds, batch_size=32, iterations=80, seed=0
        )
        assert result.final_top1 > 0.4  # chance is 0.1

    def test_gradient_hook_applied(self):
        ds = hdc_dataset(train_size=100, test_size=20)
        net = build_hdc(seed=1)
        opt = SGD(LRSchedule(0.05))
        seen = []

        def hook(iteration, grad):
            seen.append(iteration)
            return np.zeros_like(grad)  # freeze the model

        before = net.parameter_vector()
        train_single_node(
            net, opt, ds, batch_size=10, iterations=5, gradient_hook=hook
        )
        after = net.parameter_vector()
        assert seen == [0, 1, 2, 3, 4]
        np.testing.assert_array_equal(before, after)  # zero grads, no motion

    def test_eval_every_records_checkpoints(self):
        ds = hdc_dataset(train_size=100, test_size=20)
        net = build_hdc(seed=2)
        opt = SGD(LRSchedule(0.05))
        result = train_single_node(
            net, opt, ds, batch_size=10, iterations=10, eval_every=5
        )
        assert len(result.test_top1) == 2

    def test_capture_gradient_trace(self):
        ds = hdc_dataset(train_size=100, test_size=20)
        net = build_hdc(seed=3)
        opt = SGD(LRSchedule(0.05))
        snaps = capture_gradient_trace(
            net, opt, ds, batch_size=10, iterations=10, capture_at=[0, 5, 9]
        )
        assert set(snaps) == {0, 5, 9}
        assert all(v.size == net.num_parameters for v in snaps.values())

    def test_training_is_deterministic(self):
        def run():
            ds = hdc_dataset(train_size=100, test_size=20, seed=0)
            net = build_hdc(seed=0)
            opt = SGD(LRSchedule(0.05), momentum=0.9)
            train_single_node(net, opt, ds, batch_size=10, iterations=5, seed=0)
            return net.parameter_vector()

        np.testing.assert_array_equal(run(), run())
