"""Sequential container, flat vectors, model zoo tests."""

import numpy as np
import pytest

from repro.dnn import (
    PAPER_MODELS,
    Sequential,
    build_hdc,
    build_mini_cnn,
    build_trainable,
)


class TestSequentialVectors:
    def test_hdc_architecture_matches_paper(self):
        # Five fully-connected layers, hidden width 500 (paper Sec. VII-A).
        # (The paper also states "2.5 MB", which is inconsistent with its
        # own architecture description at fp32 — 784-500x3-10 is ~4.6 MB;
        # the communication experiments use the paper's number via the
        # ModelSpec shell, the trainable net follows the architecture.)
        net = build_hdc()
        dense_layers = [l for l in net.layers if l.params]
        assert len(dense_layers) == 5
        expected = 784 * 500 + 500 + 3 * (500 * 500 + 500) + 500 * 10 + 10
        assert net.num_parameters == expected

    def test_parameter_vector_roundtrip(self):
        net = build_hdc(seed=1)
        vec = net.parameter_vector()
        assert vec.dtype == np.float32
        assert vec.size == net.num_parameters
        net.set_parameter_vector(vec * 2.0)
        np.testing.assert_allclose(net.parameter_vector(), vec * 2.0)

    def test_gradient_vector_roundtrip(self):
        net = build_hdc(seed=2)
        grad = np.random.default_rng(0).standard_normal(
            net.num_parameters
        ).astype(np.float32)
        net.set_gradient_vector(grad)
        np.testing.assert_array_equal(net.gradient_vector(), grad)

    def test_gradient_vector_before_backward_raises(self):
        net = build_hdc(seed=3)
        with pytest.raises(RuntimeError):
            net.gradient_vector()

    def test_wrong_vector_size_rejected(self):
        net = build_hdc(seed=4)
        with pytest.raises(ValueError):
            net.set_parameter_vector(np.zeros(10, dtype=np.float32))

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_loss_and_backward_produce_gradients(self):
        net = build_hdc(seed=5)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 784)).astype(np.float32)
        y = rng.integers(0, 10, 8)
        loss = net.compute_loss(x, y)
        assert loss > 0
        net.backward()
        grad = net.gradient_vector()
        assert grad.shape == (net.num_parameters,)
        assert np.abs(grad).sum() > 0


class TestModelZoo:
    def test_paper_model_sizes(self):
        # Fig 3a's bars.
        assert PAPER_MODELS["AlexNet"].size_mb == 233
        assert PAPER_MODELS["VGG-16"].size_mb == 525
        assert PAPER_MODELS["ResNet-50"].size_mb == 98
        assert PAPER_MODELS["HDC"].size_mb == 2.5

    def test_table1_hyperparameters(self):
        h = PAPER_MODELS["AlexNet"].hyper
        assert h.per_node_batch == 64
        assert h.lr_reduction == 10
        assert h.training_iterations == 320_000
        assert PAPER_MODELS["HDC"].hyper.per_node_batch == 25
        assert PAPER_MODELS["ResNet-50"].hyper.per_node_batch == 16

    def test_synthetic_gradients_look_like_fig5(self):
        spec = PAPER_MODELS["AlexNet"]
        rng = np.random.default_rng(0)
        grads = spec.synthetic_gradients(rng, size=100_000)
        # Tight near-zero peak, essentially everything inside (-1, 1).
        assert np.mean(np.abs(grads) < 0.01) > 0.6
        assert np.mean(np.abs(grads) < 1.0) > 0.99

    def test_synthetic_gradient_default_size(self):
        spec = PAPER_MODELS["HDC"]
        rng = np.random.default_rng(0)
        assert spec.synthetic_gradients(rng).size == spec.num_parameters

    def test_mini_cnn_forward_shape(self):
        net = build_mini_cnn(seed=0)
        x = np.zeros((2, 3, 16, 16), dtype=np.float32)
        assert net.forward(x, training=False).shape == (2, 10)

    def test_build_trainable_dispatch(self):
        assert build_trainable("HDC").num_parameters == build_hdc().num_parameters
        cnn = build_trainable("AlexNet")
        assert cnn.num_parameters == build_mini_cnn().num_parameters
        with pytest.raises(KeyError):
            build_trainable("LeNet-9000")

    def test_make_optimizer_from_hyper(self):
        opt = PAPER_MODELS["HDC"].hyper.make_optimizer()
        assert opt.lr == pytest.approx(0.1)
        assert opt.momentum == 0.9
