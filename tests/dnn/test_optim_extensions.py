"""Adam, warm-up schedule, and checkpointing tests."""

import numpy as np
import pytest

from repro.core import ErrorBound
from repro.dnn import (
    Adam,
    LRSchedule,
    SGD,
    build_hdc,
    hdc_dataset,
    load_checkpoint,
    load_compressed_checkpoint,
    save_checkpoint,
    save_compressed_checkpoint,
    train_single_node,
)


class TestWarmup:
    def test_linear_rampup(self):
        sched = LRSchedule(base_lr=0.1, warmup=10)
        assert sched.lr_at(0) == pytest.approx(0.01)
        assert sched.lr_at(4) == pytest.approx(0.05)
        assert sched.lr_at(9) == pytest.approx(0.1)
        assert sched.lr_at(10) == pytest.approx(0.1)

    def test_warmup_then_steps(self):
        sched = LRSchedule(base_lr=0.1, factor=10, every=100, warmup=10)
        assert sched.lr_at(5) < 0.1
        assert sched.lr_at(50) == pytest.approx(0.1)
        assert sched.lr_at(150) == pytest.approx(0.01)

    def test_no_warmup_by_default(self):
        assert LRSchedule(0.1).lr_at(0) == 0.1


class TestAdam:
    def _net(self):
        from repro.dnn import Dense, Sequential

        return Sequential([Dense(3, 2, np.random.default_rng(0))])

    def test_step_moves_parameters(self):
        net = self._net()
        opt = Adam(LRSchedule(0.01))
        before = net.parameter_vector()
        opt.step_with_vector(net, np.ones(net.num_parameters, dtype=np.float32))
        assert not np.array_equal(net.parameter_vector(), before)

    def test_adaptive_scaling_normalizes_magnitudes(self):
        # After a few identical steps, Adam's update approaches lr
        # regardless of gradient magnitude.
        nets = [self._net(), self._net()]
        opts = [Adam(LRSchedule(0.01)), Adam(LRSchedule(0.01))]
        grads = [
            np.full(nets[0].num_parameters, 1e-4, dtype=np.float32),
            np.full(nets[0].num_parameters, 1e2, dtype=np.float32),
        ]
        moved = []
        for net, opt, grad in zip(nets, opts, grads):
            start = net.parameter_vector()
            for _ in range(10):
                opt.step_with_vector(net, grad)
            moved.append(np.abs(net.parameter_vector() - start).mean())
        assert moved[0] == pytest.approx(moved[1], rel=0.05)

    def test_trains_hdc(self):
        ds = hdc_dataset(train_size=400, test_size=100, seed=0)
        net = build_hdc(seed=0)
        result = train_single_node(
            net, Adam(LRSchedule(0.001)), ds, batch_size=25, iterations=100
        )
        assert result.final_top1 > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(LRSchedule(0.01), beta1=1.0)
        with pytest.raises(ValueError):
            Adam(LRSchedule(0.01), weight_decay=-1)

    def test_step_without_gradients(self):
        net = self._net()
        with pytest.raises(RuntimeError):
            Adam(LRSchedule(0.01)).step(net)


class TestCheckpointing:
    def test_roundtrip(self, tmp_path):
        net = build_hdc(seed=0)
        path = tmp_path / "model.npz"
        save_checkpoint(path, net)
        other = build_hdc(seed=99)
        load_checkpoint(path, other)
        np.testing.assert_array_equal(
            other.parameter_vector(), net.parameter_vector()
        )

    def test_size_mismatch_rejected(self, tmp_path):
        net = build_hdc(seed=0)
        path = tmp_path / "model.npz"
        save_checkpoint(path, net)
        from repro.dnn import build_mini_cnn

        with pytest.raises(ValueError):
            load_checkpoint(path, build_mini_cnn(seed=0))

    def test_compressed_checkpoint_requires_opt_in(self, tmp_path):
        net = build_hdc(seed=1)
        with pytest.raises(ValueError):
            save_compressed_checkpoint(
                tmp_path / "w.incgrad", net, ErrorBound(10)
            )

    def test_compressed_roundtrip_with_opt_in(self, tmp_path):
        net = build_hdc(seed=2)
        path = tmp_path / "w.incgrad"
        written = save_compressed_checkpoint(
            path, net, ErrorBound(10), allow_lossy_weights=True
        )
        assert written < net.nbytes
        other = build_hdc(seed=3)
        load_compressed_checkpoint(path, other)
        err = np.max(
            np.abs(other.parameter_vector() - net.parameter_vector())
        )
        # Weights >= 1 pass through uncompressed; small ones are bounded.
        assert err < 2**-10
