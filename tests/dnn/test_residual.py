"""BatchNorm2D and residual block tests, including gradient checks."""

import numpy as np
import pytest

from repro.dnn import (
    BatchNorm2D,
    LRSchedule,
    ResidualBlock,
    SGD,
    build_mini_resnet,
    cnn_dataset,
    train_single_node,
)


class TestBatchNorm2D:
    def test_normalizes_batch(self):
        bn = BatchNorm2D(3)
        rng = np.random.default_rng(0)
        x = (rng.standard_normal((8, 3, 4, 4)) * 5 + 2).astype(np.float32)
        out = bn.forward(x, training=True)
        assert abs(out.mean()) < 1e-4
        assert out.std() == pytest.approx(1.0, abs=0.01)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2D(2)
        rng = np.random.default_rng(1)
        for _ in range(50):
            bn.forward(
                (rng.standard_normal((16, 2, 4, 4)) * 3 + 1).astype(np.float32),
                training=True,
            )
        x = (rng.standard_normal((4, 2, 4, 4)) * 3 + 1).astype(np.float32)
        out = bn.forward(x, training=False)
        # Running stats approximate the true distribution.
        assert abs(out.mean()) < 0.3

    def test_gamma_beta_affect_output(self):
        bn = BatchNorm2D(1)
        x = np.random.default_rng(2).standard_normal((4, 1, 2, 2)).astype(
            np.float32
        )
        base = bn.forward(x, training=True)
        bn.params["gamma"] = np.array([2.0], dtype=np.float32)
        bn.params["beta"] = np.array([1.0], dtype=np.float32)
        scaled = bn.forward(x, training=True)
        np.testing.assert_allclose(scaled, base * 2 + 1, atol=1e-5)

    def test_input_gradient_matches_numeric(self):
        bn = BatchNorm2D(2)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((3, 2, 2, 2)).astype(np.float32)
        out = bn.forward(x.copy(), training=True)
        analytic = bn.backward(np.ones_like(out))

        eps = 1e-3
        numeric = np.zeros_like(x, dtype=np.float64)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x[idx]
            x[idx] = orig + eps
            up = bn.forward(x, training=True).sum()
            x[idx] = orig - eps
            down = bn.forward(x, training=True).sum()
            x[idx] = orig
            numeric[idx] = (up - down) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(analytic, numeric, atol=5e-2)

    def test_parameter_gradients(self):
        bn = BatchNorm2D(2)
        x = np.random.default_rng(4).standard_normal((4, 2, 3, 3)).astype(
            np.float32
        )
        out = bn.forward(x, training=True)
        bn.backward(np.ones_like(out))
        # d/d beta of sum(out) = number of positions per channel.
        np.testing.assert_allclose(bn.grads["beta"], 4 * 9, rtol=1e-5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchNorm2D(0)
        bn = BatchNorm2D(2)
        with pytest.raises(ValueError):
            bn.forward(np.zeros((2, 2), dtype=np.float32))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            BatchNorm2D(1).backward(np.zeros((1, 1, 1, 1), dtype=np.float32))


class TestResidualBlock:
    def test_identity_skip_shape(self):
        rng = np.random.default_rng(0)
        block = ResidualBlock(8, 8, rng)
        x = rng.standard_normal((2, 8, 4, 4)).astype(np.float32)
        assert block.forward(x).shape == (2, 8, 4, 4)
        assert block.projection is None

    def test_projection_skip_shape(self):
        rng = np.random.default_rng(1)
        block = ResidualBlock(8, 16, rng)
        x = rng.standard_normal((2, 8, 4, 4)).astype(np.float32)
        assert block.forward(x).shape == (2, 16, 4, 4)
        assert block.projection is not None

    def test_backward_produces_all_gradients(self):
        rng = np.random.default_rng(2)
        block = ResidualBlock(4, 8, rng)
        x = rng.standard_normal((2, 4, 4, 4)).astype(np.float32)
        out = block.forward(x)
        grad_in = block.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert set(block.grads) == set(block.params)

    def test_flat_vector_roundtrip_through_composite(self):
        from repro.dnn import Sequential

        rng = np.random.default_rng(3)
        net = Sequential([ResidualBlock(3, 6, rng)])
        vec = net.parameter_vector()
        net.set_parameter_vector(vec * 0.5)
        np.testing.assert_allclose(net.parameter_vector(), vec * 0.5)
        # Scattered parameters must reach the sublayers on next forward.
        x = rng.standard_normal((1, 3, 4, 4)).astype(np.float32)
        out_scaled = net.forward(x, training=False)
        net.set_parameter_vector(vec)
        out_orig = net.forward(x, training=False)
        assert not np.allclose(out_scaled, out_orig)

    def test_skip_connection_matters(self):
        # Gradient flows through the skip even if the main path is dead.
        rng = np.random.default_rng(4)
        block = ResidualBlock(4, 4, rng)
        x = rng.standard_normal((2, 4, 4, 4)).astype(np.float32)
        out = block.forward(x)
        grad_in = block.backward(np.ones_like(out))
        assert np.abs(grad_in).sum() > 0


class TestMiniResNet:
    def test_forward_shape(self):
        net = build_mini_resnet(seed=0)
        x = np.zeros((2, 3, 16, 16), dtype=np.float32)
        assert net.forward(x, training=False).shape == (2, 10)

    def test_learns_synthetic_task(self):
        ds = cnn_dataset(train_size=300, test_size=80, seed=0)
        net = build_mini_resnet(seed=0)
        opt = SGD(LRSchedule(0.02), momentum=0.9)
        result = train_single_node(
            net, opt, ds, batch_size=32, iterations=60, seed=0
        )
        assert result.final_top1 > 0.4  # chance = 0.1
        assert result.losses[-1] < result.losses[0]

    def test_gradient_vector_covers_all_params(self):
        net = build_mini_resnet(seed=1)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 3, 16, 16)).astype(np.float32)
        y = rng.integers(0, 10, 4)
        net.compute_loss(x, y)
        net.backward()
        grad = net.gradient_vector()
        assert grad.size == net.num_parameters
        assert np.isfinite(grad).all()
