"""Report-generation tests."""

import json

import pytest

from repro.report import (
    TIMING_MODELS,
    fig12_report,
    fig13_report,
    fig15_report,
    table2_report,
    table3_report,
)


def test_fig12_report_structure():
    report = fig12_report()
    assert set(report) == set(TIMING_MODELS)
    for rows in report.values():
        assert rows["WA"] == pytest.approx(1.0)
        assert rows["INC+C"] < rows["WA"]


def test_fig13_report_values():
    report = fig13_report()
    for model, row in report.items():
        assert row["speedup"] > 1.5
        assert row["inc_epochs"] >= row["wa_epochs"]


def test_fig15_report_shape():
    report = fig15_report(node_counts=(4, 8))
    for rows in report.values():
        assert rows["WA"][8] > rows["WA"][4]
        assert rows["INC"][8] < rows["WA"][8]


def test_table2_fractions_sum_to_one():
    report = table2_report(iterations=3)
    for fractions in report.values():
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["communicate"] > 0.4


def test_table3_report_classes():
    report = table3_report(sample=1 << 14)
    for model, bounds in report.items():
        for bound, row in bounds.items():
            assert sum(row["classes"].values()) == pytest.approx(1.0)
            assert 1.0 < row["ratio"] <= 16.0


def test_report_is_json_serializable():
    blob = json.dumps(table3_report(sample=1 << 12))
    assert json.loads(blob)
