"""Cross-stack integration tests.

These tie the layers together: gradients produced by real training,
compressed by the *bit-level hardware engines*, segmented into packets,
carried by the simulated network, decompressed on the receive side, and
aggregated by Algorithm 1 — verifying the layers agree wherever they
overlap.
"""

import numpy as np
import pytest

from repro.core import ErrorBound, compress, decompress, inceptionn_profile
from repro.distributed import ring_exchange
from repro.dnn import LRSchedule, SGD, LocalTrainer, build_hdc, hdc_dataset
from repro.hardware import InceptionnNic
from repro.network import TOS_COMPRESS
from repro.transport import ClusterComm, ClusterConfig

BOUND = ErrorBound(10)


@pytest.fixture(scope="module")
def real_gradient():
    """A genuine gradient vector from one HDC training step."""
    ds = hdc_dataset(train_size=200, test_size=50, seed=0)
    net = build_hdc(seed=0)
    trainer = LocalTrainer(
        net, SGD(LRSchedule(0.05), momentum=0.9), ds, batch_size=25, seed=0
    )
    _, grad = trainer.local_gradient()
    return grad


def test_hardware_path_equals_software_path(real_gradient):
    """NIC-engine packet processing reproduces the endpoint codec's
    values exactly: the functional simulation (software codec) and the
    bit-level hardware model agree on every float."""
    grad = real_gradient[:50_000]

    # Software path (what transport endpoints do).
    sw_values = decompress(compress(grad, BOUND))

    # Hardware path: segment -> per-packet engine compress -> wire ->
    # per-packet engine decompress -> reassemble.
    tx_nic = InceptionnNic(0, BOUND)
    rx_nic = InceptionnNic(1, BOUND)
    wire_packets = tx_nic.transmit_message(grad.tobytes(), dst=1, tos=TOS_COMPRESS)
    restored = rx_nic.receive_message(wire_packets)
    hw_values = np.frombuffer(restored, dtype=np.float32)

    np.testing.assert_array_equal(hw_values, sw_values)


def test_wire_bytes_match_between_layers(real_gradient):
    """The byte count the network simulator charges equals what the
    hardware engines actually emit (modulo per-packet group padding)."""
    grad = real_gradient[:14600]  # 10 packets of 1460 B
    sw_compressed = compress(grad, BOUND).compressed_nbytes

    tx_nic = InceptionnNic(0, BOUND)
    wire_packets = tx_nic.transmit_message(grad.tobytes(), dst=1, tos=TOS_COMPRESS)
    hw_bytes = sum(p.payload_nbytes for p in wire_packets)

    # Per-packet compression pads each packet's final group; with 10
    # packets that is at most 10 extra groups' worth of tag bits.
    assert abs(hw_bytes - sw_compressed) <= 10 * 34 // 8 + 10


def test_ring_aggregate_from_training_gradients():
    """Four real trainers' gradients ring-aggregated over the simulated
    cluster equal the direct sum within the accumulated bound."""
    ds = hdc_dataset(train_size=400, test_size=50, seed=0)
    grads = []
    for i in range(4):
        net = build_hdc(seed=0)
        trainer = LocalTrainer(
            net,
            SGD(LRSchedule(0.05), momentum=0.9),
            ds.shard(i, 4),
            batch_size=25,
            seed=i,
        )
        _, g = trainer.local_gradient()
        grads.append(g)

    stream = inceptionn_profile(BOUND)
    comm = ClusterComm(ClusterConfig(num_nodes=4, bound=BOUND, profile=stream))
    results = {}

    def node(i):
        def proc():
            results[i] = yield from ring_exchange(
                comm.endpoints[i], grads[i], 4, stream=stream
            )

        return proc

    for i in range(4):
        comm.sim.process(node(i)())
    elapsed = comm.run()

    exact = np.sum(grads, axis=0)
    for i in range(4):
        assert np.max(np.abs(results[i] - exact)) <= 4 * BOUND.bound
    assert elapsed > 0
    # Compression really engaged on the wire.
    assert all(t.compressed for t in comm.transfers)
    assert sum(t.wire_payload_nbytes for t in comm.transfers) < sum(
        t.nbytes for t in comm.transfers
    )


def test_engine_cycles_consistent_with_throughput(real_gradient):
    """Cycle counts from the engine model match its advertised rate."""
    grad = real_gradient[: 8 * 10_000]
    nic = InceptionnNic(0, BOUND)
    _, stats = nic.compressor.compress(grad.tobytes())
    elapsed = stats.elapsed_s(100e6)
    implied_bps = grad.nbytes / elapsed
    assert implied_bps == pytest.approx(3.2e9, rel=0.01)
