"""CLI/doc consistency: every flag the docs mention exists in the parser.

Drives ``tools/check_cli_docs.py`` — the same checker CI runs — over
the real repo documents, plus unit coverage of its detection logic on
synthetic markdown.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_cli_docs  # noqa: E402  (path-injected tool module)


def _table():
    from repro.cli import build_parser

    return check_cli_docs.collect_options(build_parser())


def test_repo_docs_are_consistent(capsys):
    docs = [REPO_ROOT / name for name in check_cli_docs.DEFAULT_DOCS]
    assert check_cli_docs.main([str(d) for d in docs]) == 0
    out = capsys.readouterr()
    assert "consistent" in out.out


def test_option_table_covers_new_fabric_flags():
    table = _table()
    assert "--topology" in table[("exchange",)]
    assert "--tenants" in table[("exchange",)]
    assert "--prioritize" in table[("exchange",)]
    assert "--tenant-seed" in table[("exchange",)]
    assert "--topology" in table[("sanitize",)]
    assert "--topology" in table[("train",)]


def test_unknown_flag_in_fenced_block_is_caught(tmp_path):
    doc = tmp_path / "DOC.md"
    doc.write_text(
        "Usage:\n\n```\nrepro exchange --no-such-flag 3\n```\n",
        encoding="utf-8",
    )
    errors = check_cli_docs.check_document(doc, _table())
    assert len(errors) == 1
    assert "--no-such-flag" in errors[0]
    assert "repro exchange" in errors[0]


def test_flag_on_wrong_subcommand_is_caught(tmp_path):
    doc = tmp_path / "DOC.md"
    doc.write_text(
        "```\nrepro train --tenants train:4\n```\n", encoding="utf-8"
    )
    errors = check_cli_docs.check_document(doc, _table())
    assert len(errors) == 1
    assert "another subcommand" in errors[0]


def test_valid_command_lines_pass(tmp_path):
    doc = tmp_path / "DOC.md"
    doc.write_text(
        "```\n"
        "repro exchange --workers 6 --topology fat-tree:k=4 \\\n"
        "    --tenants train:4,infer:4 --prioritize\n"
        "repro sanitize --topology fat-tree:k=4\n"
        "```\n",
        encoding="utf-8",
    )
    assert check_cli_docs.check_document(doc, _table()) == []


def test_inline_code_span_flags_validated(tmp_path):
    doc = tmp_path / "DOC.md"
    doc.write_text(
        "Use `--topology` to pick a fabric, but `--warp-speed` is fiction.\n",
        encoding="utf-8",
    )
    errors = check_cli_docs.check_document(doc, _table())
    assert len(errors) == 1
    assert "--warp-speed" in errors[0]
