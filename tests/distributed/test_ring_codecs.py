"""Baseline codecs running end-to-end through the ring exchange.

The acceptance contract of the codec registry: any registered codec can
replace the INCEPTIONN engine on the gradient stream, with
``TransferLog.wire_payload_nbytes`` reflecting the codec's measured
sizes and receivers observing the codec's reconstructions.
"""

import numpy as np
import pytest

from repro.core import profile_for
from repro.distributed import ring_exchange
from repro.transport import ClusterComm, ClusterConfig


def _run_ring(vectors, stream):
    n = len(vectors)
    comm = ClusterComm(ClusterConfig(num_nodes=n, profile=stream))
    results = {}

    def node(i):
        def proc():
            out = yield from ring_exchange(
                comm.endpoints[i], vectors[i], n, stream=stream
            )
            results[i] = out

        return proc

    for i in range(n):
        comm.sim.process(node(i)())
    comm.run()
    return results, comm.transfers


def _vectors(n=4, size=256, seed=7):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal(size) * 0.01).astype(np.float32)
        for _ in range(n)
    ]


def _expected_wire(codec_name, nbytes):
    """Size-deterministic wire formulas of the two baselines under test."""
    size = nbytes // 4
    if codec_name == "truncation":  # 16 surviving bits per value
        return -(-size * 16 // 8)
    if codec_name == "quantization":  # sign + 4 level bits + norm
        return -(-(5 * size + 32) // 8)
    raise AssertionError(codec_name)


@pytest.mark.parametrize("name", ["truncation", "quantization"])
def test_baseline_codec_rides_the_ring(name):
    n = 4
    stream = profile_for(name)
    vectors = _vectors(n=n)
    results, transfers = _run_ring(vectors, stream)

    # Every hop of the exchange traveled on the codec's stream with the
    # codec's measured (here size-deterministic) wire payload.
    assert len(transfers) == n * (2 * n - 2)
    for log in transfers:
        assert log.compressed
        assert log.codec == name
        assert log.wire_payload_nbytes == _expected_wire(name, log.nbytes)
        assert log.wire_payload_nbytes < log.nbytes

    # The aggregate is a lossy sum: each of the ~2N compressing hops may
    # add one declared bound of error to a partial sum.
    expected = np.sum(vectors, axis=0)
    tolerance = 2 * (2 * n) * stream.error_bound(expected)
    for i in range(n):
        assert results[i].shape == expected.shape
        assert float(np.max(np.abs(results[i] - expected))) <= tolerance


@pytest.mark.parametrize("name", ["truncation", "quantization"])
def test_receiver_observes_codec_reconstruction(name):
    stream = profile_for(name)
    comm = ClusterComm(ClusterConfig(num_nodes=2, profile=stream))
    vec = _vectors(n=1, size=128)[0]
    got = {}

    def sender():
        yield comm.endpoints[0].isend(1, vec, profile=stream)

    def receiver():
        got["values"] = yield comm.endpoints[1].recv(0)

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()

    # Both codecs are deterministic (quantization carries a fixed seed),
    # so the delivery must equal the codec's own reconstruction exactly.
    expected = stream.compress(vec)
    np.testing.assert_array_equal(got["values"], expected.values)
    assert not np.array_equal(got["values"], vec)  # genuinely lossy
    assert comm.transfers[0].wire_payload_nbytes == expected.payload_nbytes


def test_identity_codec_delivers_bit_exact():
    stream = profile_for("identity")
    comm = ClusterComm(ClusterConfig(num_nodes=2, profile=stream))
    vec = _vectors(n=1, size=64)[0]
    got = {}

    def sender():
        yield comm.endpoints[0].isend(1, vec, profile=stream)

    def receiver():
        got["values"] = yield comm.endpoints[1].recv(0)

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()

    np.testing.assert_array_equal(got["values"], vec)
    assert comm.transfers[0].wire_payload_nbytes == vec.nbytes
    assert comm.transfers[0].codec == "identity"
