"""Asynchronous parameter-server tests."""

import pytest

from repro.core import inceptionn_profile
from repro.distributed import ComputeProfile, train_async_ps, train_distributed
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.transport import ClusterConfig


def _run_async(iterations=15, num_workers=4, max_staleness=None,
               compute_jitter=0.3, profile=None, compression=False,
               lr=0.02):
    stream = inceptionn_profile() if compression else None
    return train_async_ps(
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(lr), momentum=0.9),
        dataset=hdc_dataset(train_size=400, test_size=100, seed=0),
        num_workers=num_workers,
        iterations_per_worker=iterations,
        batch_size=16,
        cluster=ClusterConfig(
            num_nodes=num_workers + 1, profile=stream
        ),
        profile=profile or ComputeProfile(forward_s=1e-4, backward_s=3e-4),
        stream=stream,
        max_staleness=max_staleness,
        compute_jitter=compute_jitter,
    )


def test_async_training_learns():
    result = _run_async(iterations=30)
    assert result.final_top1 > 0.5
    assert len(result.losses) == 4 * 30


def test_staleness_observed_with_jitter():
    result = _run_async(iterations=20, compute_jitter=0.5)
    assert len(result.staleness) == 4 * 20
    # Asynchrony means some updates see stale weights.
    assert result.max_observed_staleness >= 1


def test_ssp_bound_limits_progress_spread():
    bounded = _run_async(iterations=20, max_staleness=1, compute_jitter=0.5)
    free = _run_async(iterations=20, max_staleness=None, compute_jitter=0.5)
    assert bounded.mean_staleness <= free.mean_staleness + 1.0


def test_compression_works_in_async_mode():
    # Staleness + momentum + compression noise needs a gentler LR than
    # the synchronous runs — the classic async-SGD stability trade-off.
    result = _run_async(iterations=20, compression=True, lr=0.01)
    assert result.final_top1 > 0.4


def test_async_completes_all_updates():
    result = _run_async(iterations=10)
    assert len(result.staleness) == 40  # every gradient reached the server


def test_async_faster_than_sync_with_stragglers():
    """With heavy compute jitter, async avoids waiting for stragglers."""
    profile = ComputeProfile(forward_s=2e-3, backward_s=6e-3)
    async_result = _run_async(
        iterations=10, compute_jitter=0.9, profile=profile
    )
    sync_result = train_distributed(
        algorithm="wa",
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=400, test_size=100, seed=0),
        num_workers=4,
        iterations=10,
        batch_size=16,
        cluster=ClusterConfig(num_nodes=5),
        profile=profile,
    )
    # Equal per-worker iteration counts; async should not be slower.
    assert async_result.virtual_time_s <= sync_result.virtual_time_s * 1.3


def test_validation():
    with pytest.raises(ValueError):
        _run_async(num_workers=1)
    with pytest.raises(ValueError):
        _run_async(iterations=0)


def test_cluster_size_checked():
    with pytest.raises(ValueError):
        train_async_ps(
            build_net=lambda s: build_hdc(seed=s),
            make_optimizer=lambda: SGD(LRSchedule(0.02)),
            dataset=hdc_dataset(train_size=100, test_size=20, seed=0),
            num_workers=4,
            iterations_per_worker=2,
            batch_size=8,
            cluster=ClusterConfig(num_nodes=3),
        )
