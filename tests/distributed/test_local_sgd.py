"""LocalSGD convergence: H=1 degenerates to the sync ring, H>1 trades
communication for drift but still learns."""

import numpy as np

from repro.distributed import (
    ComputeProfile,
    run_strategy,
    train_distributed,
)
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.transport import ClusterConfig

WORKERS = 4
BATCH = 16


def _dataset():
    return hdc_dataset(train_size=400, test_size=100, seed=0)


def _common():
    return dict(
        build_net=lambda s: build_hdc(seed=s),
        # Zero weight decay: decay breaks the momentum linearity that
        # makes H=1 exactly the ring (see the module docstring of
        # repro.distributed.local_sgd).
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=_dataset(),
        num_workers=WORKERS,
        batch_size=BATCH,
        seed=0,
    )


def _local_sgd(iterations, sync_period, **extra):
    common = _common()
    common.update(extra)
    return run_strategy(
        "local_sgd",
        iterations=iterations,
        cluster=ClusterConfig(num_nodes=WORKERS),
        options={"sync_period": sync_period},
        **common,
    )


def test_h1_is_the_synchronous_ring():
    # Summing parameter deltas every iteration == summing gradients:
    # by momentum linearity the trajectories coincide, so the final
    # weights agree to float reordering noise.
    iterations = 10
    ring = train_distributed(
        algorithm="ring",
        iterations=iterations,
        cluster=ClusterConfig(num_nodes=WORKERS),
        **_common(),
    )
    local = _local_sgd(iterations, sync_period=1)
    np.testing.assert_allclose(
        local.final_weights, ring.final_weights, atol=1e-6
    )
    np.testing.assert_allclose(
        local.losses, ring.losses, rtol=1e-6
    )
    assert local.report is not None
    assert local.report.extras["sync_rounds"] == iterations


def test_h4_learns_and_syncs_every_fourth_iteration():
    # Summed deltas scale the effective step by the worker count, and
    # with H local steps between syncs that compounds — scale the local
    # rate down by 1/N to keep the H>1 regime stable (the usual
    # LocalSGD outer/inner rate split).
    iterations = 40
    local = _local_sgd(
        iterations,
        sync_period=4,
        make_optimizer=lambda: SGD(LRSchedule(0.005), momentum=0.9),
    )
    assert local.report.extras["sync_rounds"] == iterations // 4
    # Still converging: the periodic delta-sum keeps replicas anchored.
    assert local.losses[-1] < local.losses[0]
    assert local.final_top1 > 0.5


def test_h4_moves_a_quarter_of_the_ring_wire_bytes():
    iterations = 8
    ring = train_distributed(
        algorithm="ring",
        iterations=iterations,
        cluster=ClusterConfig(num_nodes=WORKERS),
        **_common(),
    )
    local = _local_sgd(iterations, sync_period=4)
    assert local.transfers is not None and ring.transfers is not None
    # One ring round every H iterations: exactly 1/H the messages/bytes.
    assert local.transfers.messages * 4 == ring.transfers.messages
    assert local.transfers.nbytes * 4 == ring.transfers.nbytes


def test_fewer_syncs_cut_communication_time():
    profile = ComputeProfile(
        forward_s=1e-4,
        backward_s=3e-4,
        gpu_copy_s=5e-5,
        update_s=2e-4,
        sum_bandwidth_bps=10.4e9,
    )
    iterations = 8
    h1 = _local_sgd(iterations, sync_period=1, profile=profile)
    h4 = _local_sgd(iterations, sync_period=4, profile=profile)
    assert h4.virtual_time_s < h1.virtual_time_s


def test_sync_period_must_be_positive():
    import pytest

    with pytest.raises(ValueError, match="sync_period"):
        _local_sgd(4, sync_period=0)
