"""Pin the ported strategy plugins against the pre-refactor behavior.

The pins below were recorded by ``tools/record_strategy_pins.py``
against the four hand-rolled spawn loops (``_spawn_ring_processes``,
``_spawn_wa_processes``, the hierarchy driver, and the async-PS server
loop) immediately before they were ported to the
:class:`~repro.distributed.strategy.GradientStrategy` registry.  The
registry plugins must reproduce them exactly:

* final weights — sha256 of the parameter vector, **bit-exact**;
* wire accounting — message count and byte totals, exact;
* virtual time and final loss — to 1e-6 relative (floats that round
  through Python-level sums).

Any drift here means the generic driver changed the schedule or the
math of a ported strategy, which is precisely what this refactor must
not do.
"""

import hashlib

import pytest

from repro.core import inceptionn_profile
from repro.distributed import (
    ComputeProfile,
    GroupLayout,
    available_strategies,
    train_async_ps,
    train_distributed,
    train_hierarchical,
)
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.transport import ClusterConfig

REL = 1e-6

PROFILE = ComputeProfile(
    forward_s=1e-4,
    backward_s=3e-4,
    gpu_copy_s=5e-5,
    update_s=2e-4,
    sum_bandwidth_bps=10.4e9,
)
ITERATIONS = 8
WORKERS = 4

#: Recorded pre-refactor, see module docstring.  Keys: strategy_mode.
PINS = {
    "ring_raw": {
        "weights_sha256": "1501a55f69e055b79bda25a0250dbcb07cd94f3937ffa4ad036f16f35127111f",
        "weights_sum": -1491.3309326171875,
        "final_loss": 0.8216704726219177,
        "virtual_time_s": 0.053903606338462334,
        "messages": 192,
        "nbytes": 220609920,
        "wire_payload_nbytes": 220609920,
    },
    "wa_raw": {
        "weights_sha256": "4c11d10d1b8e06a3e2f3d513655d5b93d793051c22cf1c64fa616620aec68151",
        "weights_sum": -1491.3310546875,
        "final_loss": 0.8216705471277237,
        "virtual_time_s": 0.1736119620307764,
        "messages": 64,
        "nbytes": 294146560,
        "wire_payload_nbytes": 294146560,
    },
    "hierarchy_raw": {
        "weights_sha256": "e693c2b8c81f37f314510af58d670114ce22ed55f63ea1b1073e715f16f93653",
        "weights_sum": -1491.3309326171875,
        "final_loss": 0.8216704279184341,
        "virtual_time_s": 0.1004916777846152,
        "messages": 112,
        "nbytes": 294146560,
        "wire_payload_nbytes": 294146560,
    },
    "async_ps_raw": {
        "weights_sha256": "b9e2132c3fe187534f56876f1167005e8a789ff893ec1ed7858a3ad133655d88",
        "weights_sum": -9196.6044921875,
        "final_loss": 2.5914053916931152,
        "virtual_time_s": 0.13737569378999248,
        "messages": 64,
        "nbytes": 294146560,
        "wire_payload_nbytes": 294146560,
    },
    "ring_compressed": {
        "weights_sha256": "d4bc76cc9127cc7ca7e5c59a43ca4389d79ecd5ab336f2d861dc53cf5d455e27",
        "weights_sum": -1418.3507080078125,
        "final_loss": 0.8528502881526947,
        "virtual_time_s": 0.026107006738461662,
        "messages": 192,
        "nbytes": 220609920,
        "wire_payload_nbytes": 55155164,
    },
    "wa_compressed": {
        "weights_sha256": "e5d476462f36ecb34c0358325f7aac289907924ae9eb941e2ffae74e755019a4",
        "weights_sum": -1426.0521240234375,
        "final_loss": 0.8319570273160934,
        "virtual_time_s": 0.1481036878557699,
        "messages": 64,
        "nbytes": 294146560,
        "wire_payload_nbytes": 179340869,
    },
    "hierarchy_compressed": {
        "weights_sha256": "db9c7cf790a3bb7b3b67b60d567f7853c0e45ad8e9053ca1542e128dd92a9b48",
        "weights_sum": -1429.7930908203125,
        "final_loss": 0.8403845131397247,
        "virtual_time_s": 0.04479967638461622,
        "messages": 112,
        "nbytes": 294146560,
        "wire_payload_nbytes": 72354633,
    },
    "async_ps_compressed": {
        "weights_sha256": "880752dc49c3b7595a947d213ea97d68ad159499558fb7f954369387be34280f",
        "weights_sum": -8890.3623046875,
        "final_loss": 2.540337562561035,
        "virtual_time_s": 0.12808025970249073,
        "messages": 64,
        "nbytes": 294146560,
        "wire_payload_nbytes": 177244335,
    },
}


def _common(compressed):
    stream = inceptionn_profile() if compressed else None
    return dict(
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=400, test_size=100, seed=0),
        batch_size=16,
        stream=stream,
        seed=0,
    ), stream


def _run(strategy, compressed):
    common, stream = _common(compressed)
    if strategy in ("ring", "wa"):
        nodes = WORKERS + (1 if strategy == "wa" else 0)
        return train_distributed(
            algorithm=strategy,
            num_workers=WORKERS,
            iterations=ITERATIONS,
            cluster=ClusterConfig(num_nodes=nodes, profile=stream),
            profile=PROFILE,
            **common,
        )
    if strategy == "hierarchy":
        return train_hierarchical(
            layout=GroupLayout.even(WORKERS, 2),
            iterations=ITERATIONS,
            cluster=ClusterConfig(num_nodes=WORKERS, profile=stream),
            profile=PROFILE,
            **common,
        )
    assert strategy == "async_ps"
    return train_async_ps(
        num_workers=WORKERS,
        iterations_per_worker=ITERATIONS,
        cluster=ClusterConfig(num_nodes=WORKERS + 1, profile=stream),
        profile=PROFILE,
        compute_jitter=0.5,
        max_staleness=2,
        **common,
    )


@pytest.mark.parametrize("key", sorted(PINS))
def test_ported_strategy_matches_pre_refactor_pin(key):
    strategy, _, mode = key.rpartition("_")
    result = _run(strategy, compressed=(mode == "compressed"))
    pin = PINS[key]

    # Bit-exact model state: the refactor may not change the math.
    digest = hashlib.sha256(result.final_weights.tobytes()).hexdigest()
    assert digest == pin["weights_sha256"], key
    assert float(result.final_weights.sum()) == pin["weights_sum"]

    # Exact wire accounting (satellite: every strategy result must
    # carry the unified TransferSummary).
    summary = result.transfers
    assert summary is not None
    assert summary.messages == pin["messages"]
    assert summary.nbytes == pin["nbytes"]
    assert summary.wire_payload_nbytes == pin["wire_payload_nbytes"]

    # Timing and loss to float tolerance.
    assert result.virtual_time_s == pytest.approx(
        pin["virtual_time_s"], rel=REL
    )
    assert float(result.losses[-1]) == pytest.approx(
        pin["final_loss"], rel=REL
    )


def test_registry_lists_all_builtin_strategies():
    names = available_strategies()
    assert len(names) >= 6
    for expected in (
        "async_ps",
        "hierarchy",
        "local_sgd",
        "ring",
        "stale_async",
        "wa",
    ):
        assert expected in names
