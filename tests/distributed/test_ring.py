"""Ring exchange correctness: the aggregation identity of Algorithm 1."""

import numpy as np
import pytest

from repro.core import ErrorBound, inceptionn_profile
from repro.distributed import (
    ComputeProfile,
    partition_blocks,
    ring_exchange,
    ring_exchange_sizes,
)
from repro.transport import ClusterComm, ClusterConfig


def _run_ring(vectors, compression=False, bound=ErrorBound(10), profile=None):
    """Run the full ring on the given per-node vectors; return results."""
    n = len(vectors)
    stream = inceptionn_profile(bound) if compression else None
    comm = ClusterComm(
        ClusterConfig(num_nodes=n, bound=bound, profile=stream)
    )
    results = {}

    def node(i):
        def proc():
            out = yield from ring_exchange(
                comm.endpoints[i],
                vectors[i],
                n,
                profile=profile,
                stream=stream,
            )
            results[i] = out

        return proc

    for i in range(n):
        comm.sim.process(node(i)())
    elapsed = comm.run()
    return results, elapsed


@pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
def test_allreduce_identity(n):
    rng = np.random.default_rng(n)
    vectors = [
        (rng.standard_normal(1000) * 0.2).astype(np.float32) for _ in range(n)
    ]
    results, _ = _run_ring(vectors)
    expected = np.sum(vectors, axis=0)
    for i in range(n):
        np.testing.assert_allclose(results[i], expected, rtol=1e-4, atol=1e-6)


def test_all_nodes_agree_bitwise():
    rng = np.random.default_rng(0)
    vectors = [
        (rng.standard_normal(997) * 0.2).astype(np.float32) for _ in range(4)
    ]
    results, _ = _run_ring(vectors)
    for i in range(1, 4):
        np.testing.assert_array_equal(results[0], results[i])


def test_uneven_vector_size():
    # 1003 does not divide by 4; blocks differ in size by one.
    rng = np.random.default_rng(1)
    vectors = [
        (rng.standard_normal(1003) * 0.1).astype(np.float32) for _ in range(4)
    ]
    results, _ = _run_ring(vectors)
    np.testing.assert_allclose(
        results[2], np.sum(vectors, axis=0), rtol=1e-4, atol=1e-6
    )


def test_single_node_ring_is_identity():
    comm = ClusterComm(ClusterConfig(num_nodes=2))
    vec = np.arange(10, dtype=np.float32)
    results = {}

    def proc():
        out = yield from ring_exchange(comm.endpoints[0], vec, 1)
        results[0] = out

    comm.sim.process(proc())
    comm.run()
    np.testing.assert_array_equal(results[0], vec)


def test_node_outside_ring_rejected():
    comm = ClusterComm(ClusterConfig(num_nodes=4))

    def proc():
        yield from ring_exchange(comm.endpoints[3], np.zeros(8), 2)

    comm.sim.process(proc())
    with pytest.raises(ValueError):
        comm.run()


@pytest.mark.parametrize("exp", [6, 8, 10])
def test_compressed_ring_error_bounded(exp):
    bound = ErrorBound(exp)
    n = 4
    rng = np.random.default_rng(exp)
    vectors = [
        (rng.standard_normal(2000) * 0.1).astype(np.float32) for _ in range(n)
    ]
    results, _ = _run_ring(vectors, compression=True, bound=bound)
    expected = np.sum(vectors, axis=0)
    # Each of the N-1 reduce-scatter hops adds at most one bound of error
    # to a partial sum; the all-gather re-compressions are exact because
    # reconstructed values are codec fixed points.
    tolerance = n * bound.bound
    for i in range(n):
        assert np.max(np.abs(results[i] - expected)) <= tolerance


def test_compressed_ring_replica_divergence_is_bounded():
    # With per-hop NIC compression, the block a node fully reduced itself
    # never crosses its own NIC, so the owner keeps the uncompressed
    # value while every peer holds the codec reconstruction: replicas may
    # differ, but only inside the owner's block and only within the
    # error bound.  (The physical system behaves identically.)
    n = 4
    bound = ErrorBound(10)
    rng = np.random.default_rng(9)
    vectors = [
        (rng.standard_normal(512) * 0.1).astype(np.float32) for _ in range(n)
    ]
    results, _ = _run_ring(vectors, compression=True, bound=bound)
    block = 512 // n
    for i in range(n):
        for j in range(n):
            diff = np.abs(results[i] - results[j])
            assert np.max(diff) < bound.bound
            # Outside nodes i's and j's own blocks, values agree exactly:
            mask = np.ones(512, dtype=bool)
            own_i = (i + 1) % n
            own_j = (j + 1) % n
            mask[own_i * block : (own_i + 1) * block] = False
            mask[own_j * block : (own_j + 1) * block] = False
            assert np.array_equal(results[i][mask], results[j][mask])


def test_compression_shortens_exchange():
    n = 4
    vectors = [np.zeros(500_000, dtype=np.float32) for _ in range(n)]
    _, t_plain = _run_ring(vectors, compression=False)
    _, t_comp = _run_ring(vectors, compression=True)
    assert t_comp < t_plain


def test_sum_profile_adds_time():
    n = 4
    vectors = [np.ones(100_000, dtype=np.float32) for _ in range(n)]
    slow_sum = ComputeProfile(sum_bandwidth_bps=1e6)
    _, t_fast = _run_ring(vectors)
    _, t_slow = _run_ring(vectors, profile=slow_sum)
    assert t_slow > t_fast


def test_ring_exchange_sizes_match_partition():
    vec = np.zeros(1003, dtype=np.float32)
    blocks = partition_blocks(vec, 4)
    assert [b.size for b in blocks] == ring_exchange_sizes(4, 1003)
    assert sum(ring_exchange_sizes(4, 1003)) == 1003


def test_partition_rejects_zero_blocks():
    with pytest.raises(ValueError):
        partition_blocks(np.zeros(4), 0)
