"""Bounded-staleness PS semantics: bound 0 is a synchronous
sequential-apply server; positive bounds cap how far any worker's
applied rounds can lead the slowest."""

import numpy as np
import pytest

from repro.distributed import run_strategy, spawn_key
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.dnn.training import LocalTrainer
from repro.transport import ClusterConfig

WORKERS = 3
BATCH = 16
SEED = 0


def _dataset():
    return hdc_dataset(train_size=300, test_size=60, seed=0)


def _make_optimizer():
    return SGD(LRSchedule(0.02), momentum=0.9)


def _run(iterations, bound, jitter=0.0):
    return run_strategy(
        "stale_async",
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=_make_optimizer,
        dataset=_dataset(),
        num_workers=WORKERS,
        iterations=iterations,
        batch_size=BATCH,
        cluster=ClusterConfig(num_nodes=WORKERS + 1),
        seed=SEED,
        options={
            "staleness_bound": bound,
            "compute_jitter": jitter,
        },
    )


def _reference_sync_ps(iterations):
    """Pure-host reference for bound=0: per round, every worker grads
    against the same weights, the server applies the gradients
    sequentially in worker order, and everyone re-pulls."""
    dataset = _dataset()
    server_net = build_hdc(seed=SEED)
    server_opt = _make_optimizer()
    trainers = [
        LocalTrainer(
            net=build_hdc(seed=SEED),
            optimizer=_make_optimizer(),
            dataset=dataset.shard(i, WORKERS),
            batch_size=BATCH,
            seed=spawn_key(SEED, i),
        )
        for i in range(WORKERS)
    ]
    for _ in range(iterations):
        grads = [t.local_gradient()[1] for t in trainers]
        for grad in grads:  # arrival order without jitter: worker order
            server_opt.step_with_vector(server_net, grad)
        weights = server_net.parameter_vector()
        for t in trainers:
            t.net.set_parameter_vector(weights)
    return server_net.parameter_vector()


def test_bound_zero_is_a_synchronous_sequential_apply_server():
    iterations = 6
    result = _run(iterations, bound=0)
    expected = _reference_sync_ps(iterations)
    np.testing.assert_array_equal(result.final_weights, expected)
    # A round barrier admits no lead at all.
    assert result.report is not None
    extras = result.report.extras
    assert extras["round_lead"] and max(extras["round_lead"]) == 0
    assert len(extras["staleness"]) == WORKERS * iterations


def test_bound_caps_round_lead_under_jitter():
    bound = 1
    result = _run(iterations=8, bound=bound, jitter=0.5)
    extras = result.report.extras
    assert len(extras["round_lead"]) == WORKERS * 8
    assert max(extras["round_lead"]) <= bound
    # With drifting compute some arrivals must actually queue — the
    # bound is doing work, not vacuously satisfied.
    assert extras["staleness_bound"] == bound


def test_larger_bound_admits_more_staleness():
    tight = _run(iterations=8, bound=0, jitter=0.5)
    loose = _run(iterations=8, bound=3, jitter=0.5)
    assert max(loose.report.extras["round_lead"]) <= 3
    # The loose server replies earlier, so it finishes sooner.
    assert loose.virtual_time_s <= tight.virtual_time_s
    # And its workers see weights more updates behind the frontier.
    assert max(loose.report.extras["staleness"]) >= max(
        tight.report.extras["staleness"]
    )


def test_bound_zero_still_learns():
    result = _run(iterations=20, bound=0)
    assert result.loss_order[-1] < result.loss_order[0]


def test_negative_bound_rejected():
    with pytest.raises(ValueError, match="staleness_bound"):
        _run(iterations=2, bound=-1)
