"""Two-level hierarchical training runs (Fig 1c end to end)."""

import pytest

from repro.core import inceptionn_profile
from repro.distributed import GroupLayout, train_distributed, train_hierarchical
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.transport import ClusterConfig


def _run_hier(num_nodes=4, group_size=2, iterations=15, compression=False):
    stream = inceptionn_profile() if compression else None
    return train_hierarchical(
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=400, test_size=100, seed=0),
        layout=GroupLayout.even(num_nodes, group_size),
        iterations=iterations,
        batch_size=16,
        cluster=ClusterConfig(num_nodes=num_nodes, profile=stream),
        stream=stream,
    )


def test_hierarchical_training_learns():
    result = _run_hier(iterations=30)
    assert result.algorithm == "hierarchy"
    assert result.losses[-1] < result.losses[0]
    assert result.final_top1 > 0.5


def test_matches_flat_ring_learning_curve():
    hier = _run_hier(num_nodes=4, group_size=2, iterations=20)
    flat = train_distributed(
        algorithm="ring",
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=400, test_size=100, seed=0),
        num_workers=4,
        iterations=20,
        batch_size=16,
        cluster=ClusterConfig(num_nodes=4),
    )
    # Same mathematics (global gradient sum): same trajectory.
    assert hier.losses[-1] == pytest.approx(flat.losses[-1], rel=0.05)


def test_compressed_hierarchy_learns():
    result = _run_hier(iterations=25, compression=True)
    assert result.final_top1 > 0.4


def test_eight_nodes_two_groups():
    result = _run_hier(num_nodes=8, group_size=4, iterations=8)
    assert result.num_workers == 8
    assert result.virtual_time_s > 0
    assert result.phase_seconds["communicate"] > 0


def test_layout_mismatch_rejected():
    with pytest.raises(ValueError):
        train_hierarchical(
            build_net=lambda s: build_hdc(seed=s),
            make_optimizer=lambda: SGD(LRSchedule(0.02)),
            dataset=hdc_dataset(train_size=100, test_size=20, seed=0),
            layout=GroupLayout.even(4, 2),
            iterations=2,
            batch_size=8,
            cluster=ClusterConfig(num_nodes=6),
        )
