"""Tracing through the distributed algorithms: parity + coverage.

The acceptance bar for the observability layer is twofold: a traced
run's phase breakdown must match the untraced run's inline accounting
to 1e-6, and attaching the tracer must not change any simulated time.
"""

import numpy as np
import pytest

from repro.core import inceptionn_profile
from repro.distributed import ComputeProfile, GroupLayout, train_distributed
from repro.distributed.async_ps import train_async_ps
from repro.distributed.cluster import PHASE_NAMES
from repro.distributed.hierarchy import train_hierarchical
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.obs import CAT_ASYNC, CAT_HIER, CAT_MESSAGE, CAT_RING, Tracer
from repro.transport import ClusterConfig

PROFILE = ComputeProfile(
    forward_s=1e-4,
    backward_s=3e-4,
    gpu_copy_s=5e-5,
    update_s=2e-4,
    sum_bandwidth_bps=10.4e9,
)


def _run(algorithm, tracer=None, iterations=6, compression=False, workers=4):
    num_nodes = workers + 1 if algorithm == "wa" else workers
    stream = inceptionn_profile() if compression else None
    return train_distributed(
        algorithm=algorithm,
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=200, test_size=50, seed=0),
        num_workers=workers,
        iterations=iterations,
        batch_size=16,
        cluster=ClusterConfig(num_nodes=num_nodes, profile=stream),
        profile=PROFILE,
        stream=stream,
        tracer=tracer,
        seed=0,
    )


@pytest.mark.parametrize("algorithm", ["ring", "wa"])
def test_traced_run_matches_untraced_breakdown(algorithm):
    untraced = _run(algorithm)
    tracer = Tracer()
    traced = _run(algorithm, tracer=tracer)
    assert traced.virtual_time_s == untraced.virtual_time_s
    np.testing.assert_allclose(traced.losses, untraced.losses)
    for name in PHASE_NAMES:
        assert traced.phase_seconds[name] == pytest.approx(
            untraced.phase_seconds[name], abs=1e-6
        ), name


def test_ring_records_p1_and_p2_steps():
    tracer = Tracer()
    iterations, workers = 3, 4
    _run("ring", tracer=tracer, iterations=iterations, workers=workers)
    steps = list(tracer.events_in(CAT_RING, "ring.step"))
    # Algorithm 1: 2(N-1) steps per worker per iteration.
    assert len(steps) == iterations * workers * 2 * (workers - 1)
    phases = {e.args["ring_phase"] for e in steps}
    assert phases == {"P1", "P2"}
    p1 = [e for e in steps if e.args["ring_phase"] == "P1"]
    p2 = [e for e in steps if e.args["ring_phase"] == "P2"]
    assert len(p1) == len(p2)
    for event in steps:
        assert event.dur >= 0.0
        assert 0 <= event.args["send_block"] < workers


def test_compressed_run_traces_compressed_messages():
    tracer = Tracer()
    _run("ring", tracer=tracer, iterations=2, compression=True)
    sends = list(tracer.events_in(CAT_MESSAGE, "msg.send"))
    assert sends and all(e.args["compressed"] for e in sends)
    counters = tracer.metrics.snapshot()["counters"]
    assert counters["wire_bytes{tos=0x28}"] > 0


def test_hierarchical_run_records_levels():
    tracer = Tracer()
    result = train_hierarchical(
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=200, test_size=50, seed=0),
        layout=GroupLayout.even(4, 2),
        iterations=2,
        batch_size=16,
        profile=PROFILE,
        tracer=tracer,
        seed=0,
    )
    assert result.virtual_time_s > 0
    assert tracer.count(CAT_HIER, "hier.group_ring") > 0
    assert tracer.count(CAT_HIER, "hier.leader_ring") > 0
    assert tracer.count(CAT_HIER, "hier.broadcast") > 0


def test_async_run_records_rounds_and_staleness():
    tracer = Tracer()
    workers, iterations = 3, 4
    result = train_async_ps(
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=200, test_size=50, seed=0),
        num_workers=workers,
        iterations_per_worker=iterations,
        batch_size=16,
        profile=PROFILE,
        compute_jitter=0.3,
        tracer=tracer,
        seed=0,
    )
    assert tracer.count(CAT_ASYNC, "async.round") == workers * iterations
    applies = list(tracer.events_in(CAT_ASYNC, "async.apply"))
    assert len(applies) == workers * iterations
    assert [e.args["staleness"] for e in applies] == result.staleness
    hist = tracer.metrics.snapshot()["histograms"]["staleness"]
    assert hist["count"] == len(result.staleness)
