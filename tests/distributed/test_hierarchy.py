"""Hierarchical (Fig 1c) exchange tests."""

import numpy as np
import pytest

from repro.core import ErrorBound, inceptionn_profile
from repro.distributed import GroupLayout, hierarchical_exchange
from repro.transport import ClusterComm, ClusterConfig


def _run_hier(vectors, group_size, compression=False, bound=ErrorBound(10)):
    n = len(vectors)
    layout = GroupLayout.even(n, group_size)
    stream = inceptionn_profile(bound) if compression else None
    comm = ClusterComm(
        ClusterConfig(num_nodes=n, bound=bound, profile=stream)
    )
    results = {}

    def node(i):
        def proc():
            out = yield from hierarchical_exchange(
                comm, i, vectors[i], layout, stream=stream
            )
            results[i] = out

        return proc

    for i in range(n):
        comm.sim.process(node(i)())
    elapsed = comm.run()
    return results, elapsed


def test_layout_construction():
    layout = GroupLayout.even(8, 4)
    assert layout.groups == ((0, 1, 2, 3), (4, 5, 6, 7))
    assert layout.leaders == (0, 4)
    assert layout.group_of(6) == (4, 5, 6, 7)


def test_layout_validation():
    with pytest.raises(ValueError):
        GroupLayout.even(8, 3)
    with pytest.raises(ValueError):
        GroupLayout.even(8, 1)
    with pytest.raises(ValueError):
        GroupLayout.even(4, 2).group_of(9)


@pytest.mark.parametrize("n,g", [(4, 2), (8, 4), (8, 2), (6, 3)])
def test_global_sum_identity(n, g):
    rng = np.random.default_rng(n * 10 + g)
    vectors = [
        (rng.standard_normal(400) * 0.1).astype(np.float32) for _ in range(n)
    ]
    results, _ = _run_hier(vectors, g)
    expected = np.sum(vectors, axis=0)
    for i in range(n):
        np.testing.assert_allclose(results[i], expected, rtol=1e-4, atol=1e-6)


def test_single_group_degenerates_to_ring():
    rng = np.random.default_rng(1)
    vectors = [
        (rng.standard_normal(100) * 0.1).astype(np.float32) for _ in range(4)
    ]
    results, _ = _run_hier(vectors, 4)  # one group of 4: no upper ring
    np.testing.assert_allclose(
        results[0], np.sum(vectors, axis=0), rtol=1e-4, atol=1e-6
    )


def test_compressed_hierarchy_error_bounded():
    bound = ErrorBound(8)
    n, g = 8, 4
    rng = np.random.default_rng(2)
    vectors = [
        (rng.standard_normal(800) * 0.05).astype(np.float32) for _ in range(n)
    ]
    results, _ = _run_hier(vectors, g, compression=True, bound=bound)
    expected = np.sum(vectors, axis=0)
    # Two ring levels plus a broadcast: error stays a small multiple of
    # the bound (each lossy stage adds at most one bound).
    tolerance = (g + n // g + 2) * bound.bound
    for i in range(n):
        assert np.max(np.abs(results[i] - expected)) <= tolerance
