"""End-to-end distributed training runs (functional + timing)."""

import numpy as np
import pytest

from repro.core import inceptionn_profile
from repro.distributed import ComputeProfile, train_distributed
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.transport import ClusterConfig


def _run(algorithm, iterations=12, compression=False, compress_gradients=False,
         num_workers=4, profile=None, seed=0, bandwidth=10e9):
    num_nodes = num_workers + 1 if algorithm == "wa" else num_workers
    stream = inceptionn_profile() if compression else None
    return train_distributed(
        algorithm=algorithm,
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=400, test_size=100, seed=0),
        num_workers=num_workers,
        iterations=iterations,
        batch_size=16,
        cluster=ClusterConfig(
            num_nodes=num_nodes, bandwidth_bps=bandwidth, profile=stream
        ),
        profile=profile or ComputeProfile(),
        compress_gradients=compress_gradients,
        seed=seed,
    )


def test_ring_and_wa_learn_equally_without_compression():
    ring = _run("ring", iterations=40)
    wa = _run("wa", iterations=40)
    # Same seeds, same math (sum of local gradients): trajectories match
    # closely; final losses and accuracies agree.
    assert ring.losses[-1] < ring.losses[0]
    assert wa.losses[-1] < wa.losses[0]
    assert ring.final_top1 == pytest.approx(wa.final_top1, abs=0.06)
    np.testing.assert_allclose(ring.losses, wa.losses, rtol=0.05)


def test_ring_faster_than_wa_same_iterations():
    # Communication-bound regime: the ring removes the aggregator
    # bottleneck (paper Fig 12: 31-52% shorter training time).
    ring = _run("ring", iterations=6, bandwidth=1e9)
    wa = _run("wa", iterations=6, bandwidth=1e9)
    assert ring.virtual_time_s < wa.virtual_time_s
    speedup = wa.virtual_time_s / ring.virtual_time_s
    assert 1.2 < speedup < 4.0


def test_compression_reduces_ring_time():
    plain = _run("ring", iterations=6, bandwidth=1e9)
    comp = _run(
        "ring", iterations=6, bandwidth=1e9,
        compression=True, compress_gradients=True,
    )
    assert comp.virtual_time_s < plain.virtual_time_s


def test_compressed_training_still_learns():
    result = _run(
        "ring", iterations=40, compression=True, compress_gradients=True
    )
    baseline = _run("ring", iterations=40)
    assert result.losses[-1] < result.losses[0]
    assert result.final_top1 > baseline.final_top1 - 0.1


def test_wa_compression_only_helps_gradient_leg():
    plain = _run("wa", iterations=6, bandwidth=1e9)
    comp = _run(
        "wa", iterations=6, bandwidth=1e9,
        compression=True, compress_gradients=True,
    )
    # Some gain (the up leg shrinks) but bounded: the weight leg is
    # incompressible, so less than half the traffic can shrink.
    assert comp.virtual_time_s < plain.virtual_time_s
    assert comp.virtual_time_s > plain.virtual_time_s * 0.4


def test_phase_accounting_sums_to_total():
    profile = ComputeProfile(
        forward_s=1e-4, backward_s=5e-4, gpu_copy_s=1e-4, update_s=2e-4
    )
    result = _run("ring", iterations=5, profile=profile)
    assert sum(result.phase_seconds.values()) == pytest.approx(
        result.virtual_time_s, rel=1e-6
    )
    assert result.phase_seconds["forward"] == pytest.approx(5e-4)
    assert result.phase_seconds["communicate"] > 0


def test_communication_fraction_grows_with_slow_network():
    profile = ComputeProfile(forward_s=1e-5, backward_s=1e-5, update_s=1e-5)
    fast = _run("wa", iterations=4, profile=profile, bandwidth=10e9)
    slow = _run("wa", iterations=4, profile=profile, bandwidth=0.5e9)
    assert slow.communication_fraction > fast.communication_fraction


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        _run("butterfly")


def test_too_few_workers_rejected():
    with pytest.raises(ValueError):
        _run("ring", num_workers=1)


def test_eval_checkpoints_recorded():
    result = train_distributed(
        algorithm="ring",
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=200, test_size=50, seed=0),
        num_workers=2,
        iterations=10,
        batch_size=16,
        eval_every=5,
    )
    assert len(result.eval_top1) == 2


def test_losses_recorded_per_iteration():
    result = _run("ring", iterations=7)
    assert len(result.losses) == 7
    assert all(np.isfinite(l) for l in result.losses)
