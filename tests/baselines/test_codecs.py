"""Snappy-like and SZ-like baseline codec tests."""

import numpy as np
import pytest

from repro.baselines import snappy_like, sz_like


class TestSnappyLike:
    def test_roundtrip_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 50
        assert snappy_like.decompress(snappy_like.compress(data)) == data

    def test_roundtrip_empty(self):
        assert snappy_like.decompress(snappy_like.compress(b"")) == b""

    def test_roundtrip_short(self):
        for data in (b"a", b"ab", b"abc"):
            assert snappy_like.decompress(snappy_like.compress(data)) == data

    def test_roundtrip_random_bytes(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 10_000, dtype=np.uint8).tobytes()
        assert snappy_like.decompress(snappy_like.compress(data)) == data

    def test_roundtrip_float_gradients(self):
        rng = np.random.default_rng(1)
        values = (rng.standard_normal(5000) * 0.1).astype(np.float32)
        data = values.tobytes()
        assert snappy_like.decompress(snappy_like.compress(data)) == data

    def test_repetitive_data_compresses_well(self):
        data = b"\x00" * 100_000
        assert snappy_like.compression_ratio(data) > 10

    def test_random_floats_barely_compress(self):
        # The paper's premise: lossless compression of dense float
        # gradients yields poor ratios (~1.5 at best, often ~1).
        rng = np.random.default_rng(2)
        values = rng.standard_normal(20_000).astype(np.float32)
        ratio = snappy_like.compression_ratio(values.tobytes())
        assert ratio < 1.6

    def test_sparse_gradients_compress(self):
        values = np.zeros(10_000, dtype=np.float32)
        values[::100] = 0.5
        assert snappy_like.compression_ratio(values.tobytes()) > 5

    def test_self_overlapping_copy(self):
        data = b"ab" * 1000  # forces overlapping match copies
        assert snappy_like.decompress(snappy_like.compress(data)) == data

    def test_corrupt_stream_rejected(self):
        blob = snappy_like.compress(b"hello world, hello world, hello")
        with pytest.raises(ValueError):
            snappy_like.decompress(blob[:-2])


class TestSZLike:
    @pytest.mark.parametrize("bound", [2**-10, 2**-8, 2**-6])
    def test_error_bounded_roundtrip(self, bound):
        rng = np.random.default_rng(0)
        values = (rng.standard_normal(5000) * 0.2).astype(np.float32)
        out = sz_like.decompress(sz_like.compress(values, bound), bound)
        assert np.max(np.abs(out - values)) <= bound * 1.001

    def test_smooth_data_compresses_well(self):
        # SZ's strength: predictable series collapse to tiny codes.
        t = np.linspace(0, 10, 50_000).astype(np.float32)
        smooth = np.sin(t) * 0.1
        assert sz_like.compression_ratio(smooth, 2**-10) > 6

    def test_gradientlike_data_ratio(self):
        rng = np.random.default_rng(1)
        values = (rng.standard_normal(20_000) * 0.01).astype(np.float32)
        ratio = sz_like.compression_ratio(values, 2**-8)
        assert ratio > 2.0

    def test_relaxed_bound_improves_ratio(self):
        rng = np.random.default_rng(2)
        values = (rng.standard_normal(10_000) * 0.05).astype(np.float32)
        tight = sz_like.compression_ratio(values, 2**-12)
        relaxed = sz_like.compression_ratio(values, 2**-6)
        assert relaxed > tight

    def test_large_jumps_use_escape(self):
        values = np.array([0.0, 1e6, -1e6, 0.5], dtype=np.float32)
        bound = 2**-10
        out = sz_like.decompress(sz_like.compress(values, bound), bound)
        np.testing.assert_allclose(out, values, atol=bound)

    def test_nonfinite_values_survive(self):
        values = np.array([0.1, np.inf, np.nan, -0.1], dtype=np.float32)
        bound = 2**-8
        out = sz_like.decompress(sz_like.compress(values, bound), bound)
        assert out[1] == np.inf and np.isnan(out[2])
        assert abs(out[3] + 0.1) <= bound

    def test_empty_input(self):
        out = sz_like.decompress(sz_like.compress(np.array([], dtype=np.float32), 0.01), 0.01)
        assert out.size == 0

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            sz_like.compress(np.zeros(4, dtype=np.float32), 0.0)
        with pytest.raises(ValueError):
            sz_like.decompress(b"\x00\x00\x00\x00", -1.0)

    def test_truncated_blob_rejected(self):
        with pytest.raises(ValueError):
            sz_like.decompress(b"\x01", 0.01)
