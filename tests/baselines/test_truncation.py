"""Truncation baseline tests."""

import numpy as np
import pytest

from repro.baselines import (
    PAPER_TRUNCATIONS,
    make_truncation_hook,
    truncate_lsbs,
    truncation_max_error,
    truncation_ratio,
)


def test_zero_bits_is_identity():
    values = np.array([0.1, -2.5, 3e-8], dtype=np.float32)
    np.testing.assert_array_equal(truncate_lsbs(values, 0), values)


def test_mantissa_truncation_keeps_magnitude():
    values = np.array([0.123456, -0.98765], dtype=np.float32)
    out = truncate_lsbs(values, 16)
    # 16-bit truncation keeps sign, exponent, 7 mantissa bits: coarse
    # but the right ballpark.
    assert np.all(np.abs(out - values) < np.abs(values) * 0.01)
    assert np.sign(out[1]) == -1


def test_24_bit_truncation_perturbs_exponent():
    # Dropping 24 bits eats one exponent bit: values can collapse badly.
    values = np.array([0.9], dtype=np.float32)
    out = truncate_lsbs(values, 24)
    assert abs(out[0] - 0.9) > 0.1  # uncontrolled error, the paper's point


def test_truncation_error_grows_with_bits():
    rng = np.random.default_rng(0)
    values = (rng.standard_normal(10_000) * 0.2).astype(np.float32)
    errors = [truncation_max_error(values, b) for b in PAPER_TRUNCATIONS]
    assert errors[0] < errors[1] < errors[2]


def test_ratio_formula():
    assert truncation_ratio(16) == 2.0
    assert truncation_ratio(24) == 4.0
    assert truncation_ratio(0) == 1.0


def test_invalid_bits_rejected():
    with pytest.raises(ValueError):
        truncate_lsbs(np.zeros(2, dtype=np.float32), 32)
    with pytest.raises(ValueError):
        truncation_ratio(-1)


def test_hook_truncates_gradients():
    hook = make_truncation_hook(16)
    grad = np.array([0.123456789], dtype=np.float32)
    out = hook(0, grad)
    np.testing.assert_array_equal(out, truncate_lsbs(grad, 16))


def test_hook_rejects_weight_target():
    with pytest.raises(ValueError):
        make_truncation_hook(16, target="weights")


def test_idempotent():
    rng = np.random.default_rng(1)
    values = (rng.standard_normal(1000) * 0.3).astype(np.float32)
    once = truncate_lsbs(values, 22)
    twice = truncate_lsbs(once, 22)
    np.testing.assert_array_equal(once, twice)
