"""Software compression cost model tests (Fig 7 logic)."""

import pytest

from repro.baselines import (
    SOFTWARE_CODECS,
    baseline_training_time,
    software_training_time,
)


def test_codecs_present():
    assert {"snappy", "sz", "truncation"} <= set(SOFTWARE_CODECS)


def test_roundtrip_time_additive():
    codec = SOFTWARE_CODECS["snappy"]
    n = 100 * 2**20
    assert codec.roundtrip_time(n) == pytest.approx(
        codec.compression_time(n) + codec.decompression_time(n)
    )


def test_software_compression_slows_comm_bound_training():
    # Fig 7's finding: software compression increases total time for
    # large models despite reducing communication.
    compute, comm = 0.4, 1.5  # AlexNet-like seconds per iteration
    nbytes = 233 * 2**20
    base = baseline_training_time(compute, comm)
    for name in ("snappy", "sz"):
        with_sw = software_training_time(compute, comm, nbytes, SOFTWARE_CODECS[name])
        assert with_sw > base


def test_truncation_in_software_barely_helps():
    compute, comm = 0.4, 1.5
    nbytes = 233 * 2**20
    base = baseline_training_time(compute, comm)
    trunc = software_training_time(
        compute, comm, nbytes, SOFTWARE_CODECS["truncation"]
    )
    # Only slightly different from baseline either way (paper Fig 7).
    assert abs(trunc - base) / base < 0.5


def test_tiny_models_unaffected():
    compute, comm = 0.0005, 0.013  # HDC-like
    nbytes = int(2.5 * 2**20)
    base = baseline_training_time(compute, comm)
    sw = software_training_time(compute, comm, nbytes, SOFTWARE_CODECS["snappy"])
    # Absolute penalty is small for tiny models.
    assert sw < base + 0.05


def test_negative_inputs_rejected():
    codec = SOFTWARE_CODECS["snappy"]
    with pytest.raises(ValueError):
        codec.compression_time(-1)
    with pytest.raises(ValueError):
        baseline_training_time(-1, 0)
    with pytest.raises(ValueError):
        software_training_time(0, -1, 100, codec)
