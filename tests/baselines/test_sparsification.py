"""Deep Gradient Compression tests."""

import numpy as np
import pytest

from repro.baselines import DeepGradientCompression


def _grads(n=10_000, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * 0.05).astype(np.float32)


def test_density_matches_sparsity():
    dgc = DeepGradientCompression(sparsity=0.99)
    result = dgc.sparsify(_grads(100_000))
    assert result.density == pytest.approx(0.01, rel=0.2)


def test_transmits_largest_magnitudes():
    dgc = DeepGradientCompression(sparsity=0.9)
    grads = _grads(1000, seed=1)
    result = dgc.sparsify(grads)
    sent = result.values != 0
    if sent.any() and (~sent).any():
        assert np.min(np.abs(grads[sent])) >= np.max(np.abs(grads[~sent])) - 1e-6


def test_dropped_mass_accumulates():
    dgc = DeepGradientCompression(sparsity=0.99)
    grads = _grads(1000, seed=2)
    dgc.sparsify(grads)
    assert dgc.pending_nbytes > 0


def test_nothing_lost_over_rounds():
    dgc = DeepGradientCompression(sparsity=0.95)
    rng = np.random.default_rng(3)
    total_true = np.zeros(500, dtype=np.float64)
    total_sent = np.zeros(500, dtype=np.float64)
    for _ in range(300):
        g = (rng.standard_normal(500) * 0.01).astype(np.float32)
        total_true += g
        total_sent += dgc.sparsify(g).values
    # All gradient mass eventually transmits (delayed, not dropped):
    # remaining gap equals the currently accumulated residual.
    drift = np.abs(total_true - total_sent)
    assert drift.mean() < 0.05


def test_zero_sparsity_sends_everything():
    dgc = DeepGradientCompression(sparsity=0.0)
    grads = _grads(100, seed=4)
    result = dgc.sparsify(grads)
    assert result.transmitted == 100
    np.testing.assert_array_equal(result.values, grads)


def test_compression_ratio():
    dgc = DeepGradientCompression(sparsity=0.99)
    result = dgc.sparsify(_grads(100_000))
    # 1% of coords at 64 bits each vs 32 bits dense -> ~50x.
    assert result.compression_ratio == pytest.approx(50, rel=0.25)


def test_invalid_sparsity():
    with pytest.raises(ValueError):
        DeepGradientCompression(sparsity=1.0)
    with pytest.raises(ValueError):
        DeepGradientCompression(sparsity=-0.1)


def test_reset():
    dgc = DeepGradientCompression(sparsity=0.9)
    dgc.sparsify(_grads(100))
    dgc.reset()
    assert dgc.pending_nbytes == 0
