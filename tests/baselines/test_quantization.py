"""Tests for 1-bit SGD, TernGrad and QSGD baselines."""

import numpy as np
import pytest

from repro.baselines import OneBitSGD, qsgd, terngrad


def _grads(n=10_000, seed=0, scale=0.05):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * scale).astype(np.float32)


class TestOneBitSGD:
    def test_output_is_two_valued(self):
        q = OneBitSGD()
        result = q.quantize(_grads())
        assert len(np.unique(result.values)) <= 2

    def test_compression_ratio_near_32(self):
        q = OneBitSGD()
        result = q.quantize(_grads(100_000))
        assert result.compression_ratio == pytest.approx(32.0, rel=0.01)

    def test_error_feedback_accumulates(self):
        q = OneBitSGD()
        grads = _grads(1000, seed=1)
        first = q.quantize(grads)
        residual_after_first = grads - first.values
        second = q.quantize(grads)
        # Second call quantizes grads + residual, not grads alone.
        assert not np.array_equal(first.values, second.values) or np.any(
            residual_after_first != 0
        )

    def test_feedback_preserves_gradient_mass(self):
        # Sum of transmitted values over many rounds approaches the sum
        # of true gradients (nothing is lost, only delayed).
        q = OneBitSGD()
        rng = np.random.default_rng(2)
        total_true = np.zeros(500, dtype=np.float64)
        total_sent = np.zeros(500, dtype=np.float64)
        for _ in range(200):
            g = (rng.standard_normal(500) * 0.01).astype(np.float32)
            total_true += g
            total_sent += q.quantize(g).values
        drift = np.abs(total_true - total_sent).max()
        # Remaining drift is bounded by the current residual magnitude.
        assert drift < 0.1

    def test_reset_clears_state(self):
        q = OneBitSGD()
        g = _grads(100, seed=3)
        a = q.quantize(g).values
        q.reset()
        b = q.quantize(g).values
        np.testing.assert_array_equal(a, b)

    def test_all_positive_input(self):
        q = OneBitSGD()
        result = q.quantize(np.full(64, 0.5, dtype=np.float32))
        np.testing.assert_allclose(result.values, 0.5, atol=1e-6)


class TestTernGrad:
    def test_three_levels(self):
        rng = np.random.default_rng(0)
        result = terngrad(_grads(), rng)
        unique = np.unique(result.values)
        assert len(unique) <= 3
        assert 0.0 in unique

    def test_unbiased_in_expectation(self):
        grads = _grads(2000, seed=1)
        rng = np.random.default_rng(2)
        mean = np.zeros_like(grads, dtype=np.float64)
        rounds = 300
        for _ in range(rounds):
            mean += terngrad(grads, rng).values
        mean /= rounds
        # E[quantized] == gradient (stochastic scaling is unbiased).
        assert np.abs(mean - grads).mean() < 0.01

    def test_zero_vector(self):
        rng = np.random.default_rng(0)
        result = terngrad(np.zeros(100, dtype=np.float32), rng)
        assert np.all(result.values == 0)

    def test_ratio_near_16(self):
        rng = np.random.default_rng(0)
        result = terngrad(_grads(100_000), rng)
        assert result.compression_ratio == pytest.approx(16.0, rel=0.01)


class TestQSGD:
    def test_levels_respected(self):
        grads = _grads(5000, seed=4)
        rng = np.random.default_rng(5)
        result = qsgd(grads, rng, bits=2)
        norm = np.linalg.norm(grads)
        levels = np.unique(np.round(np.abs(result.values) / norm * 3, 6))
        assert len(levels) <= 4  # 0..3 over 3 levels

    def test_unbiased_in_expectation(self):
        grads = _grads(1000, seed=6)
        rng = np.random.default_rng(7)
        mean = np.zeros_like(grads, dtype=np.float64)
        rounds = 300
        for _ in range(rounds):
            mean += qsgd(grads, rng, bits=4).values
        mean /= rounds
        assert np.abs(mean - grads).mean() < 0.005

    def test_more_bits_less_error(self):
        grads = _grads(20_000, seed=8)
        rng = np.random.default_rng(9)
        err2 = np.abs(qsgd(grads, rng, bits=2).values - grads).mean()
        err8 = np.abs(qsgd(grads, rng, bits=8).values - grads).mean()
        assert err8 < err2

    def test_ratio_formula(self):
        rng = np.random.default_rng(0)
        result = qsgd(_grads(100_000), rng, bits=4)
        assert result.compression_ratio == pytest.approx(32 / 5, rel=0.01)

    def test_invalid_bits(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            qsgd(_grads(10), rng, bits=0)

    def test_zero_vector(self):
        rng = np.random.default_rng(0)
        result = qsgd(np.zeros(10, dtype=np.float32), rng)
        assert np.all(result.values == 0)
