"""Bit-exact pins for the switched-star path across the fabric refactor.

The hex values below were captured from the exchange simulators
immediately *before* the multi-tier fabric subsystem landed.  The star
remains the default topology and the degenerate single-tier case of
``build_topology``; both the implicit default (``topology=None``) and
the explicit ``topology="star"`` spelling must reproduce these numbers
bit-for-bit — any drift means the refactor changed single-tier timing.
"""

import pytest

from repro.perfmodel import simulate_ring_exchange, simulate_wa_exchange

NBYTES = 2_000_000

#: (algorithm, workers, compress) -> (total_s.hex(), sent, wire_payload),
#: captured pre-refactor from fn(workers, 2 MB, iterations=1).
PINS = {
    ("ring", 4, False): ("0x1.4b1c4b1ebe2f6p-9", 12_000_000, 12_000_000),
    ("ring", 4, True): ("0x1.0b68899955d90p-10", 12_000_000, 3_180_912),
    ("ring", 6, False): ("0x1.72a2ce906023dp-9", 20_000_000, 20_000_000),
    ("wa", 4, False): ("0x1.b35a28f91a1e0p-7", 16_000_000, 16_000_000),
    ("wa", 4, True): ("0x1.2ee33d7765da6p-7", 16_000_000, 10_120_604),
    ("wa", 6, False): ("0x1.466991812bc07p-6", 24_000_000, 24_000_000),
}

SIMULATORS = {"ring": simulate_ring_exchange, "wa": simulate_wa_exchange}


@pytest.mark.parametrize("algo,workers,compress", sorted(PINS))
@pytest.mark.parametrize("topology", [None, "star"])
def test_star_path_is_bit_exact(algo, workers, compress, topology):
    pin_hex, sent, wire_payload = PINS[(algo, workers, compress)]
    result = SIMULATORS[algo](
        workers,
        NBYTES,
        iterations=1,
        compress_gradients=compress,
        topology=topology,
    )
    assert result.total_s.hex() == pin_hex
    assert result.sent_nbytes == sent
    assert result.wire_payload_nbytes == wire_payload
    assert result.background_messages == 0


def test_default_and_explicit_star_identical_with_codec():
    implicit = simulate_ring_exchange(4, NBYTES, compress_gradients=True)
    explicit = simulate_ring_exchange(
        4, NBYTES, compress_gradients=True, topology="star"
    )
    assert implicit.total_s == explicit.total_s
    assert implicit.wire_payload_nbytes == explicit.wire_payload_nbytes
