"""Flow-level fast path: parity against the packet simulator.

The flow model (``repro.perfmodel.flowsim``) mirrors the packet
kernel's arithmetic operation for operation, so parity is pinned
*tight*: the ring topology has zero cross-flow contention and is exact,
and the WA gather's whole-message FIFO approximation measures at float
rounding noise (<= 7e-16 relative) across every tested configuration.
The 1e-9 tolerance below leaves three orders of magnitude of headroom
over rounding while still catching any genuine modeling divergence.
"""

import time

import pytest

from repro.core import inceptionn_profile
from repro.network import RetransmitPolicy
from repro.obs import Tracer
from repro.perfmodel import simulate_ring_exchange, simulate_wa_exchange

#: Pinned flow-vs-packet relative tolerance (see module docstring).
TOL = 1e-9

SIMULATORS = [simulate_ring_exchange, simulate_wa_exchange]


def _both(simulate, workers, nbytes, **kwargs):
    packet = simulate(workers, nbytes, **kwargs)
    flow = simulate(workers, nbytes, fidelity="flow", **kwargs)
    return packet, flow


class TestFlowPacketParity:
    @pytest.mark.parametrize("simulate", SIMULATORS)
    @pytest.mark.parametrize("workers", [2, 3, 5])
    @pytest.mark.parametrize("compress", [False, True])
    def test_single_train_totals_match(self, simulate, workers, compress):
        packet, flow = _both(
            simulate,
            workers,
            2_000_000,
            iterations=2,
            compress_gradients=compress,
        )
        assert flow.total_s == pytest.approx(packet.total_s, rel=TOL)
        assert flow.sent_nbytes == packet.sent_nbytes
        assert flow.wire_payload_nbytes == packet.wire_payload_nbytes
        assert flow.iterations == packet.iterations

    @pytest.mark.parametrize("simulate", SIMULATORS)
    def test_multi_train_totals_match(self, simulate):
        # > ~6.4 MB splits messages into several 4400-packet trains,
        # exercising the cut-through pipelining arithmetic.
        packet, flow = _both(
            simulate, 3, 20_000_000, compress_gradients=True
        )
        assert flow.total_s == pytest.approx(packet.total_s, rel=TOL)
        assert flow.wire_payload_nbytes == packet.wire_payload_nbytes

    def test_explicit_stream_matches(self):
        stream = inceptionn_profile()
        packet, flow = _both(simulate_wa_exchange, 4, 2_000_000, stream=stream)
        assert flow.total_s == pytest.approx(packet.total_s, rel=TOL)
        assert flow.wire_ratio == pytest.approx(packet.wire_ratio, rel=TOL)

    def test_flow_compress_flag_equals_stream(self):
        flagged = simulate_ring_exchange(
            4, 2_000_000, compress_gradients=True, fidelity="flow"
        )
        streamed = simulate_ring_exchange(
            4, 2_000_000, stream=inceptionn_profile(), fidelity="flow"
        )
        assert flagged.total_s == streamed.total_s
        assert flagged.wire_payload_nbytes == streamed.wire_payload_nbytes


class TestFlowScaling:
    def test_1024_worker_ring_sweep_is_fast(self):
        # Acceptance criterion: a Fig-15-style point at 1024 workers
        # completes in seconds, not hours.
        t0 = time.perf_counter()
        result = simulate_ring_exchange(
            1024, 100_000_000, compress_gradients=True, fidelity="flow"
        )
        elapsed = time.perf_counter() - t0
        assert elapsed < 10.0
        assert result.total_s > 0.0
        assert result.num_workers == 1024

    def test_flow_scaling_is_monotonic_in_workers(self):
        totals = [
            simulate_wa_exchange(
                p, 10_000_000, compress_gradients=True, fidelity="flow"
            ).total_s
            for p in (4, 8, 16)
        ]
        assert totals == sorted(totals)


class TestFlowGuards:
    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            simulate_ring_exchange(4, 1000, fidelity="quantum")

    def test_flow_rejects_loss(self):
        with pytest.raises(ValueError, match="loss"):
            simulate_ring_exchange(4, 1000, fidelity="flow", loss_rate=0.1)

    def test_flow_rejects_retransmission(self):
        with pytest.raises(ValueError, match="retransmission"):
            simulate_wa_exchange(
                4, 1000, fidelity="flow", retransmit=RetransmitPolicy()
            )

    def test_flow_rejects_tracer(self):
        with pytest.raises(ValueError, match="tracing"):
            simulate_wa_exchange(4, 1000, fidelity="flow", tracer=Tracer())
