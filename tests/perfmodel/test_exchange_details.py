"""Exchange-simulation detail tests."""

import pytest

from repro.distributed import ComputeProfile
from repro.perfmodel import (
    measure_compression_ratio,
    simulate_ring_exchange,
    simulate_wa_exchange,
)
from repro.dnn.models import PAPER_MODELS

MB = 2**20


def test_local_compute_included_when_asked():
    profile = ComputeProfile(forward_s=0.1, backward_s=0.2)
    without = simulate_ring_exchange(4, 1 * MB, profile=profile).total_s
    with_compute = simulate_ring_exchange(
        4, 1 * MB, profile=profile, include_local_compute=True
    ).total_s
    assert with_compute == pytest.approx(without + 0.3, rel=0.01)


def test_iterations_scale_totals():
    one = simulate_wa_exchange(4, 4 * MB, iterations=1).total_s
    three = simulate_wa_exchange(4, 4 * MB, iterations=3).total_s
    # Sublinear: a worker that received its weights starts uploading the
    # next iteration's gradient while the aggregator is still scattering
    # to the others (full-duplex overlap across iterations).
    assert 2.0 * one < three <= 3.0 * one + 1e-9


def test_gradient_sum_accounting():
    profile = ComputeProfile(sum_bandwidth_bps=1e9)
    result = simulate_wa_exchange(4, 10 * MB, profile=profile)
    # Aggregator sums 3 incoming 10 MB vectors at 1 GB/s.
    assert result.gradient_sum_s == pytest.approx(3 * 10 * MB / 1e9, rel=0.01)


def test_update_accounting():
    profile = ComputeProfile(update_s=0.05)
    result = simulate_wa_exchange(4, 1 * MB, iterations=2, profile=profile)
    assert result.update_s == pytest.approx(0.1)


def test_communicate_is_residual():
    profile = ComputeProfile(update_s=0.01, sum_bandwidth_bps=1e9)
    result = simulate_wa_exchange(4, 10 * MB, profile=profile)
    assert result.communicate_s == pytest.approx(
        result.total_s - result.gradient_sum_s - result.update_s
    )


def test_per_iteration_property():
    result = simulate_ring_exchange(4, 2 * MB, iterations=4)
    assert result.per_iteration_s == pytest.approx(result.total_s / 4)


def test_ring_compression_needs_engines_to_matter():
    plain = simulate_ring_exchange(4, 16 * MB).total_s
    # compress_gradients=False ignores the ratio entirely.
    same = simulate_ring_exchange(4, 16 * MB, gradient_ratio=10.0).total_s
    assert same == pytest.approx(plain, rel=1e-6)


def test_measured_ratio_is_deterministic():
    spec = PAPER_MODELS["ResNet-50"]
    assert measure_compression_ratio(spec, seed=1) == measure_compression_ratio(
        spec, seed=1
    )
    assert measure_compression_ratio(spec, seed=1) != measure_compression_ratio(
        spec, seed=2
    )


@pytest.mark.parametrize("simulate", [simulate_wa_exchange, simulate_ring_exchange])
def test_bandwidth_scales_exchange(simulate):
    slow = simulate(4, 8 * MB, bandwidth_bps=1e9).total_s
    fast = simulate(4, 8 * MB, bandwidth_bps=10e9).total_s
    assert slow == pytest.approx(10 * fast, rel=0.15)
