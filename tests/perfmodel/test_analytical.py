"""Analytical model tests (Sec. VIII-D formulas)."""

import pytest

from repro.perfmodel import (
    CostParameters,
    exchange_speedup,
    ring_exchange_time,
    wa_exchange_time,
)

PARAMS = CostParameters.from_rates(
    link_latency_s=2e-6, bandwidth_bps=10e9, sum_bandwidth_bps=10.4e9
)


def test_from_rates_conversions():
    assert PARAMS.beta_s_per_byte == pytest.approx(0.8e-9)
    assert PARAMS.gamma_s_per_byte == pytest.approx(1 / 10.4e9)
    assert PARAMS.alpha_s == 2e-6


def test_from_rates_validation():
    with pytest.raises(ValueError):
        CostParameters.from_rates(0, -1, 1)


def test_wa_formula_exact():
    # (1 + log p) a + (p + log p) n b + (p-1) n g, p=4 -> log p = 2
    n = 1e6
    t = wa_exchange_time(4, n, PARAMS)
    expected = (
        3 * PARAMS.alpha_s
        + 6 * n * PARAMS.beta_s_per_byte
        + 3 * n * PARAMS.gamma_s_per_byte
    )
    assert t == pytest.approx(expected)


def test_ring_formula_exact():
    n = 1e6
    t = ring_exchange_time(4, n, PARAMS)
    expected = (
        6 * PARAMS.alpha_s
        + 2 * 0.75 * n * PARAMS.beta_s_per_byte
        + 0.75 * n * PARAMS.gamma_s_per_byte
    )
    assert t == pytest.approx(expected)


def test_wa_grows_linearly_with_cluster():
    n = 233 * 2**20
    times = [wa_exchange_time(p, n, PARAMS) for p in (4, 8, 16)]
    # Roughly doubles with p in the bandwidth-bound regime.
    assert times[1] / times[0] == pytest.approx(2, rel=0.35)
    assert times[2] / times[1] == pytest.approx(2, rel=0.35)


def test_ring_saturates_with_cluster():
    n = 233 * 2**20
    times = [ring_exchange_time(p, n, PARAMS) for p in (4, 8, 16, 64)]
    assert times[-1] / times[0] < 1.4  # (p-1)/p -> 1


def test_speedup_grows_with_cluster_size():
    n = 98 * 2**20
    speedups = [exchange_speedup(p, n, PARAMS) for p in (2, 4, 8)]
    assert speedups[0] < speedups[1] < speedups[2]


def test_minimum_workers_enforced():
    with pytest.raises(ValueError):
        wa_exchange_time(1, 100, PARAMS)
    with pytest.raises(ValueError):
        ring_exchange_time(1, 100, PARAMS)


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        wa_exchange_time(4, -1, PARAMS)
