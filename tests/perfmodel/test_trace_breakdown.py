"""Trace-driven Table II breakdown: parity with the inline accounting."""

import pytest

from repro.distributed.node import ComputeProfile
from repro.obs import CAT_PHASE, Tracer
from repro.perfmodel import (
    compute_profile_for,
    simulate_ring_exchange,
    simulate_wa_exchange,
    simulated_breakdown,
)

MB = 2**20

PROFILE = ComputeProfile(
    forward_s=0.01,
    backward_s=0.05,
    gpu_copy_s=0.002,
    update_s=0.02,
    sum_bandwidth_bps=10.4e9,
)


@pytest.mark.parametrize("simulate", [simulate_wa_exchange, simulate_ring_exchange])
def test_tracer_does_not_change_timing(simulate):
    kwargs = dict(
        num_workers=4,
        nbytes=8 * MB,
        iterations=2,
        profile=PROFILE,
        include_local_compute=True,
    )
    untraced = simulate(**kwargs)
    tracer = Tracer()
    traced = simulate(tracer=tracer, **kwargs)
    assert traced.total_s == untraced.total_s
    assert traced.gradient_sum_s == untraced.gradient_sum_s
    assert traced.update_s == untraced.update_s
    assert len(tracer) > 0


@pytest.mark.parametrize("simulate", [simulate_wa_exchange, simulate_ring_exchange])
def test_phase_spans_reproduce_inline_sums(simulate):
    tracer = Tracer()
    iterations = 3
    result = simulate(
        num_workers=4,
        nbytes=8 * MB,
        iterations=iterations,
        profile=PROFILE,
        include_local_compute=True,
        tracer=tracer,
    )
    totals = tracer.phase_totals()
    # The span sums are the same float accumulation as the inline +=,
    # so this parity is exact, not approximate.
    assert totals["gradient_sum"] == result.gradient_sum_s
    assert totals["update"] == result.update_s
    assert totals["forward"] == pytest.approx(
        PROFILE.forward_s * iterations, abs=1e-6
    )
    assert totals["backward"] == pytest.approx(
        PROFILE.backward_s * iterations, abs=1e-6
    )
    assert totals["gpu_copy"] == pytest.approx(
        PROFILE.gpu_copy_s * iterations, abs=1e-6
    )


def test_breakdown_from_trace_matches_legacy_arithmetic():
    # The trace-backed simulated_breakdown must agree with the retired
    # parallel bookkeeping (profile * iterations + ExchangeResult sums)
    # to 1e-6 — the acceptance bar for rebuilding report.py on spans.
    model, iterations = "AlexNet", 2
    profile = compute_profile_for(model)
    breakdown = simulated_breakdown(model, iterations=iterations)
    from repro.dnn.models import PAPER_MODELS

    legacy = simulate_wa_exchange(
        num_workers=4,
        nbytes=PAPER_MODELS[model].nbytes,
        iterations=iterations,
        profile=profile,
        include_local_compute=True,
    )
    assert breakdown.forward == pytest.approx(
        profile.forward_s * iterations, abs=1e-6
    )
    assert breakdown.backward == pytest.approx(
        profile.backward_s * iterations, abs=1e-6
    )
    assert breakdown.gpu_copy == pytest.approx(
        profile.gpu_copy_s * iterations, abs=1e-6
    )
    assert breakdown.gradient_sum == pytest.approx(
        legacy.gradient_sum_s, abs=1e-6
    )
    assert breakdown.update == pytest.approx(legacy.update_s, abs=1e-6)
    legacy_communicate = max(
        0.0,
        legacy.total_s
        - profile.forward_s * iterations
        - profile.backward_s * iterations
        - profile.gpu_copy_s * iterations
        - legacy.gradient_sum_s
        - legacy.update_s,
    )
    assert breakdown.communicate == pytest.approx(legacy_communicate, abs=1e-6)


def test_breakdown_accepts_external_tracer():
    tracer = Tracer()
    breakdown = simulated_breakdown("HDC", iterations=1, tracer=tracer)
    assert tracer.count(CAT_PHASE) > 0
    totals = tracer.phase_totals()
    assert totals.get("forward", 0.0) == breakdown.forward
