"""Paper-scale exchange simulation, Table II breakdown, estimator tests."""

import pytest

from repro.core import ErrorBound
from repro.perfmodel import (
    CONFIGURATIONS,
    CostParameters,
    TABLE2,
    compute_profile_for,
    equal_accuracy_speedup,
    estimate_iteration_time,
    fig12_estimates,
    measure_compression_ratio,
    paper_breakdown,
    ring_exchange_time,
    simulate_ring_exchange,
    simulate_wa_exchange,
    simulated_breakdown,
    wa_exchange_time,
)
from repro.dnn.models import PAPER_MODELS

MB = 2**20


class TestCalibration:
    def test_profiles_match_table2_rows(self):
        profile = compute_profile_for("AlexNet")
        assert profile.forward_s == pytest.approx(0.0313)
        assert profile.backward_s == pytest.approx(0.1622)
        assert profile.update_s == pytest.approx(0.1367)

    def test_sum_bandwidth_is_memory_scale(self):
        profile = compute_profile_for("AlexNet")
        # Summing three 233 MB vectors in 89.4 ms/iteration -> ~8 GB/s.
        assert 2e9 < profile.sum_bandwidth_bps < 5e10

    def test_hdc_zero_copy(self):
        assert compute_profile_for("HDC").gpu_copy_s == 0.0

    def test_table2_totals(self):
        assert TABLE2["AlexNet"].total == pytest.approx(196.35)
        assert TABLE2["VGG-16"].communication_fraction == pytest.approx(
            0.709, abs=0.01
        )


class TestExchangeSimulation:
    def test_wa_matches_analytical_shape(self):
        n = 98 * MB
        profile = compute_profile_for("ResNet-50")
        sim = simulate_wa_exchange(4, n, profile=profile).total_s
        params = CostParameters.from_rates(2e-6, 10e9, profile.sum_bandwidth_bps)
        analytic = wa_exchange_time(4, n, params)
        assert sim == pytest.approx(analytic, rel=0.4)

    def test_ring_matches_analytical_shape(self):
        n = 98 * MB
        profile = compute_profile_for("ResNet-50")
        sim = simulate_ring_exchange(4, n, profile=profile).total_s
        params = CostParameters.from_rates(2e-6, 10e9, profile.sum_bandwidth_bps)
        analytic = ring_exchange_time(4, n, params)
        assert sim == pytest.approx(analytic, rel=0.4)

    def test_ring_beats_wa(self):
        n = 233 * MB
        profile = compute_profile_for("AlexNet")
        wa = simulate_wa_exchange(4, n, profile=profile).total_s
        ring = simulate_ring_exchange(4, n, profile=profile).total_s
        assert ring < wa

    def test_wa_scales_linearly_ring_saturates(self):
        n = 233 * MB
        wa4 = simulate_wa_exchange(4, n).total_s
        wa8 = simulate_wa_exchange(8, n).total_s
        ring4 = simulate_ring_exchange(4, n).total_s
        ring8 = simulate_ring_exchange(8, n).total_s
        assert wa8 / wa4 > 1.6
        assert ring8 / ring4 < 1.25

    def test_compression_helps_ring_more_than_wa(self):
        n = 98 * MB
        ratio = 10.0
        wa_plain = simulate_wa_exchange(4, n).total_s
        wa_comp = simulate_wa_exchange(
            4, n, compress_gradients=True, gradient_ratio=ratio
        ).total_s
        ring_plain = simulate_ring_exchange(4, n).total_s
        ring_comp = simulate_ring_exchange(
            4, n, compress_gradients=True, gradient_ratio=ratio
        ).total_s
        wa_gain = wa_plain / wa_comp
        ring_gain = ring_plain / ring_comp
        assert ring_gain > wa_gain  # both legs compress in the ring

    def test_minimum_workers(self):
        with pytest.raises(ValueError):
            simulate_wa_exchange(1, 100)
        with pytest.raises(ValueError):
            simulate_ring_exchange(1, 100)

    def test_per_iteration_scaling(self):
        result = simulate_ring_exchange(4, 10 * MB, iterations=4)
        single = simulate_ring_exchange(4, 10 * MB, iterations=1)
        assert result.per_iteration_s == pytest.approx(
            single.total_s, rel=0.25
        )


class TestBreakdown:
    @pytest.mark.parametrize("model", ["HDC", "ResNet-50", "AlexNet"])
    def test_communication_dominates(self, model):
        bd = simulated_breakdown(model, iterations=5)
        assert bd.communicate / bd.total > 0.5

    def test_matches_paper_within_factor_two(self):
        bd = simulated_breakdown("AlexNet", iterations=5)
        paper = paper_breakdown("AlexNet")
        sim_frac = bd.communicate / bd.total
        assert sim_frac == pytest.approx(
            paper.communicate / paper.total, abs=0.15
        )

    def test_compute_rows_are_calibrated_exactly(self):
        bd = simulated_breakdown("ResNet-50", iterations=5)
        paper = paper_breakdown("ResNet-50")
        scale = 5 / paper.iterations
        assert bd.forward == pytest.approx(paper.forward * scale)
        assert bd.backward == pytest.approx(paper.backward * scale)


class TestEstimator:
    def test_fig12_configuration_ordering(self):
        est = fig12_estimates("AlexNet")
        assert set(est) == set(CONFIGURATIONS)
        # WA slowest, INC+C fastest; compression helps both algorithms.
        assert est["WA"].iteration_s > est["WA+C"].iteration_s
        assert est["INC"].iteration_s > est["INC+C"].iteration_s
        assert est["WA"].iteration_s > est["INC"].iteration_s

    def test_fig12_headline_speedup_band(self):
        est = fig12_estimates("AlexNet")
        speedup = est["WA"].iteration_s / est["INC+C"].iteration_s
        # Paper: 2.2x (VGG-16) to 3.1x (AlexNet).
        assert 2.0 < speedup < 4.5

    def test_fig13_speedups_in_paper_band(self):
        sp = equal_accuracy_speedup("AlexNet")
        assert 2.2 < sp.speedup < 4.0
        sp_vgg = equal_accuracy_speedup("VGG-16")
        assert 1.5 < sp_vgg.speedup < 3.5

    def test_extra_epochs_reduce_speedup(self):
        base = equal_accuracy_speedup("HDC", epochs=(17, 17)).speedup
        extra = equal_accuracy_speedup("HDC", epochs=(17, 19)).speedup
        assert extra < base

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            estimate_iteration_time("AlexNet", "WA+turbo")

    def test_measured_ratio_band(self):
        for model in ("AlexNet", "VGG-16"):
            spec = PAPER_MODELS[model]
            ratio = measure_compression_ratio(spec, ErrorBound(10))
            assert 2.0 < ratio <= 16.0
