"""Size-only exchange model under in-network aggregation.

``simulate_wa_exchange(agg_site="switch")`` routes sized payloads over
the fabric's reduction tree instead of point-to-point worker->aggregator
sends.  The wins and the guardrails both live here: fewer link-level
bytes than the endpoint site, engine cycles accounted at the merge
vertices, and loud rejections for every configuration the site cannot
serve.
"""

import pytest

from repro.perfmodel import simulate_ring_exchange, simulate_wa_exchange

NBYTES = 1 << 20


def _wa(agg_site, **kwargs):
    from repro.core import profile_for

    kwargs.setdefault("topology", "fat-tree:k=4")
    kwargs.setdefault("stream", profile_for("lossless_hc"))
    kwargs.setdefault("iterations", 1)
    return simulate_wa_exchange(
        num_workers=4,
        nbytes=NBYTES,
        agg_site=agg_site,
        **kwargs,
    )


def test_switch_site_reduces_link_bytes():
    endpoint = _wa("endpoint")
    switch = _wa("switch")
    assert switch.link_payload_nbytes < endpoint.link_payload_nbytes
    assert endpoint.link_payload_nbytes > 0


def test_switch_site_accounts_engine_work():
    switch = _wa("switch")
    assert switch.agg_engine_cycles > 0
    assert switch.switch_reductions > 0


def test_endpoint_site_has_no_engine_work():
    endpoint = _wa("endpoint")
    assert endpoint.agg_engine_cycles == 0
    assert endpoint.switch_reductions == 0


def test_iterations_scale_the_reductions():
    one = _wa("switch")
    two = _wa("switch", iterations=2)
    assert two.switch_reductions == 2 * one.switch_reductions
    assert two.agg_engine_cycles == 2 * one.agg_engine_cycles


class TestRejections:
    def test_flow_fidelity(self):
        with pytest.raises(ValueError):
            _wa("switch", fidelity="flow")

    def test_star_topology(self):
        with pytest.raises(ValueError, match="multi-tier"):
            _wa("switch", topology=None)

    def test_raw_stream(self):
        with pytest.raises(ValueError):
            simulate_wa_exchange(
                num_workers=4,
                nbytes=NBYTES,
                topology="fat-tree:k=4",
                agg_site="switch",
            )

    def test_non_homomorphic_codec(self):
        from repro.core import profile_for

        with pytest.raises(ValueError, match="homomorphic"):
            simulate_wa_exchange(
                num_workers=4,
                nbytes=NBYTES,
                topology="fat-tree:k=4",
                stream=profile_for("inceptionn"),
                agg_site="switch",
            )

    def test_ring_has_no_root(self):
        with pytest.raises(ValueError, match="reduction root"):
            simulate_ring_exchange(
                num_workers=4, nbytes=NBYTES, agg_site="switch"
            )

    def test_bogus_site(self):
        with pytest.raises(ValueError, match="agg_site"):
            simulate_wa_exchange(
                num_workers=4, nbytes=NBYTES, agg_site="nic"
            )
