"""NIC datapath tests: ToS classification, message segmentation, counters."""

import numpy as np
import pytest

from repro.core import ErrorBound
from repro.hardware import InceptionnNic, timing_model_for
from repro.network import TOS_COMPRESS, TOS_DEFAULT, Packet

BOUND = ErrorBound(10)


def _nic(node=0, enabled=True, **kwargs):
    return InceptionnNic(node, BOUND, enabled=enabled, **kwargs)


def _gradients(n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * 0.3).astype(np.float32)


def test_tos_match_triggers_compression():
    nic = _nic()
    data = _gradients(365).tobytes()  # 1460 bytes, exactly one MSS
    pkt = Packet(src=0, dst=1, tos=TOS_COMPRESS, payload=data)
    out = nic.process_tx(pkt)
    assert len(out.payload) < len(data)
    assert nic.counters.tx_compressed == 1


def test_default_tos_bypasses():
    nic = _nic()
    data = _gradients(100).tobytes()
    pkt = Packet(src=0, dst=1, tos=TOS_DEFAULT, payload=data)
    out = nic.process_tx(pkt)
    assert out is pkt
    assert nic.counters.tx_bypassed == 1
    assert nic.counters.tx_compressed == 0


def test_disabled_nic_never_compresses():
    nic = _nic(enabled=False)
    pkt = Packet(src=0, dst=1, tos=TOS_COMPRESS, payload=_gradients(64).tobytes())
    out = nic.process_tx(pkt)
    assert out is pkt


def test_tx_rx_roundtrip_single_packet():
    tx_nic, rx_nic = _nic(0), _nic(1)
    values = _gradients(256)
    pkt = Packet(src=0, dst=1, tos=TOS_COMPRESS, payload=values.tobytes())
    wire = tx_nic.process_tx(pkt)
    restored = rx_nic.process_rx(wire)
    out = np.frombuffer(restored.payload, dtype=np.float32)
    assert np.max(np.abs(out - values)) < BOUND.bound
    assert rx_nic.counters.rx_decompressed == 1


def test_message_level_roundtrip_multi_packet():
    tx_nic, rx_nic = _nic(0), _nic(1)
    values = _gradients(10_000, seed=3)
    wire_packets = tx_nic.transmit_message(values.tobytes(), dst=1, tos=TOS_COMPRESS)
    assert len(wire_packets) > 1
    restored = rx_nic.receive_message(wire_packets)
    out = np.frombuffer(restored, dtype=np.float32)
    assert out.shape == values.shape
    assert np.max(np.abs(out - values)) < BOUND.bound


def test_out_of_order_packets_reassemble():
    tx_nic, rx_nic = _nic(0), _nic(1)
    values = _gradients(5000, seed=4)
    packets = tx_nic.transmit_message(values.tobytes(), dst=1, tos=TOS_COMPRESS)
    shuffled = list(reversed(packets))
    restored = rx_nic.receive_message(shuffled)
    out = np.frombuffer(restored, dtype=np.float32)
    assert np.max(np.abs(out - values)) < BOUND.bound


def test_uncompressed_message_passes_untouched():
    tx_nic, rx_nic = _nic(0), _nic(1)
    data = bytes(range(256)) * 10
    packets = tx_nic.transmit_message(data, dst=1, tos=TOS_DEFAULT)
    assert rx_nic.receive_message(packets) == data


def test_compression_ratio_counter():
    nic = _nic()
    values = np.zeros(8 * 365, dtype=np.float32)  # maximally compressible
    nic.transmit_message(values.tobytes(), dst=1, tos=TOS_COMPRESS)
    assert nic.counters.tx_compression_ratio == pytest.approx(16.0, rel=0.01)


def test_size_only_packet_rejected_by_bit_exact_path():
    nic = _nic()
    pkt = Packet(src=0, dst=1, tos=TOS_COMPRESS, payload_nbytes=1460)
    with pytest.raises(ValueError):
        nic.process_tx(pkt)
    with pytest.raises(ValueError):
        nic.process_rx(pkt)


def test_context_preserved_through_compression():
    tx_nic, rx_nic = _nic(0), _nic(1)
    marker = {"block": 3}
    pkt = Packet(
        src=0, dst=1, tos=TOS_COMPRESS, payload=_gradients(64).tobytes(),
        context=marker,
    )
    wire = tx_nic.process_tx(pkt)
    restored = rx_nic.process_rx(wire)
    assert restored.context is marker


def test_timing_model_export():
    nic = _nic()
    model = timing_model_for(nic)
    assert model.compression
    assert model.engine_throughput_bps == pytest.approx(3.2e9)
    narrow = _nic(num_blocks=2)
    assert timing_model_for(narrow).engine_throughput_bps == pytest.approx(0.8e9)
