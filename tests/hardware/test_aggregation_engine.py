"""Cycle/throughput accounting of the switch-side aggregation engine."""

import pytest

from repro.hardware import AggregationEngine, AggregationStats
from repro.hardware.axi import BURST_BITS
from repro.hardware.compression_engine import (
    DEFAULT_CLOCK_HZ,
    PIPELINE_DEPTH,
)


def _bursts(nbytes):
    return -(-(nbytes * 8) // BURST_BITS)


def test_reduce_cycles_are_bursts_plus_pipeline_drain():
    engine = AggregationEngine()
    stats = engine.reduce([1024, 1024], output_nbytes=1024)
    assert stats.fan_in == 2
    assert stats.bytes_in == 2048
    assert stats.bytes_out == 1024
    assert stats.cycles == _bursts(1024) * 2 + PIPELINE_DEPTH


def test_lanes_divide_the_streaming_beats():
    narrow = AggregationEngine(lanes=1).reduce([4096] * 4, 4096)
    wide = AggregationEngine(lanes=4).reduce([4096] * 4, 4096)
    beats = _bursts(4096) * 4
    assert narrow.cycles == beats + PIPELINE_DEPTH
    assert wide.cycles == -(-beats // 4) + PIPELINE_DEPTH
    assert wide.cycles < narrow.cycles


def test_partial_bursts_round_up():
    stats = AggregationEngine().reduce([1], 1)
    assert stats.cycles == 1 + PIPELINE_DEPTH


def test_totals_accumulate_across_reductions():
    engine = AggregationEngine()
    engine.reduce([512, 512], 512)
    engine.reduce([512, 512, 512], 512)
    assert engine.total_reductions == 2
    assert engine.total_bytes_in == 512 * 5
    assert engine.total_bytes_out == 1024
    assert engine.total_cycles == (
        _bursts(512) * 5 + 2 * PIPELINE_DEPTH
    )


def test_elapsed_and_throughput_follow_the_clock():
    engine = AggregationEngine(clock_hz=1e6)
    stats = engine.reduce([BURST_BITS // 8] * 2, BURST_BITS // 8)
    assert stats.elapsed_s(1e6) == stats.cycles / 1e6
    assert engine.elapsed_s() == engine.total_cycles / 1e6
    expected_bps = engine.total_bytes_in * 8 * 1e6 / engine.total_cycles
    assert engine.throughput_bps() == pytest.approx(expected_bps)


def test_idle_engine_reports_zero_throughput():
    assert AggregationEngine().throughput_bps() == 0.0


def test_default_clock_matches_compression_engines():
    assert AggregationEngine().clock_hz == DEFAULT_CLOCK_HZ


def test_validation():
    with pytest.raises(ValueError):
        AggregationEngine(lanes=0)
    with pytest.raises(ValueError):
        AggregationEngine(clock_hz=0)
    engine = AggregationEngine()
    with pytest.raises(ValueError):
        engine.reduce([], 0)
    with pytest.raises(ValueError):
        engine.reduce([-1], 0)
    with pytest.raises(ValueError):
        engine.reduce([1], -1)


def test_stats_are_frozen():
    stats = AggregationStats(fan_in=2, bytes_in=8, bytes_out=4, cycles=5)
    with pytest.raises(AttributeError):
        stats.cycles = 6
