"""Engine tests: bit-exactness against the software codec, cycle model."""

import numpy as np
import pytest

from repro.core import ErrorBound, compress, decompress
from repro.hardware import (
    BurstError,
    CompressionEngine,
    DecompressionEngine,
    DecompressionError,
    TagDecoder,
)

BOUND = ErrorBound(10)


def _gradient_bytes(n, seed=0, scale=0.3):
    rng = np.random.default_rng(seed)
    values = (rng.standard_normal(n) * scale).astype(np.float32)
    return values, values.tobytes()


@pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 16, 100, 1000])
def test_compressor_matches_software_codec(n):
    values, payload = _gradient_bytes(n)
    engine = CompressionEngine(BOUND)
    hw_stream, stats = engine.compress(payload)
    sw_stream = compress(values, BOUND).to_bytes()
    assert hw_stream == sw_stream
    assert stats.bursts_in == -(-n // 8)


@pytest.mark.parametrize("exp", [6, 8, 10])
def test_compressor_matches_across_bounds(exp):
    bound = ErrorBound(exp)
    values, payload = _gradient_bytes(500, seed=exp)
    hw_stream, _ = CompressionEngine(bound).compress(payload)
    assert hw_stream == compress(values, bound).to_bytes()


@pytest.mark.parametrize("n", [1, 8, 9, 100, 1000])
def test_decompressor_roundtrip(n):
    values, payload = _gradient_bytes(n, seed=n)
    stream, _ = CompressionEngine(BOUND).compress(payload)
    restored, stats = DecompressionEngine(BOUND).decompress(stream, num_values=n)
    expected = decompress(compress(values, BOUND)).tobytes()
    assert restored == expected


def test_decompressor_without_length_pads_to_group():
    values, payload = _gradient_bytes(3)
    stream, _ = CompressionEngine(BOUND).compress(payload)
    restored, _ = DecompressionEngine(BOUND).decompress(stream)
    assert len(restored) == 8 * 4  # whole group
    as_floats = np.frombuffer(restored, dtype=np.float32)
    assert np.all(as_floats[3:] == 0.0)


def test_decompressor_rejects_truncated_stream():
    _, payload = _gradient_bytes(64)
    stream, _ = CompressionEngine(BOUND).compress(payload)
    with pytest.raises(DecompressionError):
        DecompressionEngine(BOUND).decompress(stream[:-3], num_values=64)


def test_decompressor_rejects_impossible_length():
    _, payload = _gradient_bytes(8)
    stream, _ = CompressionEngine(BOUND).compress(payload)
    with pytest.raises(DecompressionError):
        DecompressionEngine(BOUND).decompress(stream, num_values=999)


def test_misaligned_payload_rejected():
    with pytest.raises(BurstError):
        CompressionEngine(BOUND).compress(b"\x00" * 7)


def test_empty_payload():
    engine = CompressionEngine(BOUND)
    stream, stats = engine.compress(b"")
    assert stream == b""
    assert stats.cycles == 0
    restored, _ = DecompressionEngine(BOUND).decompress(b"")
    assert restored == b""


def test_tag_decoder_sizes():
    # tags: lane0=NO_COMPRESS(32) lane1=BIT16(16) lane2=BIT8(8) rest ZERO
    tag_word = 0b11 | (0b10 << 2) | (0b01 << 4)
    assert TagDecoder.group_payload_bits(tag_word) == 56
    assert TagDecoder.decode(tag_word)[:3] == [0b11, 0b10, 0b01]


def test_cycle_count_scales_with_bursts():
    _, payload = _gradient_bytes(8 * 100)
    engine = CompressionEngine(BOUND)
    _, stats = engine.compress(payload)
    assert stats.bursts_in == 100
    assert stats.cycles == 100 + 4  # one burst per cycle + pipeline fill


def test_narrow_engine_needs_more_cycles():
    _, payload = _gradient_bytes(8 * 100)
    wide, _ = CompressionEngine(BOUND, num_blocks=8).compress(payload)
    narrow_engine = CompressionEngine(BOUND, num_blocks=2)
    narrow, stats = narrow_engine.compress(payload)
    assert narrow == wide  # functionality unchanged
    assert stats.cycles == 100 * 4 + 4
    assert narrow_engine.throughput_bps() == pytest.approx(32 * 100e6 / 4)


def test_invalid_block_count_rejected():
    with pytest.raises(ValueError):
        CompressionEngine(BOUND, num_blocks=0)
    with pytest.raises(ValueError):
        DecompressionEngine(BOUND, num_blocks=-1)


def test_stats_elapsed_time():
    _, payload = _gradient_bytes(8 * 50)
    _, stats = CompressionEngine(BOUND).compress(payload)
    assert stats.elapsed_s(100e6) == pytest.approx(stats.cycles / 100e6)


def test_extreme_values_survive_hardware_path():
    values = np.array(
        [np.inf, -np.inf, np.nan, 0.0, -0.0, 1e-40, 1.0, -1.0], dtype=np.float32
    )
    stream, _ = CompressionEngine(BOUND).compress(values.tobytes())
    restored, _ = DecompressionEngine(BOUND).decompress(stream, num_values=8)
    out = np.frombuffer(restored, dtype=np.float32)
    assert out[0] == np.inf and out[1] == -np.inf and np.isnan(out[2])
    assert out[6] == 1.0 and out[7] == -1.0


class TestBulkStructuralEquivalence:
    """The vectorized fast paths are pinned to the burst-level models."""

    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 100, 1000])
    @pytest.mark.parametrize("num_blocks", [8, 3])
    def test_compress_paths_agree(self, n, num_blocks):
        _, payload = _gradient_bytes(n, seed=n)
        bulk = CompressionEngine(BOUND, num_blocks=num_blocks)
        structural = CompressionEngine(BOUND, num_blocks=num_blocks)
        data_b, stats_b = bulk.compress(payload)
        data_s, stats_s = structural.compress_structural(payload)
        assert data_b == data_s
        assert stats_b.bursts_in == stats_s.bursts_in
        assert stats_b.bursts_out == stats_s.bursts_out
        assert stats_b.bits_out == stats_s.bits_out
        assert stats_b.cycles == stats_s.cycles
        assert bulk.total_cycles == structural.total_cycles
        assert bulk.total_bursts == structural.total_bursts
        assert [b.words_processed for b in bulk.blocks] == [
            b.words_processed for b in structural.blocks
        ]

    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 100, 1000])
    @pytest.mark.parametrize("num_blocks", [8, 3])
    def test_decompress_paths_agree(self, n, num_blocks):
        values, payload = _gradient_bytes(n, seed=n + 50)
        stream = compress(values, BOUND).to_bytes()
        bulk = DecompressionEngine(BOUND, num_blocks=num_blocks)
        structural = DecompressionEngine(BOUND, num_blocks=num_blocks)
        data_b, stats_b = bulk.decompress(stream, num_values=n)
        data_s, stats_s = structural.decompress_structural(
            stream, num_values=n
        )
        assert data_b == data_s
        assert stats_b.bursts_in == stats_s.bursts_in
        assert stats_b.bursts_out == stats_s.bursts_out
        assert stats_b.bits_out == stats_s.bits_out
        assert stats_b.cycles == stats_s.cycles
        assert bulk.total_cycles == structural.total_cycles
        assert bulk.total_groups == structural.total_groups
        assert [b.words_produced for b in bulk.blocks] == [
            b.words_produced for b in structural.blocks
        ]

    def test_bulk_compress_rejects_ragged_payload(self):
        with pytest.raises(BurstError):
            CompressionEngine(BOUND).compress(b"\x00" * 7)

    def test_bulk_decompress_truncation_message_names_group(self):
        values, _ = _gradient_bytes(64, seed=9)
        stream = compress(values, BOUND).to_bytes()
        with pytest.raises(DecompressionError, match="group"):
            DecompressionEngine(BOUND).decompress(stream[:-3], num_values=64)
