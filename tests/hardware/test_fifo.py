"""Virtual FIFO model tests."""

import pytest

from repro.hardware.fifo import FifoOverflow, VirtualFifo, simulate_fifo


class TestVirtualFifo:
    def test_push_pop(self):
        fifo = VirtualFifo(capacity=100)
        fifo.push(60)
        assert fifo.occupancy == 60
        assert fifo.pop(40) == 40
        assert fifo.occupancy == 20

    def test_pop_limited_by_occupancy(self):
        fifo = VirtualFifo(capacity=100)
        fifo.push(10)
        assert fifo.pop(50) == 10
        assert fifo.occupancy == 0

    def test_overflow_raises(self):
        fifo = VirtualFifo(capacity=10)
        with pytest.raises(FifoOverflow):
            fifo.push(11)

    def test_high_watermark(self):
        fifo = VirtualFifo(capacity=100)
        fifo.push(70)
        fifo.pop(50)
        fifo.push(20)
        assert fifo.high_watermark == 70

    def test_totals(self):
        fifo = VirtualFifo(capacity=100)
        fifo.push(50)
        fifo.pop(30)
        assert fifo.total_in == 50 and fifo.total_out == 30

    def test_trace_sampling(self):
        fifo = VirtualFifo(capacity=100)
        fifo.push(10)
        fifo.sample(1.0)
        fifo.pop(10)
        fifo.sample(2.0)
        assert fifo.trace == [(1.0, 10), (2.0, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualFifo(capacity=0)
        fifo = VirtualFifo(capacity=1)
        with pytest.raises(ValueError):
            fifo.push(-1)
        with pytest.raises(ValueError):
            fifo.pop(-1)


class TestFifoSizing:
    def test_rate_matched_stays_shallow(self):
        result = simulate_fifo(
            producer_bps=1.25e9,
            consumer_bps=1.25e9,
            burst_bytes=64 * 1024,
            capacity=1 << 20,
        )
        assert not result.overflowed
        assert result.high_watermark < 4096

    def test_fast_producer_fills_fifo(self):
        # Engine output at 3.2 GB/s feeding a 1.25 GB/s MAC: the FIFO
        # absorbs the difference and must be sized for the burst.
        result = simulate_fifo(
            producer_bps=3.2e9,
            consumer_bps=1.25e9,
            burst_bytes=64 * 1024,
            capacity=1 << 20,
        )
        assert not result.overflowed
        expected_peak = 64 * 1024 * (1 - 1.25 / 3.2)
        assert result.high_watermark == pytest.approx(expected_peak, rel=0.1)

    def test_undersized_fifo_overflows(self):
        result = simulate_fifo(
            producer_bps=3.2e9,
            consumer_bps=1.25e9,
            burst_bytes=64 * 1024,
            capacity=1024,
        )
        assert result.overflowed

    def test_idle_gaps_cause_underrun(self):
        result = simulate_fifo(
            producer_bps=1.25e9,
            consumer_bps=1.25e9,
            burst_bytes=16 * 1024,
            capacity=1 << 16,
            idle_gap_s=50e-6,
            bursts=3,
        )
        assert result.underrun_time_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fifo(0, 1, 1, 1)
        with pytest.raises(ValueError):
            simulate_fifo(1, 1, 0, 1)
