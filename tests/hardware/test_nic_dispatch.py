"""NIC engine dispatch: ToS byte -> engine table (tentpole hardware leg)."""

import numpy as np
import pytest

from repro.core import ErrorBound
from repro.hardware import (
    InceptionnNic,
    PacketEngine,
    snappy_engine,
    sz_engine,
)
from repro.network.packet import TOS_COMPRESS, TOS_DEFAULT, Packet

BOUND = ErrorBound(10)
SNAPPY_TOS = 0x40
SZ_TOS = 0x3C


def _nic(enabled=True):
    return InceptionnNic(node_id=0, bound=BOUND, enabled=enabled)


def test_inceptionn_engine_preinstalled_at_0x28():
    nic = _nic()
    engine = nic.engine_for(TOS_COMPRESS)
    assert engine is not None and engine.name == "inceptionn"
    assert nic.engine_for(TOS_DEFAULT) is None


def test_unregistered_tos_bypasses_identically():
    nic = _nic()
    pkt = Packet(src=0, dst=1, seq=0, tos=0x77, payload=b"\x00" * 64)
    out = nic.process_tx(pkt)
    assert out is pkt
    assert nic.counters.tx_bypassed == 1
    out = nic.process_rx(pkt)
    assert out is pkt
    assert nic.counters.rx_bypassed == 1


def test_disabled_nic_bypasses_registered_tos():
    nic = _nic(enabled=False)
    nic.register_engine(SNAPPY_TOS, snappy_engine())
    pkt = Packet(src=0, dst=1, seq=0, tos=SNAPPY_TOS, payload=b"abc" * 40)
    assert nic.process_tx(pkt) is pkt


def test_snappy_engine_round_trips_bit_exact():
    tx = _nic()
    rx = _nic()
    for nic in (tx, rx):
        nic.register_engine(SNAPPY_TOS, snappy_engine())
    data = (b"gradient stream " * 400)[:6000]
    packets = tx.transmit_message(data, dst=1, tos=SNAPPY_TOS)
    assert tx.counters.tx_compressed == len(packets)
    assert tx.counters.tx_payload_bytes_out < tx.counters.tx_payload_bytes_in
    assert rx.receive_message(packets) == data


def test_sz_engine_round_trips_within_bound():
    tx = _nic()
    rx = _nic()
    bound = 2.0**-10
    for nic in (tx, rx):
        nic.register_engine(SZ_TOS, sz_engine(bound))
    rng = np.random.default_rng(5)
    values = (rng.standard_normal(730) * 0.004).astype(np.float32)
    packets = tx.transmit_message(values.tobytes(), dst=1, tos=SZ_TOS, mss=1460)
    restored = np.frombuffer(rx.receive_message(packets), dtype=np.float32)
    assert restored.size == values.size
    assert float(np.max(np.abs(restored - values))) <= bound


def test_inceptionn_path_still_works_alongside():
    tx = _nic()
    rx = _nic()
    for nic in (tx, rx):
        nic.register_engine(SNAPPY_TOS, snappy_engine())
    rng = np.random.default_rng(2)
    values = (rng.standard_normal(365) * 0.004).astype(np.float32)
    packets = tx.transmit_message(values.tobytes(), dst=1, tos=TOS_COMPRESS)
    restored = np.frombuffer(rx.receive_message(packets), dtype=np.float32)
    assert float(np.max(np.abs(restored - values))) <= BOUND.bound


def test_register_engine_rejects_out_of_range_tos():
    nic = _nic()
    engine = PacketEngine(
        name="noop",
        compress=lambda b: b,
        decompress=lambda b, n: b,
    )
    with pytest.raises(ValueError):
        nic.register_engine(0x1FF, engine)
    # Re-registration at a valid ToS replaces the previous engine.
    nic.register_engine(0x50, engine)
    assert nic.engine_for(0x50).name == "noop"
