"""NIC engine tracing: per-packet codec instants and tag-class census."""

import numpy as np
import pytest

from repro.core import ErrorBound
from repro.core.codec import classify
from repro.hardware import InceptionnNic
from repro.network import TOS_COMPRESS, TOS_DEFAULT, Packet
from repro.obs import CAT_CODEC, Tracer

BOUND = ErrorBound(10)


def _gradients(n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * 0.3).astype(np.float32)


def _roundtrip(nic, values):
    pkt = Packet(src=0, dst=1, tos=TOS_COMPRESS, payload=values.tobytes())
    compressed = nic.process_tx(pkt)
    return nic.process_rx(compressed)


def test_compress_and_decompress_instants_recorded():
    tracer = Tracer()
    nic = InceptionnNic(0, BOUND, tracer=tracer)
    values = _gradients(365)
    _roundtrip(nic, values)
    (tx,) = tracer.events_in(CAT_CODEC, "nic.compress")
    (rx,) = tracer.events_in(CAT_CODEC, "nic.decompress")
    assert tx.args["engine"] == rx.args["engine"] == "inceptionn"
    assert tx.args["nbytes_in"] == values.nbytes
    assert tx.args["nbytes_out"] < values.nbytes
    assert tx.args["ratio"] == pytest.approx(
        values.nbytes / tx.args["nbytes_out"]
    )
    assert rx.args["nbytes_out"] == values.nbytes
    counters = tracer.metrics.snapshot()["counters"]
    assert counters["nic.compress_packets{engine=inceptionn}"] == 1
    assert counters["nic.decompress_packets{engine=inceptionn}"] == 1


def test_tag_class_census_matches_classifier():
    tracer = Tracer()
    nic = InceptionnNic(0, BOUND, tracer=tracer)
    values = _gradients(365, seed=3)
    nic.process_tx(
        Packet(src=0, dst=1, tos=TOS_COMPRESS, payload=values.tobytes())
    )
    expected = np.bincount(classify(values, BOUND), minlength=4)
    counters = tracer.metrics.snapshot()["counters"]
    for tag in range(4):
        key = f"tag_class_values{{tag={tag}}}"
        assert counters.get(key, 0) == expected[tag]
    assert sum(expected) == values.size


def test_bypassed_packets_record_nothing():
    tracer = Tracer()
    nic = InceptionnNic(0, BOUND, tracer=tracer)
    nic.process_tx(
        Packet(
            src=0, dst=1, tos=TOS_DEFAULT, payload=_gradients(100).tobytes()
        )
    )
    assert tracer.count(CAT_CODEC) == 0


def test_untraced_nic_transforms_identically():
    values = _gradients(365, seed=7)
    plain = InceptionnNic(0, BOUND)
    traced = InceptionnNic(0, BOUND, tracer=Tracer())
    pkt = Packet(src=0, dst=1, tos=TOS_COMPRESS, payload=values.tobytes())
    out_plain = plain.process_tx(pkt)
    out_traced = traced.process_tx(pkt)
    assert out_plain.payload == out_traced.payload
