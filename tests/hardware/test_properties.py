"""Hypothesis property tests on the hardware engine models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ErrorBound, compress
from repro.hardware import CompressionEngine, DecompressionEngine

bounds = st.integers(min_value=1, max_value=15).map(ErrorBound)

float_lists = st.lists(
    st.floats(width=32, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=120,
)


@given(float_lists, bounds)
@settings(max_examples=60, deadline=None)
def test_engine_bitstream_matches_software(values, bound):
    arr = np.array(values, dtype=np.float32)
    hw_stream, _ = CompressionEngine(bound).compress(arr.tobytes())
    assert hw_stream == compress(arr, bound).to_bytes()


@given(float_lists, bounds)
@settings(max_examples=60, deadline=None)
def test_hardware_roundtrip_respects_bound(values, bound):
    arr = np.array(values, dtype=np.float32)
    stream, _ = CompressionEngine(bound).compress(arr.tobytes())
    restored, _ = DecompressionEngine(bound).decompress(
        stream, num_values=arr.size
    )
    out = np.frombuffer(restored, dtype=np.float32)
    for original, recon in zip(arr, out):
        if abs(original) >= 1.0:
            assert recon == original
        else:
            assert abs(recon - original) < bound.bound


@given(float_lists, bounds, st.integers(min_value=1, max_value=16))
@settings(max_examples=40, deadline=None)
def test_engine_width_never_changes_bits(values, bound, width):
    arr = np.array(values, dtype=np.float32)
    wide, _ = CompressionEngine(bound, num_blocks=8).compress(arr.tobytes())
    narrow, _ = CompressionEngine(bound, num_blocks=width).compress(arr.tobytes())
    assert wide == narrow


@given(float_lists, bounds)
@settings(max_examples=40, deadline=None)
def test_burst_straddling_groups_decode(values, bound):
    # Compressed groups freely straddle 256-bit beat boundaries; the
    # burst buffer must reassemble them regardless of where they fall.
    arr = np.array(values, dtype=np.float32)
    stream, cstats = CompressionEngine(bound).compress(arr.tobytes())
    _, dstats = DecompressionEngine(bound).decompress(stream, num_values=arr.size)
    assert dstats.bursts_out == -(-arr.size // 8)


@given(
    st.lists(
        st.floats(width=32, allow_nan=False, allow_infinity=False,
                  min_value=-0.875, max_value=0.875),
        min_size=8,
        max_size=64,
    ),
    bounds,
)
@settings(max_examples=40, deadline=None)
def test_compressed_stream_never_expands_past_34_bits_per_value(values, bound):
    arr = np.array(values, dtype=np.float32)
    stream, _ = CompressionEngine(bound).compress(arr.tobytes())
    groups = -(-arr.size // 8)
    assert len(stream) * 8 <= groups * 16 + arr.size * 32 + 8
