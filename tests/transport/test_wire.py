"""WireMessage builder and segment-train invariants."""

import numpy as np
import pytest

from repro.core import inceptionn_profile
from repro.network.packet import HEADER_BYTES, packet_count
from repro.transport import (
    ClusterComm,
    ClusterConfig,
    WireMessage,
    build_wire_message,
)


def _comm(num_nodes=3, profile=None, **kwargs):
    return ClusterComm(
        ClusterConfig(num_nodes=num_nodes, profile=profile, **kwargs)
    )


class TestBuilderValidation:
    def test_exactly_one_of_array_or_nbytes(self):
        comm = _comm()
        ep = comm.endpoints[0]
        with pytest.raises(ValueError):
            ep.build_message(1)
        with pytest.raises(ValueError):
            ep.build_message(
                1, np.zeros(4, dtype=np.float32), nbytes=16
            )

    def test_ratio_rejected_with_array(self):
        comm = _comm(profile=inceptionn_profile())
        with pytest.raises(ValueError):
            comm.endpoints[0].build_message(
                1, np.zeros(4, dtype=np.float32), ratio=2.0
            )

    def test_wrong_source_rejected_at_send(self):
        comm = _comm()
        msg = comm.endpoints[1].build_message(2, nbytes=100)
        with pytest.raises(ValueError):
            comm.endpoints[0].isend_message(msg)


class TestSegments:
    def _message(self, nbytes, **kwargs):
        comm = _comm(profile=inceptionn_profile())
        return comm.endpoints[0].build_message(1, nbytes=nbytes, **kwargs)

    @pytest.mark.parametrize("nbytes", [0, 1, 1459, 1460, 1461, 100_000])
    def test_segment_sums_match_totals(self, nbytes):
        msg = self._message(
            nbytes, profile=inceptionn_profile(), ratio=3.5
        )
        segments = list(msg.segments())
        assert len(segments) == msg.num_packets
        assert [s.seq for s in segments] == list(range(msg.num_packets))
        assert sum(s.payload_nbytes for s in segments) == (
            msg.wire_payload_nbytes
        )
        assert sum(s.raw_nbytes for s in segments) == msg.nbytes
        assert sum(s.wire_nbytes for s in segments) == msg.wire_nbytes

    def test_zero_byte_message_is_one_empty_packet(self):
        msg = self._message(0)
        assert msg.num_packets == 1
        (seg,) = list(msg.segments())
        assert seg.payload_nbytes == 0
        assert seg.raw_nbytes == 0
        assert seg.wire_nbytes == HEADER_BYTES
        assert msg.ratio == 1.0

    def test_segments_are_lazy(self):
        # A paper-scale sized message must not materialize its packets.
        msg = self._message(250_000_000)
        gen = msg.segments()
        first = next(gen)
        assert first.seq == 0
        assert msg.num_packets == packet_count(250_000_000, msg.mss)

    def test_segments_carry_the_stream_tos(self):
        stream = inceptionn_profile()
        msg = self._message(5000, profile=stream, ratio=2.0)
        assert msg.compressed
        assert all(s.tos == stream.resolved_tos for s in msg.segments())
        assert all(s.engine_processed for s in msg.segments())


class TestFunctionalBuild:
    def test_functional_message_compresses_once(self):
        stream = inceptionn_profile()
        comm = _comm(profile=stream)
        values = (
            np.random.default_rng(7).standard_normal(4096) * 0.004
        ).astype(np.float32)
        msg = comm.endpoints[0].build_message(1, values, profile=stream)
        assert isinstance(msg, WireMessage)
        assert not msg.size_only
        assert msg.compressed
        assert msg.nbytes == values.nbytes
        assert msg.wire_payload_nbytes < values.nbytes
        assert msg.values is not None
        bound = comm.config.bound.bound
        assert float(np.max(np.abs(msg.values - values))) <= bound * 6

    def test_raw_build_without_engines(self):
        comm = _comm(profile=None)
        values = np.ones(100, dtype=np.float32)
        msg = comm.endpoints[0].build_message(1, values)
        assert not msg.compressed
        assert msg.wire_payload_nbytes == values.nbytes
        assert np.array_equal(msg.values, values)

    def test_standalone_builder_without_nic(self):
        msg = build_wire_message(0, 1, nbytes=3000)
        assert msg.size_only
        assert not msg.compressed
        assert msg.wire_payload_nbytes == 3000


class TestCounters:
    def test_tx_and_rx_tick_once_per_delivery(self):
        stream = inceptionn_profile()
        comm = _comm(profile=stream)
        values = np.zeros(2000, dtype=np.float32)

        def sender():
            yield comm.endpoints[0].isend(1, values, profile=stream)

        def receiver():
            yield comm.endpoints[1].recv(0)

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()
        tx = comm.nics[0].counters
        rx = comm.nics[1].counters
        expected = packet_count(values.nbytes, comm.config.mss)
        assert tx.tx_packets == expected
        assert tx.tx_compressed == expected
        assert tx.tx_payload_bytes_in == values.nbytes
        assert 0 < tx.tx_payload_bytes_out < values.nbytes
        assert rx.rx_packets == expected
        assert rx.rx_decompressed == expected
