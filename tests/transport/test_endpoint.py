"""Endpoint and ClusterComm tests."""

import numpy as np
import pytest

from repro.core import ErrorBound, inceptionn_profile
from repro.transport import ClusterComm, ClusterConfig


def _comm(num_nodes=4, profile=None, **kwargs):
    return ClusterComm(
        ClusterConfig(num_nodes=num_nodes, profile=profile, **kwargs)
    )


def test_send_recv_roundtrip_exact_without_compression():
    comm = _comm()
    sent = np.random.default_rng(0).standard_normal(1000).astype(np.float32)
    got = {}

    def sender():
        yield comm.endpoints[0].isend(1, sent)

    def receiver():
        arr = yield comm.endpoints[1].recv(0)
        got["arr"] = arr

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()
    np.testing.assert_array_equal(got["arr"], sent)


def test_compressing_send_is_lossy_but_bounded():
    bound = ErrorBound(10)
    stream = inceptionn_profile(bound)
    comm = _comm(profile=stream, bound=bound)
    sent = (np.random.default_rng(1).standard_normal(5000) * 0.2).astype(
        np.float32
    )
    got = {}

    def sender():
        yield comm.endpoints[0].isend(1, sent, profile=stream)

    def receiver():
        got["arr"] = yield comm.endpoints[1].recv(0)

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()
    arr = got["arr"]
    assert not np.array_equal(arr, sent)  # actually lossy
    assert np.max(np.abs(arr - sent)) < bound.bound


def test_compressing_profile_ignored_without_engines():
    comm = _comm(profile=None)
    sent = (np.random.default_rng(2).standard_normal(100) * 0.2).astype(np.float32)
    got = {}

    def sender():
        yield comm.endpoints[0].isend(1, sent, profile=inceptionn_profile())

    def receiver():
        got["arr"] = yield comm.endpoints[1].recv(0)

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()
    np.testing.assert_array_equal(got["arr"], sent)
    assert not comm.transfers[0].compressed


def test_transfer_log_records_wire_bytes():
    stream = inceptionn_profile()
    comm = _comm(profile=stream)
    sent = np.zeros(8000, dtype=np.float32)  # maximally compressible

    def sender():
        yield comm.endpoints[0].isend(1, sent, profile=stream)

    def receiver():
        yield comm.endpoints[1].recv(0)

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()
    log = comm.transfers[0]
    assert log.compressed
    assert log.nbytes == 32000
    assert log.wire_payload_nbytes == pytest.approx(2000, rel=0.01)


def test_compression_speeds_up_virtual_time():
    sent = np.zeros(2_000_000, dtype=np.float32)

    def run(compression):
        stream = inceptionn_profile() if compression else None
        comm = _comm(profile=stream)

        def sender():
            yield comm.endpoints[0].isend(1, sent, profile=stream)

        def receiver():
            yield comm.endpoints[1].recv(0)

        comm.sim.process(sender())
        comm.sim.process(receiver())
        return comm.run()

    assert run(True) < run(False)


def test_messages_from_different_sources_keep_order():
    comm = _comm()
    got = []

    def sender(src, value):
        def proc():
            arr = np.full(10, value, dtype=np.float32)
            yield comm.endpoints[src].isend(3, arr)

        return proc

    def receiver():
        a = yield comm.endpoints[3].recv(0)
        b = yield comm.endpoints[3].recv(1)
        got.extend([a[0], b[0]])

    comm.sim.process(sender(0, 1.0)())
    comm.sim.process(sender(1, 2.0)())
    comm.sim.process(receiver())
    comm.run()
    assert got == [1.0, 2.0]


def test_multiple_messages_same_pair_fifo():
    comm = _comm()
    got = []

    def sender():
        for value in (1.0, 2.0, 3.0):
            yield comm.endpoints[0].isend(1, np.full(4, value, dtype=np.float32))

    def receiver():
        for _ in range(3):
            arr = yield comm.endpoints[1].recv(0)
            got.append(float(arr[0]))

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()
    assert got == [1.0, 2.0, 3.0]
