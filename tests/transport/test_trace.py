"""Transport-layer tracing + the sized-send ratio validation fix."""

import numpy as np
import pytest

from repro.core import inceptionn_profile
from repro.obs import CAT_CODEC, CAT_MESSAGE, Tracer
from repro.transport import ClusterComm, ClusterConfig


def _comm(num_nodes=3, profile=None, tracer=None, **kwargs):
    return ClusterComm(
        ClusterConfig(num_nodes=num_nodes, profile=profile, **kwargs),
        tracer=tracer,
    )


class TestSizedRatioValidation:
    """ratio=0.0 must be an error, not 'unset'.

    A falsy check once collapsed 0.0 into None, silently sending the
    uncompressed size; None and 0.0 now mean different things.
    """

    def test_ratio_zero_rejected(self):
        comm = _comm(profile=inceptionn_profile())
        with pytest.raises(ValueError, match="compression ratio"):
            comm.endpoints[0].build_message(
                1, nbytes=100, profile=inceptionn_profile(), ratio=0.0
            )

    def test_ratio_below_one_rejected(self):
        comm = _comm(profile=inceptionn_profile())
        with pytest.raises(ValueError, match=">= 1"):
            comm.endpoints[0].build_message(
                1, nbytes=100, profile=inceptionn_profile(), ratio=0.5
            )

    def test_ratio_rejected_even_without_engines(self):
        # Validation happens before the engine-dispatch check: a bad
        # ratio is a caller bug regardless of the cluster profile.
        comm = _comm(profile=None)
        with pytest.raises(ValueError, match="compression ratio"):
            comm.endpoints[0].build_message(1, nbytes=100, ratio=0.0)

    def test_none_means_uncompressed_size(self):
        stream = inceptionn_profile()
        comm = _comm(profile=stream)

        def sender():
            ep = comm.endpoints[0]
            yield ep.isend_message(
                ep.build_message(1, nbytes=1000, profile=stream, ratio=None)
            )

        def receiver():
            yield comm.endpoints[1].recv(0)

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()
        assert comm.transfers[0].wire_payload_nbytes == 1000

    def test_ratio_exactly_one_accepted(self):
        stream = inceptionn_profile()
        comm = _comm(profile=stream)
        msg = comm.endpoints[0].build_message(
            1, nbytes=1000, profile=stream, ratio=1.0
        )
        assert msg.wire_payload_nbytes == 1000


class TestCodecTrace:
    def test_sized_send_records_estimated_codec_instant(self):
        tracer = Tracer()
        stream = inceptionn_profile()
        comm = _comm(profile=stream, tracer=tracer)

        def sender():
            ep = comm.endpoints[0]
            yield ep.isend_message(
                ep.build_message(1, nbytes=1_000_000, profile=stream, ratio=4.0)
            )

        def receiver():
            yield comm.endpoints[1].recv(0)

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()
        (event,) = tracer.events_in(CAT_CODEC, "codec.compress")
        assert event.args["estimated"] is True
        assert event.args["nbytes"] == 1_000_000
        assert event.args["compressed_nbytes"] == 250_000
        assert event.args["ratio"] == pytest.approx(4.0)

    def test_real_send_records_achieved_ratio(self):
        tracer = Tracer()
        stream = inceptionn_profile()
        comm = _comm(profile=stream, tracer=tracer)
        values = np.zeros(4096, dtype=np.float32)  # highly compressible

        def sender():
            yield comm.endpoints[0].isend(1, values, profile=stream)

        def receiver():
            yield comm.endpoints[1].recv(0)

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()
        (event,) = tracer.events_in(CAT_CODEC, "codec.compress")
        assert event.args["estimated"] is False
        assert event.args["ratio"] > 10.0  # all-zero vector compresses hard
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["codec_bytes_in{codec=inceptionn}"] == values.nbytes

    def test_uncompressed_send_records_no_codec_event(self):
        tracer = Tracer()
        comm = _comm(profile=None, tracer=tracer)

        def sender():
            yield comm.endpoints[0].isend(
                1, np.ones(16, dtype=np.float32)
            )

        def receiver():
            yield comm.endpoints[1].recv(0)

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()
        assert tracer.count(CAT_CODEC) == 0
        assert tracer.count(CAT_MESSAGE, "msg.send") == 1
