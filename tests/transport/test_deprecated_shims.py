"""The deprecated boolean compression API must warn but keep working.

These shims (``ClusterConfig(compression=...)`` and the ``compressible=``
send keyword) are the only sanctioned call sites of the old API — the
R2 lint rule bans them everywhere else in the tree.
"""

import numpy as np
import pytest

from repro.core import RAW_STREAM, inceptionn_profile
from repro.network import TOS_COMPRESS
from repro.transport import ClusterComm, ClusterConfig


def test_cluster_config_compression_warns():
    with pytest.warns(DeprecationWarning, match="compression=True"):
        config = ClusterConfig(num_nodes=2, compression=True)
    # The shim still resolves to the paper's ToS-0x28 profile.
    profile = config.default_profile()
    assert profile.codec == "inceptionn"
    assert profile.resolved_tos == TOS_COMPRESS


def test_cluster_config_without_compression_is_silent():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        config = ClusterConfig(num_nodes=2)
    assert config.default_profile() == RAW_STREAM


def test_compressible_kwarg_warns_and_maps_to_default_profile():
    with pytest.warns(DeprecationWarning):
        comm = ClusterComm(ClusterConfig(num_nodes=2, compression=True))
    sent = np.zeros(4000, dtype=np.float32)

    def sender():
        with pytest.warns(DeprecationWarning, match="compressible"):
            event = comm.endpoints[0].isend(1, sent, compressible=True)
        yield event

    def receiver():
        yield comm.endpoints[1].recv(0)

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()
    log = comm.transfers[0]
    assert log.compressed
    assert log.codec == "inceptionn"


def test_compressible_false_still_warns_but_sends_raw():
    comm = ClusterComm(ClusterConfig(num_nodes=2))
    sent = np.zeros(100, dtype=np.float32)

    def sender():
        with pytest.warns(DeprecationWarning, match="compressible"):
            event = comm.endpoints[0].isend(1, sent, compressible=False)
        yield event

    def receiver():
        yield comm.endpoints[1].recv(0)

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()
    assert not comm.transfers[0].compressed


def test_profile_api_does_not_warn():
    import warnings

    stream = inceptionn_profile()
    comm = ClusterComm(ClusterConfig(num_nodes=2, profile=stream))
    sent = np.zeros(100, dtype=np.float32)

    def sender():
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            event = comm.endpoints[0].isend(1, sent, profile=stream)
        yield event

    def receiver():
        yield comm.endpoints[1].recv(0)

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()
    assert comm.transfers[0].compressed
