"""Collective-fragment tests."""

import numpy as np

from repro.transport import (
    ClusterComm,
    ClusterConfig,
    broadcast_from_root,
    reduce_to_root,
)


def _comm(num_nodes=4, **kwargs):
    return ClusterComm(ClusterConfig(num_nodes=num_nodes, **kwargs))


def test_reduce_to_root_sums_all_contributions():
    comm = _comm(5)
    results = {}

    def node(i):
        def proc():
            vec = np.full(100, float(i + 1), dtype=np.float32)
            if i == 0:
                total = yield from reduce_to_root(
                    comm.endpoints[0], 0, vec, sources=[1, 2, 3, 4]
                )
                results["total"] = total
            else:
                yield from reduce_to_root(comm.endpoints[i], 0, vec)

        return proc

    for i in range(5):
        comm.sim.process(node(i)())
    comm.run()
    np.testing.assert_allclose(results["total"], np.full(100, 15.0))


def test_broadcast_from_root_delivers_to_all():
    comm = _comm(4)
    results = {}

    def node(i):
        def proc():
            if i == 0:
                vec = np.arange(50, dtype=np.float32)
                out = yield from broadcast_from_root(
                    comm.endpoints[0], 0, vec, destinations=[1, 2, 3]
                )
            else:
                out = yield from broadcast_from_root(comm.endpoints[i], 0, None)
            results[i] = out

        return proc

    for i in range(4):
        comm.sim.process(node(i)())
    comm.run()
    for i in range(1, 4):
        np.testing.assert_array_equal(results[i], results[0])


def test_root_without_vector_raises():
    comm = _comm(2)
    errors = []

    def proc():
        try:
            yield from broadcast_from_root(
                comm.endpoints[0], 0, None, destinations=[1]
            )
        except ValueError as exc:
            errors.append(exc)
            return
        yield comm.sim.timeout(0)

    comm.sim.process(proc())
    comm.run()
    assert len(errors) == 1


def test_reduce_then_broadcast_worker_aggregator_pattern():
    """The WA baseline's two legs compose."""
    comm = _comm(4)
    results = {}

    def worker(i):
        def proc():
            grad = np.full(20, float(i), dtype=np.float32)
            yield from reduce_to_root(comm.endpoints[i], 3, grad)
            weights = yield from broadcast_from_root(comm.endpoints[i], 3, None)
            results[i] = weights

        return proc

    def aggregator():
        own = np.zeros(20, dtype=np.float32)
        total = yield from reduce_to_root(
            comm.endpoints[3], 3, own, sources=[0, 1, 2]
        )
        yield from broadcast_from_root(
            comm.endpoints[3], 3, total, destinations=[0, 1, 2]
        )

    for i in range(3):
        comm.sim.process(worker(i)())
    comm.sim.process(aggregator())
    comm.run()
    for i in range(3):
        np.testing.assert_allclose(results[i], np.full(20, 3.0))  # 0+1+2
