"""Lossy-fabric behavior of the WireMessage pipeline.

A dropped train must be retransmitted transparently: the receiver still
reconstructs the compressed gradient within the configured error bound,
and the sender NIC's counters tick once per *wire traversal* (original
plus each retransmission) while the receiver's tick once per delivery.
"""

import numpy as np
import pytest

from repro.core import inceptionn_profile
from repro.network import RetransmitPolicy
from repro.network.loss import DeliveryFailure
from repro.network.packet import packet_count
from repro.transport import ClusterComm, ClusterConfig


def _lossy_comm(loss_rate, seed=0, retransmit=RetransmitPolicy(), stream=None):
    return ClusterComm(
        ClusterConfig(
            num_nodes=2,
            profile=stream,
            train_packets=8,
            loss_rate=loss_rate,
            loss_seed=seed,
            retransmit=retransmit,
        )
    )


def _run_send(comm, values, stream):
    got = []

    def sender():
        yield comm.endpoints[0].isend(1, values, profile=stream)

    def receiver():
        got.append((yield comm.endpoints[1].recv(0)))

    comm.sim.process(sender())
    comm.sim.process(receiver())
    comm.run()
    return got


class TestRetransmission:
    def test_dropped_compressed_train_reconstructs_within_bound(self):
        stream = inceptionn_profile()
        comm = _lossy_comm(0.3, seed=1, stream=stream)
        values = (
            np.random.default_rng(3).standard_normal(20_000) * 0.004
        ).astype(np.float32)
        got = _run_send(comm, values, stream)

        assert comm.network.trains_retransmitted >= 1
        (received,) = got
        bound = comm.config.bound.bound
        assert float(np.max(np.abs(received - values))) <= bound * 6

    def test_counters_tick_once_per_wire_traversal(self):
        stream = inceptionn_profile()
        comm = _lossy_comm(0.3, seed=1, stream=stream)
        values = (
            np.random.default_rng(3).standard_normal(20_000) * 0.004
        ).astype(np.float32)
        _run_send(comm, values, stream)

        expected = packet_count(values.nbytes, comm.config.mss)
        resent = comm.network.packets_retransmitted
        assert resent >= 1
        tx = comm.nics[0].counters
        rx = comm.nics[1].counters
        # TX saw the original build plus every retransmitted train ...
        assert tx.tx_packets == expected + resent
        assert tx.tx_compressed == expected + resent
        # ... while RX decompresses the message exactly once.
        assert rx.rx_packets == expected
        assert rx.rx_decompressed == expected

    def test_lossless_fabric_never_retransmits(self):
        stream = inceptionn_profile()
        comm = _lossy_comm(0.0, stream=stream)
        values = np.ones(5000, dtype=np.float32)
        _run_send(comm, values, stream)
        assert comm.network.trains_retransmitted == 0
        assert comm.network.packets_retransmitted == 0

    def test_exhausted_retries_raise_delivery_failure(self):
        stream = inceptionn_profile()
        comm = _lossy_comm(
            0.999,
            seed=5,
            retransmit=RetransmitPolicy(max_attempts=2),
            stream=stream,
        )
        values = np.ones(50_000, dtype=np.float32)
        with pytest.raises(DeliveryFailure):
            _run_send(comm, values, stream)


class TestOrderedDelivery:
    def test_per_source_fifo_survives_retransmission(self):
        # Retransmitted trains can finish their wire traversal *after*
        # a later message's — the endpoint's per-(src, dst) sequence
        # numbers must still deliver in send order, or strategies that
        # interleave differently-sized sends (e.g. a ring step after a
        # weight broadcast) read the wrong payload.
        comm = _lossy_comm(0.25, seed=2)
        payloads = [
            (np.full(size, fill, dtype=np.float32))
            for fill, size in ((1.0, 40_000), (2.0, 100), (3.0, 7_000))
        ]
        got = []

        def sender():
            for p in payloads:
                comm.endpoints[0].isend(1, p)
            return
            yield  # pragma: no cover - generator marker

        def receiver():
            for _ in payloads:
                got.append((yield comm.endpoints[1].recv(0)))

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()

        assert comm.network.trains_retransmitted >= 1
        assert [g[0] for g in got] == [1.0, 2.0, 3.0]
        for received, sent in zip(got, payloads):
            np.testing.assert_array_equal(received, sent)

    def test_ring_training_completes_on_a_lossy_fabric(self):
        # End-to-end: a synchronous ring over a dropping fabric must
        # still converge on the exact summed gradients (retransmission
        # is transparent above the transport).
        from repro.distributed import train_distributed
        from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset

        result = train_distributed(
            algorithm="ring",
            build_net=lambda s: build_hdc(seed=s),
            make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
            dataset=hdc_dataset(train_size=200, test_size=50, seed=0),
            num_workers=3,
            iterations=4,
            batch_size=16,
            cluster=ClusterConfig(
                num_nodes=3,
                loss_rate=0.02,
                loss_seed=7,
                retransmit=RetransmitPolicy(),
            ),
        )
        assert np.isfinite(result.losses).all()
        assert result.transfers is not None and result.transfers.messages > 0
