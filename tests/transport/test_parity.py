"""Pre-refactor parity pins for the unified WireMessage pipeline.

The PR that introduced :mod:`repro.transport.wire` collapsed three send
paths (functional ``isend``, the sized side path, and the perfmodel's
private arithmetic) into one builder.  These constants were recorded by
running the *pre-refactor* tree on the same scenarios; the unified
pipeline must reproduce them to 1e-6 — byte counts exactly — while the
reconstructed gradients stay within the configured error bound.
"""

import hashlib

import numpy as np
import pytest

from repro.core import inceptionn_profile
from repro.distributed.ring import ring_exchange
from repro.obs import Tracer
from repro.perfmodel.exchange import (
    measure_profile_ratio,
    simulate_ring_exchange,
    simulate_wa_exchange,
)
from repro.transport import ClusterComm, ClusterConfig

REL = 1e-6

#: Functional 4-node ring exchange, vectors of 5003 float32 values from
#: ``default_rng(100 + i).standard_normal(5003) * 0.004``.
FUNCTIONAL_PINS = {
    "compressed": {
        "total_s": 5.764065e-05,
        "wire_bytes": 38831,
        "payload_bytes": 33647,
        "step_span_s": 2.305551e-04,
        "agg0_sha256": (
            "38b40a383a3619058573da75712fb4fed719642e80ad0383c3af5209ee24170b"
        ),
        "agg0_sum": -3.2897597551e-01,
    },
    "raw": {
        "total_s": 6.232320e-05,
        "wire_bytes": 125256,
        "payload_bytes": 120072,
        "step_span_s": 2.492736e-04,
        "agg0_sha256": (
            "3c406905c0ea7285e04aac514307a2dcd451830582a8417e993798bf68ef43c9"
        ),
        "agg0_sum": -4.7233834863e-01,
    },
}

#: Sized 4-worker exchanges of a 2 MB gradient at defaults.  The
#: ``*_compress_flag`` pins equal the ``*_stream`` pins: passing
#: ``compress_gradients=True`` is defined as shorthand for
#: ``stream=inceptionn_profile(bound)``, including the measured wire
#: ratio.  (The original flag pins encoded a bug where the flag path
#: skipped the ratio measurement and shipped uncompressed bytes.)
SIZED_NBYTES = 2_000_000
SIZED_PINS = {
    "ring_compress_flag": 0.0010200819000000007,
    "ring_raw": 0.0025261727999999995,
    "wa_compress_flag": 0.009243397725000001,
    "wa_raw": 0.013285894399999998,
    "ring_stream": 0.0010200819000000007,
    "wa_stream": 0.009243397725000001,
}
MEASURED_RATIO = 3.77250748330647


def _run_functional_ring(stream):
    tracer = Tracer()
    comm = ClusterComm(
        ClusterConfig(num_nodes=4, profile=inceptionn_profile()),
        tracer=tracer,
    )
    vectors = [
        (np.random.default_rng(100 + i).standard_normal(5003) * 0.004).astype(
            np.float32
        )
        for i in range(4)
    ]
    results = {}

    def proc(i):
        agg = yield from ring_exchange(comm.endpoints[i], vectors[i], 4,
                                       stream=stream)
        results[i] = agg

    for i in range(4):
        comm.sim.process(proc(i))
    total = comm.run()
    return comm, tracer, vectors, results, total


class TestFunctionalRingParity:
    @pytest.mark.parametrize("mode", ["compressed", "raw"])
    def test_matches_pre_refactor_trace(self, mode):
        pins = FUNCTIONAL_PINS[mode]
        stream = inceptionn_profile() if mode == "compressed" else None
        comm, tracer, vectors, results, total = _run_functional_ring(stream)

        assert total == pytest.approx(pins["total_s"], rel=REL)
        assert comm.network.total_wire_bytes == pins["wire_bytes"]
        assert (
            sum(t.wire_payload_nbytes for t in comm.transfers)
            == pins["payload_bytes"]
        )
        spans = sum(
            e.dur for e in tracer.events if e.name == "ring.step"
        )
        assert spans == pytest.approx(pins["step_span_s"], rel=REL)

        agg0 = results[0]
        assert (
            hashlib.sha256(agg0.tobytes()).hexdigest() == pins["agg0_sha256"]
        )
        assert float(agg0.sum()) == pytest.approx(pins["agg0_sum"], rel=REL)

        exact = sum(vectors).astype(np.float32)
        err = float(np.max(np.abs(agg0 - exact)))
        bound = comm.config.bound.bound
        # Lossy hops accumulate: 2N-2 traversals bound the worst case.
        limit = bound * 6 if mode == "compressed" else bound * 1e-3
        assert err <= limit


class TestSizedExchangeParity:
    def test_measured_ratio_pinned(self):
        assert measure_profile_ratio(inceptionn_profile()) == pytest.approx(
            MEASURED_RATIO, rel=REL
        )

    @pytest.mark.parametrize(
        "key, simulate, kwargs",
        [
            ("ring_compress_flag", simulate_ring_exchange,
             {"compress_gradients": True}),
            ("ring_raw", simulate_ring_exchange, {}),
            ("wa_compress_flag", simulate_wa_exchange,
             {"compress_gradients": True}),
            ("wa_raw", simulate_wa_exchange, {}),
            ("ring_stream", simulate_ring_exchange, {"stream": "INC"}),
            ("wa_stream", simulate_wa_exchange, {"stream": "INC"}),
        ],
    )
    def test_total_seconds_pinned(self, key, simulate, kwargs):
        if kwargs.get("stream") == "INC":
            kwargs = {"stream": inceptionn_profile()}
        result = simulate(4, SIZED_NBYTES, **kwargs)
        assert result.total_s == pytest.approx(SIZED_PINS[key], rel=REL)

    @pytest.mark.parametrize(
        "simulate", [simulate_ring_exchange, simulate_wa_exchange]
    )
    def test_compress_flag_equals_explicit_stream(self, simulate):
        # Regression: the flag path used to skip the stream-ratio
        # measurement (it only ran for explicitly passed streams), so
        # compress_gradients=True silently sent uncompressed bytes.
        flagged = simulate(4, SIZED_NBYTES, compress_gradients=True)
        streamed = simulate(4, SIZED_NBYTES, stream=inceptionn_profile())
        assert flagged.total_s == streamed.total_s
        assert flagged.sent_nbytes == streamed.sent_nbytes
        assert flagged.wire_payload_nbytes == streamed.wire_payload_nbytes
        # Compression actually reached the wire (WA stays below the
        # codec ratio because its scatter phase ships raw floats).
        assert flagged.wire_ratio == streamed.wire_ratio > 1.5

    def test_stream_exchange_reports_wire_compression(self):
        result = simulate_ring_exchange(
            4, SIZED_NBYTES, stream=inceptionn_profile()
        )
        assert result.wire_ratio == pytest.approx(MEASURED_RATIO, rel=1e-4)
        assert result.wire_payload_nbytes < result.sent_nbytes
