"""Endpoint detail tests: sized sends, promiscuous mode, validation."""

import numpy as np
import pytest

from repro.core import inceptionn_profile
from repro.transport import ClusterComm, ClusterConfig


def _comm(num_nodes=3, profile=None, **kwargs):
    return ClusterComm(
        ClusterConfig(num_nodes=num_nodes, profile=profile, **kwargs)
    )


class TestSizedMessages:
    def test_sized_message_delivers_size(self):
        comm = _comm()
        got = []

        def sender():
            ep = comm.endpoints[0]
            yield ep.isend_message(ep.build_message(1, nbytes=12345))

        def receiver():
            got.append((yield comm.endpoints[1].recv(0)))

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()
        assert got == [12345]

    def test_sized_message_ratio_shrinks_wire(self):
        stream = inceptionn_profile()
        comm = _comm(profile=stream)

        def sender():
            ep = comm.endpoints[0]
            yield ep.isend_message(
                ep.build_message(
                    1, nbytes=1_000_000, profile=stream, ratio=10.0
                )
            )

        def receiver():
            yield comm.endpoints[1].recv(0)

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()
        assert comm.transfers[0].wire_payload_nbytes == 100_000

    def test_ratio_below_one_rejected(self):
        stream = inceptionn_profile()
        comm = _comm(profile=stream)
        with pytest.raises(ValueError):
            comm.endpoints[0].build_message(
                1, nbytes=100, profile=stream, ratio=0.5
            )

    def test_negative_size_rejected(self):
        comm = _comm()
        with pytest.raises(ValueError):
            comm.endpoints[0].build_message(1, nbytes=-10)

    def test_ratio_ignored_without_engines(self):
        comm = _comm(profile=None)

        def sender():
            ep = comm.endpoints[0]
            yield ep.isend_message(
                ep.build_message(
                    1, nbytes=1000, profile=inceptionn_profile(), ratio=10.0
                )
            )

        def receiver():
            yield comm.endpoints[1].recv(0)

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()
        assert comm.transfers[0].wire_payload_nbytes == 1000
        assert not comm.transfers[0].compressed


class TestPromiscuousMode:
    def test_recv_any_tags_source(self):
        comm = _comm()
        comm.endpoints[2].promiscuous = True
        got = []

        def sender(src, value):
            def proc():
                yield comm.endpoints[src].isend(
                    2, np.full(4, value, dtype=np.float32)
                )

            return proc

        def receiver():
            for _ in range(2):
                src, arr = yield comm.endpoints[2].recv_any()
                got.append((src, float(arr[0])))

        comm.sim.process(sender(0, 1.0)())
        comm.sim.process(sender(1, 2.0)())
        comm.sim.process(receiver())
        comm.run()
        assert sorted(got) == [(0, 1.0), (1, 2.0)]

    def test_recv_on_promiscuous_endpoint_rejected(self):
        comm = _comm()
        comm.endpoints[1].promiscuous = True
        with pytest.raises(RuntimeError):
            comm.endpoints[1].recv(0)

    def test_recv_any_without_flag_rejected(self):
        comm = _comm()
        with pytest.raises(RuntimeError):
            comm.endpoints[1].recv_any()


class TestTransferLog:
    def test_log_order_and_timestamps(self):
        comm = _comm()

        def proc():
            yield comm.endpoints[0].isend(1, np.zeros(10, dtype=np.float32))
            yield comm.endpoints[0].isend(2, np.zeros(20, dtype=np.float32))

        def rx(node):
            def p():
                yield comm.endpoints[node].recv(0)

            return p

        comm.sim.process(proc())
        comm.sim.process(rx(1)())
        comm.sim.process(rx(2)())
        comm.run()
        assert [t.dst for t in comm.transfers] == [1, 2]
        assert comm.transfers[0].sent_at <= comm.transfers[1].sent_at
