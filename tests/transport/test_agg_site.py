"""End-to-end aggregation-site parity: switch vs endpoint reduction.

The acceptance property of the aggregation-site refactor: moving the
gradient sum from the aggregating endpoint into the fabric's switches
changes *where* bytes flow (fewer link-level bytes, engine cycles on
the switches) but not *what* the model learns — final weights must be
bit-exact between the two sites for every homomorphic codec.
"""

import numpy as np
import pytest

from repro.core import profile_for
from repro.distributed import train_distributed
from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
from repro.transport import (
    AGG_ENDPOINT,
    AGG_SITES,
    AGG_SWITCH,
    ClusterConfig,
    validate_agg_site,
)


def _run(agg_site, codec="lossless_hc", topology="fat-tree:k=4",
         iterations=2, workers=4):
    stream = profile_for(codec) if codec else None
    return train_distributed(
        algorithm="wa",
        build_net=lambda s: build_hdc(seed=s),
        make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
        dataset=hdc_dataset(train_size=120, test_size=40, seed=0),
        num_workers=workers,
        iterations=iterations,
        batch_size=10,
        cluster=ClusterConfig(
            num_nodes=workers + 1,
            profile=stream,
            topology=topology,
            agg_site=agg_site,
        ),
        stream=stream,
        seed=0,
    )


def test_validate_agg_site():
    for site in AGG_SITES:
        validate_agg_site(site)
    assert AGG_SITES == (AGG_ENDPOINT, AGG_SWITCH)
    with pytest.raises(ValueError, match="agg_site"):
        validate_agg_site("nic")


@pytest.mark.parametrize("codec", ["lossless_hc", "thc"])
def test_switch_site_is_bit_exact_with_endpoint(codec):
    endpoint = _run(AGG_ENDPOINT, codec=codec)
    switch = _run(AGG_SWITCH, codec=codec)
    np.testing.assert_array_equal(
        endpoint.final_weights, switch.final_weights
    )
    assert endpoint.losses == switch.losses
    assert endpoint.final_top1 == switch.final_top1


def test_switch_site_reduces_link_level_bytes():
    endpoint = _run(AGG_ENDPOINT)
    switch = _run(AGG_SWITCH)
    assert endpoint.transfers is not None and switch.transfers is not None
    # In-network partial sums stop fan-in traffic from riding every hop
    # to the root: strictly fewer bytes cross the fabric's links.
    assert (
        switch.transfers.link_payload_nbytes
        < endpoint.transfers.link_payload_nbytes
    )


def test_link_bytes_count_every_hop_on_the_route():
    # On the default switched star every message crosses exactly two
    # links (host -> switch -> host).
    result = _run(AGG_ENDPOINT, topology=None, iterations=1)
    summary = result.transfers
    assert summary is not None
    assert summary.link_payload_nbytes == 2 * summary.wire_payload_nbytes


class TestRejections:
    def test_star_topology_has_no_reduction_tree(self):
        with pytest.raises(ValueError, match="multi-tier"):
            _run(AGG_SWITCH, topology=None)

    def test_non_homomorphic_codec(self):
        with pytest.raises(ValueError, match="homomorphic"):
            _run(AGG_SWITCH, codec="inceptionn")

    def test_raw_stream_needs_engines(self):
        with pytest.raises(ValueError):
            _run(AGG_SWITCH, codec=None)

    def test_ring_strategy_has_no_root(self):
        stream = profile_for("lossless_hc")
        with pytest.raises(ValueError, match="reduction root"):
            train_distributed(
                algorithm="ring",
                build_net=lambda s: build_hdc(seed=s),
                make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
                dataset=hdc_dataset(train_size=120, test_size=40, seed=0),
                num_workers=4,
                iterations=1,
                batch_size=10,
                cluster=ClusterConfig(
                    num_nodes=4,
                    profile=stream,
                    topology="fat-tree:k=4",
                    agg_site=AGG_SWITCH,
                ),
                stream=stream,
                seed=0,
            )

    def test_bogus_site_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="agg_site"):
            ClusterConfig(num_nodes=4, agg_site="bogus")
