"""Shared fixtures for the static-analysis tests.

Fixture snippets are written into a ``repro/<pkg>/`` layout under a
temp dir so the engine's module-name resolution (anchored at the last
``repro`` path component) treats them as real repro modules.
"""

import textwrap

import pytest

from repro.analysis import lint_paths


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` snippets and lint them with ``rules``."""

    def run(files, rules=None):
        root = tmp_path / "tree"
        for relpath, source in files.items():
            target = root / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        findings, files_checked = lint_paths([root], rules=rules)
        assert files_checked == len(files)
        return findings

    return run


@pytest.fixture
def lint_snippet(lint_tree):
    """Lint one snippet placed at ``repro/<relpath>`` with ``rules``."""

    def run(relpath, source, rules=None):
        return lint_tree({f"repro/{relpath}": source}, rules=rules)

    return run
