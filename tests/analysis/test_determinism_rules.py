"""The determinism rule family: R8 wall-clock, R9 seeded RNG,
R10 iteration order, R11 mutable defaults."""

import textwrap

import pytest

from repro.analysis.rules import (
    IterationOrderRule,
    MutableDefaultsRule,
    SeededRngRule,
    WallClockRule,
)


def codes(findings):
    return [f.rule for f in findings]


# -- R8: wall-clock -----------------------------------------------------------


class TestWallClock:
    def test_time_module_attribute_calls_flagged(self, lint_snippet):
        findings = lint_snippet(
            "network/clock.py",
            """
            import time

            def stamp():
                return time.time()

            def measure():
                return time.perf_counter()
            """,
            rules=[WallClockRule()],
        )
        assert codes(findings) == ["R8", "R8"]

    def test_from_import_tracked_per_file(self, lint_tree):
        findings = lint_tree(
            {
                "repro/network/a.py": """
                    from time import perf_counter as pc

                    def measure():
                        return pc()
                    """,
                # Same bare name in a file that never imported it: clean.
                "repro/network/b.py": """
                    def pc():
                        return 0.0

                    def fine():
                        return pc()
                    """,
            },
            rules=[WallClockRule()],
        )
        assert [(f.rule, f.path.endswith("a.py")) for f in findings] == [
            ("R8", True)
        ]

    def test_datetime_now_flagged(self, lint_snippet):
        findings = lint_snippet(
            "obs/tracer2.py",
            """
            from datetime import datetime, date

            def stamp():
                return datetime.now(), datetime.utcnow(), date.today()
            """,
            rules=[WallClockRule()],
        )
        assert codes(findings) == ["R8", "R8", "R8"]

    def test_obs_export_is_exempt(self, lint_tree):
        findings = lint_tree(
            {
                "repro/obs/export.py": """
                    import time

                    def written_at():
                        return time.time()
                    """
            },
            rules=[WallClockRule()],
        )
        assert findings == []

    def test_simulation_now_is_fine(self, lint_snippet):
        findings = lint_snippet(
            "network/ok.py",
            """
            def tick(sim):
                return sim.now
            """,
            rules=[WallClockRule()],
        )
        assert findings == []

    def test_suppression_comment(self, lint_snippet):
        findings = lint_snippet(
            "network/supp.py",
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=R8 benchmarking only
            """,
            rules=[WallClockRule()],
        )
        assert findings == []


# -- R9: seeded RNG -----------------------------------------------------------


class TestSeededRng:
    def test_legacy_numpy_draws_flagged(self, lint_snippet):
        findings = lint_snippet(
            "dnn/draws.py",
            """
            import numpy as np

            def noise(n):
                return np.random.randn(n)

            def pick(xs):
                np.random.shuffle(xs)
                return xs
            """,
            rules=[SeededRngRule()],
        )
        assert codes(findings) == ["R9", "R9"]

    def test_seeded_default_rng_is_fine(self, lint_snippet):
        findings = lint_snippet(
            "dnn/ok.py",
            """
            import numpy as np
            from repro.distributed.node import spawn_key

            def noise(seed, node, n):
                rng = np.random.default_rng(spawn_key(seed, node, 0))
                return rng.standard_normal(n)
            """,
            rules=[SeededRngRule()],
        )
        assert findings == []

    def test_unseeded_default_rng_flagged(self, lint_snippet):
        findings = lint_snippet(
            "dnn/unseeded.py",
            """
            import numpy as np

            def noise(n):
                return np.random.default_rng().standard_normal(n)
            """,
            rules=[SeededRngRule()],
        )
        assert codes(findings) == ["R9"]

    def test_randomstate_flagged(self, lint_snippet):
        findings = lint_snippet(
            "dnn/legacy.py",
            """
            import numpy as np

            def gen(seed):
                return np.random.RandomState(seed)
            """,
            rules=[SeededRngRule()],
        )
        assert codes(findings) == ["R9"]

    def test_stdlib_random_flagged_only_when_imported(self, lint_tree):
        findings = lint_tree(
            {
                "repro/dnn/uses_stdlib.py": """
                    import random

                    def pick(xs):
                        return random.choice(xs)
                    """,
                # ``random`` here is a local object, not the stdlib module.
                "repro/dnn/own_random.py": """
                    class _R:
                        def choice(self, xs):
                            return xs[0]

                    random = _R()

                    def pick(xs):
                        return random.choice(xs)
                    """,
            },
            rules=[SeededRngRule()],
        )
        assert [(f.rule, f.path.endswith("uses_stdlib.py")) for f in findings] == [
            ("R9", True)
        ]

    def test_from_random_import_flagged(self, lint_snippet):
        findings = lint_snippet(
            "dnn/from_import.py",
            """
            from random import shuffle

            def mix(xs):
                shuffle(xs)
                return xs
            """,
            rules=[SeededRngRule()],
        )
        assert codes(findings) == ["R9"]

    def test_generator_annotations_are_fine(self, lint_snippet):
        findings = lint_snippet(
            "dnn/annots.py",
            """
            import numpy as np

            def noise(rng: np.random.Generator, n: int):
                return rng.standard_normal(n)
            """,
            rules=[SeededRngRule()],
        )
        assert findings == []


class TestDocstringDemoScan:
    """R9's docstring pass: demo code is linted like real code."""

    def test_module_docstring_reports_exact_line(self, lint_snippet):
        source = textwrap.dedent(
            '''
            """Demo module.

            Quickstart::

                import numpy as np
                grads = np.random.randn(100)
            """
            '''
        ).strip()
        line_of_demo = source.splitlines().index(
            "    grads = np.random.randn(100)"
        ) + 1
        findings = lint_snippet(
            "core/demo.py", source, rules=[SeededRngRule()]
        )
        assert codes(findings) == ["R9"]
        assert findings[0].line == line_of_demo

    def test_quickstart_regression(self, lint_snippet):
        """The exact pre-fix repro/__init__.py Quickstart must flag."""
        findings = lint_snippet(
            "quickstart_fixture.py",
            '''
            """Package docs.

            Quickstart::

                import numpy as np
                from repro import compress

                grads = (np.random.randn(1_000_000) * 0.01).astype(np.float32)
                cg = compress(grads)
            """
            ''',
            rules=[SeededRngRule()],
        )
        assert codes(findings) == ["R9"]
        assert "docstring demo code" in findings[0].message

    def test_fixed_quickstart_is_clean(self, lint_snippet):
        findings = lint_snippet(
            "quickstart_fixed.py",
            '''
            """Package docs.

            Quickstart::

                import numpy as np

                rng = np.random.default_rng(0)
                grads = (rng.standard_normal(1_000_000) * 0.01).astype(np.float32)
            """
            ''',
            rules=[SeededRngRule()],
        )
        assert findings == []

    def test_function_docstring_scanned(self, lint_snippet):
        findings = lint_snippet(
            "core/fn_demo.py",
            '''
            def helper():
                """Example::

                    x = np.random.uniform(0, 1)
                """
                return None
            ''',
            rules=[SeededRngRule()],
        )
        assert codes(findings) == ["R9"]


# -- R10: iteration order -----------------------------------------------------


class TestIterationOrder:
    def test_for_over_set_literal_flagged(self, lint_snippet):
        findings = lint_snippet(
            "network/sched.py",
            """
            def schedule(sim):
                for node in {3, 1, 2}:
                    sim.enqueue(node)
            """,
            rules=[IterationOrderRule()],
        )
        assert codes(findings) == ["R10"]

    def test_sorted_wrap_is_the_fix(self, lint_snippet):
        findings = lint_snippet(
            "network/sched_ok.py",
            """
            def schedule(sim, nodes):
                for node in sorted(set(nodes)):
                    sim.enqueue(node)
            """,
            rules=[IterationOrderRule()],
        )
        assert findings == []

    def test_module_level_set_global_flagged(self, lint_snippet):
        findings = lint_snippet(
            "network/globals.py",
            """
            KNOWN = {"b", "a"}

            def listing():
                return [name for name in KNOWN]
            """,
            rules=[IterationOrderRule()],
        )
        assert codes(findings) == ["R10"]

    def test_set_call_into_list_flagged(self, lint_snippet):
        findings = lint_snippet(
            "network/mat.py",
            """
            def uniq(xs):
                return list(set(xs))
            """,
            rules=[IterationOrderRule()],
        )
        assert codes(findings) == ["R10"]

    def test_join_over_set_flagged(self, lint_snippet):
        findings = lint_snippet(
            "network/join.py",
            """
            def render(names):
                return ", ".join(frozenset(names))
            """,
            rules=[IterationOrderRule()],
        )
        assert codes(findings) == ["R10"]

    def test_order_insensitive_reductions_fine(self, lint_snippet):
        findings = lint_snippet(
            "network/reduce.py",
            """
            def stats(xs):
                s = set(xs)
                return len(s), max(s), sum(s), ("a" in s)
            """,
            rules=[IterationOrderRule()],
        )
        assert findings == []

    def test_set_annotated_attr_cross_file(self, lint_tree):
        """Set[...] annotation in one module taints iteration in another."""
        findings = lint_tree(
            {
                "repro/core/facts.py": """
                    from dataclasses import dataclass, field
                    from typing import Set

                    @dataclass
                    class Facts:
                        registrars: Set[str] = field(default_factory=set)
                    """,
                "repro/core/consumer.py": """
                    def dump(facts):
                        for name in facts.registrars:
                            print(name)
                    """,
            },
            rules=[IterationOrderRule()],
        )
        assert [(f.rule, f.path.endswith("consumer.py")) for f in findings] == [
            ("R10", True)
        ]

    def test_registry_dict_items_flagged_and_sorted_fix(self, lint_snippet):
        findings = lint_snippet(
            "core/reg.py",
            """
            _REGISTRY = {}

            def register(name, entry):
                _REGISTRY[name] = entry

            def scan_bad():
                return [(k, v) for k, v in _REGISTRY.items()]

            def scan_good():
                return [(k, v) for k, v in sorted(_REGISTRY.items())]
            """,
            rules=[IterationOrderRule()],
        )
        assert codes(findings) == ["R10"]
        assert "scan_bad" not in findings[0].message  # location, not name
        assert findings[0].line < 11  # points at the unsorted scan

    def test_plain_dict_iteration_fine(self, lint_snippet):
        """Insertion-ordered dicts built locally are deterministic."""
        findings = lint_snippet(
            "core/plain.py",
            """
            def tally(pairs):
                acc = {}
                for key, value in pairs:
                    acc[key] = value
                return [k for k in acc]
            """,
            rules=[IterationOrderRule()],
        )
        assert findings == []


# -- R11: mutable defaults ----------------------------------------------------


class TestMutableDefaults:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "list()", "dict()", "[1, 2]"]
    )
    def test_public_function_flagged(self, lint_snippet, default):
        findings = lint_snippet(
            "transport/api.py",
            f"""
            def send(dst, packets={default}):
                return packets
            """,
            rules=[MutableDefaultsRule()],
        )
        assert codes(findings) == ["R11"]

    def test_public_method_and_kwonly_flagged(self, lint_snippet):
        findings = lint_snippet(
            "transport/meth.py",
            """
            class Endpoint:
                def send(self, dst, *, packets=[]):
                    return packets
            """,
            rules=[MutableDefaultsRule()],
        )
        assert codes(findings) == ["R11"]
        assert "method" in findings[0].message

    def test_private_helper_exempt(self, lint_snippet):
        findings = lint_snippet(
            "transport/priv.py",
            """
            def _helper(acc=[]):
                return acc
            """,
            rules=[MutableDefaultsRule()],
        )
        assert findings == []

    def test_none_sentinel_and_immutables_fine(self, lint_snippet):
        findings = lint_snippet(
            "transport/ok.py",
            """
            def send(dst, packets=None, flags=(), tag="x", n=0):
                packets = [] if packets is None else packets
                return packets, flags, tag, n
            """,
            rules=[MutableDefaultsRule()],
        )
        assert findings == []


def test_default_rules_include_determinism_family():
    from repro.analysis.rules import default_rules

    codes_present = {r.code for r in default_rules()}
    assert {"R8", "R9", "R10", "R11"} <= codes_present
