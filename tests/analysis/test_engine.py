"""Engine behavior: suppressions, syntax errors, output formats, CLI."""

import json

import pytest

from repro.analysis import format_human, format_json, lint_paths
from repro.analysis.cli import main
from repro.analysis.engine import SYNTAX_ERROR_CODE, module_name, package_of
from repro.analysis.output import JSON_SCHEMA_VERSION
from repro.analysis.rules import rules_by_code, select_rules
from repro.analysis.rules.dtype import DtypeDisciplineRule


class TestSuppressions:
    def test_same_line_disable(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np
            g = np.zeros(10)  # repro-lint: disable=R1 -- measurement scratch
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert findings == []

    def test_disable_by_rule_name(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np
            g = np.zeros(10)  # repro-lint: disable=dtype-discipline
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert findings == []

    def test_disable_next_line(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np
            # repro-lint: disable-next-line=R1
            g = np.zeros(10)
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert findings == []

    def test_disable_all(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np
            g = np.zeros(10)  # repro-lint: disable=all
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert findings == []

    def test_wrong_code_does_not_suppress(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np
            g = np.zeros(10)  # repro-lint: disable=R4
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert [f.rule for f in findings] == ["R1"]

    def test_suppression_on_other_line_does_not_leak(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np
            a = np.zeros(10)  # repro-lint: disable=R1
            b = np.zeros(10)
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert len(findings) == 1
        assert findings[0].line == 4


class TestEngineBasics:
    def test_syntax_error_reported_not_raised(self, lint_snippet):
        findings = lint_snippet("core/x.py", "def broken(:\n")
        assert [f.rule for f in findings] == [SYNTAX_ERROR_CODE]
        assert findings[0].name == "syntax-error"

    def test_module_name_anchors_at_repro(self, tmp_path):
        from pathlib import Path

        assert (
            module_name(Path("/tmp/x/repro/core/codec.py")) == "repro.core.codec"
        )
        assert module_name(Path("src/repro/network/__init__.py")) == (
            "repro.network"
        )
        assert module_name(Path("/somewhere/scratch.py")) == "scratch"

    def test_package_of(self):
        assert package_of("repro.core.codec") == "core"
        assert package_of("repro.cli") == "cli"
        assert package_of("scratch") == ""

    def test_findings_sorted_by_location(self, lint_tree):
        findings = lint_tree(
            {
                "repro/core/b.py": "import numpy as np\ng = np.zeros(3)\n",
                "repro/core/a.py": "import numpy as np\ng = np.zeros(3)\n",
            },
            rules=[DtypeDisciplineRule()],
        )
        assert len(findings) == 2
        assert findings[0].path < findings[1].path

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["/nonexistent/nowhere.txt"])


class TestRuleSelection:
    def test_rules_by_code_covers_codes_and_names(self):
        table = rules_by_code()
        assert "R1" in table and "DTYPE-DISCIPLINE" in table
        assert table["R1"] is table["DTYPE-DISCIPLINE"]

    def test_select_rules_instantiates(self):
        rules = select_rules(["R1", "deprecated-api"])
        assert [r.code for r in rules] == ["R1", "R2"]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            select_rules(["R99"])


class TestOutputFormats:
    def _findings(self, lint_snippet):
        return lint_snippet(
            "core/x.py",
            "import numpy as np\ng = np.zeros(3)\n",
            rules=[DtypeDisciplineRule()],
        )

    def test_json_schema(self, lint_snippet):
        findings = self._findings(lint_snippet)
        doc = json.loads(format_json(findings, files_checked=1))
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["files_checked"] == 1
        assert doc["counts"] == {"R1": 1}
        (entry,) = doc["findings"]
        assert set(entry) == {"rule", "name", "path", "line", "col", "message"}
        assert entry["rule"] == "R1"
        assert entry["line"] == 2

    def test_human_format_summary(self, lint_snippet):
        findings = self._findings(lint_snippet)
        text = format_human(findings, files_checked=1)
        assert "R1[dtype-discipline]" in text
        assert "1 finding(s) in 1 file(s) (R1: 1)" in text

    def test_human_format_clean(self):
        assert format_human([], files_checked=7) == "0 findings in 7 file(s)"


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        (target / "ok.py").write_text(
            "import numpy as np\n\n"
            "def f(x: int) -> int:\n"
            "    return x\n"
        )
        assert main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one_and_json(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        (target / "bad.py").write_text(
            "import numpy as np\ng = np.zeros(3)\n"
        )
        assert main([str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"].get("R1") == 1

    def test_select_limits_rules(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        (target / "bad.py").write_text(
            "import numpy as np\ng = np.zeros(3)\n\n"
            "def f(x):\n"
            "    return x\n"
        )
        assert main([str(tmp_path), "--select", "R5"]) == 1
        out = capsys.readouterr().out
        assert "R5" in out and "R1" not in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R1", "R2", "R3", "R4", "R5"):
            assert code in out

    def test_repro_cli_exposes_lint(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        (target / "ok.py").write_text("X: int = 1\n")
        assert repro_main(["lint", str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out
