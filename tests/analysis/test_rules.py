"""Per-rule fixtures: what each rule must flag and must not flag."""

import textwrap

import pytest

from repro.analysis.rules.agg_site import AggregationSiteRule
from repro.analysis.rules.annotations import AnnotationsRule
from repro.analysis.rules.bits import BitAccountingRule
from repro.analysis.rules.deprecated import DeprecatedApiRule
from repro.analysis.rules.dtype import DtypeDisciplineRule
from repro.analysis.rules.registry_tos import RegistryTosRule
from repro.analysis.rules.retired import RetiredApiRule
from repro.analysis.rules.strategy_calls import StrategyCallsRule


def codes(findings):
    return [f.rule for f in findings]


class TestDtypeDiscipline:
    def test_flags_constructor_without_dtype(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np
            g = np.zeros(10)
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert codes(findings) == ["R1"]
        assert "explicit dtype" in findings[0].message

    def test_explicit_dtype_is_fine(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np
            g = np.zeros(10, dtype=np.float32)
            idx = np.arange(5, dtype=np.intp)
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert findings == []

    def test_astype_wrap_counts_as_explicit(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np
            g = np.arange(10).astype(np.float32)
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert findings == []

    @pytest.mark.parametrize(
        "expr",
        [
            "np.zeros(4, dtype=np.float64)",
            "np.asarray(x, dtype=float)",
            'np.empty(4, dtype="float64")',
            "x.astype(np.float64)",
            "np.float64(1.5)",
        ],
    )
    def test_flags_float64_spellings(self, lint_snippet, expr):
        findings = lint_snippet(
            "dnn/x.py",
            f"""
            import numpy as np
            x = np.ones(4, dtype=np.float32)
            y = {expr}
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert codes(findings) == ["R1"]

    def test_outside_gradient_path_not_checked(self, lint_snippet):
        findings = lint_snippet(
            "analysis/x.py",
            """
            import numpy as np
            g = np.zeros(10)
            """,
            rules=[DtypeDisciplineRule()],
        )
        assert findings == []


class TestDeprecatedApi:
    def test_flags_compressible_kwarg(self, lint_snippet):
        findings = lint_snippet(
            "distributed/x.py",
            """
            def go(ep):
                ep.isend(1, data, compressible=True)
            """,
            rules=[DeprecatedApiRule()],
        )
        assert codes(findings) == ["R2"]
        assert "compressible" in findings[0].message

    def test_flags_cluster_config_compression(self, lint_snippet):
        findings = lint_snippet(
            "perfmodel/x.py",
            """
            config = ClusterConfig(num_nodes=4, compression=True)
            """,
            rules=[DeprecatedApiRule()],
        )
        assert codes(findings) == ["R2"]

    def test_other_compression_kwargs_allowed(self, lint_snippet):
        # NicTimingModel(compression=...) is a live hardware flag, not
        # the deprecated shim.
        findings = lint_snippet(
            "network/x.py",
            """
            nic = NicTimingModel(compression=True)
            nics = uniform_nics(4, compression=False)
            """,
            rules=[DeprecatedApiRule()],
        )
        assert findings == []

    def test_shim_module_is_exempt(self, lint_snippet):
        findings = lint_snippet(
            "transport/endpoint.py",
            """
            def isend(self, dst, array, compressible=None):
                return self._send(dst, array, compressible=compressible)
            """,
            rules=[DeprecatedApiRule()],
        )
        assert findings == []

    def test_profile_api_not_flagged(self, lint_snippet):
        findings = lint_snippet(
            "distributed/x.py",
            """
            def go(ep, stream):
                ep.isend(1, data, profile=stream)
            """,
            rules=[DeprecatedApiRule()],
        )
        assert findings == []


REGISTRY_PRELUDE = (
    'class GoodCodec:\n'
    '    name = "inceptionn"\n'
    '\n'
    'class OtherCodec:\n'
    '    name = "other"\n'
    '\n'
)


class TestRegistryTos:
    def test_consistent_registry_is_clean(self, lint_snippet):
        findings = lint_snippet(
            "core/registry.py",
            REGISTRY_PRELUDE
            + textwrap.dedent("""
            register_codec(GoodCodec(), tos=0x28)
            register_codec(OtherCodec(), tos=0x2C)
            profile = StreamProfile(codec="other")
            """),
            rules=[RegistryTosRule()],
        )
        assert findings == []

    def test_flags_duplicate_tos(self, lint_snippet):
        findings = lint_snippet(
            "core/registry.py",
            REGISTRY_PRELUDE
            + textwrap.dedent("""
            register_codec(GoodCodec(), tos=0x28)
            register_codec(OtherCodec(), tos=0x28)
            """),
            rules=[RegistryTosRule()],
        )
        # The duplicate claim and the 0x28-reservation breach both fire.
        assert "already claimed" in " ".join(f.message for f in findings)

    def test_flags_unregistered_profile_name(self, lint_snippet):
        findings = lint_snippet(
            "core/registry.py",
            REGISTRY_PRELUDE
            + textwrap.dedent("""
            register_codec(GoodCodec(), tos=0x28)
            profile = StreamProfile(codec="missing")
            other = profile_for("missing_too")
            """),
            rules=[RegistryTosRule()],
        )
        assert len(findings) == 2
        assert all("not registered" in f.message for f in findings)

    def test_no_registrations_means_no_name_checks(self, lint_snippet):
        # Linting a subtree with no register_codec calls must not
        # false-positive on every StreamProfile literal.
        findings = lint_snippet(
            "perfmodel/x.py",
            """
            profile = StreamProfile(codec="anything")
            """,
            rules=[RegistryTosRule()],
        )
        assert findings == []

    def test_flags_unresolvable_tos(self, lint_snippet):
        findings = lint_snippet(
            "core/registry.py",
            REGISTRY_PRELUDE
            + textwrap.dedent("""
            register_codec(GoodCodec(), tos=0x28)
            register_codec(OtherCodec(), tos=compute_tos())
            """),
            rules=[RegistryTosRule()],
        )
        assert codes(findings) == ["R3"]
        assert "not statically resolvable" in findings[0].message

    def test_flags_non_inceptionn_claiming_0x28(self, lint_snippet):
        findings = lint_snippet(
            "core/registry.py",
            """
            class OtherCodec:
                name = "other"

            register_codec(OtherCodec(), tos=0x28)
            """,
            rules=[RegistryTosRule()],
        )
        assert codes(findings) == ["R3"]
        assert "may not claim" in findings[0].message

    def test_flags_inceptionn_off_its_reserved_tos(self, lint_snippet):
        findings = lint_snippet(
            "core/registry.py",
            """
            class GoodCodec:
                name = "inceptionn"

            register_codec(GoodCodec(), tos=0x30)
            """,
            rules=[RegistryTosRule()],
        )
        assert codes(findings) == ["R3"]
        assert "must keep" in findings[0].message

    def test_resolves_tos_from_module_constant(self, lint_tree):
        findings = lint_tree(
            {
                "repro/network/packet.py": """
                    TOS_DEFAULT = 0x00
                    TOS_COMPRESS = 0x28
                """,
                "repro/core/registry.py": """
                    class GoodCodec:
                        name = "inceptionn"

                    register_codec(GoodCodec(), tos=TOS_COMPRESS)
                """,
            },
            rules=[RegistryTosRule()],
        )
        assert findings == []

    def test_flags_default_tos_claim(self, lint_snippet):
        findings = lint_snippet(
            "core/registry.py",
            """
            class OtherCodec:
                name = "other"

            register_codec(OtherCodec(), tos=0x00)
            """,
            rules=[RegistryTosRule()],
        )
        assert codes(findings) == ["R3"]
        assert "raw traffic" in findings[0].message


class TestBitAccounting:
    def test_flags_list_in_bits_function(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            def payload_nbits(tags):
                sizes = [SIZE[t] for t in tags]
                return sum(sizes)
            """,
            rules=[BitAccountingRule()],
        )
        assert codes(findings) == ["R4"]
        assert "ListComp" in findings[0].message

    def test_flags_dict_call(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            def header_bits(tags):
                counts = dict()
                return counts
            """,
            rules=[BitAccountingRule()],
        )
        assert codes(findings) == ["R4"]

    def test_vectorized_counting_is_fine(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            import numpy as np

            def payload_nbits(tags):
                return int(np.bincount(tags, minlength=4) @ SIZES)
            """,
            rules=[BitAccountingRule()],
        )
        assert findings == []

    def test_generator_expressions_allowed(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            def total_bits(chunks):
                return sum(c.nbits for c in chunks)
            """,
            rules=[BitAccountingRule()],
        )
        assert findings == []

    def test_other_functions_unrestricted(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            def summarize(tags):
                return [t for t in tags]
            """,
            rules=[BitAccountingRule()],
        )
        assert findings == []


class TestAnnotations:
    def test_flags_missing_return_annotation(self, lint_snippet):
        findings = lint_snippet(
            "dnn/x.py",
            """
            def scale(x: float):
                return 2 * x
            """,
            rules=[AnnotationsRule()],
        )
        assert codes(findings) == ["R5"]
        assert "return" in findings[0].message

    def test_flags_missing_param_annotation(self, lint_snippet):
        findings = lint_snippet(
            "dnn/x.py",
            """
            def scale(x) -> float:
                return 2.0 * x
            """,
            rules=[AnnotationsRule()],
        )
        assert codes(findings) == ["R5"]
        assert "'scale'" in findings[0].message

    def test_self_exempt_but_not_staticmethod(self, lint_snippet):
        findings = lint_snippet(
            "dnn/x.py",
            """
            class Model:
                def forward(self, x: int) -> int:
                    return x

                @staticmethod
                def helper(self) -> int:
                    return 0
            """,
            rules=[AnnotationsRule()],
        )
        assert len(findings) == 1
        assert "'helper'" in findings[0].message

    def test_private_and_nested_skipped_by_default(self, lint_snippet):
        findings = lint_snippet(
            "dnn/x.py",
            """
            def _helper(x):
                return x

            def outer() -> int:
                def inner(y):
                    return y
                return inner(1)
            """,
            rules=[AnnotationsRule()],
        )
        assert findings == []

    def test_strict_mode_covers_private_functions(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            def _helper(x):
                return x
            """,
            rules=[AnnotationsRule(strict=True)],
        )
        assert codes(findings) == ["R5"]

    def test_package_scoping(self, lint_snippet):
        findings = lint_snippet(
            "dnn/x.py",
            """
            def scale(x):
                return x
            """,
            rules=[AnnotationsRule(packages=("core", "network"))],
        )
        assert findings == []

    def test_vararg_annotations_required(self, lint_snippet):
        findings = lint_snippet(
            "core/x.py",
            """
            def combine(*parts, **options) -> str:
                return ""
            """,
            rules=[AnnotationsRule()],
        )
        assert codes(findings) == ["R5"]
        assert "*parts" in findings[0].message
        assert "**options" in findings[0].message

    def test_network_module_requires_docstring(self, lint_snippet):
        findings = lint_snippet(
            "network/x.py",
            """
            X = 1
            """,
            rules=[AnnotationsRule()],
        )
        assert codes(findings) == ["R5"]
        assert "docstring" in findings[0].message

    def test_network_module_docstring_satisfies(self, lint_snippet):
        findings = lint_snippet(
            "network/x.py",
            '''
            """States this module's invariants."""

            X = 1
            ''',
            rules=[AnnotationsRule()],
        )
        assert findings == []

    def test_docstring_not_required_outside_network(self, lint_snippet):
        findings = lint_snippet(
            "dnn/x.py",
            """
            X = 1
            """,
            rules=[AnnotationsRule()],
        )
        assert findings == []

    def test_docstring_check_survives_package_scoping(self, lint_snippet):
        # Annotation scoping narrowed away from network: the module
        # docstring requirement still applies there, the annotation
        # check does not.
        findings = lint_snippet(
            "network/x.py",
            """
            def scale(x):
                return x
            """,
            rules=[AnnotationsRule(packages=("core",))],
        )
        assert codes(findings) == ["R5"]
        assert "docstring" in findings[0].message


class TestRetiredApi:
    def test_flags_isend_sized_call(self, lint_snippet):
        findings = lint_snippet(
            "distributed/x.py",
            """
            def go(ep):
                ep.isend_sized(1, 1000)
            """,
            rules=[RetiredApiRule()],
        )
        assert codes(findings) == ["R6"]
        assert "WireMessage" in findings[0].message

    def test_flags_bare_name_call(self, lint_snippet):
        findings = lint_snippet(
            "perfmodel/x.py",
            """
            def go(isend_sized):
                isend_sized(1, 1000)
            """,
            rules=[RetiredApiRule()],
        )
        assert codes(findings) == ["R6"]

    def test_flags_compression_ratio_keyword(self, lint_snippet):
        findings = lint_snippet(
            "perfmodel/x.py",
            """
            def go(ep, stream):
                ep.build_message(1, nbytes=100, compression_ratio=4.0)
            """,
            rules=[RetiredApiRule()],
        )
        assert codes(findings) == ["R6"]
        assert "ratio=" in findings[0].message

    def test_positional_compression_ratio_function_allowed(self, lint_snippet):
        # The statistics helper takes positional args; only the retired
        # keyword form is banned.
        findings = lint_snippet(
            "core/x.py",
            """
            from repro.core import compression_ratio

            def stats(values, bound):
                return compression_ratio(values, bound)
            """,
            rules=[RetiredApiRule()],
        )
        assert findings == []

    def test_new_builder_api_allowed(self, lint_snippet):
        findings = lint_snippet(
            "distributed/x.py",
            """
            def go(ep, stream):
                msg = ep.build_message(1, nbytes=1000, profile=stream, ratio=4.0)
                return ep.isend_message(msg)
            """,
            rules=[RetiredApiRule()],
        )
        assert findings == []


STRATEGY_PLUGIN = """
@register_strategy
class RingStrategy(GradientStrategy):
    name = "ring"

    def exchange(self, node, iteration, gradient):
        total = yield from ring_exchange(node.endpoint, gradient)
        return total
"""


class TestStrategyCalls:
    def test_plugin_module_may_call_exchange(self, lint_snippet):
        findings = lint_snippet(
            "distributed/cluster.py",
            STRATEGY_PLUGIN,
            rules=[StrategyCallsRule()],
        )
        assert findings == []

    def test_flags_call_outside_plugin(self, lint_tree):
        findings = lint_tree(
            {
                "repro/distributed/cluster.py": STRATEGY_PLUGIN,
                "repro/perfmodel/bench.py": textwrap.dedent(
                    """
                    def bench(ep, grad):
                        total = yield from ring_exchange(ep, grad)
                        return total
                    """
                ),
            },
            rules=[StrategyCallsRule()],
        )
        assert codes(findings) == ["R7"]
        assert "ring_exchange" in findings[0].message
        assert findings[0].path.endswith("perfmodel/bench.py")

    def test_primitive_layer_is_exempt(self, lint_tree):
        # A module defining one exchange primitive may compose others
        # (the hierarchical exchange runs ring exchanges per group).
        findings = lint_tree(
            {
                "repro/distributed/cluster.py": STRATEGY_PLUGIN,
                "repro/distributed/hier.py": textwrap.dedent(
                    """
                    def hierarchical_exchange(ep, grad, layout):
                        part = yield from ring_exchange(ep, grad)
                        return part
                    """
                ),
            },
            rules=[StrategyCallsRule()],
        )
        assert findings == []

    def test_registration_call_form_counts_as_plugin(self, lint_snippet):
        findings = lint_snippet(
            "distributed/custom.py",
            """
            class MyStrategy(GradientStrategy):
                def exchange(self, node, iteration, gradient):
                    total = yield from worker_exchange(node.endpoint, gradient)
                    return total

            register_strategy(MyStrategy)
            """,
            rules=[StrategyCallsRule()],
        )
        assert findings == []

    def test_no_registrations_means_no_checks(self, lint_snippet):
        # Fixture subtrees without a strategy layer must not flag every
        # exchange-like call.
        findings = lint_snippet(
            "perfmodel/bench.py",
            """
            def bench(ep, grad):
                total = yield from ring_exchange(ep, grad)
                return total
            """,
            rules=[StrategyCallsRule()],
        )
        assert findings == []

    def test_suppression_comment_silences_r7(self, lint_tree):
        findings = lint_tree(
            {
                "repro/distributed/cluster.py": STRATEGY_PLUGIN,
                "repro/perfmodel/bench.py": textwrap.dedent(
                    """
                    def bench(ep, grad):
                        total = yield from ring_exchange(ep, grad)  # repro-lint: disable=R7 bench harness
                        return total
                    """
                ),
            },
            rules=[StrategyCallsRule()],
        )
        assert findings == []


AGGREGATION_LAYER = """
def combine_parts(stream, parts):
    return stream.aggregate_compressed(parts)


def aggregate_endpoint(stream, gradients):
    parts = [stream.compress(g) for g in gradients]
    return stream.aggregate_compressed(parts)
"""

INLINE_REAGGREGATION = """
def fold(codec, payloads):
    total = None
    for payload in payloads:
        grad = codec.decompress(payload)
        total = grad if total is None else total + grad
    return codec.compress(total)
"""


class TestAggregationSite:
    def test_flags_inline_decompress_sum_recompress(self, lint_tree):
        findings = lint_tree(
            {
                "repro/transport/aggregation.py": AGGREGATION_LAYER,
                "repro/distributed/custom.py": INLINE_REAGGREGATION,
            },
            rules=[AggregationSiteRule()],
        )
        assert codes(findings) == ["R12"]
        assert "aggregate_compressed" in findings[0].message
        assert findings[0].path.endswith("distributed/custom.py")

    def test_aggregation_layer_itself_is_exempt(self, lint_tree):
        findings = lint_tree(
            {
                "repro/transport/aggregation.py": AGGREGATION_LAYER
                + INLINE_REAGGREGATION,
            },
            rules=[AggregationSiteRule()],
        )
        assert findings == []

    def test_codec_modules_are_exempt(self, lint_tree):
        # A codec may reconstruct and re-encode internally (error
        # feedback); only call sites outside codec modules are confined.
        findings = lint_tree(
            {
                "repro/transport/aggregation.py": AGGREGATION_LAYER,
                "repro/core/mycodec.py": """
                def compress(values, bound):
                    return values


                def decompress(wire):
                    return wire


                def fold(payloads):
                    total = decompress(payloads[0]) + decompress(payloads[1])
                    return compress(total, 10)
                """,
            },
            rules=[AggregationSiteRule()],
        )
        assert findings == []

    def test_decompress_without_sum_is_fine(self, lint_tree):
        findings = lint_tree(
            {
                "repro/transport/aggregation.py": AGGREGATION_LAYER,
                "repro/perfmodel/roundtrip.py": """
                def roundtrip(codec, grad):
                    wire = codec.compress(grad)
                    return codec.decompress(wire)
                """,
            },
            rules=[AggregationSiteRule()],
        )
        assert findings == []

    def test_cost_models_do_not_match(self, lint_tree):
        # compression_time/decompression_time are throughput models,
        # not payload operations: word-boundary matching skips them.
        findings = lint_tree(
            {
                "repro/transport/aggregation.py": AGGREGATION_LAYER,
                "repro/baselines/cost.py": """
                def roundtrip_time(codec, nbytes):
                    total = nbytes + 1
                    return codec.compression_time(total) + (
                        codec.decompression_time(total)
                    )
                """,
            },
            rules=[AggregationSiteRule()],
        )
        assert findings == []

    def test_no_aggregation_layer_means_no_checks(self, lint_snippet):
        findings = lint_snippet(
            "distributed/custom.py",
            INLINE_REAGGREGATION,
            rules=[AggregationSiteRule()],
        )
        assert findings == []

    def test_suppression_comment_silences_r12(self, lint_tree):
        findings = lint_tree(
            {
                "repro/transport/aggregation.py": AGGREGATION_LAYER,
                "repro/distributed/custom.py": """
                def fold(codec, payloads):
                    total = sum(codec.decompress(p) for p in payloads)
                    return codec.compress(total)  # repro-lint: disable=R12 legacy shim
                """,
            },
            rules=[AggregationSiteRule()],
        )
        assert findings == []
