"""Run the pinned third-party gate (mypy/ruff) when it is installed.

The container running tier-1 tests may not ship these tools; the
equivalent invariants are covered dependency-free by test_selfcheck.py,
so these are skipped — not failed — when the tools are absent.  CI
installs the ``analysis`` extra and runs them directly.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _run(args):
    return subprocess.run(
        args,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=600,
    )


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_packages():
    proc = _run([sys.executable, "-m", "mypy"])
    assert proc.returncode == 0, proc.stdout


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = _run([sys.executable, "-m", "ruff", "check", "src", "tests"])
    assert proc.returncode == 0, proc.stdout
