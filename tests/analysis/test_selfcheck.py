"""The repo must pass its own lint — the gate CI enforces.

If one of these fails, either fix the flagged code or (for deliberate
exceptions, e.g. double-precision measurement code) add a
``# repro-lint: disable=<rule>`` comment with a rationale.
"""

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.rules.annotations import AnnotationsRule

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Packages under mypy's disallow_untyped_defs (the wire and trace
#: contracts — pyproject.toml's [tool.mypy] files list mirrors this).
STRICT_PACKAGES = ("core", "network", "hardware", "transport", "obs")


def test_source_tree_is_lint_clean():
    findings, files_checked = lint_paths([SRC_REPRO])
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"src/repro must lint clean:\n{rendered}"
    assert files_checked > 50  # sanity: the whole tree was scanned


def test_strict_packages_fully_annotated():
    """Local, dependency-free mirror of mypy's disallow_untyped_defs."""
    paths = [SRC_REPRO / pkg for pkg in STRICT_PACKAGES]
    findings, files_checked = lint_paths(
        paths, rules=[AnnotationsRule(strict=True)]
    )
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, (
        f"strict packages must annotate every def:\n{rendered}"
    )
    assert files_checked > 20


def test_registry_facts_found_in_real_tree():
    """The project-facts pass sees the real registry's codecs."""
    from repro.analysis.engine import FileContext, discover_files
    from repro.analysis.project import collect_project_facts
    from repro.core import available_codecs

    files = discover_files([SRC_REPRO])
    contexts = []
    for path in files:
        ctx = FileContext(path, str(path), path.read_text(encoding="utf-8"))
        contexts.append(ctx)
    facts = collect_project_facts(
        [(c.module, c.display_path, c.tree) for c in contexts if c.tree]
    )
    assert facts.tos_compress == 0x28
    # Every runtime-registered codec is statically visible, and the
    # static pass resolved a unique ToS byte for each.
    static_names = facts.registered_names
    assert set(available_codecs()) <= static_names
    tos_values = [r.tos for r in facts.registrations]
    assert None not in tos_values
    assert len(set(tos_values)) == len(tos_values)
