"""Bench artifact schema, comparator, and strict-JSON serialization."""

import json

import numpy as np
import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BENCH_VERSION,
    compare_bench,
    find_prior,
    render_comparison,
    validate_bench,
)
from repro.perfmodel import ExchangeResult
from repro.report import dumps_strict, json_safe


def _doc(sequence=8, names=("codec.compress", "exchange.ring.flow.w4")):
    return {
        "schema": BENCH_SCHEMA,
        "version": BENCH_VERSION,
        "sequence": sequence,
        "quick": True,
        "results": [
            {"name": name, "wall_s": 0.001 * (i + 1), "meta": {"n": i}}
            for i, name in enumerate(names)
        ],
    }


class TestValidateBench:
    def test_valid_document_passes(self):
        validate_bench(_doc())

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.update(schema="other"), "schema"),
            (lambda d: d.update(version=99), "version"),
            (lambda d: d.update(sequence=-1), "sequence"),
            (lambda d: d.update(quick="yes"), "quick"),
            (lambda d: d.update(results=[]), "results"),
            (lambda d: d["results"][0].pop("name"), "name"),
            (lambda d: d["results"][0].update(wall_s=-0.1), "wall_s"),
            (
                lambda d: d["results"][0].update(wall_s=float("nan")),
                "wall_s",
            ),
            (lambda d: d["results"][0].update(meta=None), "meta"),
        ],
    )
    def test_broken_documents_rejected(self, mutate, message):
        doc = _doc()
        mutate(doc)
        with pytest.raises(ValueError, match=message):
            validate_bench(doc)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_bench(_doc(names=("a", "a")))

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            validate_bench([1, 2, 3])


class TestComparator:
    def test_find_prior_picks_largest_smaller_suffix(self, tmp_path):
        for seq in (5, 7, 8, 9):
            (tmp_path / f"BENCH_{seq}.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")
        assert find_prior(tmp_path / "BENCH_8.json").name == "BENCH_7.json"

    def test_find_prior_none_when_first(self, tmp_path):
        (tmp_path / "BENCH_8.json").write_text("{}")
        assert find_prior(tmp_path / "BENCH_8.json") is None

    def test_compare_matches_shared_names_only(self):
        current = _doc(names=("a", "b"))
        prior = _doc(sequence=7, names=("b", "c"))
        rows = compare_bench(current, prior)
        assert rows == [("b", 0.001, 0.002)]

    def test_render_comparison_reports_percent_delta(self):
        text = render_comparison([("a", 0.002, 0.001)], "BENCH_7.json")
        assert "BENCH_7.json" in text
        assert "-50.0%" in text

    def test_render_comparison_without_overlap(self):
        assert "no overlapping" in render_comparison([], "BENCH_7.json")


class TestStrictJson:
    def test_non_finite_floats_become_null(self):
        doc = {
            "inf": float("inf"),
            "nested": [float("nan"), {"neg": float("-inf")}, 1.5],
        }
        text = dumps_strict(doc)
        assert json.loads(text) == {
            "inf": None,
            "nested": [None, {"neg": None}, 1.5],
        }
        assert "Infinity" not in text and "NaN" not in text

    def test_numpy_scalars_are_converted(self):
        safe = json_safe({"a": np.float64("inf"), "b": np.int64(3)})
        assert safe == {"a": None, "b": 3}
        assert isinstance(safe["b"], int)

    def test_infinite_wire_ratio_serializes_as_null(self):
        # Regression: wire_ratio is inf when bytes were sent but none
        # hit the wire log; json.dumps used to emit the non-standard
        # ``Infinity`` token that strict JSON parsers reject.
        result = ExchangeResult(
            algorithm="ring",
            num_workers=2,
            nbytes=10,
            iterations=1,
            total_s=1.0,
            gradient_sum_s=0.0,
            update_s=0.0,
            sent_nbytes=10,
            wire_payload_nbytes=0,
        )
        assert result.wire_ratio == float("inf")
        text = dumps_strict({"wire_ratio": result.wire_ratio})
        assert json.loads(text) == {"wire_ratio": None}
