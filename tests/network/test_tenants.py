"""Background-tenant tests: parsing, placement, contention, priority."""

import pytest

from repro.network import (
    BackgroundTraffic,
    FatTree,
    Network,
    Simulation,
    TOS_TENANT_INFER,
    TOS_TENANT_TRAIN,
    TenantSpec,
    parse_tenants,
)
from repro.network.packet import is_compressible_tos
from repro.network.priority import PRIORITY_HIGH, PRIORITY_LOW


def test_parse_tenants():
    tenants = parse_tenants("train:4,infer:8")
    assert [t.kind for t in tenants] == ["train", "infer"]
    assert [t.hosts for t in tenants] == [4, 8]
    assert tenants[0].tos == TOS_TENANT_TRAIN
    assert tenants[1].tos == TOS_TENANT_INFER


def test_parse_tenants_default_hosts():
    (tenant,) = parse_tenants("train")
    assert tenant.hosts == 4


def test_parse_tenants_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown tenant kind"):
        parse_tenants("batch:4")


def test_tenant_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec(kind="train", hosts=1)
    with pytest.raises(ValueError):
        TenantSpec(kind="mystery")


def test_tenant_tos_bytes_are_not_compressible():
    # Tenant traffic must bypass the NIC (de)compression engines.
    assert not is_compressible_tos(TOS_TENANT_TRAIN)
    assert not is_compressible_tos(TOS_TENANT_INFER)


def test_placement_is_contiguous_and_capacity_checked():
    sim = Simulation()
    net = Network(sim, FatTree(sim, k=4))
    bg = BackgroundTraffic(
        net, parse_tenants("train:4,infer:4"), first_host=6
    )
    placed = [hosts for _, hosts in bg.placements]
    assert placed == [[6, 7, 8, 9], [10, 11, 12, 13]]
    with pytest.raises(ValueError, match="spare host ports"):
        BackgroundTraffic(net, parse_tenants("train:8,infer:8"), first_host=6)


def test_background_flows_run_and_stop():
    sim = Simulation()
    net = Network(sim, FatTree(sim, k=4))
    bg = BackgroundTraffic(net, parse_tenants("train:2,infer:2"), first_host=0)
    bg.launch()
    sim.call_at(2e-3, bg.stop)
    sim.run()
    assert bg.total_messages > 0
    assert bg.total_bytes > 0
    assert bg.messages_sent[0] > 0 and bg.messages_sent[1] > 0


def test_background_is_deterministic():
    def run():
        sim = Simulation()
        net = Network(sim, FatTree(sim, k=4))
        bg = BackgroundTraffic(
            net, parse_tenants("train:2,infer:2"), first_host=0, seed=7
        )
        bg.launch()
        sim.call_at(2e-3, bg.stop)
        final = sim.run()
        return final, bg.total_messages, bg.total_bytes

    assert run() == run()


def _exchange_time(tenants, prioritize):
    from repro.perfmodel import simulate_ring_exchange

    return simulate_ring_exchange(
        6,
        2_000_000,
        topology="fat-tree:k=4",
        tenants=tenants,
        prioritize=prioritize,
        tenant_seed=3,
        train_packets=128,
    ).total_s


def test_contention_slows_foreground_and_priority_protects_it():
    tenants = parse_tenants("train:4,infer:4")
    idle = _exchange_time((), False)
    fifo = _exchange_time(tenants, False)
    prio = _exchange_time(tenants, True)
    assert fifo > idle  # shared links cost time under FIFO
    assert prio < fifo  # strict priority recovers most of it
    assert prio >= idle  # but cannot beat a dedicated fabric


def test_foreground_tos_maps_high_and_tenants_low():
    from repro.network import parse_tenants as parse
    from repro.transport.endpoint import ClusterComm, ClusterConfig

    comm = ClusterComm(
        ClusterConfig(
            num_nodes=6,
            topology="fat-tree:k=4",
            tenants=parse("train:4"),
            prioritize=True,
        )
    )
    mapping = comm.network.tos_priority
    assert mapping is not None
    assert mapping[comm.default_profile.resolved_tos] == PRIORITY_HIGH
    assert mapping[TOS_TENANT_TRAIN] == PRIORITY_LOW


def test_tenant_tos_clash_with_foreground_rejected():
    from repro.transport.endpoint import ClusterComm, ClusterConfig

    clashing = TenantSpec(kind="train", hosts=2, tos=0x00)
    with pytest.raises(ValueError, match="foreground"):
        ClusterComm(
            ClusterConfig(
                num_nodes=6,
                topology="fat-tree:k=4",
                tenants=(clashing,),
                prioritize=True,
            )
        )
