"""Network simulator tests: routing, contention, compression timing."""

import pytest

from repro.network import (
    HEADER_BYTES,
    TOS_COMPRESS,
    DirectRing,
    Network,
    Simulation,
    SwitchedStar,
    packet_count,
    uniform_nics,
)


def _star(num_nodes=4, **net_kwargs):
    sim = Simulation()
    topo = SwitchedStar(
        sim, num_nodes, bandwidth_bps=10e9, link_latency_s=2e-6, switch_delay_s=1e-6
    )
    return sim, Network(sim, topo, **net_kwargs)


def _delivery_time(sim, event):
    out = {}
    event.add_callback(lambda ev: out.setdefault("t", sim.now))
    sim.run()
    return out["t"]


def test_single_message_time_close_to_analytic():
    sim, net = _star()
    nbytes = 10 * 2**20
    t = _delivery_time(sim, net.send(0, 1, nbytes))
    wire = packet_count(nbytes, net.mss) * HEADER_BYTES + nbytes
    floor = wire * 8 / 10e9  # one link's serialization, pipelined over two
    assert floor < t < floor * 1.1 + 1e-3


def test_headers_accounted():
    sim, net = _star()
    nbytes = 1460 * 100
    net.send(0, 1, nbytes)
    sim.run()
    assert net.total_wire_bytes == nbytes + 100 * HEADER_BYTES


def test_payload_delivered_with_receipt():
    sim, net = _star()
    marker = object()
    ev = net.send(0, 1, 1000, payload=marker)
    sim.run()
    payload, receipt = ev.value
    assert payload is marker
    assert receipt.nbytes == 1000
    assert receipt.duration > 0


def test_incast_contention_serializes_on_downlink():
    # 3 senders to one destination take ~3x the time of one sender.
    sim1, net1 = _star()
    t_one = _delivery_time(sim1, net1.send(1, 0, 2**20))

    sim3, net3 = _star()
    events = [net3.send(src, 0, 2**20) for src in (1, 2, 3)]
    t_three = _delivery_time(sim3, sim3.all_of(events))
    assert t_three == pytest.approx(3 * t_one, rel=0.15)


def test_disjoint_pairs_run_concurrently():
    sim, net = _star()
    ev1 = net.send(0, 1, 2**20)
    ev2 = net.send(2, 3, 2**20)
    t_both = _delivery_time(sim, sim.all_of([ev1, ev2]))

    sim1, net1 = _star()
    t_one = _delivery_time(sim1, net1.send(0, 1, 2**20))
    assert t_both == pytest.approx(t_one, rel=0.05)


def test_compression_reduces_wire_time_up_to_engine_cap():
    # At 10:1 compression the wire would be ~10x faster, but the engine's
    # 3.2 GB/s uncompressed-side throughput caps the gain at 2.56x over a
    # 10 Gb/s link — reproducing the paper's observation that communication
    # time reduction saturates well below the compression ratio.
    nbytes = 8 * 2**20
    sim_plain, net_plain = _star()
    t_plain = _delivery_time(sim_plain, net_plain.send(0, 1, nbytes))

    sim = Simulation()
    topo = SwitchedStar(sim, 4)
    net = Network(sim, topo, nics=uniform_nics(4, compression=True))
    ev = net.send(0, 1, nbytes, tos=TOS_COMPRESS, compressed_nbytes=nbytes // 10)
    t_comp = _delivery_time(sim, ev)
    assert t_comp < t_plain / 2
    engine_floor = nbytes / (256 * 100e6 / 8)
    assert t_comp == pytest.approx(engine_floor, rel=0.1)


def test_unbounded_engine_exposes_full_compression_gain():
    nbytes = 8 * 2**20
    sim = Simulation()
    topo = SwitchedStar(sim, 2)
    fast = uniform_nics(2, compression=True, engine_throughput_bps=1e12)
    net = Network(sim, topo, nics=fast)
    ev = net.send(0, 1, nbytes, tos=TOS_COMPRESS, compressed_nbytes=nbytes // 10)
    t = _delivery_time(sim, ev)
    from repro.network import HEADER_BYTES, packet_count

    wire = packet_count(nbytes, net.mss) * HEADER_BYTES + nbytes // 10
    assert t == pytest.approx(wire * 8 / 10e9, rel=0.15)


def test_compression_ignored_without_engines():
    nbytes = 2**20
    sim, net = _star()  # default NICs: no engines
    ev = net.send(0, 1, nbytes, tos=TOS_COMPRESS, compressed_nbytes=nbytes // 10)
    sim.run()
    _, receipt = ev.value
    assert not receipt.compressed
    assert receipt.wire_nbytes >= nbytes


def test_compressed_keeps_packet_count():
    nbytes = 1460 * 1000
    sim = Simulation()
    topo = SwitchedStar(sim, 2)
    net = Network(sim, topo, nics=uniform_nics(2, compression=True))
    ev = net.send(0, 1, nbytes, tos=TOS_COMPRESS, compressed_nbytes=nbytes // 15)
    sim.run()
    _, receipt = ev.value
    assert receipt.num_packets == 1000
    assert receipt.wire_nbytes == 1000 * HEADER_BYTES + nbytes // 15


def test_slow_engine_gates_throughput():
    nbytes = 8 * 2**20
    sim = Simulation()
    topo = SwitchedStar(sim, 2)
    slow = uniform_nics(2, compression=True, engine_throughput_bps=100e6)
    net = Network(sim, topo, nics=slow)
    ev = net.send(0, 1, nbytes, tos=TOS_COMPRESS, compressed_nbytes=nbytes // 10)
    t = _delivery_time(sim, ev)
    # Gated by the 100 MB/s engine, not the 10 Gb/s link.
    assert t >= nbytes / 100e6 * 0.95


def test_direct_ring_routes_only_to_successor():
    sim = Simulation()
    ring = DirectRing(sim, 4)
    net = Network(sim, ring)
    net.send(0, 1, 1000)  # fine
    with pytest.raises(ValueError):
        net.send(0, 2, 1000)


def test_zero_byte_message_delivers():
    sim, net = _star()
    ev = net.send(0, 1, 0)
    t = _delivery_time(sim, ev)
    assert t > 0


def test_self_send_rejected():
    sim, net = _star()
    with pytest.raises(ValueError):
        net.send(1, 1, 100)


def test_train_granularity_does_not_change_totals():
    nbytes = 3 * 2**20
    times = []
    for train_packets in (10, 44, 200):
        sim, net = _star(train_packets=train_packets)
        times.append(_delivery_time(sim, net.send(0, 1, nbytes)))
    assert max(times) / min(times) < 1.05
