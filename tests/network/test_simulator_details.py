"""Simulator detail tests: receipts, train splitting, cut-through edges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    HEADER_BYTES,
    Link,
    Network,
    Simulation,
    SwitchedStar,
    packet_count,
)


def _star(num_nodes=3, **kwargs):
    sim = Simulation()
    return sim, Network(sim, SwitchedStar(sim, num_nodes), **kwargs)


def test_receipt_fields():
    sim, net = _star()
    ev = net.send(0, 1, 10_000)
    sim.run()
    _, receipt = ev.value
    assert receipt.src == 0 and receipt.dst == 1
    assert receipt.nbytes == 10_000
    assert receipt.num_packets == packet_count(10_000, net.mss)
    assert receipt.wire_nbytes == 10_000 + receipt.num_packets * HEADER_BYTES
    assert receipt.duration == receipt.delivered_at - receipt.sent_at
    assert receipt.duration > 0


def test_negative_sizes_rejected():
    sim, net = _star()
    with pytest.raises(ValueError):
        net.send(0, 1, -1)
    with pytest.raises(ValueError):
        net.send(0, 1, 100, tos=0x28, compressed_nbytes=-5)


def test_invalid_constructor_args():
    sim = Simulation()
    topo = SwitchedStar(sim, 2)
    with pytest.raises(ValueError):
        Network(sim, topo, mss=0)
    with pytest.raises(ValueError):
        Network(sim, topo, train_packets=0)


@given(
    nbytes=st.integers(min_value=0, max_value=50_000_000),
    wire=st.integers(min_value=0, max_value=50_000_000),
    train_packets=st.integers(min_value=1, max_value=500),
)
@settings(max_examples=60, deadline=None)
def test_train_splitting_conserves_bytes(nbytes, wire, train_packets):
    sim = Simulation()
    net = Network(sim, SwitchedStar(sim, 2), train_packets=train_packets)
    num_packets = packet_count(nbytes, net.mss)
    wire = min(wire, nbytes)  # compressed payload never exceeds raw
    trains = list(net._split_trains(num_packets, wire, nbytes))
    total_pkts = sum(p for p, _, _ in trains)
    total_wire = sum(w for _, w, _ in trains)
    total_raw = sum(r for _, _, r in trains)
    assert total_pkts == num_packets
    assert total_wire == num_packets * HEADER_BYTES + wire
    assert total_raw == num_packets * HEADER_BYTES + nbytes
    expected_trains = -(-num_packets // train_packets)
    assert len(trains) == expected_trains
    assert all(p >= 1 and w >= 0 and r >= 0 for p, w, r in trains)


def test_cut_through_head_clamped_to_train():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=8e9, latency_s=1e-6)
    head, delivered = link.transmit_cut_through(100, head_nbytes=10_000)
    times = {}
    head.add_callback(lambda e: times.setdefault("head", sim.now))
    delivered.add_callback(lambda e: times.setdefault("full", sim.now))
    sim.run()
    # Head clamps to the train size: both events coincide.
    assert times["head"] == times["full"]


def test_cut_through_negative_head_clamped():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=8e9, latency_s=0.0)
    head, _ = link.transmit_cut_through(1000, head_nbytes=-5)
    times = {}
    head.add_callback(lambda e: times.setdefault("head", sim.now))
    sim.run()
    assert times["head"] == 0.0  # zero-byte head arrives immediately


def test_message_counter_and_totals():
    sim, net = _star()
    net.send(0, 1, 1000)
    net.send(1, 2, 2000)
    sim.run()
    assert net.messages_sent == 2
    # 1000 B -> 1 packet, 2000 B -> 2 packets.
    assert net.total_wire_bytes == 3000 + 3 * HEADER_BYTES


def test_many_small_messages_interleave():
    sim, net = _star()
    events = [net.send(0, 1, 100) for _ in range(50)]
    done = []
    sim.all_of(events).add_callback(lambda e: done.append(sim.now))
    sim.run()
    assert done and done[0] > 0
