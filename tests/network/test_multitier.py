"""Multi-tier fabric tests: fat-tree / leaf-spine routing and ECMP."""

import pytest

from repro.network import (
    FatTree,
    LeafSpine,
    Network,
    Simulation,
    SwitchedStar,
    build_topology,
    parse_topology_spec,
)


def _fat_tree(k=4):
    sim = Simulation()
    return sim, FatTree(sim, k=k)


# -- fat-tree structure ------------------------------------------------------


def test_fat_tree_k4_has_sixteen_hosts():
    _, ft = _fat_tree()
    assert ft.num_nodes == 16


def test_fat_tree_k4_link_count():
    # 16 host links + 16 edge-agg + 16 agg-core, duplex = 96 directed.
    _, ft = _fat_tree()
    assert len(ft.all_links()) == 96


def test_fat_tree_pod_membership():
    _, ft = _fat_tree()
    assert ft.pod_of(0) == 0
    assert ft.pod_of(3) == 0
    assert ft.pod_of(4) == 1
    assert ft.pod_of(15) == 3


def test_fat_tree_rejects_odd_k():
    sim = Simulation()
    with pytest.raises(ValueError):
        FatTree(sim, k=3)


def test_all_pairs_reachable():
    _, ft = _fat_tree()
    for src in range(ft.num_nodes):
        for dst in range(ft.num_nodes):
            if src == dst:
                continue
            route = ft.route(src, dst)
            assert route.links, f"{src}->{dst} unroutable"


def test_path_lengths_by_locality():
    _, ft = _fat_tree()
    assert ft.path_length(0, 1) == 2  # same edge switch
    assert ft.path_length(0, 2) == 4  # same pod, different edge
    assert ft.path_length(0, 4) == 6  # inter-pod, via core


def test_ecmp_path_counts():
    # k=4: 1 path under a shared edge, k/2=2 within a pod, (k/2)^2=4
    # across pods.
    _, ft = _fat_tree()
    assert ft.ecmp_path_count(0, 1) == 1
    assert ft.ecmp_path_count(0, 2) == 2
    assert ft.ecmp_path_count(0, 4) == 4


def test_route_is_deterministic_per_flow():
    sim1, ft1 = _fat_tree()
    sim2, ft2 = _fat_tree()
    for src, dst in ((0, 4), (3, 15), (7, 8)):
        r1 = [link.name for link in ft1.route(src, dst, tos=0x28).links]
        r2 = [link.name for link in ft2.route(src, dst, tos=0x28).links]
        assert r1 == r2


def test_tos_can_select_different_ecmp_path():
    _, ft = _fat_tree()
    paths = {
        tuple(link.name for link in ft.route(0, 4, tos=tos).links)
        for tos in range(64)
    }
    # 4 equal-cost paths exist; hashing over many ToS values should
    # exercise more than one of them.
    assert len(paths) > 1


def test_delivery_across_pods():
    sim, ft = _fat_tree()
    net = Network(sim, ft)
    out = {}
    net.send(0, 15, 1_000_000).add_callback(
        lambda e: out.setdefault("t", sim.now)
    )
    sim.run()
    assert out["t"] > 0.0


# -- leaf-spine --------------------------------------------------------------


def test_leaf_spine_structure():
    sim = Simulation()
    ls = LeafSpine(sim, num_spines=2, num_leaves=4, hosts_per_leaf=2)
    assert ls.num_nodes == 8
    assert ls.leaf_of(0) == 0
    assert ls.leaf_of(7) == 3
    assert ls.path_length(0, 1) == 2  # same leaf
    assert ls.path_length(0, 2) == 4  # via a spine
    assert ls.ecmp_path_count(0, 2) == 2  # one per spine


# -- spec parsing and factory ------------------------------------------------


def test_parse_topology_spec():
    kind, params = parse_topology_spec("fat-tree:k=4")
    assert kind == "fat-tree"
    assert params == {"k": 4.0}
    kind, params = parse_topology_spec("star")
    assert kind == "star"
    assert params == {}


def test_build_topology_star_is_switched_star():
    sim = Simulation()
    topo = build_topology("star", sim, 4, 10e9, 1e-6, 1e-6)
    assert isinstance(topo, SwitchedStar)


def test_build_topology_fat_tree():
    sim = Simulation()
    topo = build_topology("fat-tree:k=4", sim, 6, 10e9, 1e-6, 1e-6)
    assert isinstance(topo, FatTree)
    assert topo.num_nodes == 16


def test_build_topology_rejects_unknown_kind():
    sim = Simulation()
    with pytest.raises(ValueError, match="unknown topology"):
        build_topology("hypercube:d=4", sim, 4, 10e9, 1e-6, 1e-6)


def test_build_topology_rejects_unknown_param():
    sim = Simulation()
    with pytest.raises(ValueError):
        build_topology("fat-tree:pods=4", sim, 4, 10e9, 1e-6, 1e-6)


def test_build_topology_rejects_undersized_fabric():
    sim = Simulation()
    with pytest.raises(ValueError, match="host ports"):
        build_topology("fat-tree:k=4", sim, 20, 10e9, 1e-6, 1e-6)
