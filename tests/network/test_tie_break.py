"""Equal-timestamp ordering: FIFO stability, seeded perturbation, and
deterministic same-instant link arbitration."""

import numpy as np
import pytest

from repro.network import (
    FIFO_TIE_BREAK,
    Link,
    SeededTieBreak,
    Simulation,
    TieBreak,
)


def run_schedule(tie_break):
    """Schedule 8 same-instant callbacks plus a later one; return order."""
    sim = Simulation(tie_break=tie_break)
    order = []
    for i in range(8):
        sim.timeout(0.5).add_callback(lambda _, i=i: order.append(i))
    sim.timeout(1.0).add_callback(lambda _: order.append("late"))
    sim.run()
    return order


class TestFifoStability:
    def test_equal_timestamps_run_in_insertion_order(self):
        assert run_schedule(None) == [0, 1, 2, 3, 4, 5, 6, 7, "late"]

    def test_default_policy_is_fifo(self):
        sim = Simulation()
        assert sim.tie_break is FIFO_TIE_BREAK
        assert isinstance(sim.tie_break, TieBreak)
        assert sim.tie_break.key(123) == 0

    def test_fifo_order_independent_of_hash_seed(self):
        """FIFO ordering never consults hash(); two runs agree exactly."""
        assert run_schedule(FIFO_TIE_BREAK) == run_schedule(FIFO_TIE_BREAK)

    def test_store_pairing_fifo_under_perturbation(self):
        """Store item->getter pairing is FIFO regardless of tie-break.

        Only the *callback delivery* order is scheduler-territory; which
        getter receives which item is decided synchronously at put()
        time and must never change.
        """
        from repro.network.events import Store

        for tie_break in (None, SeededTieBreak(7)):
            sim = Simulation(tie_break=tie_break)
            store = Store(sim)
            got = []
            for tag in ("a", "b", "c"):
                store.get().add_callback(lambda e, t=tag: got.append((t, e.value)))
            for item in (1, 2, 3):
                store.put(item)
            sim.run()
            assert sorted(got) == [("a", 1), ("b", 2), ("c", 3)]


class TestSeededTieBreak:
    def test_same_seed_same_order(self):
        assert run_schedule(SeededTieBreak(5)) == run_schedule(
            SeededTieBreak(5)
        )

    def test_perturbs_equal_timestamps_only(self):
        order = run_schedule(SeededTieBreak(1))
        # the later event still runs last...
        assert order[-1] == "late"
        # ...and the simultaneous ones are a permutation of 0..7.
        assert sorted(order[:-1]) == list(range(8))

    def test_some_seed_actually_reorders(self):
        fifo = run_schedule(None)
        assert any(
            run_schedule(SeededTieBreak(seed)) != fifo for seed in (1, 2, 3)
        )

    def test_key_is_hash_seed_independent(self):
        """splitmix64 keys are pure integer math — pinnable."""
        policy = SeededTieBreak(1)
        assert [policy.key(seq) for seq in range(4)] == [
            policy.key(seq) for seq in range(4)
        ]
        assert policy.key(0) != SeededTieBreak(2).key(0)

    def test_negative_delay_still_rejected(self):
        sim = Simulation(tie_break=SeededTieBreak(1))
        with pytest.raises(ValueError):
            sim.timeout(-1.0)


class TestInstantEndHooks:
    def test_hook_runs_after_instant_drains(self):
        sim = Simulation()
        order = []
        sim.timeout(0.0).add_callback(lambda _: order.append("event-a"))
        sim.at_instant_end(lambda: order.append("hook"))
        sim.timeout(0.0).add_callback(lambda _: order.append("event-b"))
        sim.timeout(1.0).add_callback(lambda _: order.append("later"))
        sim.run()
        assert order == ["event-a", "event-b", "hook", "later"]

    def test_hook_may_schedule_same_instant_work(self):
        sim = Simulation()
        order = []

        def hook():
            sim.timeout(0.0).add_callback(lambda _: order.append("from-hook"))

        sim.at_instant_end(hook)
        sim.timeout(2.0).add_callback(lambda _: order.append("later"))
        sim.run()
        assert order == ["from-hook", "later"]

    def test_call_at_rejects_past_times(self):
        sim = Simulation()
        sim.timeout(1.0).add_callback(lambda _: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(0.5, lambda: None)


class TestLinkArbitration:
    def make_contention(self, tie_break, keys):
        """Two same-instant requests on one link, issued in listed order."""
        sim = Simulation(tie_break=tie_break)
        link = Link(sim, bandwidth_bps=8e6, latency_s=0.0, name="dut")
        finished = {}

        def requester(tag, key):
            _, delivered = link.transmit_cut_through(1000, 100, key=key)
            delivered.add_callback(lambda _: finished.setdefault(tag, sim.now))

        for tag, key in keys:
            sim.timeout(0.0).add_callback(
                lambda _, t=tag, k=key: requester(t, k)
            )
        sim.run()
        return finished

    def test_grants_follow_key_order_not_call_order(self):
        # "second" holds the lower key yet is requested last.
        finished = self.make_contention(
            None, [("first", (9, 0, 0, 0)), ("second", (1, 0, 0, 0))]
        )
        assert finished["second"] < finished["first"]

    def test_outcome_invariant_under_perturbed_scheduling(self):
        keys = [("a", (2, 0, 0, 0)), ("b", (1, 0, 0, 0)), ("c", (3, 0, 0, 0))]
        baseline = self.make_contention(None, keys)
        for seed in (1, 2, 3):
            assert self.make_contention(SeededTieBreak(seed), keys) == baseline

    def test_unkeyed_transmit_is_immediate_legacy_fifo(self):
        sim = Simulation()
        link = Link(sim, bandwidth_bps=8e6, latency_s=0.0)
        _, first = link.transmit_cut_through(1000, 100)
        _, second = link.transmit_cut_through(1000, 100)
        times = {}
        first.add_callback(lambda _: times.setdefault("first", sim.now))
        second.add_callback(lambda _: times.setdefault("second", sim.now))
        sim.run()
        # immediate reservation: call order is grant order
        assert times["first"] == pytest.approx(1e-3)
        assert times["second"] == pytest.approx(2e-3)

    def test_keyed_plain_transmit_arbitrated(self):
        sim = Simulation()
        link = Link(sim, bandwidth_bps=8e6, latency_s=0.0)
        times = {}

        def requester(tag, key):
            sent, _ = link.transmit(1000, key=key)
            sent.add_callback(lambda _: times.setdefault(tag, sim.now))

        sim.timeout(0.0).add_callback(lambda _: requester("hi", (5,)))
        sim.timeout(0.0).add_callback(lambda _: requester("lo", (1,)))
        sim.run()
        assert times["lo"] < times["hi"]


def test_cluster_tie_break_threads_to_simulation():
    from repro.transport import ClusterConfig, ClusterComm

    policy = SeededTieBreak(3)
    comm = ClusterComm(ClusterConfig(num_nodes=2, tie_break=policy))
    assert comm.sim.tie_break is policy
    default = ClusterComm(ClusterConfig(num_nodes=2))
    assert default.sim.tie_break is FIFO_TIE_BREAK


def test_strategy_run_bit_identical_across_tie_breaks():
    """Synchronous strategies produce identical weights under any policy."""
    from repro.distributed import get_strategy, run_strategy
    from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
    from repro.transport import ClusterConfig

    def run(policy):
        result = run_strategy(
            get_strategy("ring"),
            build_net=lambda s: build_hdc(seed=s),
            make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
            dataset=hdc_dataset(train_size=60, test_size=20, seed=0),
            num_workers=2,
            iterations=1,
            batch_size=10,
            cluster=ClusterConfig(num_nodes=2, tie_break=policy),
            seed=0,
        )
        return result.final_weights

    baseline = run(None)
    perturbed = run(SeededTieBreak(2))
    assert np.array_equal(baseline, perturbed)
