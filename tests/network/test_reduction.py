"""Reduction-plan construction over multi-tier fabrics.

The plan is the static skeleton of in-network aggregation: a spanning
tree of the hosts' routes toward the root, with a reduce stage at every
vertex where two or more branches meet and one final stage at the root
host.  Everything downstream (SwitchGather, the engines, the link
accounting) trusts its shape, so the shape is pinned here.
"""

import pytest

from repro.network import (
    FatTree,
    Simulation,
    build_reduction_plan,
)


def _fabric(k=4):
    sim = Simulation()
    return sim, FatTree(sim, k=k)


def test_tree_paths_converge_toward_the_root():
    _, ft = _fabric()
    # Hosts in the same edge group share every vertex after the edge
    # switch; the deterministic next-hop choice ignores ECMP hashing.
    p0 = ft.tree_path(0, 4)
    p1 = ft.tree_path(1, 4)
    assert p0[0] == "h0" and p1[0] == "h1"
    assert p0[1:] == p1[1:]
    assert p0[1].startswith("p0e")
    assert p0[-1] == "h4"


def test_plan_shape_on_fat_tree_k4():
    _, ft = _fabric()
    plan = build_reduction_plan(ft, sources=range(4), root=4)
    assert plan.root == 4
    assert plan.sources == (0, 1, 2, 3)
    # Two edge-switch merges (hosts 0+1 and 2+3), one pod-aggregation
    # merge of those, and the final stage at the root host.
    assert len(plan.stages) == 4
    fan_ins = [stage.fan_in for stage in plan.stages]
    assert fan_ins == [2, 2, 2, 1]
    assert plan.stages[-1] is plan.root_stage
    assert plan.root_stage.vertex == "h4"
    assert len(plan.switch_stages) == 3
    # One wire segment per input across all stages, numbered globally.
    assert plan.num_segments == 7
    segments = [
        inp.segment for stage in plan.stages for inp in stage.inputs
    ]
    assert sorted(segments) == list(range(7))


def test_children_complete_before_their_parent():
    _, ft = _fabric()
    plan = build_reduction_plan(ft, sources=range(4), root=4)
    for index, stage in enumerate(plan.stages):
        for inp in stage.inputs:
            if inp.stage is not None:
                assert inp.stage < index


def test_segment_routes_walk_the_recorded_vertices():
    _, ft = _fabric()
    plan = build_reduction_plan(ft, sources=range(4), root=4)
    for stage in plan.stages:
        for inp in stage.inputs:
            route = ft.segment_route(inp.vertices)
            assert len(route.links) == len(inp.vertices) - 1


def test_single_source_degenerates_to_one_root_stage():
    _, ft = _fabric()
    plan = build_reduction_plan(ft, sources=[0], root=4)
    assert len(plan.stages) == 1
    assert plan.root_stage.fan_in == 1
    assert plan.num_segments == 1


def test_root_among_sources_is_rejected():
    _, ft = _fabric()
    with pytest.raises(ValueError):
        build_reduction_plan(ft, sources=range(5), root=4)


def test_empty_sources_are_rejected():
    _, ft = _fabric()
    with pytest.raises(ValueError):
        build_reduction_plan(ft, sources=[], root=4)


def test_aggregation_engines_are_created_once_per_vertex():
    _, ft = _fabric()
    made = []

    def factory():
        made.append(object())
        return made[-1]

    first = ft.aggregation_engine("p0e0", factory)
    again = ft.aggregation_engine("p0e0", factory)
    other = ft.aggregation_engine("p0e1", factory)
    assert first is again
    assert first is not other
    assert len(made) == 2
    assert set(ft.aggregation_engines) == {"p0e0", "p0e1"}
