"""Link timing and contention tests."""

import pytest

from repro.network import Link, Simulation


def test_serialization_time():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=10e9, latency_s=0.0)
    # 1250 bytes at 10 Gb/s = 1 microsecond
    assert link.serialization_time(1250) == pytest.approx(1e-6)


def test_delivery_time_includes_latency():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=10e9, latency_s=5e-6)
    times = {}
    sent, delivered = link.transmit(1250)
    sent.add_callback(lambda ev: times.setdefault("sent", sim.now))
    delivered.add_callback(lambda ev: times.setdefault("delivered", sim.now))
    sim.run()
    assert times["sent"] == pytest.approx(1e-6)
    assert times["delivered"] == pytest.approx(6e-6)


def test_fifo_contention():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=8e9, latency_s=0.0)  # 1 byte/ns
    done = []
    for i in range(3):
        _, delivered = link.transmit(1000)
        delivered.add_callback(lambda ev, i=i: done.append((i, sim.now)))
    sim.run()
    # Serialized back-to-back: 1 us each.
    assert done == [
        (0, pytest.approx(1e-6)),
        (1, pytest.approx(2e-6)),
        (2, pytest.approx(3e-6)),
    ]


def test_link_idles_between_bursts():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=8e9, latency_s=0.0)

    def proc():
        _, d = link.transmit(1000)
        yield d
        yield sim.timeout(10e-6)
        _, d = link.transmit(1000)
        yield d
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == pytest.approx(12e-6)


def test_utilization_accounting():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=8e9, latency_s=0.0)
    link.transmit(1000)
    sim.run()
    assert link.bytes_carried == 1000
    assert link.utilization(2e-6) == pytest.approx(0.5)
    assert link.utilization(0.0) == 0.0


def test_invalid_parameters():
    sim = Simulation()
    with pytest.raises(ValueError):
        Link(sim, bandwidth_bps=0, latency_s=0)
    with pytest.raises(ValueError):
        Link(sim, bandwidth_bps=1e9, latency_s=-1)
    link = Link(sim, bandwidth_bps=1e9, latency_s=0)
    with pytest.raises(ValueError):
        link.transmit(-1)


def test_zero_byte_transmit_is_latency_only():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=1e9, latency_s=3e-6)
    times = []
    _, delivered = link.transmit(0)
    delivered.add_callback(lambda ev: times.append(sim.now))
    sim.run()
    assert times == [pytest.approx(3e-6)]


def test_zero_byte_keyed_transmit_fires_at_instant_end():
    """Regression: a keyed zero-byte transmit on a zero-latency link.

    Arbitrated grants run at instant end, and ``_grant_pending``
    schedules the completion callbacks with ``call_at(now)`` — events
    landing on the *current* instant must still fire instead of being
    skipped by the drained-instant bookkeeping.
    """
    sim = Simulation()
    link = Link(sim, bandwidth_bps=8e9, latency_s=0.0)
    times = {}
    sent, delivered = link.transmit(0, key=(0,))
    sent.add_callback(lambda ev: times.setdefault("sent", sim.now))
    delivered.add_callback(lambda ev: times.setdefault("delivered", sim.now))
    sim.run()
    assert times == {"sent": 0.0, "delivered": 0.0}


def test_zero_byte_keyed_transmit_unblocks_waiting_process():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=8e9, latency_s=2e-6)

    def proc():
        _, delivered = link.transmit(0, key=("z",))
        yield delivered
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == pytest.approx(2e-6)


def test_same_instant_zero_byte_grants_follow_key_order():
    sim = Simulation()
    link = Link(sim, bandwidth_bps=8e9, latency_s=0.0)
    order = []
    # Issued in reverse key order; arbitration must re-sort by key, so
    # the non-zero frame under key 0 serializes ahead of the zero-byte
    # frames even though it was requested last.
    for key, nbytes in ((2, 0), (1, 0), (0, 1000)):
        _, delivered = link.transmit(nbytes, key=(key,))
        delivered.add_callback(lambda ev, k=key: order.append((k, sim.now)))
    sim.run()
    assert [k for k, _ in order] == [0, 1, 2]
    assert all(t == pytest.approx(1e-6) for _, t in order)
