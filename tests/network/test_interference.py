"""Fig 11 scenario: DNN training co-running with other network traffic.

The ToS mechanism exists so the NIC engines touch *only* the training
streams: other applications' packets must pass through untouched and
their timing must not regress because compression is enabled.
"""

import numpy as np
import pytest

from repro.core import ErrorBound, inceptionn_profile
from repro.hardware import InceptionnNic
from repro.network import (
    Network,
    Simulation,
    SwitchedStar,
    TOS_DEFAULT,
    uniform_nics,
)
from repro.transport import ClusterComm, ClusterConfig


def test_untagged_bytes_pass_bit_exact_through_nic():
    nic = InceptionnNic(node_id=0, bound=ErrorBound(10))
    app_data = bytes(range(256)) * 13 + b"trailing"
    packets = nic.transmit_message(app_data, dst=1, tos=TOS_DEFAULT)
    rx = InceptionnNic(node_id=1, bound=ErrorBound(10))
    assert rx.receive_message(packets) == app_data
    assert nic.counters.tx_compressed == 0


def test_other_traffic_timing_unaffected_by_engines():
    """Enabling compression must not slow untagged flows."""

    def measure(compression):
        sim = Simulation()
        topo = SwitchedStar(sim, 4)
        net = Network(sim, topo, nics=uniform_nics(4, compression=compression))
        done = {}
        ev = net.send(2, 3, 5 * 2**20, tos=TOS_DEFAULT)
        ev.add_callback(lambda e: done.setdefault("t", sim.now))
        sim.run()
        return done["t"]

    assert measure(True) == pytest.approx(measure(False), rel=1e-9)


def test_concurrent_tagged_and_untagged_flows():
    """Training (tagged) and an app (untagged) share the fabric: the
    tagged flow shrinks on the wire, the untagged one is intact."""
    stream = inceptionn_profile()
    comm = ClusterComm(ClusterConfig(num_nodes=4, profile=stream))
    grads = np.zeros(200_000, dtype=np.float32)  # highly compressible
    app = (np.random.default_rng(0).standard_normal(200_000) * 1e6).astype(
        np.float32
    )
    got = {}

    def training():
        yield comm.endpoints[0].isend(1, grads, profile=stream)

    def application():
        yield comm.endpoints[2].isend(3, app)

    def train_rx():
        got["grads"] = yield comm.endpoints[1].recv(0)

    def app_rx():
        got["app"] = yield comm.endpoints[3].recv(2)

    for proc in (training(), application(), train_rx(), app_rx()):
        comm.sim.process(proc)
    comm.run()

    np.testing.assert_array_equal(got["app"], app)  # untouched
    assert np.max(np.abs(got["grads"] - grads)) < 2**-10
    logs = {(t.src, t.dst): t for t in comm.transfers}
    assert logs[(0, 1)].compressed
    assert not logs[(2, 3)].compressed
    assert logs[(0, 1)].wire_payload_nbytes < logs[(2, 3)].wire_payload_nbytes / 10


def test_tagged_flow_on_shared_link_still_relieves_contention():
    """Two flows into the same destination: compressing one frees the
    shared downlink for the other."""

    def measure(compression):
        stream = inceptionn_profile() if compression else None
        comm = ClusterComm(ClusterConfig(num_nodes=4, profile=stream))
        grads = np.zeros(1_000_000, dtype=np.float32)
        app = np.ones(1_000_000, dtype=np.float32)
        finish = {}

        def training():
            yield comm.endpoints[0].isend(3, grads, profile=stream)

        def application():
            yield comm.endpoints[1].isend(3, app)

        def receiver():
            yield comm.endpoints[3].recv(0)
            yield comm.endpoints[3].recv(1)
            finish["t"] = comm.sim.now

        for proc in (training(), application(), receiver()):
            comm.sim.process(proc)
        comm.run()
        return finish["t"]

    assert measure(True) < measure(False)
