"""Tests for the discrete-event kernel."""

import pytest

from repro.network import Simulation, Store


def test_timeout_advances_clock():
    sim = Simulation()
    fired = []
    sim.timeout(5.0).add_callback(lambda ev: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_timeout_ordering():
    sim = Simulation()
    order = []
    sim.timeout(3.0).add_callback(lambda ev: order.append("c"))
    sim.timeout(1.0).add_callback(lambda ev: order.append("a"))
    sim.timeout(2.0).add_callback(lambda ev: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_fifo():
    sim = Simulation()
    order = []
    for i in range(5):
        sim.timeout(1.0).add_callback(lambda ev, i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_sequencing():
    sim = Simulation()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(2.0)
        trace.append(("mid", sim.now))
        yield sim.timeout(3.0)
        trace.append(("end", sim.now))

    sim.process(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]


def test_process_return_value():
    sim = Simulation()

    def proc():
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc())
    sim.run()
    assert p.triggered and p.value == 42


def test_process_receives_event_value():
    sim = Simulation()
    got = []

    def proc():
        value = yield sim.timeout(1.0, value="hello")
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_process_must_yield_events():
    sim = Simulation()

    def bad():
        yield 3

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulation()
    times = []
    gate = sim.all_of([sim.timeout(1.0), sim.timeout(4.0), sim.timeout(2.0)])
    gate.add_callback(lambda ev: times.append(sim.now))
    sim.run()
    assert times == [4.0]


def test_all_of_empty_fires_immediately():
    sim = Simulation()
    fired = []
    sim.all_of([]).add_callback(lambda ev: fired.append(sim.now))
    sim.run()
    assert fired == [0.0]


def test_event_double_trigger_rejected():
    sim = Simulation()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_run_until_stops_early():
    sim = Simulation()
    fired = []
    sim.timeout(10.0).add_callback(lambda ev: fired.append(True))
    sim.run(until=5.0)
    assert not fired
    assert sim.now == 5.0


def test_store_put_then_get():
    sim = Simulation()
    store = Store(sim)
    store.put("x")
    got = []

    def proc():
        item = yield store.get()
        got.append((item, sim.now))

    sim.process(proc())
    sim.run()
    assert got == [("x", 0.0)]


def test_store_get_blocks_until_put():
    sim = Simulation()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(3.0)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 3.0)]


def test_store_fifo_order():
    sim = Simulation()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(consumer())
    for item in "abc":
        store.put(item)
    sim.run()
    assert got == ["a", "b", "c"]
