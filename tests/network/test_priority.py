"""PriorityLink tests: strict priority, FIFO within class, starvation bound."""

from repro.network import (
    PRIORITY_DEFAULT,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PriorityLink,
    Simulation,
)

GBPS = 1e9
LATENCY = 1e-6


def _link(bandwidth_bps=GBPS):
    sim = Simulation()
    return sim, PriorityLink(sim, bandwidth_bps, LATENCY, name="port")


def _track(sim, link, nbytes, priority, key):
    done = {}
    _, delivered = link.transmit(nbytes, key=key, priority=priority)
    delivered.add_callback(lambda e: done.setdefault("t", sim.now))
    return done


def test_high_priority_served_before_low_at_same_instant():
    sim, link = _link()
    low = _track(sim, link, 100_000, PRIORITY_LOW, key=(0,))
    high = _track(sim, link, 100_000, PRIORITY_HIGH, key=(1,))
    sim.run()
    assert high["t"] < low["t"]


def test_fifo_within_a_class():
    sim, link = _link()
    first = _track(sim, link, 100_000, PRIORITY_DEFAULT, key=(0,))
    second = _track(sim, link, 100_000, PRIORITY_DEFAULT, key=(1,))
    sim.run()
    assert first["t"] < second["t"]


def test_same_instant_admission_orders_by_key_within_class():
    # Issued in reverse key order at the same instant: admission sorts
    # by (priority, key), so key (0,) is still served first.
    sim, link = _link()
    later = _track(sim, link, 100_000, PRIORITY_DEFAULT, key=(1,))
    earlier = _track(sim, link, 100_000, PRIORITY_DEFAULT, key=(0,))
    sim.run()
    assert earlier["t"] < later["t"]


def test_non_preemptive_head_of_line():
    # A low train already on the wire is not preempted: the high train
    # waits out the low train's full serialization, no more.
    sim, link = _link()
    low_bytes, high_bytes = 1_000_000, 10_000
    low = _track(sim, link, low_bytes, PRIORITY_LOW, key=(0,))
    holder = {}

    def inject():
        holder["high"] = _track(sim, link, high_bytes, PRIORITY_HIGH, key=(1,))

    sim.call_at(1e-9, inject)  # after service of the low train began
    sim.run()
    high = holder["high"]
    expected = (low_bytes + high_bytes) * 8 / GBPS + LATENCY
    assert abs(high["t"] - expected) < 1e-12
    assert low["t"] < high["t"]


def test_starvation_bound_under_low_priority_flood():
    # With N low trains queued, a later high train waits at most the
    # in-service train plus its own serialization — it jumps the rest
    # of the queue.
    sim, link = _link()
    train = 100_000
    lows = [_track(sim, link, train, PRIORITY_LOW, key=(i,)) for i in range(8)]
    holder = {}

    def inject():
        holder["high"] = _track(sim, link, train, PRIORITY_HIGH, key=(99,))

    sim.call_at(1e-9, inject)
    sim.run()
    high = holder["high"]
    one_train_s = train * 8 / GBPS
    # Bound: the in-service low train finishes, then the high train.
    assert high["t"] <= 2 * one_train_s + LATENCY + 1e-12
    # Every queued low train that had not started is served after it.
    assert sum(1 for low in lows if low["t"] > high["t"]) == 7


def test_all_default_priority_matches_plain_fifo_order():
    sim, link = _link()
    done = [
        _track(sim, link, 50_000, None, key=(i,)) for i in range(4)
    ]
    sim.run()
    times = [d["t"] for d in done]
    assert times == sorted(times)
    assert len(set(times)) == 4


def test_accounting_and_queue_depth():
    sim, link = _link()
    for i in range(3):
        _track(sim, link, 100_000, PRIORITY_DEFAULT, key=(i,))
    sim.run()
    assert link.bytes_carried == 300_000
    assert link.max_queue_depth >= 2
