"""Packet model tests."""

import pytest

from repro.network import (
    HEADER_BYTES,
    TOS_COMPRESS,
    Packet,
    packet_count,
    segment_bytes,
    segment_size,
)


def test_wire_size_includes_headers():
    pkt = Packet(src=0, dst=1, payload=b"x" * 100)
    assert pkt.wire_nbytes == HEADER_BYTES + 100


def test_compressible_flag_follows_tos():
    assert Packet(src=0, dst=1, tos=TOS_COMPRESS).compressible
    assert not Packet(src=0, dst=1, tos=0).compressible


def test_payload_size_consistency_enforced():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, payload=b"abc", payload_nbytes=5)


def test_size_only_packet():
    pkt = Packet(src=0, dst=1, payload_nbytes=1460)
    assert pkt.payload is None
    assert pkt.wire_nbytes == HEADER_BYTES + 1460


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, payload_nbytes=-1)


def test_tos_range_checked():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, tos=0x100)


def test_segment_bytes_reassembles():
    data = bytes(range(256)) * 20  # 5120 bytes
    packets = segment_bytes(data, src=0, dst=1, mss=1460)
    assert len(packets) == 4
    assert b"".join(p.payload for p in packets) == data
    assert [p.seq for p in packets] == [0, 1, 2, 3]


def test_segment_bytes_empty_message_is_one_packet():
    packets = segment_bytes(b"", src=0, dst=1)
    assert len(packets) == 1
    assert packets[0].payload == b""


def test_segment_size_matches_segment_bytes():
    nbytes = 5120
    by_size = list(segment_size(nbytes, src=0, dst=1, mss=1460))
    by_data = segment_bytes(b"\0" * nbytes, src=0, dst=1, mss=1460)
    assert [p.payload_nbytes for p in by_size] == [
        p.payload_nbytes for p in by_data
    ]


def test_segment_size_exact_multiple():
    sizes = [p.payload_nbytes for p in segment_size(2920, src=0, dst=1, mss=1460)]
    assert sizes == [1460, 1460]


def test_packet_count():
    assert packet_count(0) == 1
    assert packet_count(1) == 1
    assert packet_count(1460) == 1
    assert packet_count(1461) == 2
    assert packet_count(233 * 2**20) == -(-233 * 2**20 // 1460)


def test_bad_mss_rejected():
    with pytest.raises(ValueError):
        segment_bytes(b"x", src=0, dst=1, mss=0)
    with pytest.raises(ValueError):
        list(segment_size(10, src=0, dst=1, mss=-5))
