"""Network-layer tracing: message events, link spans, retransmits.

Also covers two edge cases this layer used to mishandle: zero-byte
messages (regression: they must still deliver, with exactly one
send/deliver pair) and reading ``MessageReceipt.duration`` before
delivery (now an explicit error instead of a silent NaN).
"""

import pytest

from repro.network import (
    LossModel,
    Network,
    RetransmitPolicy,
    Simulation,
    SwitchedStar,
)
from repro.network.simulator import MessageReceipt
from repro.obs import CAT_LINK, CAT_MESSAGE, Tracer


def _traced_star(num_nodes=4, tracer=None, **net_kwargs):
    sim = Simulation()
    topo = SwitchedStar(
        sim, num_nodes, bandwidth_bps=10e9, link_latency_s=2e-6, switch_delay_s=1e-6
    )
    return sim, Network(sim, topo, tracer=tracer, **net_kwargs)


def test_zero_byte_message_delivers():
    # Regression: a 0-byte payload still occupies one (header-only)
    # packet and must complete like any other message.
    tracer = Tracer()
    sim, net = _traced_star(tracer=tracer)
    event = net.send(0, 1, 0)
    done = {}
    event.add_callback(lambda ev: done.setdefault("t", sim.now))
    sim.run()
    assert done["t"] > 0.0
    # Exactly one send/deliver pair was recorded for it.
    assert tracer.count(CAT_MESSAGE, "msg.send") == 1
    assert tracer.count(CAT_MESSAGE, "msg.deliver") == 1
    (send,) = tracer.events_in(CAT_MESSAGE, "msg.send")
    assert send.args["nbytes"] == 0


def test_receipt_duration_before_delivery_raises():
    receipt = MessageReceipt(
        src=0,
        dst=1,
        nbytes=1000,
        wire_nbytes=1054,
        num_packets=1,
        compressed=False,
        sent_at=0.5,
    )
    assert not receipt.delivered
    with pytest.raises(RuntimeError, match="not delivered"):
        receipt.duration
    receipt.delivered_at = 0.75
    assert receipt.delivered
    assert receipt.duration == pytest.approx(0.25)


def test_delivered_at_recorded_exactly_once_per_message():
    tracer = Tracer()
    sim, net = _traced_star(tracer=tracer)
    receipts = []
    for dst in (1, 2, 3):
        net.send(0, dst, 50_000).add_callback(
            lambda ev: receipts.append(ev.value[1])
        )
    sim.run()
    delivers = list(tracer.events_in(CAT_MESSAGE, "msg.deliver"))
    assert len(delivers) == 3
    assert len({e.args["msg"] for e in delivers}) == 3
    assert len(receipts) == 3
    # Every msg.flight span matches its receipt's duration exactly.
    flights = {e.args["dst"]: e for e in tracer.events_in(CAT_MESSAGE, "msg.flight")}
    for receipt in receipts:
        assert receipt.delivered
        span = flights[receipt.dst]
        assert span.ts == receipt.sent_at
        assert span.dur == pytest.approx(receipt.duration)


def test_link_spans_cover_wire_bytes():
    tracer = Tracer()
    sim, net = _traced_star(tracer=tracer)
    nbytes = 500_000
    net.send(0, 1, nbytes)
    sim.run()
    spans = list(tracer.events_in(CAT_LINK, "link.xfer"))
    assert spans, "link transfers must be traced"
    # The uplink n0->sw carries every wire byte of the message.
    uplink_bytes = sum(
        e.args["nbytes"] for e in spans if e.args["resource"] == "n0->sw"
    )
    assert uplink_bytes > nbytes  # payload + headers
    for span in spans:
        assert span.dur > 0.0
    counters = tracer.metrics.snapshot()["counters"]
    assert counters["messages_sent"] == 1
    assert counters["messages_delivered"] == 1


def test_retransmit_instants_match_counter():
    tracer = Tracer()
    sim = Simulation()
    topo = SwitchedStar(sim, 2)
    net = Network(
        sim,
        topo,
        loss=LossModel(drop_probability=0.05, seed=3),
        retransmit=RetransmitPolicy(rto_s=200e-6, max_attempts=16),
        tracer=tracer,
    )
    done = {}
    net.send(0, 1, 4 * 2**20).add_callback(lambda ev: done.setdefault("t", sim.now))
    sim.run()
    assert done["t"] is not None
    assert net.trains_retransmitted > 0
    assert tracer.count(CAT_MESSAGE, "train.retransmit") == net.trains_retransmitted
    counters = tracer.metrics.snapshot()["counters"]
    assert counters["trains_retransmitted"] == net.trains_retransmitted


def test_untraced_network_records_nothing_and_matches_traced_time():
    def run(tracer):
        sim, net = _traced_star(tracer=tracer)
        done = {}
        net.send(0, 1, 2**20).add_callback(lambda ev: done.setdefault("t", sim.now))
        sim.run()
        return done["t"]

    tracer = Tracer()
    assert run(None) == run(tracer)
    assert len(tracer) > 0
