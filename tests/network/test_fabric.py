"""Two-tier oversubscribed fabric tests."""

import pytest

from repro.network import (
    Network,
    Simulation,
    TwoTierFabric,
    rack_aligned_ring_order,
    rack_interleaved_ring_order,
)


def _fabric(num_racks=2, nodes_per_rack=4, oversubscription=4.0):
    sim = Simulation()
    fabric = TwoTierFabric(
        sim,
        num_racks=num_racks,
        nodes_per_rack=nodes_per_rack,
        oversubscription=oversubscription,
    )
    return sim, fabric, Network(sim, fabric)


def _deliver(sim, net, src, dst, nbytes=2**20):
    out = {}
    net.send(src, dst, nbytes).add_callback(lambda e: out.setdefault("t", sim.now))
    sim.run()
    return out["t"]


def test_rack_membership():
    _, fabric, _ = _fabric()
    assert fabric.rack_of(0) == 0
    assert fabric.rack_of(3) == 0
    assert fabric.rack_of(4) == 1


def test_intra_rack_route_has_two_hops():
    _, fabric, _ = _fabric()
    assert len(fabric.route(0, 1).links) == 2


def test_cross_rack_route_has_four_hops():
    _, fabric, _ = _fabric()
    assert len(fabric.route(0, 5).links) == 4


def test_cross_rack_slower_than_intra_rack():
    sim1, _, net1 = _fabric()
    t_intra = _deliver(sim1, net1, 0, 1, nbytes=8 * 2**20)
    sim2, _, net2 = _fabric()
    t_cross = _deliver(sim2, net2, 0, 5, nbytes=8 * 2**20)
    assert t_cross > t_intra


def test_oversubscription_throttles_cross_rack_aggregate():
    # All four nodes of rack 0 send cross-rack simultaneously: the
    # shared uplink at edge/4 aggregate throttles them.
    def run(oversub):
        sim, fabric, net = _fabric(oversubscription=oversub)
        events = [
            net.send(src, 4 + src, 4 * 2**20) for src in range(4)
        ]
        out = {}
        sim.all_of(events).add_callback(lambda e: out.setdefault("t", sim.now))
        sim.run()
        return out["t"]

    assert run(4.0) > run(1.0) * 2


def test_ring_orders():
    _, fabric, _ = _fabric()
    aligned = rack_aligned_ring_order(fabric)
    interleaved = rack_interleaved_ring_order(fabric)
    assert sorted(aligned) == sorted(interleaved) == list(range(8))
    # Aligned: 1 cross-rack hop per rack boundary; interleaved: all hops
    # cross racks.
    def cross_hops(order):
        return sum(
            fabric.rack_of(order[i]) != fabric.rack_of(order[(i + 1) % 8])
            for i in range(8)
        )

    assert cross_hops(aligned) == 2
    assert cross_hops(interleaved) == 8


def test_aligned_ring_faster_than_interleaved():
    """Placement matters on oversubscribed fabrics: a rack-aligned ring
    puts one hop per direction on the core; interleaving puts them all."""

    def ring_time(order):
        sim = Simulation()
        fabric = TwoTierFabric(sim, 2, 4, oversubscription=4.0)
        net = Network(sim, fabric)
        n = len(order)

        # One full rotation of 8 MB blocks around the ring.
        events = []
        for i in range(n):
            events.append(net.send(order[i], order[(i + 1) % n], 8 * 2**20))
        out = {}
        sim.all_of(events).add_callback(lambda e: out.setdefault("t", sim.now))
        sim.run()
        return out["t"]

    sim0 = Simulation()
    fabric0 = TwoTierFabric(sim0, 2, 4, oversubscription=4.0)
    aligned = ring_time(rack_aligned_ring_order(fabric0))
    interleaved = ring_time(rack_interleaved_ring_order(fabric0))
    assert aligned < interleaved


def test_validation():
    sim = Simulation()
    with pytest.raises(ValueError):
        TwoTierFabric(sim, 0, 4)
    with pytest.raises(ValueError):
        TwoTierFabric(sim, 2, 4, oversubscription=0.5)
