"""Packet-loss and retransmission tests."""

import pytest

from repro.network import (
    DeliveryFailure,
    LossModel,
    Network,
    RetransmitPolicy,
    Simulation,
    SwitchedStar,
)


def _net(drop, max_attempts=16, rto=200e-6, seed=0):
    sim = Simulation()
    topo = SwitchedStar(sim, 2)
    net = Network(
        sim,
        topo,
        loss=LossModel(drop_probability=drop, seed=seed) if drop else None,
        retransmit=RetransmitPolicy(rto_s=rto, max_attempts=max_attempts),
    )
    return sim, net


def _deliver(sim, net, nbytes=2**20):
    out = {}
    ev = net.send(0, 1, nbytes)
    ev.add_callback(lambda e: out.setdefault("t", sim.now))
    sim.run()
    return out.get("t")


def test_lossless_by_default():
    sim, net = _net(0.0)
    assert _deliver(sim, net) is not None
    assert net.trains_retransmitted == 0


def test_loss_triggers_retransmission_and_still_delivers():
    sim, net = _net(0.05, seed=3)
    t = _deliver(sim, net, nbytes=4 * 2**20)
    assert t is not None
    assert net.trains_retransmitted > 0


def test_loss_slows_transfer():
    t_clean = _deliver(*_net(0.0), nbytes=4 * 2**20)
    t_lossy = _deliver(*_net(0.10, seed=1), nbytes=4 * 2**20)
    assert t_lossy > t_clean


def test_higher_loss_costs_more():
    t_low = _deliver(*_net(0.02, seed=2), nbytes=8 * 2**20)
    t_high = _deliver(*_net(0.20, seed=2), nbytes=8 * 2**20)
    assert t_high > t_low


def test_retry_budget_exhaustion_raises():
    sim, net = _net(0.95, max_attempts=2, seed=0)
    net.send(0, 1, 2**20)
    with pytest.raises(DeliveryFailure):
        sim.run()


def test_loss_determinism():
    results = [_deliver(*_net(0.1, seed=7), nbytes=2**20) for _ in range(2)]
    assert results[0] == results[1]


def test_loss_model_validation():
    with pytest.raises(ValueError):
        LossModel(drop_probability=1.0)
    with pytest.raises(ValueError):
        RetransmitPolicy(rto_s=0)
    with pytest.raises(ValueError):
        RetransmitPolicy(max_attempts=0)


def test_drop_counters_on_links():
    sim, net = _net(0.2, seed=5)
    _deliver(sim, net, nbytes=8 * 2**20)
    dropped = sum(l.trains_dropped for l in net.topology.all_links())
    assert dropped == net.trains_retransmitted
