"""Zero-vs-unset regressions: cousins of the sized-send zero-ratio bug.

A falsy check (``x or default``, ``if x:``) once collapsed a legitimate
``0.0`` into "unset".  These tests pin the explicit-zero semantics of
every consumer that used to share the pattern: normalized phase dicts,
breakdown fractions, and the wire-ratio accounting of zero-byte
traffic.
"""

import numpy as np

from repro.distributed.cluster import DistributedRunResult
from repro.perfmodel.breakdown import Breakdown
from repro.transport import (
    ClusterComm,
    ClusterConfig,
    TransferSummary,
    summarize_transfers,
)
from repro.transport.endpoint import TransferLog


def _zero_run():
    return DistributedRunResult(
        algorithm="ring",
        num_workers=2,
        iterations=0,
        losses=[],
        final_top1=0.0,
        final_top5=0.0,
        virtual_time_s=0.0,
        phase_seconds={"forward": 0.0, "communicate": 0.0},
    )


class TestZeroTotals:
    def test_all_zero_phases_normalize_to_zero(self):
        normalized = _zero_run().normalized_phases()
        assert normalized == {"forward": 0.0, "communicate": 0.0}

    def test_zero_breakdown_normalizes_without_nan(self):
        fractions = Breakdown(
            model="AlexNet",
            iterations=0,
            forward=0.0,
            backward=0.0,
            gpu_copy=0.0,
            gradient_sum=0.0,
            communicate=0.0,
            update=0.0,
        ).normalized()
        assert all(v == 0.0 for v in fractions.values())


class TestZeroByteWireAccounting:
    def test_empty_summary_is_ratio_one(self):
        summary = summarize_transfers([])
        assert summary == TransferSummary(0, 0, 0, 0)
        assert summary.wire_ratio == 1.0

    def test_zero_byte_transfer_is_ratio_one_not_inf(self):
        log = TransferLog(
            src=0,
            dst=1,
            nbytes=0,
            wire_payload_nbytes=0,
            compressed=False,
            sent_at=0.0,
        )
        assert summarize_transfers([log]).wire_ratio == 1.0

    def test_zero_byte_send_flows_through_pipeline(self):
        comm = ClusterComm(ClusterConfig(num_nodes=2))
        got = []

        def sender():
            ep = comm.endpoints[0]
            yield ep.isend(1, np.zeros(0, dtype=np.float32))

        def receiver():
            got.append((yield comm.endpoints[1].recv(0)))

        comm.sim.process(sender())
        comm.sim.process(receiver())
        comm.run()
        (received,) = got
        assert received.size == 0
        summary = comm.transfer_summary()
        assert summary.messages == 1
        assert summary.nbytes == 0
        assert summary.wire_ratio == 1.0

    def test_nonzero_payload_of_zero_wire_is_infinite_ratio(self):
        # The inverse corner: bytes sent but nothing on the wire is an
        # infinite ratio, never a silent 1.0.
        log = TransferLog(
            src=0,
            dst=1,
            nbytes=100,
            wire_payload_nbytes=0,
            compressed=True,
            sent_at=0.0,
        )
        assert summarize_transfers([log]).wire_ratio == float("inf")
