"""Metrics registry: counters, gauges, histograms, snapshots."""

import pytest

from repro.obs import Metrics


def test_counter_accumulates_and_is_keyed_by_labels():
    metrics = Metrics()
    metrics.counter("wire_bytes", tos="0x28").inc(10)
    metrics.counter("wire_bytes", tos="0x28").inc(5)
    metrics.counter("wire_bytes", tos="0x00").inc(1)
    snap = metrics.snapshot()["counters"]
    assert snap["wire_bytes{tos=0x28}"] == 15
    assert snap["wire_bytes{tos=0x00}"] == 1


def test_counter_rejects_negative_increment():
    metrics = Metrics()
    with pytest.raises(ValueError):
        metrics.counter("c").inc(-1)


def test_gauge_tracks_current_and_max():
    metrics = Metrics()
    gauge = metrics.gauge("queue_depth")
    gauge.set(3)
    gauge.set(7)
    gauge.set(2)
    assert gauge.value == 2
    assert gauge.max_value == 7


def test_histogram_buckets_and_stats():
    metrics = Metrics()
    hist = metrics.histogram("wait_s", buckets=(1.0, 10.0))
    for value in (0.5, 2.0, 5.0, 100.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == pytest.approx(107.5)
    assert hist.min == 0.5
    assert hist.max == 100.0
    assert hist.mean == pytest.approx(107.5 / 4)
    # Bucket counts: <=1.0, <=10.0, overflow.
    assert hist.counts == [1, 2, 1]


def test_histogram_same_name_same_instance():
    metrics = Metrics()
    a = metrics.histogram("h", buckets=(1.0,))
    b = metrics.histogram("h", buckets=(1.0,))
    assert a is b


def test_snapshot_shape_is_json_friendly():
    import json

    metrics = Metrics()
    metrics.counter("sent").inc()
    metrics.gauge("depth").set(4)
    metrics.histogram("lat", buckets=(1.0,)).observe(0.2)
    snap = metrics.snapshot()
    assert set(snap) == {"counters", "gauges", "histograms"}
    json.dumps(snap)  # must not raise
