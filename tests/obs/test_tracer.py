"""Tracer core behavior: spans, instants, queries, phase totals."""

import pytest

from repro.obs import (
    CAT_MESSAGE,
    CAT_PHASE,
    CAT_RING,
    PH_INSTANT,
    PH_SPAN,
    Tracer,
)


def test_span_records_all_fields():
    tracer = Tracer()
    event = tracer.span(
        "ring.step", cat=CAT_RING, ts=1.5, dur=0.25, node=2, step=3
    )
    assert event.ph == PH_SPAN
    assert event.ts == 1.5
    assert event.dur == 0.25
    assert event.node == 2
    assert event.args == {"step": 3}
    assert tracer.events == [event]


def test_instant_has_no_duration_in_dict():
    tracer = Tracer()
    event = tracer.instant("msg.send", cat=CAT_MESSAGE, ts=0.0, msg=1)
    assert event.ph == PH_INSTANT
    record = event.to_dict()
    assert "dur" not in record
    assert record["args"] == {"msg": 1}


def test_to_dict_omits_empty_optionals():
    tracer = Tracer()
    record = tracer.instant("msg.send", cat=CAT_MESSAGE, ts=0.5).to_dict()
    assert record == {"name": "msg.send", "cat": CAT_MESSAGE, "ph": "i", "ts": 0.5}


def test_events_in_filters_category_and_name():
    tracer = Tracer()
    tracer.instant("msg.send", cat=CAT_MESSAGE, ts=0.0)
    tracer.instant("msg.deliver", cat=CAT_MESSAGE, ts=1.0)
    tracer.span("ring.step", cat=CAT_RING, ts=0.0, dur=1.0)
    assert tracer.count(CAT_MESSAGE) == 2
    assert tracer.count(CAT_MESSAGE, "msg.send") == 1
    assert [e.name for e in tracer.events_in(CAT_RING)] == ["ring.step"]


def test_phase_totals_sums_in_record_order():
    tracer = Tracer()
    tracer.span("forward", cat=CAT_PHASE, ts=0.0, dur=0.1, node=0)
    tracer.span("forward", cat=CAT_PHASE, ts=1.0, dur=0.2, node=0)
    tracer.span("update", cat=CAT_PHASE, ts=2.0, dur=0.05, node=1)
    totals = tracer.phase_totals()
    assert totals["forward"] == pytest.approx(0.1 + 0.2)
    assert totals["update"] == 0.05


def test_phase_totals_filters_by_node():
    tracer = Tracer()
    tracer.span("update", cat=CAT_PHASE, ts=0.0, dur=1.0, node=0)
    tracer.span("update", cat=CAT_PHASE, ts=0.0, dur=2.0, node=1)
    assert tracer.phase_totals(node=0) == {"update": 1.0}


def test_phase_totals_ignores_other_categories_and_instants():
    tracer = Tracer()
    tracer.span("ring.step", cat=CAT_RING, ts=0.0, dur=9.0)
    tracer.instant("forward", cat=CAT_PHASE, ts=0.0)
    assert tracer.phase_totals() == {}


def test_span_total():
    tracer = Tracer()
    tracer.span("ring.step", cat=CAT_RING, ts=0.0, dur=1.0)
    tracer.span("ring.step", cat=CAT_RING, ts=1.0, dur=2.0)
    assert tracer.span_total(CAT_RING, "ring.step") == 3.0


def test_len_counts_events():
    tracer = Tracer()
    assert len(tracer) == 0
    tracer.instant("msg.send", cat=CAT_MESSAGE, ts=0.0)
    assert len(tracer) == 1
