"""Trace document round-trip, schema validation, Chrome conversion."""

import json

import pytest

from repro.obs import (
    CAT_MESSAGE,
    CAT_PHASE,
    TRACE_SCHEMA,
    TRACE_SCHEMA_NAME,
    TRACE_SCHEMA_VERSION,
    Tracer,
    load_trace,
    to_chrome,
    trace_document,
    validate_trace,
    write_chrome,
    write_trace,
)


def _tracer():
    tracer = Tracer()
    tracer.instant("msg.send", cat=CAT_MESSAGE, ts=0.0, node=0, msg=1)
    tracer.span("forward", cat=CAT_PHASE, ts=0.0, dur=0.5, node=0)
    tracer.metrics.counter("messages_sent").inc()
    return tracer


def test_document_is_versioned_and_valid():
    doc = trace_document(_tracer(), meta={"command": "test"})
    assert doc["schema"] == TRACE_SCHEMA_NAME
    assert doc["version"] == TRACE_SCHEMA_VERSION
    assert doc["clock"] == {"unit": "s", "domain": "simulated"}
    assert validate_trace(doc) is doc


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "trace.json"
    written = write_trace(_tracer(), path, meta={"k": "v"})
    loaded = load_trace(path)
    assert loaded == json.loads(json.dumps(written))
    assert loaded["meta"] == {"k": "v"}
    assert len(loaded["events"]) == 2


def test_validator_rejects_wrong_version():
    doc = trace_document(_tracer())
    doc["version"] = 99
    with pytest.raises(ValueError, match=r"\$\.version"):
        validate_trace(doc)


def test_validator_rejects_span_without_duration():
    doc = trace_document(_tracer())
    del doc["events"][1]["dur"]
    with pytest.raises(ValueError, match=r"\$\.events\[1\]"):
        validate_trace(doc)


def test_validator_rejects_instant_with_duration():
    doc = trace_document(_tracer())
    doc["events"][0]["dur"] = 1.0
    with pytest.raises(ValueError, match="must not carry a duration"):
        validate_trace(doc)


def test_validator_rejects_negative_timestamp():
    doc = trace_document(_tracer())
    doc["events"][0]["ts"] = -1.0
    with pytest.raises(ValueError, match=r"\$\.events\[0\]\.ts"):
        validate_trace(doc)


def test_validator_rejects_missing_metrics_section():
    doc = trace_document(_tracer())
    del doc["metrics"]["gauges"]
    with pytest.raises(ValueError, match=r"\$\.metrics"):
        validate_trace(doc)


def test_chrome_conversion_units_and_shape(tmp_path):
    doc = trace_document(_tracer())
    chrome = to_chrome(doc)
    events = chrome["traceEvents"]
    assert len(events) == 2
    instant, span = events
    assert instant["ph"] == "i" and instant["s"] == "t"
    assert span["ph"] == "X"
    assert span["ts"] == 0.0 and span["dur"] == pytest.approx(0.5e6)
    assert span["tid"] == 0 and span["pid"] == 0
    path = tmp_path / "chrome.json"
    write_chrome(doc, path)
    assert json.loads(path.read_text())["traceEvents"] == events


def test_published_schema_mentions_required_sections():
    required = TRACE_SCHEMA["required"]
    assert set(required) >= {"schema", "version", "clock", "events", "metrics"}
