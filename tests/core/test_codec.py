"""Vectorized codec tests, including equivalence with the scalar reference."""

import numpy as np
import pytest

from repro.core import (
    ErrorBound,
    TAG_NO_COMPRESS,
    TAG_ZERO,
    classify,
    compress,
    compressed_nbits,
    decompress,
    roundtrip,
)
from repro.core.reference import compress_value, decompress_value


def _sample_gradients(n=4096, scale=0.3, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * scale).astype(np.float32)


@pytest.mark.parametrize("exp", [6, 8, 10])
def test_matches_scalar_reference(exp):
    bound = ErrorBound(exp)
    values = _sample_gradients(2000, seed=exp)
    # Mix in boundary-ish values.
    extras = np.array(
        [0.0, -0.0, 1.0, -1.0, 2.0**-exp, -(2.0**-exp), 0.999, 5e-42, 1e30],
        dtype=np.float32,
    )
    values = np.concatenate([values, extras])
    cg = compress(values, bound)
    for i, value in enumerate(values):
        tag, payload = compress_value(float(value), bound)
        assert cg.tags[i] == tag, (i, value)
        assert cg.payloads[i] == payload, (i, value)


@pytest.mark.parametrize("exp", [6, 8, 10])
def test_decompress_matches_scalar_reference(exp):
    bound = ErrorBound(exp)
    values = _sample_gradients(2000, seed=exp + 100)
    cg = compress(values, bound)
    recon = decompress(cg)
    for i in range(len(values)):
        expected = decompress_value(int(cg.tags[i]), int(cg.payloads[i]), bound)
        assert recon[i] == np.float32(expected)


def test_roundtrip_error_bound_vectorized():
    bound = ErrorBound(10)
    values = _sample_gradients(100_000, scale=0.2)
    recon = roundtrip(values, bound)
    inside = np.abs(values) < 1.0
    assert np.max(np.abs(values[inside] - recon[inside])) < bound.bound
    assert np.array_equal(values[~inside], recon[~inside])


def test_roundtrip_preserves_shape():
    bound = ErrorBound(8)
    values = _sample_gradients(600).reshape(20, 30)
    recon = roundtrip(values, bound)
    assert recon.shape == (20, 30)


def test_classify_extremes():
    bound = ErrorBound(10)
    values = np.array([0.0, np.inf, -np.inf, np.nan, 1e-40], dtype=np.float32)
    tags = classify(values, bound)
    assert tags[0] == TAG_ZERO
    assert tags[1] == TAG_NO_COMPRESS
    assert tags[2] == TAG_NO_COMPRESS
    assert tags[3] == TAG_NO_COMPRESS
    assert tags[4] == TAG_ZERO


def test_nan_and_inf_survive_roundtrip():
    bound = ErrorBound(10)
    values = np.array([np.nan, np.inf, -np.inf], dtype=np.float32)
    recon = roundtrip(values, bound)
    assert np.isnan(recon[0])
    assert recon[1] == np.inf
    assert recon[2] == -np.inf


def test_empty_vector():
    bound = ErrorBound(10)
    cg = compress(np.array([], dtype=np.float32), bound)
    assert len(cg) == 0
    assert decompress(cg).shape == (0,)
    assert cg.compression_ratio == 1.0


def test_compressed_nbits_matches_container():
    bound = ErrorBound(10)
    values = _sample_gradients(1000)
    cg = compress(values, bound)
    assert compressed_nbits(values, bound) == cg.compressed_bits


def test_all_zero_vector_hits_maximum_ratio():
    bound = ErrorBound(10)
    values = np.zeros(8000, dtype=np.float32)
    cg = compress(values, bound)
    # 2 bits per value out of 32 -> exactly 16x.
    assert cg.compression_ratio == pytest.approx(16.0)


def test_accepts_float64_input():
    bound = ErrorBound(10)
    values = np.array([0.5, 0.001, 2.0], dtype=np.float64)
    recon = roundtrip(values, bound)
    assert abs(recon[0] - 0.5) < bound.bound
    assert recon[2] == 2.0
