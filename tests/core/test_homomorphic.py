"""Compressed-domain aggregation algebra of the homomorphic codecs.

The aggregation-site refactor only works if ``aggregate_compressed``
really is a drop-in for decompress -> sum -> recompress: bit-exactly for
the lossless family, within the pinned lattice bound for THC, and
independent of the reduction-tree shape for both (a switch tree must
produce the same bits as the flat endpoint fold).
"""

import numpy as np
import pytest

from repro.core import (
    CAP_ERROR_FEEDBACK,
    CAP_HOMOMORPHIC,
    CAP_LOSSY,
    CodecResult,
    get_codec,
    profile_for,
)

HOMOMORPHIC = ("lossless_hc", "thc")


def _grads(fan_in, n=257, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal(n) * 0.004).astype(np.float32)
        for _ in range(fan_in)
    ]


def _strip_state(part):
    """A part as a remote peer would rebuild it: values only, no state."""
    return CodecResult(
        payload_nbytes=part.payload_nbytes,
        values=part.values,
        fan_in=part.fan_in,
    )


class TestCapabilities:
    def test_homomorphic_flags(self):
        assert get_codec("lossless_hc").capabilities() == frozenset(
            {CAP_HOMOMORPHIC}
        )
        assert get_codec("thc").capabilities() == frozenset(
            {CAP_HOMOMORPHIC, CAP_LOSSY}
        )

    def test_non_homomorphic_codecs_say_so(self):
        assert not get_codec("inceptionn").homomorphic
        assert CAP_ERROR_FEEDBACK in get_codec("inceptionn").capabilities()
        assert not get_codec("identity").homomorphic

    def test_stream_profile_mirrors_codec(self):
        assert profile_for("lossless_hc").homomorphic
        assert profile_for("thc").homomorphic
        assert not profile_for("truncation").homomorphic

    def test_non_homomorphic_aggregate_raises(self):
        stream = profile_for("inceptionn")
        parts = [stream.compress(g) for g in _grads(2)]
        with pytest.raises(NotImplementedError):
            stream.aggregate_compressed(parts)


class TestLosslessHc:
    @pytest.mark.parametrize("fan_in", [2, 4, 8])
    def test_matches_decompress_sum_recompress_bit_exactly(self, fan_in):
        stream = profile_for("lossless_hc")
        grads = _grads(fan_in, seed=fan_in)
        parts = [stream.compress(g) for g in grads]
        agg = stream.aggregate_compressed(parts)
        # The endpoint reference: reconstruct every part (lossless:
        # values ARE the reconstruction), sum exactly, re-encode.
        reference = stream.compress(
            np.sum(grads, axis=0, dtype=np.float64).astype(np.float32)
        )
        np.testing.assert_array_equal(agg.values, reference.values)
        assert agg.fan_in == fan_in
        assert agg.payload_nbytes == reference.payload_nbytes

    def test_tree_shape_cannot_change_the_result(self):
        stream = profile_for("lossless_hc")
        parts = [stream.compress(g) for g in _grads(8, seed=3)]
        flat = stream.aggregate_compressed(parts)
        tree = stream.aggregate_compressed(
            [
                stream.aggregate_compressed(
                    [
                        stream.aggregate_compressed(parts[0:2]),
                        stream.aggregate_compressed(parts[2:4]),
                    ]
                ),
                stream.aggregate_compressed(parts[4:8]),
            ]
        )
        np.testing.assert_array_equal(flat.values, tree.values)
        assert flat.fan_in == tree.fan_in == 8
        assert flat.payload_nbytes == tree.payload_nbytes

    def test_stateless_parts_rebuild_the_accumulator(self):
        stream = profile_for("lossless_hc")
        parts = [stream.compress(g) for g in _grads(4, seed=5)]
        with_state = stream.aggregate_compressed(parts)
        without = stream.aggregate_compressed(
            [_strip_state(p) for p in parts]
        )
        np.testing.assert_array_equal(with_state.values, without.values)


class TestThc:
    def _lattice(self, stream):
        bits = int(stream.params.get("bits", 8))
        limit = float(stream.params.get("limit", 2.0**-5))
        step = 2.0 * limit / (2**bits - 1)
        return bits, limit, step

    @pytest.mark.parametrize("fan_in", [2, 4, 8])
    def test_within_half_step_of_recompression(self, fan_in):
        stream = profile_for("thc")
        _bits, limit, step = self._lattice(stream)
        # Small enough that the summed gradient stays inside the base
        # lattice: compress() clips at +/-limit, while the aggregated
        # lattice legitimately spans +/-fan_in*limit.
        grads = [g * 0.25 for g in _grads(fan_in, seed=10 + fan_in)]
        parts = [stream.compress(g) for g in grads]
        assert np.max(np.abs(np.sum(grads, axis=0))) < limit
        agg = stream.aggregate_compressed(parts)
        # Re-quantizing the summed reconstructions onto the base
        # lattice moves each element at most half a step; the exact
        # index-domain sum cannot drift further than that.
        reference = stream.compress(
            np.sum(
                [p.values for p in parts], axis=0, dtype=np.float64
            ).astype(np.float32)
        )
        diff = np.max(np.abs(agg.values - reference.values))
        assert diff <= step / 2 + step * 2.0**-16
        assert agg.fan_in == fan_in

    @pytest.mark.parametrize("fan_in", [2, 4, 8])
    def test_aggregated_payload_widens_with_fan_in(self, fan_in):
        stream = profile_for("thc")
        bits, _limit, _step = self._lattice(stream)
        parts = [stream.compress(g) for g in _grads(fan_in, seed=2)]
        agg = stream.aggregate_compressed(parts)
        index_bits = bits + (fan_in - 1).bit_length()
        n = parts[0].values.size
        assert agg.payload_nbytes == stream.aggregate_payload_nbytes(
            n * 4, [p.payload_nbytes for p in parts], fan_in
        )
        assert agg.payload_nbytes > parts[0].payload_nbytes
        assert agg.payload_nbytes == pytest.approx(
            4 + -(-n * index_bits // 8), abs=8
        )

    def test_tree_equals_flat_bit_exactly(self):
        stream = profile_for("thc")
        parts = [stream.compress(g) for g in _grads(8, seed=7)]
        flat = stream.aggregate_compressed(parts)
        tree = stream.aggregate_compressed(
            [
                stream.aggregate_compressed(parts[0:4]),
                stream.aggregate_compressed(parts[4:8]),
            ]
        )
        np.testing.assert_array_equal(flat.values, tree.values)
        assert flat.payload_nbytes == tree.payload_nbytes

    def test_stateless_parts_recover_exact_indices(self):
        # The float32 rendering is fine enough that lattice indices are
        # recoverable exactly — the property that makes the endpoint
        # recompress path bit-equal to the switch tree.
        stream = profile_for("thc")
        parts = [stream.compress(g) for g in _grads(4, seed=9)]
        with_state = stream.aggregate_compressed(parts)
        without = stream.aggregate_compressed(
            [_strip_state(p) for p in parts]
        )
        np.testing.assert_array_equal(with_state.values, without.values)


class TestFftSparse:
    def test_registered_lossy_error_feedback_endpoint_codec(self):
        codec = get_codec("fft_sparse")
        assert codec.capabilities() == frozenset(
            {CAP_LOSSY, CAP_ERROR_FEEDBACK}
        )
        assert not codec.homomorphic

    def test_keeps_fraction_of_spectrum(self):
        stream = profile_for("fft_sparse")
        grad = _grads(1, n=1024, seed=4)[0]
        result = stream.compress(grad)
        assert result.payload_nbytes < grad.nbytes
        bound = stream.error_bound(grad)
        assert bound is not None
        assert np.max(np.abs(result.values - grad)) <= bound
