"""Unit tests for error-bound configuration."""

import pytest

from repro.core import ErrorBound, PAPER_BOUNDS


def test_bound_value():
    assert ErrorBound(10).bound == 2.0**-10
    assert ErrorBound(6).bound == 2.0**-6


def test_paper_bounds_are_the_three_evaluated():
    assert [b.exponent for b in PAPER_BOUNDS] == [10, 8, 6]


def test_zero_threshold_excludes_values_below_bound():
    bound = ErrorBound(10)
    # 2^-10 has biased exponent 117; anything below encodes to zero.
    assert bound.zero_exponent_threshold == 117


def test_bit8_threshold_is_seven_above_zero_threshold():
    bound = ErrorBound(8)
    assert bound.bit8_exponent_threshold - bound.zero_exponent_threshold == 7


def test_from_bound_roundtrip():
    for exp in (1, 6, 8, 10, 15):
        assert ErrorBound.from_bound(2.0**-exp) == ErrorBound(exp)


def test_from_bound_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        ErrorBound.from_bound(0.001)


def test_from_bound_rejects_negative():
    with pytest.raises(ValueError):
        ErrorBound.from_bound(-0.25)


@pytest.mark.parametrize("exp", [0, -3, 16, 100])
def test_exponent_out_of_range_rejected(exp):
    with pytest.raises(ValueError):
        ErrorBound(exp)


def test_bit8_scale_equals_bound():
    bound = ErrorBound(6)
    assert bound.bit8_scale == bound.bound


def test_str_rendering():
    assert str(ErrorBound(10)) == "2^-10"
