"""Error-feedback compressor tests (codec extension)."""

import numpy as np
import pytest

from repro.core import ErrorBound, ErrorFeedbackCompressor, feedback_hook, roundtrip


def _grads(n=5000, seed=0, scale=0.02):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * scale).astype(np.float32)


def test_first_round_matches_plain_codec():
    bound = ErrorBound(8)
    ef = ErrorFeedbackCompressor(bound)
    grads = _grads()
    _, recon = ef.compress(grads)
    np.testing.assert_array_equal(recon, roundtrip(grads, bound))


def test_residual_carries_forward():
    bound = ErrorBound(6)
    ef = ErrorFeedbackCompressor(bound)
    grads = _grads(seed=1)
    ef.compress(grads)
    assert ef.residual_norm > 0
    # Second identical gradient: compressed input is grads + residual,
    # so the reconstruction differs from the stateless roundtrip.
    _, recon2 = ef.compress(grads)
    plain = roundtrip(grads, bound)
    assert not np.array_equal(recon2, plain)


def test_no_mass_lost_over_rounds():
    bound = ErrorBound(6)  # aggressive: big per-round error
    ef = ErrorFeedbackCompressor(bound)
    rng = np.random.default_rng(2)
    total_true = np.zeros(2000, dtype=np.float64)
    total_sent = np.zeros(2000, dtype=np.float64)
    for _ in range(100):
        g = (rng.standard_normal(2000) * 0.003).astype(np.float32)
        total_true += g
        _, recon = ef.compress(g)
        total_sent += recon
    # Without feedback, values below 2^-6 would vanish *every* round
    # (total drift ~100 * mean|g|); with feedback, drift stays at one
    # round's residual.
    drift = np.abs(total_true - total_sent).max()
    assert drift <= bound.bound * 1.01


def test_without_feedback_small_gradients_vanish():
    bound = ErrorBound(6)
    rng = np.random.default_rng(3)
    g = (rng.uniform(-0.007, 0.007, 2000)).astype(np.float32)
    # every |g| < 2^-6 -> stateless codec zeroes everything...
    assert np.all(roundtrip(g, bound) == 0.0)
    # ...but the feedback compressor eventually transmits the mass.
    ef = ErrorFeedbackCompressor(bound)
    sent = np.zeros(2000, dtype=np.float64)
    for _ in range(20):
        _, recon = ef.compress(g)
        sent += recon
    assert np.abs(sent).sum() > 0


def test_reset():
    ef = ErrorFeedbackCompressor(ErrorBound(8))
    ef.compress(_grads())
    ef.reset()
    assert ef.residual_norm == 0.0


def test_feedback_hook_shape_preserved():
    hook = feedback_hook(ErrorBound(10))
    grads = _grads(600).reshape(20, 30)
    out = hook(0, grads)
    assert out.shape == (20, 30)


def test_feedback_improves_training_fidelity():
    """Cumulative applied update tracks the true gradient sum better
    with feedback than without, at an aggressive bound."""
    bound = ErrorBound(6)
    rng = np.random.default_rng(4)
    gs = [(rng.standard_normal(1000) * 0.004).astype(np.float32) for _ in range(50)]
    true_sum = np.sum(gs, axis=0)

    plain_sum = np.sum([roundtrip(g, bound) for g in gs], axis=0)
    ef = ErrorFeedbackCompressor(bound)
    ef_sum = np.sum([ef.compress(g)[1] for g in gs], axis=0)

    plain_err = np.abs(plain_sum - true_sum).mean()
    ef_err = np.abs(ef_sum - true_sum).mean()
    assert ef_err < plain_err


def test_shape_change_warns_and_resets_residual():
    bound = ErrorBound(6)
    ef = ErrorFeedbackCompressor(bound)
    ef.compress(_grads(n=5000, seed=2))
    assert ef.residual_norm > 0
    shorter = _grads(n=1000, seed=3)
    with pytest.warns(RuntimeWarning, match="gradient length changed"):
        _, recon = ef.compress(shorter)
    # The stale residual was dropped, not mixed in: the first call at
    # the new length behaves exactly like a fresh compressor.
    np.testing.assert_array_equal(recon, roundtrip(shorter, bound))
    # And the residual now tracks the *new* shape going forward.
    assert ef._residual is not None
    assert ef._residual.shape == shorter.shape


def test_same_shape_never_warns():
    import warnings

    ef = ErrorFeedbackCompressor(ErrorBound(6))
    grads = _grads(n=2000, seed=4)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        ef.compress(grads)
        ef.compress(grads)
