"""Tests for Table III / Fig 14 statistics helpers."""

import numpy as np
import pytest

from repro.core import (
    ErrorBound,
    TAG_BIT8,
    TAG_BIT16,
    TAG_NO_COMPRESS,
    TAG_ZERO,
    average_compression_ratio,
    bitwidth_distribution,
    compression_ratio,
    max_abs_error,
    roundtrip,
    value_histogram,
)

BOUND = ErrorBound(10)


def test_distribution_fractions_sum_to_one():
    rng = np.random.default_rng(0)
    values = (rng.standard_normal(10_000) * 0.2).astype(np.float32)
    dist = bitwidth_distribution(values, BOUND)
    assert sum(dist.fractions.values()) == pytest.approx(1.0)


def test_distribution_known_composition():
    values = np.array(
        [0.0] * 6 + [0.01] * 2 + [0.5] * 1 + [2.0] * 1, dtype=np.float32
    )
    dist = bitwidth_distribution(values, BOUND)
    assert dist.fraction_of(TAG_ZERO) == pytest.approx(0.6)
    assert dist.fraction_of(TAG_BIT8) == pytest.approx(0.2)
    assert dist.fraction_of(TAG_BIT16) == pytest.approx(0.1)
    assert dist.fraction_of(TAG_NO_COMPRESS) == pytest.approx(0.1)


def test_as_row_uses_table3_labels():
    values = np.zeros(10, dtype=np.float32)
    row = bitwidth_distribution(values, BOUND).as_row
    assert set(row) == {"2-bit", "10-bit", "18-bit", "34-bit"}
    assert row["2-bit"] == pytest.approx(1.0)


def test_average_bits_and_ratio_consistent():
    rng = np.random.default_rng(1)
    values = (rng.standard_normal(5000) * 0.1).astype(np.float32)
    dist = bitwidth_distribution(values, BOUND)
    assert dist.compression_ratio == pytest.approx(
        32.0 / dist.average_bits_per_value
    )


def test_distribution_rejects_empty():
    with pytest.raises(ValueError):
        bitwidth_distribution(np.array([], dtype=np.float32), BOUND)


def test_sharper_bound_never_increases_ratio():
    rng = np.random.default_rng(2)
    values = (rng.standard_normal(20_000) * 0.05).astype(np.float32)
    r10 = compression_ratio(values, ErrorBound(10))
    r8 = compression_ratio(values, ErrorBound(8))
    r6 = compression_ratio(values, ErrorBound(6))
    assert r10 <= r8 <= r6


def test_average_compression_ratio_is_mean_of_snapshots():
    a = np.zeros(800, dtype=np.float32)  # ratio 16
    b = np.full(800, 0.5, dtype=np.float32)  # ratio 32/18
    avg = average_compression_ratio([a, b], BOUND)
    assert avg == pytest.approx((16.0 + 32.0 / 18.0) / 2)


def test_average_compression_ratio_rejects_empty():
    with pytest.raises(ValueError):
        average_compression_ratio([], BOUND)


def test_max_abs_error_roundtrip():
    rng = np.random.default_rng(3)
    values = (rng.standard_normal(5000) * 0.2).astype(np.float32)
    recon = roundtrip(values, BOUND)
    err = max_abs_error(values, recon)
    assert 0.0 < err < BOUND.bound


def test_max_abs_error_ignores_nonfinite():
    a = np.array([np.inf, 0.5], dtype=np.float32)
    b = np.array([np.inf, 0.5], dtype=np.float32)
    assert max_abs_error(a, b) == 0.0


def test_max_abs_error_shape_mismatch():
    with pytest.raises(ValueError):
        max_abs_error(np.zeros(3), np.zeros(4))


def test_value_histogram_normalized():
    rng = np.random.default_rng(4)
    values = rng.uniform(-1, 1, 10_000)
    freqs, edges = value_histogram(values, bins=51)
    assert freqs.sum() == pytest.approx(1.0)
    assert len(edges) == 52
    assert edges[0] == -1.0 and edges[-1] == 1.0


def test_compression_ratio_rejects_empty():
    # Must agree with bitwidth_distribution: both raise on zero values
    # (compression_ratio used to return a quiet 1.0 here).
    with pytest.raises(ValueError):
        compression_ratio(np.array([], dtype=np.float32), BOUND)


def test_empty_vector_raises_consistently():
    empty = np.array([], dtype=np.float32)
    with pytest.raises(ValueError):
        bitwidth_distribution(empty, BOUND)
    with pytest.raises(ValueError):
        compression_ratio(empty, BOUND)
