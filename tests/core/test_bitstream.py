"""BitWriter/BitReader unit tests."""

import pytest

from repro.core.bitstream import BitReader, BitWriter


def test_single_byte():
    w = BitWriter()
    w.write(0b101, 3)
    w.write(0b11, 2)
    assert w.bit_length == 5
    data = w.getvalue()
    assert data == bytes([0b11101])


def test_crossing_byte_boundary():
    w = BitWriter()
    w.write(0x1FF, 9)
    data = w.getvalue()
    r = BitReader(data)
    assert r.read(9) == 0x1FF


def test_mixed_widths_roundtrip():
    fields = [(5, 3), (0, 0), (1023, 10), (1, 1), (0xDEADBEEF, 32), (7, 16)]
    w = BitWriter()
    for value, nbits in fields:
        w.write(value, nbits)
    r = BitReader(w.getvalue())
    for value, nbits in fields:
        assert r.read(nbits) == value


def test_value_masked_to_width():
    w = BitWriter()
    w.write(0xFF, 4)
    r = BitReader(w.getvalue())
    assert r.read(4) == 0xF


def test_read_past_end_raises():
    r = BitReader(b"\x01")
    r.read(8)
    with pytest.raises(EOFError):
        r.read(1)


def test_zero_bit_read_returns_zero():
    r = BitReader(b"")
    assert r.read(0) == 0


def test_negative_widths_rejected():
    with pytest.raises(ValueError):
        BitWriter().write(1, -1)
    with pytest.raises(ValueError):
        BitReader(b"\x00").read(-2)


def test_bits_remaining():
    r = BitReader(bytes(4))
    assert r.bits_remaining == 32
    r.read(5)
    assert r.bits_remaining == 27
