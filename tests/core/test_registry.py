"""Codec registry: round-trips, error bounds, and profile resolution."""

import numpy as np
import pytest

from repro.core import (
    RAW_STREAM,
    StreamProfile,
    available_codecs,
    codec_tos,
    get_codec,
    inceptionn_profile,
    profile_for,
)
from repro.network import is_compressible_tos


def _sample(size=512, seed=3):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(size) * 0.004).astype(np.float32)


@pytest.mark.parametrize("name", available_codecs())
def test_round_trip_respects_declared_bound(name):
    codec = get_codec(name)
    values = _sample()
    result = codec.compress(values, **codec.default_params())

    assert result.values.dtype == np.float32
    assert result.values.shape == values.shape
    assert result.payload_nbytes > 0

    bound = codec.error_bound(values, **codec.default_params())
    if codec.lossless:
        assert bound in (None, 0.0)
        np.testing.assert_array_equal(result.values, values)
    else:
        assert bound is not None and bound > 0
        assert float(np.max(np.abs(result.values - values))) <= bound


@pytest.mark.parametrize("name", available_codecs())
def test_every_codec_has_a_registered_tos(name):
    tos = codec_tos(name)
    assert 0 <= tos <= 0xFF
    assert is_compressible_tos(tos)
    profile = profile_for(name)
    assert profile.resolved_tos == tos
    assert profile.compressing


def test_unknown_codec_raises_with_available_names():
    with pytest.raises(KeyError) as excinfo:
        get_codec("definitely_not_a_codec")
    message = excinfo.value.args[0]
    assert "definitely_not_a_codec" in message
    for name in available_codecs():
        assert name in message


def test_unknown_profile_raises_too():
    with pytest.raises(KeyError):
        profile_for("nope").resolve()


def test_raw_stream_is_not_compressing():
    assert not RAW_STREAM.compressing
    assert StreamProfile().compressing is False


def test_profile_params_override_defaults():
    values = _sample()
    default = profile_for("truncation").compress(values)
    aggressive = profile_for("truncation", bits=24).compress(values)
    assert aggressive.payload_nbytes < default.payload_nbytes


def test_inceptionn_profile_matches_direct_codec():
    values = _sample()
    profile = inceptionn_profile()
    codec = get_codec("inceptionn")
    via_profile = profile.compress(values)
    direct = codec.compress(values, **codec.default_params())
    np.testing.assert_array_equal(via_profile.values, direct.values)
    assert via_profile.payload_nbytes == direct.payload_nbytes
    assert profile.resolved_tos == codec_tos("inceptionn") == 0x28


def test_compression_ratio_property():
    values = _sample(size=1024)
    result = profile_for("truncation").compress(values)
    assert result.compression_ratio == pytest.approx(
        values.nbytes / result.payload_nbytes
    )


# -- listing determinism (rule R10 runtime counterpart) ----------------------


def test_listings_are_sorted_not_insertion_ordered():
    """User-visible registry listings must not leak import order."""
    from repro.core import available_codecs
    from repro.distributed import available_strategies

    assert list(available_codecs()) == sorted(available_codecs())
    assert list(available_strategies()) == sorted(available_strategies())


def test_tos_collision_error_names_claimant():
    """The duplicate-ToS scan reports deterministically regardless of
    registration order (the scan is sorted)."""
    from repro.core import codec_tos
    from repro.core.registry import register_codec

    class _Stub:
        name = "zz-test-dup"

    taken = codec_tos("inceptionn")
    with pytest.raises(ValueError, match="already claimed by codec 'inceptionn'"):
        register_codec(_Stub(), tos=taken)
