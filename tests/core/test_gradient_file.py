"""Tests for the .incgrad on-disk format."""

import numpy as np
import pytest

from repro.core import ErrorBound, compress
from repro.core.gradient_file import (
    GradientFileError,
    dump_bytes,
    load,
    load_bytes,
    save,
)

BOUND = ErrorBound(10)


def _grads(n=5000, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * 0.05).astype(np.float32)


def test_bytes_roundtrip():
    values = _grads()
    cg = compress(values, BOUND)
    back = load_bytes(dump_bytes(cg))
    np.testing.assert_array_equal(back.tags, cg.tags)
    np.testing.assert_array_equal(back.payloads, cg.payloads)
    assert back.bound == BOUND


def test_file_roundtrip(tmp_path):
    values = _grads(seed=1)
    path = tmp_path / "trace.incgrad"
    written = save(path, values, BOUND)
    assert path.stat().st_size == written
    restored = load(path)
    assert np.max(np.abs(restored - values)) < BOUND.bound


def test_file_smaller_than_raw(tmp_path):
    values = np.zeros(100_000, dtype=np.float32)
    path = tmp_path / "zeros.incgrad"
    written = save(path, values, BOUND)
    assert written < values.nbytes / 10


def test_bad_magic_rejected():
    blob = dump_bytes(compress(_grads(100), BOUND))
    with pytest.raises(GradientFileError):
        load_bytes(b"NOTAGRAD" + blob[8:])


def test_truncated_header_rejected():
    with pytest.raises(GradientFileError):
        load_bytes(b"INCGRAD1")


def test_truncated_stream_rejected():
    blob = dump_bytes(compress(_grads(1000), BOUND))
    with pytest.raises(GradientFileError):
        load_bytes(blob[:-10])


def test_bad_exponent_rejected():
    blob = bytearray(dump_bytes(compress(_grads(8), BOUND)))
    blob[8] = 99  # invalid bound exponent
    with pytest.raises(GradientFileError):
        load_bytes(bytes(blob))


def test_empty_vector(tmp_path):
    path = tmp_path / "empty.incgrad"
    save(path, np.array([], dtype=np.float32), BOUND)
    assert load(path).size == 0


def test_bound_preserved(tmp_path):
    for exp in (6, 8, 10):
        path = tmp_path / f"b{exp}.incgrad"
        save(path, _grads(500, seed=exp), ErrorBound(exp))
        back = load_bytes(path.read_bytes())
        assert back.bound == ErrorBound(exp)
