"""Hypothesis property tests on the codec's core invariants."""

import math
import struct

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressedGradients, ErrorBound, compress, decompress
from repro.core.reference import compress_value, decompress_value, roundtrip_value

bounds = st.integers(min_value=1, max_value=15).map(ErrorBound)

finite_floats = st.floats(
    width=32, allow_nan=False, allow_infinity=False, allow_subnormal=True
)

all_float_bits = st.integers(min_value=0, max_value=2**32 - 1)


@given(finite_floats, bounds)
def test_roundtrip_error_within_bound(value, bound):
    recon = roundtrip_value(value, bound)
    if abs(value) >= 1.0:
        assert recon == value
    else:
        assert abs(recon - value) < bound.bound


@given(finite_floats, bounds)
def test_recompression_idempotent(value, bound):
    once = roundtrip_value(value, bound)
    assert roundtrip_value(once, bound) == once


@given(finite_floats, bounds)
def test_sign_symmetry(value, bound):
    if value == 0.0 or math.isnan(value):
        return
    assert roundtrip_value(-value, bound) == -roundtrip_value(value, bound)


@given(all_float_bits, bounds)
def test_every_bit_pattern_classifies(bits, bound):
    # The codec must accept any 32-bit pattern, including NaN payloads,
    # denormals, and negative zero.
    value = struct.unpack("<f", struct.pack("<I", bits))[0]
    tag, payload = compress_value(value, bound)
    recon = decompress_value(tag, payload, bound)
    if math.isnan(value):
        assert math.isnan(recon)
    elif abs(value) >= 1.0:
        assert recon == value
    else:
        assert abs(recon - value) < bound.bound


@given(
    st.lists(finite_floats, min_size=0, max_size=200),
    bounds,
)
@settings(max_examples=50)
def test_vectorized_matches_scalar(values, bound):
    arr = np.array(values, dtype=np.float32)
    cg = compress(arr, bound)
    recon = decompress(cg)
    for i, value in enumerate(arr):
        tag, payload = compress_value(float(value), bound)
        assert (int(cg.tags[i]), int(cg.payloads[i])) == (tag, payload)
        assert recon[i] == np.float32(decompress_value(tag, payload, bound))


@given(st.lists(finite_floats, min_size=0, max_size=100), bounds)
@settings(max_examples=50)
def test_wire_format_roundtrip(values, bound):
    arr = np.array(values, dtype=np.float32)
    cg = compress(arr, bound)
    back = CompressedGradients.from_bytes(cg.to_bytes(), len(arr), bound)
    assert np.array_equal(back.tags, cg.tags)
    assert np.array_equal(back.payloads, cg.payloads)


@given(st.lists(finite_floats, min_size=1, max_size=100), bounds)
@settings(max_examples=50)
def test_compressed_never_larger_than_34_bits_per_value(values, bound):
    arr = np.array(values, dtype=np.float32)
    cg = compress(arr, bound)
    assert cg.compressed_bits <= 34 * len(arr) + 16
