"""Wire-format serialization tests for CompressedGradients."""

import numpy as np
import pytest

from repro.core import CompressedGradients, ErrorBound, compress, decompress
from repro.core.bitstream import BitWriter
from repro.core.container import GROUP_SIZE, GROUP_TAG_BITS
from repro.core.tags import PAYLOAD_BITS

BOUND = ErrorBound(10)


def _compress_random(n, seed=0, scale=0.3):
    rng = np.random.default_rng(seed)
    values = (rng.standard_normal(n) * scale).astype(np.float32)
    return values, compress(values, BOUND)


def _scalar_to_bytes(cg):
    """Per-lane BitWriter reference the bulk serializer is pinned to."""
    writer = BitWriter()
    n = len(cg)
    for g in range(-(-n // GROUP_SIZE)):
        tag_word = 0
        for lane in range(GROUP_SIZE):
            i = g * GROUP_SIZE + lane
            tag = int(cg.tags[i]) if i < n else 0
            tag_word |= (tag & 0b11) << (2 * lane)
        writer.write(tag_word, GROUP_TAG_BITS)
        for lane in range(GROUP_SIZE):
            i = g * GROUP_SIZE + lane
            if i < n:
                nbits = PAYLOAD_BITS[int(cg.tags[i])]
                if nbits:
                    writer.write(int(cg.payloads[i]), nbits)
    return writer.getvalue()


@pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 64, 1000])
def test_bytes_roundtrip(n):
    _, cg = _compress_random(n)
    data = cg.to_bytes()
    back = CompressedGradients.from_bytes(data, n, BOUND)
    assert np.array_equal(back.tags, cg.tags)
    assert np.array_equal(back.payloads, cg.payloads)


def test_bytes_roundtrip_preserves_values():
    values, cg = _compress_random(123, seed=5)
    back = CompressedGradients.from_bytes(cg.to_bytes(), 123, BOUND)
    assert np.array_equal(decompress(back), decompress(cg))


def test_serialized_size_matches_compressed_bits():
    _, cg = _compress_random(512, seed=7)
    data = cg.to_bytes()
    assert len(data) == cg.compressed_nbytes
    assert cg.compressed_bits <= len(data) * 8 < cg.compressed_bits + 8


def test_partial_group_padding_is_zero_tags():
    values = np.full(3, 0.5, dtype=np.float32)
    cg = compress(values, BOUND)
    data = cg.to_bytes()
    # One group: 16 tag bits + 3 x 16-bit payloads = 64 bits = 8 bytes.
    assert len(data) == 8
    tag_word = data[0] | (data[1] << 8)
    for lane in range(3, 8):
        assert (tag_word >> (2 * lane)) & 0b11 == 0


def test_compression_ratio_definition():
    values = np.full(80, 0.5, dtype=np.float32)  # all BIT16
    cg = compress(values, BOUND)
    # 10 groups x (16 + 8*16) bits = 1440 bits; original = 2560.
    assert cg.compressed_bits == 1440
    assert cg.compression_ratio == pytest.approx(2560 / 1440)


def test_mismatched_shapes_rejected():
    with pytest.raises(ValueError):
        CompressedGradients(
            tags=np.zeros(4, dtype=np.uint8),
            payloads=np.zeros(5, dtype=np.uint32),
            bound=BOUND,
        )


def test_multidimensional_tags_rejected():
    with pytest.raises(ValueError):
        CompressedGradients(
            tags=np.zeros((2, 2), dtype=np.uint8),
            payloads=np.zeros((2, 2), dtype=np.uint32),
            bound=BOUND,
        )


def test_original_nbytes():
    _, cg = _compress_random(100)
    assert cg.original_nbytes == 400


@pytest.mark.parametrize("n", [0, 1, 3, 7, 8, 9, 17, 100, 1000, 4097])
@pytest.mark.parametrize("scale", [0.0001, 0.004, 0.3, 2.0])
def test_vectorized_to_bytes_matches_scalar_reference(n, scale):
    # The scales sweep the tag mix from mostly-ZERO to mostly-BIT32.
    _, cg = _compress_random(n, seed=n, scale=scale)
    assert cg.to_bytes() == _scalar_to_bytes(cg)


@pytest.mark.parametrize("scale", [0.0001, 0.004, 0.3, 2.0])
def test_vectorized_from_bytes_matches_scalar_reference(scale):
    _, cg = _compress_random(777, seed=1, scale=scale)
    back = CompressedGradients.from_bytes(_scalar_to_bytes(cg), 777, BOUND)
    assert np.array_equal(back.tags, cg.tags)
    assert np.array_equal(back.payloads, cg.payloads)


def test_from_bytes_allows_single_padding_byte():
    # A stream may end on a partial byte, so up to one byte of padding
    # after the final group record is legitimate framing slack.
    _, cg = _compress_random(16, seed=2)
    back = CompressedGradients.from_bytes(cg.to_bytes() + b"\x00", 16, BOUND)
    assert np.array_equal(back.tags, cg.tags)


def test_from_bytes_rejects_surplus_bytes():
    # Regression: trailing garbage beyond the padding byte used to be
    # silently ignored, hiding mis-framed or corrupt wire buffers.
    _, cg = _compress_random(16, seed=2)
    with pytest.raises(ValueError, match="surplus"):
        CompressedGradients.from_bytes(cg.to_bytes() + b"\x00\x00", 16, BOUND)


def test_from_bytes_rejects_truncated_record():
    _, cg = _compress_random(64, seed=3)
    with pytest.raises(EOFError):
        CompressedGradients.from_bytes(cg.to_bytes()[:-3], 64, BOUND)


def test_from_bytes_rejects_too_few_groups():
    _, cg = _compress_random(8, seed=4)
    with pytest.raises(EOFError, match="group records"):
        CompressedGradients.from_bytes(cg.to_bytes(), 16, BOUND)
