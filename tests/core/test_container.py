"""Wire-format serialization tests for CompressedGradients."""

import numpy as np
import pytest

from repro.core import CompressedGradients, ErrorBound, compress, decompress

BOUND = ErrorBound(10)


def _compress_random(n, seed=0, scale=0.3):
    rng = np.random.default_rng(seed)
    values = (rng.standard_normal(n) * scale).astype(np.float32)
    return values, compress(values, BOUND)


@pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 64, 1000])
def test_bytes_roundtrip(n):
    _, cg = _compress_random(n)
    data = cg.to_bytes()
    back = CompressedGradients.from_bytes(data, n, BOUND)
    assert np.array_equal(back.tags, cg.tags)
    assert np.array_equal(back.payloads, cg.payloads)


def test_bytes_roundtrip_preserves_values():
    values, cg = _compress_random(123, seed=5)
    back = CompressedGradients.from_bytes(cg.to_bytes(), 123, BOUND)
    assert np.array_equal(decompress(back), decompress(cg))


def test_serialized_size_matches_compressed_bits():
    _, cg = _compress_random(512, seed=7)
    data = cg.to_bytes()
    assert len(data) == cg.compressed_nbytes
    assert cg.compressed_bits <= len(data) * 8 < cg.compressed_bits + 8


def test_partial_group_padding_is_zero_tags():
    values = np.full(3, 0.5, dtype=np.float32)
    cg = compress(values, BOUND)
    data = cg.to_bytes()
    # One group: 16 tag bits + 3 x 16-bit payloads = 64 bits = 8 bytes.
    assert len(data) == 8
    tag_word = data[0] | (data[1] << 8)
    for lane in range(3, 8):
        assert (tag_word >> (2 * lane)) & 0b11 == 0


def test_compression_ratio_definition():
    values = np.full(80, 0.5, dtype=np.float32)  # all BIT16
    cg = compress(values, BOUND)
    # 10 groups x (16 + 8*16) bits = 1440 bits; original = 2560.
    assert cg.compressed_bits == 1440
    assert cg.compression_ratio == pytest.approx(2560 / 1440)


def test_mismatched_shapes_rejected():
    with pytest.raises(ValueError):
        CompressedGradients(
            tags=np.zeros(4, dtype=np.uint8),
            payloads=np.zeros(5, dtype=np.uint32),
            bound=BOUND,
        )


def test_multidimensional_tags_rejected():
    with pytest.raises(ValueError):
        CompressedGradients(
            tags=np.zeros((2, 2), dtype=np.uint8),
            payloads=np.zeros((2, 2), dtype=np.uint32),
            bound=BOUND,
        )


def test_original_nbytes():
    _, cg = _compress_random(100)
    assert cg.original_nbytes == 400
