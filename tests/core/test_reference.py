"""Bit-level tests of the scalar reference codec (Algorithm 2/3)."""

import math

import numpy as np
import pytest

from repro.core import (
    ErrorBound,
    TAG_BIT8,
    TAG_BIT16,
    TAG_NO_COMPRESS,
    TAG_ZERO,
)
from repro.core.reference import (
    bits_to_float,
    compress_value,
    decompress_value,
    float_to_bits,
    roundtrip_value,
)

BOUND = ErrorBound(10)


def test_float_bits_roundtrip():
    # All values here are exactly representable in float32.
    for value in (0.0, -0.0, 1.0, -1.5, 2.0**-15, 0.125, 2.0**30):
        assert bits_to_float(float_to_bits(value)) == value


class TestClassification:
    def test_one_and_above_pass_through(self):
        for value in (1.0, -1.0, 2.5, 1e20, -37.0):
            tag, payload = compress_value(value, BOUND)
            assert tag == TAG_NO_COMPRESS
            assert payload == float_to_bits(value)

    def test_inf_and_nan_pass_through(self):
        tag, payload = compress_value(math.inf, BOUND)
        assert tag == TAG_NO_COMPRESS
        assert bits_to_float(payload) == math.inf
        tag, payload = compress_value(math.nan, BOUND)
        assert tag == TAG_NO_COMPRESS
        assert math.isnan(bits_to_float(payload))

    def test_below_bound_becomes_zero(self):
        for value in (0.0, -0.0, 2.0**-11, -(2.0**-20), 1e-38, 5e-42):
            tag, _ = compress_value(value, BOUND)
            assert tag == TAG_ZERO, value

    def test_bound_itself_is_not_zeroed(self):
        tag, _ = compress_value(2.0**-10, BOUND)
        assert tag == TAG_BIT8

    def test_mid_range_uses_eight_bits(self):
        # BIT8 covers [2^-10, 2^-3) at bound 2^-10.
        for value in (2.0**-10, 0.01, 0.1, 2.0**-3 - 2.0**-12):
            tag, _ = compress_value(value, BOUND)
            assert tag == TAG_BIT8, value

    def test_large_fraction_uses_sixteen_bits(self):
        for value in (2.0**-3, 0.2, 0.5, 0.999):
            tag, _ = compress_value(value, BOUND)
            assert tag == TAG_BIT16, value

    def test_relaxed_bound_collapses_bit16_class(self):
        # At 2^-6 the BIT8 class covers [2^-6, 2) so no sub-1.0 value
        # needs 16 bits — matches Table III's 0.0% 18-bit rows.
        bound = ErrorBound(6)
        rng = np.random.default_rng(0)
        for value in rng.uniform(2.0**-6, 1.0, size=200):
            tag, _ = compress_value(float(np.float32(value)), bound)
            assert tag == TAG_BIT8


class TestErrorBound:
    @pytest.mark.parametrize("exp", [6, 8, 10])
    def test_roundtrip_error_below_bound(self, exp):
        bound = ErrorBound(exp)
        rng = np.random.default_rng(exp)
        values = rng.standard_normal(500).astype(np.float32) * 0.3
        for value in values:
            value = float(value)
            recon = roundtrip_value(value, bound)
            if abs(value) >= 1.0:
                assert recon == value
            else:
                assert abs(recon - value) < bound.bound

    def test_zero_class_error(self):
        value = 2.0**-10 - 2.0**-24
        assert roundtrip_value(value, BOUND) == 0.0
        assert abs(value) < BOUND.bound

    def test_signs_preserved(self):
        for value in (0.3, 0.003, 0.9):
            assert roundtrip_value(-value, BOUND) == -roundtrip_value(value, BOUND)


class TestPayloadEncoding:
    def test_bit8_payload_layout(self):
        # 0.25 at bound 2^-10: q = 0.25 * 1024 = 256 -> does not fit 7 bits,
        # so it must be BIT16.  Use 0.0625: q = 64.
        tag, payload = compress_value(0.0625, BOUND)
        assert tag == TAG_BIT8
        assert payload == 64
        tag, payload = compress_value(-0.0625, BOUND)
        assert payload == 0x80 | 64

    def test_bit16_payload_layout(self):
        # 0.5 -> q = 0.5 * 2^15 = 16384
        tag, payload = compress_value(0.5, BOUND)
        assert tag == TAG_BIT16
        assert payload == 16384
        tag, payload = compress_value(-0.5, BOUND)
        assert payload == 0x8000 | 16384

    def test_bit8_payload_fits_seven_magnitude_bits(self):
        rng = np.random.default_rng(1)
        for value in rng.uniform(2.0**-10, 2.0**-3, size=300):
            tag, payload = compress_value(float(np.float32(value)), BOUND)
            assert tag == TAG_BIT8
            assert (payload & 0x7F) < 128

    def test_bit16_payload_fits_fifteen_magnitude_bits(self):
        rng = np.random.default_rng(2)
        for value in rng.uniform(2.0**-3, 1.0, size=300):
            tag, payload = compress_value(float(np.float32(value)), BOUND)
            assert tag == TAG_BIT16
            assert (payload & 0x7FFF) < 2**15


class TestDecompression:
    def test_zero_tag_decodes_to_zero(self):
        assert decompress_value(TAG_ZERO, 0, BOUND) == 0.0

    def test_idempotent_recompression(self):
        # Reconstructed values are fixed-point; compressing them again
        # must be exact (the decompressed lattice is closed under the codec).
        rng = np.random.default_rng(3)
        for value in rng.standard_normal(300).astype(np.float32) * 0.4:
            once = roundtrip_value(float(value), BOUND)
            twice = roundtrip_value(once, BOUND)
            assert once == twice

    def test_zero_payload_in_bit8_is_harmless(self):
        assert decompress_value(TAG_BIT8, 0, BOUND) == 0.0
