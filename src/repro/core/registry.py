"""Pluggable gradient-codec registry and per-stream profiles.

The paper hardwires one contract: gradient streams are tagged ToS 0x28
and the NIC's INCEPTIONN engines pick them up.  This module generalizes
that contract so any compressor can ride the same transport:

* :class:`GradientCodec` — the protocol every codec implements:
  ``compress(values, **params)`` returns the measured wire size *and*
  the reconstruction the receiver will observe, keeping the functional
  and timing domains coupled exactly like the INCEPTIONN path.
* a registry mapping codec names to implementations, each with its own
  reserved ToS byte (``inceptionn`` keeps the paper's 0x28).
* :class:`StreamProfile` — the per-stream property the software stack
  threads through the transport instead of a ``compressible`` boolean:
  codec name, ToS byte and codec parameters (error bound etc.).

Seven codecs are registered from this module: the INCEPTIONN codec, a
lossless identity, and the four comparator baselines (LSB truncation,
QSGD quantization, DGC sparsification, the SZ-style error-bounded
compressor) plus the snappy-like lossless LZ — so every offline
comparison in ``src/repro/baselines`` can now run end-to-end through
the simulated NIC and fabric.  The homomorphic families (lossless
homomorphic compression, THC) live in :mod:`repro.core.homomorphic`
and the FFT sparsifier in :mod:`repro.core.fftsparse`; they register
themselves on import (``repro.core`` imports both).

Codecs may additionally implement the *codec algebra* —
``aggregate_compressed(parts)`` summing payloads without a decompress
round-trip — advertised via the :data:`CAP_HOMOMORPHIC` capability
flag; the aggregation-site layer (``repro.transport.aggregation``)
keys off it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.network.packet import (
    TOS_COMPRESS,
    TOS_DEFAULT,
    register_compressible_tos,
)

from .bounds import DEFAULT_BOUND, ErrorBound
from .codec import compress as _inc_compress
from .codec import decompress as _inc_decompress

#: Capability flags reported by :meth:`GradientCodec.capabilities`.
#: ``CAP_HOMOMORPHIC`` marks codecs whose payloads form a monoid under
#: addition (``aggregate_compressed`` is implemented), ``CAP_LOSSY``
#: marks inexact reconstructions, and ``CAP_ERROR_FEEDBACK`` marks
#: codecs whose dropped mass an EF-SGD-style wrapper can re-inject.
CAP_HOMOMORPHIC = "homomorphic"
CAP_LOSSY = "lossy"
CAP_ERROR_FEEDBACK = "error-feedback"


@dataclass(frozen=True)
class CodecResult:
    """What one ``compress`` (or ``aggregate_compressed``) call produced.

    ``payload_nbytes`` is the measured wire size (what the network
    clocks); ``values`` is the reconstruction (what the receiver
    observes).  Codecs never ship opaque blobs through the simulator —
    the two domains travel together.

    ``fan_in`` counts how many gradient streams are folded into this
    payload (1 for a fresh ``compress``); ``state``, when a homomorphic
    codec sets it, is the codec's exact compressed-domain accumulator,
    carried alongside the float32 rendering so partial sums forwarded
    through a reduction tree never lose precision.
    """

    payload_nbytes: int
    values: np.ndarray
    fan_in: int = 1
    state: Optional[object] = None

    @property
    def compression_ratio(self) -> float:
        if self.payload_nbytes == 0:
            return float("inf")
        return self.values.size * 4 / self.payload_nbytes


def _flat32(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float32).reshape(-1)


class GradientCodec(abc.ABC):
    """Protocol of a pluggable gradient compressor.

    Subclasses set ``name``/``lossless`` and implement ``compress``;
    lossy codecs also implement :meth:`error_bound` so tests and callers
    can check reconstructions against the declared guarantee.
    """

    #: Registry key, also used on the wire via the codec's ToS byte.
    name: str = "?"
    #: Lossless codecs reconstruct bit-exactly.
    lossless: bool = False

    def default_params(self) -> Dict[str, object]:
        """Parameter defaults, for documentation and the CLI listing."""
        return {}

    @abc.abstractmethod
    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        """Measure the wire size of ``values`` and reconstruct them."""

    def error_bound(self, values: np.ndarray, **params: object) -> Optional[float]:
        """Declared max absolute reconstruction error on ``values``.

        ``None`` means bit-exact (lossless codecs).  Lossy codecs return
        a bound that :meth:`compress`'s reconstruction is guaranteed to
        respect for these inputs and parameters.
        """
        if self.lossless:
            return None
        raise NotImplementedError(f"{self.name} must declare an error bound")

    def capabilities(self) -> FrozenSet[str]:
        """Capability flags (``CAP_*``) for discovery and site checks.

        The default derives ``lossy`` from :attr:`lossless`; codecs with
        a codec algebra add :data:`CAP_HOMOMORPHIC`, codecs whose
        dropped mass is re-injectable add :data:`CAP_ERROR_FEEDBACK`.
        """
        return frozenset() if self.lossless else frozenset({CAP_LOSSY})

    @property
    def homomorphic(self) -> bool:
        """True when payloads aggregate without leaving the codec domain."""
        return CAP_HOMOMORPHIC in self.capabilities()

    def aggregate_compressed(
        self, parts: Sequence[CodecResult], **params: object
    ) -> CodecResult:
        """Sum compressed ``parts`` without a decompress round-trip.

        The codec algebra: homomorphic codecs return the payload of the
        aggregate — same wire/value coupling as :meth:`compress`, with
        ``fan_in`` accumulated and ``state`` carrying the codec's exact
        accumulator.  Codecs without :data:`CAP_HOMOMORPHIC` raise.
        """
        raise NotImplementedError(
            f"codec {self.name!r} has no codec algebra "
            "(not homomorphic); aggregate at the endpoint instead"
        )

    def aggregate_payload_nbytes(
        self,
        raw_nbytes: int,
        payload_sizes: Sequence[int],
        fan_in: int,
        **params: object,
    ) -> int:
        """Size-domain image of :meth:`aggregate_compressed`.

        For size-only streams (paper-scale sends with no functional
        array) the reduction runtime needs the aggregated wire size
        without values; homomorphic codecs model it from the raw byte
        count and the combined ``fan_in``.
        """
        raise NotImplementedError(
            f"codec {self.name!r} has no codec algebra "
            "(not homomorphic); aggregate at the endpoint instead"
        )

    def measured_ratio(self, values: np.ndarray, **params: object) -> float:
        """Compression ratio achieved on ``values``."""
        arr = _flat32(values)
        if arr.size == 0:
            return 1.0
        return arr.nbytes / max(1, self.compress(arr, **params).payload_nbytes)


# -- built-in codecs ---------------------------------------------------------


class InceptionnCodec(GradientCodec):
    """The paper's error-bounded hardware codec (Algorithms 2/3)."""

    name = "inceptionn"

    def capabilities(self) -> FrozenSet[str]:
        # The EF-SGD wrapper (repro.core.error_feedback) re-injects the
        # residual this codec drops.
        return frozenset({CAP_LOSSY, CAP_ERROR_FEEDBACK})

    def default_params(self) -> Dict[str, object]:
        return {"bound": DEFAULT_BOUND.exponent}

    @staticmethod
    def _bound(params: Mapping) -> ErrorBound:
        bound = params.get("bound", DEFAULT_BOUND)
        if isinstance(bound, ErrorBound):
            return bound
        return ErrorBound(int(bound))

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        arr = _flat32(values)
        cg = _inc_compress(arr, self._bound(params))
        return CodecResult(
            payload_nbytes=cg.compressed_nbytes, values=_inc_decompress(cg)
        )

    def error_bound(self, values: np.ndarray, **params: object) -> Optional[float]:
        return self._bound(params).bound


class IdentityCodec(GradientCodec):
    """Lossless pass-through: ratio 1.0, bit-exact.

    Useful as a control stream and for measuring pure engine overhead.
    """

    name = "identity"
    lossless = True

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        arr = _flat32(values)
        return CodecResult(payload_nbytes=arr.nbytes, values=arr.copy())


class TruncationCodec(GradientCodec):
    """The paper's ``xb-T`` baseline: drop the low ``bits`` LSBs."""

    name = "truncation"

    def default_params(self) -> Dict[str, object]:
        return {"bits": 16}

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        from repro.baselines.truncation import truncate_lsbs

        bits = int(params.get("bits", 16))
        arr = _flat32(values)
        payload_bits = arr.size * (32 - bits)
        return CodecResult(
            payload_nbytes=-(-payload_bits // 8),
            values=truncate_lsbs(arr, bits),
        )

    def error_bound(self, values: np.ndarray, **params: object) -> Optional[float]:
        # Zeroing the low ``bits`` bits of a float with magnitude |v|
        # perturbs it by less than 2^bits ulps = |v| * 2^(bits - 23).
        bits = int(params.get("bits", 16))
        arr = _flat32(values)
        max_abs = float(np.max(np.abs(arr))) if arr.size else 0.0
        return max_abs * 2.0 ** (bits - 23)


class QuantizationCodec(GradientCodec):
    """QSGD stochastic uniform quantization (Alistarh et al.)."""

    name = "quantization"

    def default_params(self) -> Dict[str, object]:
        return {"bits": 4, "seed": 0}

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        from repro.baselines.quantization import qsgd

        bits = int(params.get("bits", 4))
        rng = np.random.default_rng(int(params.get("seed", 0)))
        result = qsgd(_flat32(values), rng, bits=bits)
        return CodecResult(
            payload_nbytes=-(-result.payload_bits // 8), values=result.values
        )

    def error_bound(self, values: np.ndarray, **params: object) -> Optional[float]:
        # Stochastic rounding lands on one of two adjacent levels, so the
        # per-element error is below one level step = ||g|| / levels.
        bits = int(params.get("bits", 4))
        levels = (1 << bits) - 1
        norm = float(np.linalg.norm(_flat32(values)))
        return norm / levels


class SparsificationCodec(GradientCodec):
    """DGC-style top-k sparsification (single-shot, no residual state).

    The stateful accumulating variant lives in
    :class:`repro.baselines.sparsification.DeepGradientCompression`;
    the registry adapter is stateless per call so concurrent simulated
    streams do not share residuals.
    """

    name = "sparsification"

    def capabilities(self) -> FrozenSet[str]:
        # DGC's defining trick is residual accumulation of the dropped
        # coordinates — an error-feedback codec by construction.
        return frozenset({CAP_LOSSY, CAP_ERROR_FEEDBACK})

    def default_params(self) -> Dict[str, object]:
        return {"sparsity": 0.9}

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        from repro.baselines.sparsification import DeepGradientCompression

        sparsity = float(params.get("sparsity", 0.9))
        result = DeepGradientCompression(sparsity=sparsity).sparsify(
            _flat32(values)
        )
        return CodecResult(
            payload_nbytes=-(-result.payload_bits // 8), values=result.values
        )

    def error_bound(self, values: np.ndarray, **params: object) -> Optional[float]:
        # Every transmitted coordinate is exact; a dropped one errs by
        # its own magnitude, which the top-k threshold keeps at or below
        # the largest surviving magnitude — bounded by max |g|.
        arr = _flat32(values)
        return float(np.max(np.abs(arr))) if arr.size else 0.0


class SzCodec(GradientCodec):
    """The SZ-style error-bounded predictor codec (real bitstream)."""

    name = "sz_like"

    def default_params(self) -> Dict[str, object]:
        return {"bound": 2.0**-10}

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        from repro.baselines import sz_like

        bound = float(params.get("bound", 2.0**-10))
        arr = _flat32(values)
        blob = sz_like.compress(arr, bound)
        return CodecResult(
            payload_nbytes=len(blob), values=sz_like.decompress(blob, bound)
        )

    def error_bound(self, values: np.ndarray, **params: object) -> Optional[float]:
        return float(params.get("bound", 2.0**-10))


class SnappyCodec(GradientCodec):
    """Snappy-like lossless LZ over the raw float bytes (real bitstream)."""

    name = "snappy_like"
    lossless = True

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        from repro.baselines import snappy_like

        arr = _flat32(values)
        blob = snappy_like.compress(arr.tobytes())
        restored = np.frombuffer(snappy_like.decompress(blob), dtype=np.float32)
        return CodecResult(payload_nbytes=len(blob), values=restored.copy())


# -- the registry ------------------------------------------------------------


@dataclass(frozen=True)
class RegisteredCodec:
    """A codec plus the ToS byte its streams are tagged with."""

    codec: GradientCodec
    tos: int


_REGISTRY: Dict[str, RegisteredCodec] = {}


def register_codec(codec: GradientCodec, tos: int) -> GradientCodec:
    """Register ``codec`` under its name with a reserved ToS byte."""
    name = codec.name
    if not name or name == "?":
        raise ValueError("codecs must set a registry name")
    if name in _REGISTRY:
        raise ValueError(f"codec {name!r} is already registered")
    # Sorted so the collision error names the same claimant no matter
    # what order plugins imported in (rule R10: registry listing order).
    for other, entry in sorted(_REGISTRY.items()):
        if entry.tos == tos:
            raise ValueError(
                f"ToS {tos:#x} already claimed by codec {other!r}"
            )
    register_compressible_tos(tos)
    _REGISTRY[name] = RegisteredCodec(codec=codec, tos=tos)
    return codec


def available_codecs() -> Tuple[str, ...]:
    """Registered codec names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_codec(name: str) -> GradientCodec:
    """Look a codec up by name; unknown names list what is available."""
    try:
        return _REGISTRY[name].codec
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available codecs: "
            f"{', '.join(available_codecs())}"
        ) from None


def codec_tos(name: str) -> int:
    """The ToS byte tagging streams of the named codec."""
    get_codec(name)  # raise the descriptive KeyError for unknown names
    return _REGISTRY[name].tos


# -- stream profiles ---------------------------------------------------------


@dataclass(frozen=True)
class StreamProfile:
    """Per-stream property replacing the old ``compressible`` boolean.

    ``codec is None`` means a raw stream (ordinary traffic, ToS 0x00).
    Otherwise the stream is tagged with the codec's registered ToS (or
    an explicit override) and, when the endpoint NICs have engines, its
    payload travels compressed: the receiver observes the codec's
    reconstruction and the wire carries its measured size.
    """

    codec: Optional[str] = None
    tos: Optional[int] = None
    params: Mapping[str, object] = field(default_factory=dict)

    @property
    def resolved_tos(self) -> int:
        """The ToS byte this stream's packets carry."""
        if self.tos is not None:
            return self.tos
        if self.codec is None:
            return TOS_DEFAULT
        return codec_tos(self.codec)

    @property
    def compressing(self) -> bool:
        """True when this profile requests engine processing."""
        return self.codec is not None and self.resolved_tos != TOS_DEFAULT

    def resolve(self) -> GradientCodec:
        if self.codec is None:
            raise ValueError("raw streams have no codec to resolve")
        return get_codec(self.codec)

    @property
    def homomorphic(self) -> bool:
        """True when this stream's codec supports the codec algebra."""
        return self.codec is not None and self.resolve().homomorphic

    def compress(self, values: np.ndarray) -> CodecResult:
        return self.resolve().compress(values, **dict(self.params))

    def aggregate_compressed(
        self, parts: Sequence[CodecResult]
    ) -> CodecResult:
        """Apply the codec algebra with this stream's parameters."""
        return self.resolve().aggregate_compressed(
            parts, **dict(self.params)
        )

    def aggregate_payload_nbytes(
        self, raw_nbytes: int, payload_sizes: Sequence[int], fan_in: int
    ) -> int:
        """Size-domain codec algebra with this stream's parameters."""
        return self.resolve().aggregate_payload_nbytes(
            raw_nbytes, payload_sizes, fan_in, **dict(self.params)
        )

    def error_bound(self, values: np.ndarray) -> Optional[float]:
        return self.resolve().error_bound(values, **dict(self.params))

    def describe(self) -> str:
        if self.codec is None:
            return "raw"
        params = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.codec}({params})" if params else self.codec


#: The ordinary-traffic profile: no codec, ToS 0x00.
RAW_STREAM = StreamProfile()


def profile_for(name: str, **params: object) -> StreamProfile:
    """Build a profile for a registered codec (validates the name)."""
    return StreamProfile(codec=name, tos=codec_tos(name), params=params)


def inceptionn_profile(bound: ErrorBound = DEFAULT_BOUND) -> StreamProfile:
    """The paper's default stream: INCEPTIONN codec under ToS 0x28."""
    return profile_for("inceptionn", bound=bound)


register_codec(InceptionnCodec(), tos=TOS_COMPRESS)
register_codec(IdentityCodec(), tos=0x2C)
register_codec(TruncationCodec(), tos=0x30)
register_codec(QuantizationCodec(), tos=0x34)
register_codec(SparsificationCodec(), tos=0x38)
register_codec(SzCodec(), tos=0x3C)
register_codec(SnappyCodec(), tos=0x40)
