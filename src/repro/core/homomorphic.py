"""Homomorphic gradient codecs: aggregation in the compressed domain.

INCEPTIONN's endpoint loop decompresses every arriving stream, sums in
float32 and recompresses the total.  The follow-on literature removes
that round-trip with codecs whose payloads form a *monoid under
addition* — a switch (or the aggregating endpoint) can fold streams
together without ever touching the float domain:

* :class:`LosslessHomomorphicCodec` — lossless homomorphic compression
  (arXiv 2402.07529).  Every finite float32 is an integer multiple of
  ``2**-149``, so payloads carry an exact fixed-point image of the
  values and addition of payloads is exact *and associative*: a fat-tree
  reduction and a flat endpoint sum produce bit-identical totals no
  matter the tree shape.
* :class:`ThcCodec` — THC-style tensor homomorphic compression (arXiv
  2302.08545).  All streams share one symmetric quantization lattice;
  payloads carry lattice indices, aggregation sums indices in int64
  (exact), and the aggregated payload widens by ``ceil(log2(fan_in))``
  bits per value.

Both codecs keep their exact accumulator in ``CodecResult.state`` so
partial sums forwarded hop-by-hop through a reduction tree never lose
precision to the float32 rendering in ``CodecResult.values``.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .registry import (
    CAP_HOMOMORPHIC,
    CAP_LOSSY,
    CodecResult,
    GradientCodec,
    _flat32,
    register_codec,
)

#: Scale exponent of the exact fixed-point image: the smallest positive
#: float32 (subnormal) is exactly ``2**-149``, so every finite float32
#: equals ``k * 2**-149`` for some integer ``k``.
SCALE_BITS = 149
_SCALE = 1 << SCALE_BITS


def scaled_ints(values: np.ndarray) -> Tuple[int, ...]:
    """Exact integer image of float32 ``values`` at scale ``2**-149``.

    Python integers are unbounded, so sums of these images are exact and
    associative — the algebraic property homomorphic aggregation needs.
    """
    out: List[int] = []
    for v in _flat32(values).tolist():
        if not math.isfinite(v):
            raise ValueError(
                "homomorphic payloads require finite gradients; got "
                f"{v!r}"
            )
        num, den = v.as_integer_ratio()
        if _SCALE % den:
            raise ValueError(f"{v!r} is not on the float32 lattice")
        out.append(num * (_SCALE // den))
    return tuple(out)


def floats_from_scaled(totals: Sequence[int]) -> np.ndarray:
    """Render exact fixed-point totals as float32.

    ``int / int`` true division is correctly rounded to float64, so the
    rendering is a pure function of the exact total — any two reduction
    orders that reach the same total render identically.
    """
    return np.array([t / _SCALE for t in totals], dtype=np.float32)


class LosslessHomomorphicCodec(GradientCodec):
    """Lossless homomorphic compression (arXiv 2402.07529).

    Wire format (modelled, sizes only): a 4-byte header, a zero bitmap
    of ``ceil(n/8)`` bytes and 4 bytes per nonzero value, with a dense
    escape capping the payload at ``4 + 4n`` bytes.  The reconstruction
    is bit-exact, and :meth:`aggregate_compressed` sums the exact
    fixed-point images carried in ``CodecResult.state``.
    """

    name = "lossless_hc"
    lossless = True

    def capabilities(self) -> FrozenSet[str]:
        return frozenset({CAP_HOMOMORPHIC})

    @staticmethod
    def _payload_nbytes(values: np.ndarray) -> int:
        n = values.size
        sparse = 4 + -(-n // 8) + 4 * int(np.count_nonzero(values))
        return min(sparse, 4 + 4 * n)

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        arr = _flat32(values)
        return CodecResult(
            payload_nbytes=self._payload_nbytes(arr),
            values=arr.copy(),
            state=scaled_ints(arr),
        )

    def aggregate_compressed(
        self, parts: Sequence[CodecResult], **params: object
    ) -> CodecResult:
        if not parts:
            raise ValueError("aggregation needs at least one part")
        size = parts[0].values.size
        columns: List[Tuple[int, ...]] = []
        for part in parts:
            if part.values.size != size:
                raise ValueError(
                    "aggregation parts must agree on element count: "
                    f"{part.values.size} != {size}"
                )
            state = part.state
            if isinstance(state, tuple):
                columns.append(state)
            else:
                # A part without its exact accumulator (built outside
                # this codec) re-enters the lattice from its values —
                # exact, because the rendering is lossless.
                columns.append(scaled_ints(part.values))
        totals = tuple(sum(col) for col in zip(*columns)) if size else ()
        rendered = floats_from_scaled(totals)
        return CodecResult(
            payload_nbytes=self._payload_nbytes(rendered),
            values=rendered,
            fan_in=sum(part.fan_in for part in parts),
            state=totals,
        )

    def aggregate_payload_nbytes(
        self,
        raw_nbytes: int,
        payload_sizes: Sequence[int],
        fan_in: int,
        **params: object,
    ) -> int:
        """Size-domain image of aggregation for size-only streams.

        Without values the zero bitmap cannot help, so the model takes
        the dense escape: header plus one float32 per element.
        """
        if not payload_sizes:
            raise ValueError("aggregation needs at least one part")
        return 4 + 4 * -(-raw_nbytes // 4)


class ThcCodec(GradientCodec):
    """THC-style tensor homomorphic compression (arXiv 2302.08545).

    Every stream quantizes onto one shared symmetric lattice of
    ``2**bits`` levels spanning ``[-limit, +limit]``; payloads carry
    lattice indices.  Aggregation sums indices exactly in int64 and
    widens the per-value index field by ``ceil(log2(fan_in))`` bits, so
    switch-side and endpoint-side reductions of the same parts are
    bit-identical by construction.
    """

    name = "thc"

    #: Default clip limit: gradients on the paper's shell model sit well
    #: inside (-2**-5, 2**-5).
    DEFAULT_BITS = 8
    DEFAULT_LIMIT = 2.0**-5

    def capabilities(self) -> FrozenSet[str]:
        return frozenset({CAP_HOMOMORPHIC, CAP_LOSSY})

    def default_params(self) -> Dict[str, object]:
        return {"bits": self.DEFAULT_BITS, "limit": self.DEFAULT_LIMIT}

    @staticmethod
    def _lattice(params: Mapping[str, object]) -> Tuple[int, float, float]:
        bits = int(params.get("bits", ThcCodec.DEFAULT_BITS))
        limit = float(params.get("limit", ThcCodec.DEFAULT_LIMIT))
        if bits < 1 or bits > 16:
            raise ValueError("thc bits must be in [1, 16]")
        if limit <= 0.0:
            raise ValueError("thc limit must be positive")
        step = 2.0 * limit / ((1 << bits) - 1)
        return bits, limit, step

    @staticmethod
    def _payload_nbytes(n: int, index_bits: int) -> int:
        return 8 + -(-(n * index_bits) // 8)

    @staticmethod
    def _render(indices: np.ndarray, fan_in: int, limit: float, step: float) -> np.ndarray:
        # Lattice arithmetic is exact in double precision (int64 * float
        # stays float64), then rounds once to the gradient dtype.
        return (indices * step - fan_in * limit).astype(np.float32)

    def _indices(
        self, part: CodecResult, limit: float, step: float
    ) -> np.ndarray:
        state = part.state
        if isinstance(state, np.ndarray) and state.dtype == np.int64:
            return state
        # Recover indices from the rendered lattice points: the float32
        # rendering error is orders of magnitude below step/2.
        recovered = (part.values + part.fan_in * limit) / step
        return np.rint(recovered).astype(np.int64)

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        bits, limit, step = self._lattice(params)
        arr = _flat32(values)
        clipped = np.clip(arr, -limit, limit)
        indices = np.rint((clipped + limit) / step).astype(np.int64)
        return CodecResult(
            payload_nbytes=self._payload_nbytes(arr.size, bits),
            values=self._render(indices, 1, limit, step),
            state=indices,
        )

    def error_bound(
        self, values: np.ndarray, **params: object
    ) -> Optional[float]:
        _bits, limit, step = self._lattice(params)
        arr = _flat32(values)
        excess = 0.0
        if arr.size:
            excess = max(0.0, float(np.max(np.abs(arr))) - limit)
        # Half a lattice step of quantization error, plus whatever the
        # clip removed, plus a few ulps for the float32 rendering.
        return step / 2.0 + excess + step * 2.0**-20

    def aggregate_compressed(
        self, parts: Sequence[CodecResult], **params: object
    ) -> CodecResult:
        if not parts:
            raise ValueError("aggregation needs at least one part")
        bits, limit, step = self._lattice(params)
        size = parts[0].values.size
        total = np.zeros(size, dtype=np.int64)
        fan_in = 0
        for part in parts:
            if part.values.size != size:
                raise ValueError(
                    "aggregation parts must agree on element count: "
                    f"{part.values.size} != {size}"
                )
            total = total + self._indices(part, limit, step)
            fan_in += part.fan_in
        index_bits = bits + max(0, (fan_in - 1).bit_length())
        return CodecResult(
            payload_nbytes=self._payload_nbytes(size, index_bits),
            values=self._render(total, fan_in, limit, step),
            fan_in=fan_in,
            state=total,
        )

    def aggregate_payload_nbytes(
        self,
        raw_nbytes: int,
        payload_sizes: Sequence[int],
        fan_in: int,
        **params: object,
    ) -> int:
        if not payload_sizes:
            raise ValueError("aggregation needs at least one part")
        bits, _limit, _step = self._lattice(params)
        index_bits = bits + max(0, (fan_in - 1).bit_length())
        return self._payload_nbytes(-(-raw_nbytes // 4), index_bits)


register_codec(LosslessHomomorphicCodec(), tos=0x44)
register_codec(ThcCodec(), tos=0x48)
