"""INCEPTIONN's primary contribution: the lossy FP32 gradient codec.

Public surface:

- :class:`ErrorBound` and the paper's :data:`PAPER_BOUNDS`.
- :func:`compress` / :func:`decompress` — vectorized codec.
- :class:`CompressedGradients` — unpacked + wire representations.
- :mod:`repro.core.reference` — the bit-exact scalar specification.
- Statistics helpers reproducing Table III / Fig 14 metrics.
- :mod:`repro.core.registry` — the pluggable codec registry and
  :class:`StreamProfile`, the per-stream codec/ToS property threaded
  through the transport in place of a ``compressible`` boolean.
"""

from .bounds import DEFAULT_BOUND, ErrorBound, PAPER_BOUNDS
from .codec import classify, compress, compressed_nbits, decompress, roundtrip
from .container import CompressedGradients, GROUP_SIZE
from .error_feedback import ErrorFeedbackCompressor, feedback_hook
from . import gradient_file
from .registry import (
    CAP_ERROR_FEEDBACK,
    CAP_HOMOMORPHIC,
    CAP_LOSSY,
    RAW_STREAM,
    CodecResult,
    GradientCodec,
    StreamProfile,
    available_codecs,
    codec_tos,
    get_codec,
    inceptionn_profile,
    profile_for,
    register_codec,
)

# Importing these modules registers the homomorphic families (lossless
# homomorphic compression + THC) and the FFT sparsifier.
from .fftsparse import FftSparsificationCodec
from .homomorphic import (
    LosslessHomomorphicCodec,
    ThcCodec,
    floats_from_scaled,
    scaled_ints,
)
from .stats import (
    BitwidthDistribution,
    average_compression_ratio,
    bitwidth_distribution,
    compression_ratio,
    max_abs_error,
    value_histogram,
)
from .tags import (
    ENCODED_BITS,
    PAYLOAD_BITS,
    TAG_BIT8,
    TAG_BIT16,
    TAG_NAMES,
    TAG_NO_COMPRESS,
    TAG_ZERO,
)

__all__ = [
    "CAP_ERROR_FEEDBACK",
    "CAP_HOMOMORPHIC",
    "CAP_LOSSY",
    "DEFAULT_BOUND",
    "ErrorBound",
    "FftSparsificationCodec",
    "LosslessHomomorphicCodec",
    "PAPER_BOUNDS",
    "RAW_STREAM",
    "CodecResult",
    "ThcCodec",
    "floats_from_scaled",
    "scaled_ints",
    "GradientCodec",
    "StreamProfile",
    "available_codecs",
    "codec_tos",
    "get_codec",
    "inceptionn_profile",
    "profile_for",
    "register_codec",
    "classify",
    "compress",
    "compressed_nbits",
    "decompress",
    "roundtrip",
    "CompressedGradients",
    "GROUP_SIZE",
    "ErrorFeedbackCompressor",
    "feedback_hook",
    "gradient_file",
    "BitwidthDistribution",
    "average_compression_ratio",
    "bitwidth_distribution",
    "compression_ratio",
    "max_abs_error",
    "value_histogram",
    "ENCODED_BITS",
    "PAYLOAD_BITS",
    "TAG_BIT8",
    "TAG_BIT16",
    "TAG_NAMES",
    "TAG_NO_COMPRESS",
    "TAG_ZERO",
]
