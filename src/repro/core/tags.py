"""Compression-class tags shared by the software codec and hardware model.

The 2-bit tag values follow the paper's Algorithm 2: ``NO_COMPRESS`` is
explicitly given as ``2'b11``; the remaining assignments are ordered by
payload size, which also makes the payload bit-count a simple lookup.
"""

from __future__ import annotations

import numpy as np

#: ``|f| < 2^-b`` — value dropped entirely, decodes to 0.0.
TAG_ZERO = 0b00
#: sign + 7-bit fixed-point magnitude at scale ``2^-b``.
TAG_BIT8 = 0b01
#: sign + 15-bit fixed-point magnitude at scale ``2^-15``.
TAG_BIT16 = 0b10
#: ``|f| >= 1.0`` (incl. inf/NaN) — raw IEEE-754 bits pass through.
TAG_NO_COMPRESS = 0b11

#: Payload size in bits for each tag value (indexed by tag).
PAYLOAD_BITS = (0, 8, 16, 32)

#: Payload + tag size in bits for each tag value (Table III's 2/10/18/34).
ENCODED_BITS = tuple(2 + bits for bits in PAYLOAD_BITS)

#: Numpy lookup table for vectorized payload sizing.
PAYLOAD_BITS_LUT = np.array(PAYLOAD_BITS, dtype=np.uint8)

TAG_NAMES = {
    TAG_ZERO: "ZERO",
    TAG_BIT8: "BIT8",
    TAG_BIT16: "BIT16",
    TAG_NO_COMPRESS: "NO_COMPRESS",
}


def payload_bits(tag: int) -> int:
    """Payload size in bits for a single 2-bit tag."""
    return PAYLOAD_BITS[tag & 0b11]
