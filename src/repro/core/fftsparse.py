"""SuperNeurons-style FFT sparsification codec (arXiv 1811.08596).

Gradients are transformed with a real FFT, only the largest-magnitude
``fraction`` of spectral coefficients survive, and the receiver inverse
transforms the pruned spectrum.  The codec is endpoint-only — pruned
spectra are *not* closed under addition of independently chosen support
sets — which makes it the registry's control case: a new codec family
with no codec algebra still composes with every transport path, it just
cannot ride the switch aggregation site.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

import numpy as np

from .registry import (
    CAP_ERROR_FEEDBACK,
    CAP_LOSSY,
    CodecResult,
    GradientCodec,
    _flat32,
    register_codec,
)

#: Default fraction of rfft coefficients kept.
DEFAULT_FRACTION = 0.25


class FftSparsificationCodec(GradientCodec):
    """Keep the top-``fraction`` rfft coefficients by magnitude.

    Wire format (modelled, sizes only): a 4-byte header, a kept-bin
    bitmap of ``ceil(m/8)`` bytes over the ``m`` rfft bins, and one
    complex64 (8 bytes) per kept coefficient.  Dropped coefficients are
    residual energy the error-feedback wrapper can re-inject, hence the
    ``error-feedback`` capability.
    """

    name = "fft_sparse"

    def capabilities(self) -> FrozenSet[str]:
        return frozenset({CAP_LOSSY, CAP_ERROR_FEEDBACK})

    def default_params(self) -> Dict[str, object]:
        return {"fraction": DEFAULT_FRACTION}

    @staticmethod
    def _fraction(params: Dict[str, object]) -> float:
        fraction = float(params.get("fraction", DEFAULT_FRACTION))
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fft_sparse fraction must be in (0, 1]")
        return fraction

    def compress(self, values: np.ndarray, **params: object) -> CodecResult:
        fraction = self._fraction(params)
        arr = _flat32(values)
        if arr.size == 0:
            return CodecResult(payload_nbytes=4, values=arr.copy())
        spectrum = np.fft.rfft(arr)
        bins = spectrum.size
        keep = max(1, int(np.ceil(bins * fraction)))
        # Stable argsort on negated magnitudes: deterministic support
        # set, ties broken by bin index.
        order = np.argsort(-np.abs(spectrum), kind="stable")
        pruned = np.zeros(bins, dtype=np.complex128)
        kept = order[:keep]
        pruned[kept] = spectrum[kept]
        restored = np.fft.irfft(pruned, n=arr.size).astype(np.float32)
        return CodecResult(
            payload_nbytes=4 + -(-bins // 8) + 8 * keep,
            values=restored,
        )

    def error_bound(
        self, values: np.ndarray, **params: object
    ) -> Optional[float]:
        fraction = self._fraction(params)
        arr = _flat32(values)
        if arr.size == 0:
            return 0.0
        spectrum = np.fft.rfft(arr)
        bins = spectrum.size
        keep = max(1, int(np.ceil(bins * fraction)))
        magnitudes = np.abs(spectrum)
        order = np.argsort(-magnitudes, kind="stable")
        dropped = magnitudes[order[keep:]]
        # Each dropped bin contributes at most 2|C_k|/n to any sample of
        # the inverse transform; the float32 cast adds a few ulps.
        max_abs = float(np.max(np.abs(arr)))
        return (
            2.0 / arr.size * float(np.sum(dropped))
            + max_abs * 2.0**-22
            + 2.0**-126
        )


register_codec(FftSparsificationCodec(), tos=0x4C)
