"""Bit-exact scalar reference of the INCEPTIONN codec (paper Algorithm 2/3).

This module is the specification: it manipulates individual IEEE-754
fields exactly the way the hardware Compression/Decompression Blocks do
(extract sign/exponent/mantissa, compare the exponent against the error
bound's thresholds, prepend the implicit leading one, shift right by
``127 - e`` and truncate).  The vectorized codec in :mod:`repro.core.codec`
and the burst engines in :mod:`repro.hardware` are both validated against
this implementation.
"""

from __future__ import annotations

import struct
from typing import Tuple

from .bounds import ErrorBound, FLOAT32_EXP_BIAS
from .tags import TAG_BIT8, TAG_BIT16, TAG_NO_COMPRESS, TAG_ZERO

#: Number of explicit mantissa bits in an IEEE-754 single.
_MANTISSA_BITS = 23
#: The implicit leading one, in mantissa-aligned position.
_IMPLICIT_ONE = 1 << _MANTISSA_BITS


def float_to_bits(value: float) -> int:
    """Reinterpret a Python float as its 32-bit IEEE-754 pattern."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(bits: int) -> float:
    """Reinterpret a 32-bit pattern as an IEEE-754 single."""
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def compress_value(value: float, bound: ErrorBound) -> Tuple[int, int]:
    """Compress one float32, returning ``(tag, payload)``.

    The payload is right-aligned in an int holding 0, 8, 16 or 32
    significant bits as dictated by the tag.

    This mirrors Algorithm 2: values with biased exponent >= 127 pass
    through; values below the error bound vanish; the rest normalize the
    exponent to 127 (conceptually multiplying by ``2^(127-e)``), which in
    fixed point is prepending the implicit one to the mantissa and
    shifting right by ``127 - e``, then truncating LSBs.
    """
    bits = float_to_bits(value)
    sign = bits >> 31
    exponent = (bits >> 23) & 0xFF
    mantissa = bits & 0x7FFFFF

    if exponent >= FLOAT32_EXP_BIAS:
        return TAG_NO_COMPRESS, bits
    if exponent < bound.zero_exponent_threshold:
        return TAG_ZERO, 0

    significand = _IMPLICIT_ONE | mantissa  # 24-bit "1.m"
    if exponent < bound.bit8_exponent_threshold:
        # q = floor(|f| * 2^b):  |f| = significand * 2^(e - 127 - 23)
        shift = (FLOAT32_EXP_BIAS + _MANTISSA_BITS) - bound.exponent - exponent
        q = significand >> shift
        return TAG_BIT8, (sign << 7) | q

    # q = floor(|f| * 2^15)
    shift = (FLOAT32_EXP_BIAS + _MANTISSA_BITS) - 15 - exponent
    q = significand >> shift
    return TAG_BIT16, (sign << 15) | q


def decompress_value(tag: int, payload: int, bound: ErrorBound) -> float:
    """Decompress one ``(tag, payload)`` pair back to a float32 value.

    Mirrors Algorithm 3.  Reconstruction multiplies the fixed-point
    magnitude back by the class scale; in hardware this is a priority
    encoder (find the leading one) recomputing the exponent.
    """
    tag &= 0b11
    if tag == TAG_ZERO:
        return 0.0
    if tag == TAG_NO_COMPRESS:
        return bits_to_float(payload)
    if tag == TAG_BIT8:
        sign = -1.0 if payload & 0x80 else 1.0
        return sign * (payload & 0x7F) * bound.bit8_scale
    sign = -1.0 if payload & 0x8000 else 1.0
    return sign * (payload & 0x7FFF) * 2.0**-15


def roundtrip_value(value: float, bound: ErrorBound) -> float:
    """Compress then decompress a single value."""
    tag, payload = compress_value(value, bound)
    return decompress_value(tag, payload, bound)
