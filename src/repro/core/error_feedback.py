"""Error-feedback wrapper around the INCEPTIONN codec (extension).

The paper notes its lossy compression costs "one or two extra epochs" at
relaxed bounds.  A standard remedy from the gradient-compression
literature (1-bit SGD's trick, later formalized as EF-SGD) is to carry
the compression residual into the next iteration so no gradient mass is
ever lost, only delayed.  This module implements that extension around
the paper's codec: it composes cleanly because the codec is stateless —
the feedback state lives at the *sender*, exactly where a NIC-offloaded
design would keep it (in host memory, added before DMA).
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional

import numpy as np

from .bounds import ErrorBound
from .codec import compress, decompress
from .container import CompressedGradients


class ErrorFeedbackCompressor:
    """Compress gradients while accumulating the residual locally."""

    def __init__(self, bound: ErrorBound) -> None:
        self.bound = bound
        self._residual: Optional[np.ndarray] = None

    def compress(self, gradient: np.ndarray) -> "tuple[CompressedGradients, np.ndarray]":
        """Compress ``gradient + residual``; returns (wire, reconstruction).

        The reconstruction is what the receivers will see; the new
        residual is what they did not.

        If the gradient length changes between calls (a different model,
        or a re-partitioned shard) the held-back residual is no longer
        addressable — it is dropped *explicitly*, with a
        ``RuntimeWarning``, rather than silently ignored.
        """
        grad = np.ascontiguousarray(gradient, dtype=np.float32).reshape(-1)
        if self._residual is not None and self._residual.shape != grad.shape:
            warnings.warn(
                "gradient length changed from "
                f"{self._residual.shape[0]} to {grad.shape[0]}; "
                "dropping the accumulated error-feedback residual "
                f"(norm {self.residual_norm:.3g})",
                RuntimeWarning,
                stacklevel=2,
            )
            self._residual = None
        if self._residual is not None:
            grad = (grad + self._residual).astype(np.float32)
        # Not compressed-domain aggregation: the residual add happens
        # on the *input* gradient before its (single) encode.
        wire = compress(grad, self.bound)  # repro-lint: disable=R12 error feedback
        reconstruction = decompress(wire)
        self._residual = (grad - reconstruction).astype(np.float32)
        return wire, reconstruction

    @property
    def residual_norm(self) -> float:
        """L2 norm of the held-back gradient mass."""
        if self._residual is None:
            return 0.0
        return float(np.linalg.norm(self._residual))

    def reset(self) -> None:
        self._residual = None


def feedback_hook(bound: ErrorBound) -> Callable[[int, np.ndarray], np.ndarray]:
    """A ``gradient_hook`` for training loops: lossy codec + feedback."""
    compressor = ErrorFeedbackCompressor(bound)

    def hook(iteration: int, grad: np.ndarray) -> np.ndarray:
        _, reconstruction = compressor.compress(grad)
        return reconstruction.reshape(grad.shape)

    return hook
