"""On-disk container for compressed gradient vectors (``.incgrad``).

Checkpointing and trace-sharing need a durable form of the wire format.
The layout is a fixed little-endian header followed by the codec's
bitstream:

======  ====  =====================================
offset  size  field
======  ====  =====================================
0       8     magic ``b"INCGRAD1"``
8       1     error-bound exponent ``b`` (2^-b)
9       3     reserved (zero)
12      8     number of float32 values (uint64)
20      8     bitstream length in bytes (uint64)
28      --    bitstream (see ``CompressedGradients.to_bytes``)
======  ====  =====================================
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from .bounds import ErrorBound
from .codec import compress, decompress
from .container import CompressedGradients

MAGIC = b"INCGRAD1"
_HEADER = struct.Struct("<8sB3xQQ")


class GradientFileError(ValueError):
    """Raised for malformed ``.incgrad`` data."""


def dump_bytes(compressed: CompressedGradients) -> bytes:
    """Serialize a compressed vector to the file format."""
    stream = compressed.to_bytes()
    header = _HEADER.pack(
        MAGIC, compressed.bound.exponent, len(compressed), len(stream)
    )
    return header + stream


def load_bytes(blob: bytes) -> CompressedGradients:
    """Parse file-format bytes back into a compressed vector."""
    if len(blob) < _HEADER.size:
        raise GradientFileError("data shorter than the header")
    magic, exponent, num_values, stream_len = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise GradientFileError(f"bad magic {magic!r}")
    try:
        bound = ErrorBound(exponent)
    except ValueError as exc:
        raise GradientFileError(str(exc)) from exc
    stream = blob[_HEADER.size :]
    if len(stream) != stream_len:
        raise GradientFileError(
            f"stream length {len(stream)} != header's {stream_len}"
        )
    try:
        return CompressedGradients.from_bytes(stream, num_values, bound)
    except EOFError as exc:
        raise GradientFileError("truncated bitstream") from exc


def save(path: Union[str, Path], values: np.ndarray, bound: ErrorBound) -> int:
    """Compress ``values`` and write them to ``path``; returns bytes written."""
    blob = dump_bytes(compress(np.asarray(values, dtype=np.float32).reshape(-1), bound))
    Path(path).write_bytes(blob)
    return len(blob)


def load(path: Union[str, Path]) -> np.ndarray:
    """Read a ``.incgrad`` file and return the reconstructed float32 vector."""
    return decompress(load_bytes(Path(path).read_bytes()))
