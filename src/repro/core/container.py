"""In-memory and wire representations of compressed gradient vectors."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitstream import BitReader, BitWriter
from .bounds import ErrorBound
from .tags import PAYLOAD_BITS, PAYLOAD_BITS_LUT

#: Floats carried per hardware burst; also the wire-format group size.
GROUP_SIZE = 8
#: Bits of tag metadata per group (8 tags x 2 bits).
GROUP_TAG_BITS = 2 * GROUP_SIZE


@dataclass
class CompressedGradients:
    """A compressed gradient vector.

    The canonical in-memory form keeps the per-value 2-bit ``tags`` and
    right-aligned ``payloads`` unpacked (one uint32 lane per value) so
    that decompression and statistics stay vectorized.  ``to_bytes``
    produces the exact wire format the NIC hardware emits: per group of
    8 values, a 16-bit tag vector followed by the concatenated payloads.

    Attributes
    ----------
    tags:
        ``uint8`` array of 2-bit tag values, one per input float.
    payloads:
        ``uint32`` array of right-aligned payloads (0/8/16/32 significant
        bits according to the tag).
    bound:
        The error bound the vector was compressed under; required to
        decode the BIT8 class scale.
    """

    tags: np.ndarray
    payloads: np.ndarray
    bound: ErrorBound

    def __post_init__(self) -> None:
        if self.tags.shape != self.payloads.shape:
            raise ValueError("tags and payloads must have identical shapes")
        if self.tags.ndim != 1:
            raise ValueError("compressed vectors are one-dimensional")

    def __len__(self) -> int:
        return int(self.tags.shape[0])

    @property
    def num_values(self) -> int:
        """Number of float32 values represented."""
        return len(self)

    @property
    def payload_bits(self) -> int:
        """Total payload bits across all values (excludes tags)."""
        return int(PAYLOAD_BITS_LUT[self.tags].astype(np.int64).sum())

    @property
    def compressed_bits(self) -> int:
        """Exact wire-format size in bits (tags + payloads)."""
        num_groups = -(-len(self) // GROUP_SIZE)
        return num_groups * GROUP_TAG_BITS + self.payload_bits

    @property
    def compressed_nbytes(self) -> int:
        """Wire-format size rounded up to whole bytes."""
        return -(-self.compressed_bits // 8)

    @property
    def original_nbytes(self) -> int:
        """Size of the uncompressed float32 vector."""
        return len(self) * 4

    @property
    def compression_ratio(self) -> float:
        """Original bits over compressed bits (paper Fig 14 metric)."""
        if len(self) == 0:
            return 1.0
        return (len(self) * 32) / self.compressed_bits

    def to_bytes(self) -> bytes:
        """Serialize to the hardware wire format.

        Per 8-value group: a 16-bit tag vector with value *i*'s tag at
        bits ``[2i+1 : 2i]``, then the payloads of values 0..7
        back-to-back, LSB first.  A final partial group is padded with
        ZERO tags, which carry no payload; the decoder relies on the
        caller knowing ``num_values``.
        """
        writer = BitWriter()
        tags = self.tags
        payloads = self.payloads
        n = len(self)
        for start in range(0, n, GROUP_SIZE):
            group_tags = tags[start : start + GROUP_SIZE]
            tag_word = 0
            for lane, tag in enumerate(group_tags):
                tag_word |= (int(tag) & 0b11) << (2 * lane)
            writer.write(tag_word, GROUP_TAG_BITS)
            for lane, tag in enumerate(group_tags):
                nbits = PAYLOAD_BITS[int(tag)]
                if nbits:
                    writer.write(int(payloads[start + lane]), nbits)
        return writer.getvalue()

    @classmethod
    def from_bytes(
        cls, data: bytes, num_values: int, bound: ErrorBound
    ) -> "CompressedGradients":
        """Parse the wire format back into the unpacked form."""
        reader = BitReader(data)
        tags = np.empty(num_values, dtype=np.uint8)
        payloads = np.zeros(num_values, dtype=np.uint32)
        for start in range(0, num_values, GROUP_SIZE):
            tag_word = reader.read(GROUP_TAG_BITS)
            lanes = min(GROUP_SIZE, num_values - start)
            group_tags = [(tag_word >> (2 * lane)) & 0b11 for lane in range(lanes)]
            for lane, tag in enumerate(group_tags):
                tags[start + lane] = tag
                nbits = PAYLOAD_BITS[tag]
                if nbits:
                    payloads[start + lane] = reader.read(nbits)
        return cls(tags=tags, payloads=payloads, bound=bound)
