"""In-memory and wire representations of compressed gradient vectors.

The wire format is byte-aligned throughout — payload widths are 0, 8,
16 or 32 bits and the per-group tag vector is 16 bits — so the bulk
serializers below work on whole bytes with numpy scatter/gather instead
of the bit-granular :mod:`repro.core.bitstream` loops.  They are pinned
bit-exact against the scalar BitWriter/BitReader reference in
``tests/core/test_container.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .bounds import ErrorBound
from .tags import PAYLOAD_BITS_LUT

#: Floats carried per hardware burst; also the wire-format group size.
GROUP_SIZE = 8
#: Bits of tag metadata per group (8 tags x 2 bits).
GROUP_TAG_BITS = 2 * GROUP_SIZE
#: Per-tag payload width in whole bytes (the wire format is byte-aligned).
PAYLOAD_NBYTES_LUT = PAYLOAD_BITS_LUT.astype(np.int64) // 8

#: Lazily built 65536-entry table: group record size in bytes (tag vector
#: plus all eight lane payloads) indexed by the 16-bit tag word.
_GROUP_RECORD_NBYTES_LUT: Optional[np.ndarray] = None


class TruncatedRecordError(EOFError):
    """A stream ends inside a group record; ``group`` is its index."""

    def __init__(self, message: str, group: int) -> None:
        super().__init__(message)
        self.group = group


def _group_record_nbytes_lut() -> np.ndarray:
    """Record size in bytes for every possible 16-bit tag word."""
    global _GROUP_RECORD_NBYTES_LUT
    if _GROUP_RECORD_NBYTES_LUT is None:
        words = np.arange(1 << GROUP_TAG_BITS, dtype=np.int64)
        total = np.full(words.shape, 2, dtype=np.int64)
        for lane in range(GROUP_SIZE):
            total += PAYLOAD_NBYTES_LUT[(words >> (2 * lane)) & 0b11]
        _GROUP_RECORD_NBYTES_LUT = total
    return _GROUP_RECORD_NBYTES_LUT


def pack_group_records(tags: np.ndarray, payloads: np.ndarray) -> bytes:
    """Serialize tag/payload lanes to the group-record wire format.

    Bulk equivalent of the per-lane BitWriter loop: per 8-value group, a
    little-endian 16-bit tag vector followed by each lane's payload
    bytes back-to-back.  A final partial group is padded with ZERO tags,
    which carry no payload.
    """
    n = int(tags.shape[0])
    if n == 0:
        return b""
    num_groups = -(-n // GROUP_SIZE)
    lane_tags = np.zeros(num_groups * GROUP_SIZE, dtype=np.uint8)
    lane_tags[:n] = tags
    lane_payloads = np.zeros(num_groups * GROUP_SIZE, dtype=np.uint32)
    lane_payloads[:n] = payloads
    grouped = lane_tags.reshape(num_groups, GROUP_SIZE).astype(np.uint32)
    shifts = 2 * np.arange(GROUP_SIZE, dtype=np.uint32)
    tag_words = np.bitwise_or.reduce(grouped << shifts, axis=1)
    lane_sizes = PAYLOAD_NBYTES_LUT[lane_tags].reshape(num_groups, GROUP_SIZE)
    record_sizes = 2 + lane_sizes.sum(axis=1)
    record_starts = np.zeros(num_groups, dtype=np.int64)
    np.cumsum(record_sizes[:-1], out=record_starts[1:])
    total = int(record_starts[-1] + record_sizes[-1])
    out = np.zeros(total, dtype=np.uint8)
    out[record_starts] = tag_words & 0xFF
    out[record_starts + 1] = tag_words >> 8
    lane_starts = (
        record_starts[:, None] + 2 + np.cumsum(lane_sizes, axis=1) - lane_sizes
    ).ravel()
    flat_sizes = lane_sizes.ravel()
    for byte_index in range(4):
        mask = flat_sizes > byte_index
        out[lane_starts[mask] + byte_index] = (
            lane_payloads[mask] >> np.uint32(8 * byte_index)
        ) & np.uint32(0xFF)
    return out.tobytes()


def scan_group_offsets(
    data: bytes, max_groups: Optional[int] = None
) -> np.ndarray:
    """Locate group-record boundaries in a serialized stream.

    Returns an int64 array of ``num_groups + 1`` byte offsets: entry *g*
    is where group *g*'s record starts and the final entry is the total
    bytes consumed.  Parsing stops when fewer than two bytes remain (a
    tag vector can never be padding) or after ``max_groups`` records.
    Raises :class:`EOFError` when a record within range overruns the
    buffer, mirroring the BitReader's truncation behaviour.

    Record sizes form a linked list over byte positions; the list is
    traversed with pointer doubling (O(size log size) vectorized work)
    instead of a per-group Python loop.
    """
    buf = np.frombuffer(data, dtype=np.uint8)
    size = int(buf.shape[0])
    if max_groups is not None and max_groups == 0:
        return np.zeros(1, dtype=np.int64)
    # jump[p] = start of the next record if one starts at byte p.
    # Positions size-1 and size end parsing cleanly; size+1 flags a
    # record that overruns the buffer.  Terminals absorb (self-map).
    jump = np.arange(size + 2, dtype=np.int64)
    if size >= 2:
        tag_words = buf[: size - 1].astype(np.int64) | (
            buf[1:].astype(np.int64) << 8
        )
        nxt = (
            np.arange(size - 1, dtype=np.int64)
            + _group_record_nbytes_lut()[tag_words]
        )
        jump[: size - 1] = np.minimum(nxt, size + 1)
    capacity = size // 2 + 2
    if max_groups is not None:
        capacity = min(capacity, max_groups + 2)
    orbit = np.zeros(capacity, dtype=np.int64)
    filled = 1
    while filled < capacity and orbit[filled - 1] < size - 1:
        take = min(filled, capacity - filled)
        orbit[filled : filled + take] = jump[orbit[:take]]
        filled += take
        jump = jump[jump]
    stop = int(np.searchsorted(orbit[:filled], size - 1, side="left"))
    if max_groups is not None:
        stop = min(stop, max_groups)
    if stop < filled and int(orbit[stop]) == size + 1:
        raise TruncatedRecordError(
            f"bitstream exhausted: group record {stop - 1} at byte "
            f"{int(orbit[stop - 1])} overruns the {size}-byte buffer",
            group=stop - 1,
        )
    return orbit[: stop + 1].copy()


def unpack_group_records(
    data: bytes, offsets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode tag/payload lanes from records located by ``offsets``.

    Bulk equivalent of the per-lane BitReader loop.  Returns uint8 tags
    and right-aligned uint32 payloads, one lane per value including the
    final group's padding lanes (``8 * (len(offsets) - 1)`` entries).
    """
    num_groups = int(offsets.shape[0]) - 1
    if num_groups == 0:
        return (
            np.zeros(0, dtype=np.uint8),
            np.zeros(0, dtype=np.uint32),
        )
    buf = np.frombuffer(data, dtype=np.uint8)
    starts = offsets[:-1]
    tag_words = buf[starts].astype(np.uint32) | (
        buf[starts + 1].astype(np.uint32) << np.uint32(8)
    )
    shifts = 2 * np.arange(GROUP_SIZE, dtype=np.uint32)
    tags = ((tag_words[:, None] >> shifts) & np.uint32(0b11)).astype(np.uint8)
    lane_sizes = PAYLOAD_NBYTES_LUT[tags]
    lane_starts = (
        starts[:, None] + 2 + np.cumsum(lane_sizes, axis=1) - lane_sizes
    ).ravel()
    flat_sizes = lane_sizes.ravel()
    payloads = np.zeros(num_groups * GROUP_SIZE, dtype=np.uint32)
    for byte_index in range(4):
        mask = flat_sizes > byte_index
        payloads[mask] |= buf[lane_starts[mask] + byte_index].astype(
            np.uint32
        ) << np.uint32(8 * byte_index)
    return tags.ravel(), payloads


@dataclass
class CompressedGradients:
    """A compressed gradient vector.

    The canonical in-memory form keeps the per-value 2-bit ``tags`` and
    right-aligned ``payloads`` unpacked (one uint32 lane per value) so
    that decompression and statistics stay vectorized.  ``to_bytes``
    produces the exact wire format the NIC hardware emits: per group of
    8 values, a 16-bit tag vector followed by the concatenated payloads.

    Attributes
    ----------
    tags:
        ``uint8`` array of 2-bit tag values, one per input float.
    payloads:
        ``uint32`` array of right-aligned payloads (0/8/16/32 significant
        bits according to the tag).
    bound:
        The error bound the vector was compressed under; required to
        decode the BIT8 class scale.
    """

    tags: np.ndarray
    payloads: np.ndarray
    bound: ErrorBound

    def __post_init__(self) -> None:
        if self.tags.shape != self.payloads.shape:
            raise ValueError("tags and payloads must have identical shapes")
        if self.tags.ndim != 1:
            raise ValueError("compressed vectors are one-dimensional")

    def __len__(self) -> int:
        return int(self.tags.shape[0])

    @property
    def num_values(self) -> int:
        """Number of float32 values represented."""
        return len(self)

    @property
    def payload_bits(self) -> int:
        """Total payload bits across all values (excludes tags)."""
        return int(PAYLOAD_BITS_LUT[self.tags].astype(np.int64).sum())

    @property
    def compressed_bits(self) -> int:
        """Exact wire-format size in bits (tags + payloads)."""
        num_groups = -(-len(self) // GROUP_SIZE)
        return num_groups * GROUP_TAG_BITS + self.payload_bits

    @property
    def compressed_nbytes(self) -> int:
        """Wire-format size rounded up to whole bytes."""
        return -(-self.compressed_bits // 8)

    @property
    def original_nbytes(self) -> int:
        """Size of the uncompressed float32 vector."""
        return len(self) * 4

    @property
    def compression_ratio(self) -> float:
        """Original bits over compressed bits (paper Fig 14 metric)."""
        if len(self) == 0:
            return 1.0
        return (len(self) * 32) / self.compressed_bits

    def to_bytes(self) -> bytes:
        """Serialize to the hardware wire format.

        Per 8-value group: a 16-bit tag vector with value *i*'s tag at
        bits ``[2i+1 : 2i]``, then the payloads of values 0..7
        back-to-back, LSB first.  A final partial group is padded with
        ZERO tags, which carry no payload; the decoder relies on the
        caller knowing ``num_values``.
        """
        return pack_group_records(self.tags, self.payloads)

    @classmethod
    def from_bytes(
        cls, data: bytes, num_values: int, bound: ErrorBound
    ) -> "CompressedGradients":
        """Parse the wire format back into the unpacked form.

        Raises :class:`EOFError` when the stream ends inside a group
        record and :class:`ValueError` when more than one byte (the
        final byte may be bit-padding) is left over after ``num_values``
        worth of groups — a silent surplus means a corrupt or
        mis-framed wire buffer.
        """
        needed_groups = -(-num_values // GROUP_SIZE)
        offsets = scan_group_offsets(data, max_groups=needed_groups)
        num_groups = int(offsets.shape[0]) - 1
        if num_groups < needed_groups:
            raise EOFError(
                f"bitstream exhausted: stream holds {num_groups} group "
                f"records, {num_values} values need {needed_groups}"
            )
        surplus = len(data) - int(offsets[-1])
        if surplus > 1:
            raise ValueError(
                f"{surplus} surplus bytes after {num_groups} group "
                f"records ({num_values} values)"
            )
        tags, payloads = unpack_group_records(data, offsets)
        return cls(
            tags=tags[:num_values].copy(),
            payloads=payloads[:num_values].copy(),
            bound=bound,
        )
