"""Statistics over compressed gradients: Table III and Fig 14 metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from .bounds import ErrorBound
from .codec import classify
from .container import GROUP_SIZE, GROUP_TAG_BITS
from .tags import ENCODED_BITS, PAYLOAD_BITS_LUT, TAG_BIT8, TAG_BIT16, TAG_NO_COMPRESS, TAG_ZERO

#: Tag order used for reporting, matching Table III's column order
#: (2-bit, 10-bit, 18-bit, 34-bit encodings).
REPORT_TAG_ORDER = (TAG_ZERO, TAG_BIT8, TAG_BIT16, TAG_NO_COMPRESS)


@dataclass(frozen=True)
class BitwidthDistribution:
    """Fraction of values landing in each encoded-size class (Table III)."""

    fractions: Dict[int, float]  # tag -> fraction of values
    num_values: int

    def fraction_of(self, tag: int) -> float:
        """Fraction of values encoded with the given tag."""
        return self.fractions.get(tag, 0.0)

    @property
    def as_row(self) -> Dict[str, float]:
        """Table III row: encoded size label -> fraction."""
        return {
            f"{ENCODED_BITS[tag]}-bit": self.fractions[tag]
            for tag in REPORT_TAG_ORDER
        }

    @property
    def average_bits_per_value(self) -> float:
        """Mean encoded bits per value, including the 2-bit tag."""
        return sum(
            ENCODED_BITS[tag] * frac for tag, frac in self.fractions.items()
        )

    @property
    def compression_ratio(self) -> float:
        """32 bits over the mean encoded size."""
        avg = self.average_bits_per_value
        return 32.0 / avg if avg else float("inf")


def bitwidth_distribution(
    values: np.ndarray, bound: ErrorBound
) -> BitwidthDistribution:
    """Classify a gradient vector and report the tag-class fractions."""
    tags = classify(np.asarray(values, dtype=np.float32).reshape(-1), bound)
    n = tags.shape[0]
    if n == 0:
        raise ValueError("cannot compute a distribution over zero values")
    counts = np.bincount(tags, minlength=4).astype(np.float64)  # repro-lint: disable=R1 -- report math, not a gradient payload
    fractions = {tag: counts[tag] / n for tag in REPORT_TAG_ORDER}
    return BitwidthDistribution(fractions=fractions, num_values=n)


def compression_ratio(values: np.ndarray, bound: ErrorBound) -> float:
    """Exact wire-format compression ratio for a gradient vector.

    Raises ``ValueError`` on an empty vector — the ratio of zero bytes
    is undefined, and returning a quiet 1.0 here while
    :func:`bitwidth_distribution` raised made the two disagree on the
    same degenerate input.
    """
    tags = classify(np.asarray(values, dtype=np.float32).reshape(-1), bound)
    n = tags.shape[0]
    if n == 0:
        raise ValueError("cannot compute a compression ratio over zero values")
    payload_bits = int(PAYLOAD_BITS_LUT[tags].astype(np.int64).sum())
    groups = -(-n // GROUP_SIZE)
    total_bits = groups * GROUP_TAG_BITS + payload_bits
    return (n * 32) / total_bits


def average_compression_ratio(
    vectors: Iterable[np.ndarray], bound: ErrorBound
) -> float:
    """Mean per-vector compression ratio over an iteration trace.

    The paper reports *average* compression ratios across training
    iterations (Fig 14), i.e. the mean of per-snapshot ratios rather than
    the ratio of summed sizes.
    """
    ratios = [compression_ratio(vec, bound) for vec in vectors]
    if not ratios:
        raise ValueError("no gradient vectors supplied")
    return float(np.mean(ratios))


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest absolute elementwise deviation (the codec's bound metric)."""
    orig = np.asarray(original, dtype=np.float64).reshape(-1)  # repro-lint: disable=R1 -- error metric needs full precision
    recon = np.asarray(reconstructed, dtype=np.float64).reshape(-1)  # repro-lint: disable=R1 -- error metric needs full precision
    if orig.shape != recon.shape:
        raise ValueError("arrays must have the same number of elements")
    finite = np.isfinite(orig)
    if not finite.all():
        orig, recon = orig[finite], recon[finite]
    if orig.size == 0:
        return 0.0
    return float(np.max(np.abs(orig - recon)))


def value_histogram(
    values: np.ndarray, bins: int = 101, value_range: Sequence[float] = (-1.0, 1.0)
) -> "tuple[np.ndarray, np.ndarray]":
    """Normalized histogram of gradient values (paper Fig 5).

    Returns ``(frequencies, bin_edges)`` where frequencies sum to the
    fraction of values inside ``value_range``.
    """
    flat = np.asarray(values, dtype=np.float64).reshape(-1)  # repro-lint: disable=R1 -- histogram bins, not a gradient payload
    counts, edges = np.histogram(flat, bins=bins, range=tuple(value_range))
    freqs = counts / max(flat.size, 1)
    return freqs, edges
