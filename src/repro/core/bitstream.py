"""Little-endian bit packing used by the codec's wire format.

The hardware Compression Unit emits, per 256-bit input burst (8 floats),
a 16-bit tag vector followed by the concatenated variable-size payloads
(paper Fig 9: "the aligned bit vector and tag bit vector are concatenated
as the final output ... at least 16 bits and can go up to 272 bits").
This module provides the bit-level writer/reader those group records are
built from.

Convention: bits are appended LSB-first into a growing little-endian
integer stream, i.e. the first field written occupies the lowest bit
positions of the first byte.  Both the software codec and the hardware
engine models share this convention so their bitstreams are comparable
byte-for-byte.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates variable-width bit fields into a byte string."""

    def __init__(self) -> None:
        self._acc = 0
        self._nbits = 0
        self._chunks = bytearray()

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value`` to the stream."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits == 0:
            return
        self._acc |= (value & ((1 << nbits) - 1)) << self._nbits
        self._nbits += nbits
        while self._nbits >= 8:
            self._chunks.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._chunks) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Return the stream, zero-padding the final partial byte."""
        out = bytearray(self._chunks)
        if self._nbits:
            out.append(self._acc & 0xFF)
        return bytes(out)


class BitReader:
    """Reads variable-width bit fields written by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position

    def read(self, nbits: int) -> int:
        """Consume and return the next ``nbits`` as an unsigned int."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits == 0:
            return 0
        end = self._pos + nbits
        if end > len(self._data) * 8:
            raise EOFError(
                f"bitstream exhausted: need {nbits} bits at position "
                f"{self._pos}, stream holds {len(self._data) * 8}"
            )
        value = 0
        got = 0
        pos = self._pos
        while got < nbits:
            byte = self._data[pos >> 3]
            bit_off = pos & 7
            take = min(8 - bit_off, nbits - got)
            value |= ((byte >> bit_off) & ((1 << take) - 1)) << got
            got += take
            pos += take
        self._pos = end
        return value

    @property
    def bits_remaining(self) -> int:
        """Bits left in the underlying buffer (including any padding)."""
        return len(self._data) * 8 - self._pos
