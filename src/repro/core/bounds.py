"""Error-bound configuration for the INCEPTIONN lossy gradient codec.

The paper evaluates three absolute error bounds: 2^-10, 2^-8 and 2^-6
(Sec. VIII-C).  A bound ``2^-b`` partitions the float32 input range into
four classes, each encoded with a 2-bit tag and a 0/8/16/32-bit payload:

====================  ==============  =======================
value magnitude       tag             payload
====================  ==============  =======================
``|f| >= 1.0``        NO_COMPRESS     raw 32-bit word
``|f| <  2^-b``       ZERO            none (decodes to 0.0)
``[2^-b, 2^(7-b))``   BIT8            sign + 7-bit q = |f|*2^b
``[2^(7-b), 1.0)``    BIT16           sign + 15-bit q = |f|*2^15
====================  ==============  =======================

Every lossy class keeps the absolute reconstruction error strictly below
``2^-b`` (the 16-bit class is even tighter: below ``2^-15``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Biased exponent of 1.0 in IEEE-754 single precision.
FLOAT32_EXP_BIAS = 127

#: Fixed-point fraction bits carried by the 16-bit payload class.
BIT16_FRACTION_BITS = 15

#: Magnitude bits carried by the 8-bit payload class (plus one sign bit).
BIT8_MAGNITUDE_BITS = 7


@dataclass(frozen=True)
class ErrorBound:
    """Absolute error bound ``2^-b`` steering the codec's class thresholds.

    Parameters
    ----------
    exponent:
        The ``b`` in ``2^-b``.  The paper uses 6, 8 and 10.  Any value in
        ``[1, 15]`` is supported; beyond 15 the 8-bit class quantization
        step would undercut the 16-bit class precision and the scheme
        degenerates.
    """

    exponent: int

    def __post_init__(self) -> None:
        if not 1 <= self.exponent <= BIT16_FRACTION_BITS:
            raise ValueError(
                f"error-bound exponent must be in [1, {BIT16_FRACTION_BITS}], "
                f"got {self.exponent}"
            )

    @property
    def bound(self) -> float:
        """The absolute error bound as a float (``2^-b``)."""
        return 2.0 ** -self.exponent

    @property
    def zero_exponent_threshold(self) -> int:
        """Biased exponents below this encode as ZERO (``|f| < 2^-b``)."""
        return FLOAT32_EXP_BIAS - self.exponent

    @property
    def bit8_exponent_threshold(self) -> int:
        """Biased exponents below this (and >= zero threshold) use BIT8.

        BIT8 stores ``q = floor(|f| * 2^b)`` in 7 bits, which holds any
        magnitude below ``2^(7-b)``.
        """
        return FLOAT32_EXP_BIAS - self.exponent + BIT8_MAGNITUDE_BITS

    @property
    def bit8_scale(self) -> float:
        """Quantization step of the BIT8 class (``2^-b``)."""
        return self.bound

    @classmethod
    def from_bound(cls, bound: float) -> "ErrorBound":
        """Build from a literal bound such as ``2**-10``.

        The bound must be an exact power of two; the paper's hardware
        realizes the threshold as an exponent comparison, so arbitrary
        bounds are not representable.
        """
        from math import frexp

        mantissa, exp = frexp(bound)
        if mantissa != 0.5 or bound <= 0.0:
            raise ValueError(f"bound must be a positive power of two, got {bound}")
        return cls(exponent=1 - exp)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"2^-{self.exponent}"


#: The three bounds evaluated in the paper (Sec. VIII-C, Fig 14, Table III).
PAPER_BOUNDS = (ErrorBound(10), ErrorBound(8), ErrorBound(6))

#: The bound used for the headline end-to-end results (Fig 12/13).
DEFAULT_BOUND = ErrorBound(10)
