"""Vectorized NumPy implementation of the INCEPTIONN gradient codec.

This is the production codec: it compresses/decompresses whole gradient
vectors with array operations and is validated element-for-element
against the scalar reference in :mod:`repro.core.reference`.
"""

from __future__ import annotations

import numpy as np

from .bounds import ErrorBound, FLOAT32_EXP_BIAS
from .container import GROUP_SIZE, GROUP_TAG_BITS, CompressedGradients
from .tags import (
    PAYLOAD_BITS_LUT,
    TAG_BIT8,
    TAG_BIT16,
    TAG_NO_COMPRESS,
    TAG_ZERO,
)

_MANTISSA_BITS = 23
_IMPLICIT_ONE = np.uint32(1 << _MANTISSA_BITS)


def _as_float32_vector(values: np.ndarray) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.float32)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


def classify(values: np.ndarray, bound: ErrorBound) -> np.ndarray:
    """Return the 2-bit tag for every value (vectorized Algorithm 2 head)."""
    bits = _as_float32_vector(values).view(np.uint32)
    exponent = (bits >> np.uint32(23)) & np.uint32(0xFF)
    tags = np.full(bits.shape, TAG_BIT16, dtype=np.uint8)
    tags[exponent < bound.bit8_exponent_threshold] = TAG_BIT8
    tags[exponent < bound.zero_exponent_threshold] = TAG_ZERO
    # NO_COMPRESS has highest precedence: with relaxed bounds (b < 7) the
    # BIT8 exponent threshold exceeds 127 and would otherwise swallow it.
    tags[exponent >= FLOAT32_EXP_BIAS] = TAG_NO_COMPRESS
    return tags


def compress(values: np.ndarray, bound: ErrorBound) -> CompressedGradients:
    """Compress a float32 vector under the given error bound."""
    flat = _as_float32_vector(values)
    bits = flat.view(np.uint32)
    sign = bits >> np.uint32(31)
    exponent = ((bits >> np.uint32(23)) & np.uint32(0xFF)).astype(np.int32)
    significand = (bits & np.uint32(0x7FFFFF)) | _IMPLICIT_ONE

    tags = classify(flat, bound)
    payloads = np.zeros(bits.shape, dtype=np.uint32)

    mask = tags == TAG_NO_COMPRESS
    payloads[mask] = bits[mask]

    mask = tags == TAG_BIT8
    if mask.any():
        shift = (
            (FLOAT32_EXP_BIAS + _MANTISSA_BITS) - bound.exponent - exponent[mask]
        ).astype(np.uint32)
        q = significand[mask] >> shift
        payloads[mask] = (sign[mask] << np.uint32(7)) | q

    mask = tags == TAG_BIT16
    if mask.any():
        shift = ((FLOAT32_EXP_BIAS + _MANTISSA_BITS) - 15 - exponent[mask]).astype(
            np.uint32
        )
        q = significand[mask] >> shift
        payloads[mask] = (sign[mask] << np.uint32(15)) | q

    return CompressedGradients(tags=tags, payloads=payloads, bound=bound)


def decompress(compressed: CompressedGradients) -> np.ndarray:
    """Decompress back to a float32 vector (vectorized Algorithm 3)."""
    tags = compressed.tags
    payloads = compressed.payloads
    bound = compressed.bound
    out = np.zeros(tags.shape, dtype=np.float32)

    mask = tags == TAG_NO_COMPRESS
    if mask.any():
        out[mask] = payloads[mask].view(np.float32)

    mask = tags == TAG_BIT8
    if mask.any():
        p = payloads[mask]
        magnitude = (p & np.uint32(0x7F)).astype(np.float32) * np.float32(
            bound.bit8_scale
        )
        out[mask] = np.where(p & np.uint32(0x80), -magnitude, magnitude)

    mask = tags == TAG_BIT16
    if mask.any():
        p = payloads[mask]
        magnitude = (p & np.uint32(0x7FFF)).astype(np.float32) * np.float32(2.0**-15)
        out[mask] = np.where(p & np.uint32(0x8000), -magnitude, magnitude)

    return out


def roundtrip(values: np.ndarray, bound: ErrorBound) -> np.ndarray:
    """Compress then decompress, preserving the input's shape."""
    arr = np.asarray(values, dtype=np.float32)
    return decompress(compress(arr, bound)).reshape(arr.shape)


def compressed_nbits(values: np.ndarray, bound: ErrorBound) -> int:
    """Wire-format size in bits without materializing payloads.

    Sized directly from the tag histogram — no payload array (let alone
    a dummy :class:`CompressedGradients`) is allocated.
    """
    tags = classify(values, bound)
    counts = np.bincount(tags, minlength=PAYLOAD_BITS_LUT.size)
    payload_bits = int(counts @ PAYLOAD_BITS_LUT.astype(np.int64))
    num_groups = -(-tags.size // GROUP_SIZE)
    return num_groups * GROUP_TAG_BITS + payload_bits
