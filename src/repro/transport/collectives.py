"""MPI-style collective fragments used by the distributed algorithms.

Each helper is a generator meant to be ``yield from``-ed inside a node's
simulation process — the moral equivalent of calling an OpenMPI
collective from the training loop.  The ``profile`` argument is the
reproduction of the paper's ``MPI_collective_communication_comp`` APIs:
it tags the underlying streams with the profile codec's ToS byte (0x28
for the default INCEPTIONN stream).  Raw traffic passes ``None``.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

import numpy as np

from repro.core import StreamProfile
from repro.network import Event

from .endpoint import Endpoint

#: Simulation-process generator: yields events, may return a vector.
Collective = Generator[Event, Any, Optional[np.ndarray]]


def send_to(
    ep: Endpoint,
    dst: int,
    array: np.ndarray,
    profile: Optional[StreamProfile] = None,
) -> Collective:
    """Blocking send (waits until delivered)."""
    yield ep.isend(dst, array, profile=profile)
    return None


def recv_from(ep: Endpoint, src: int) -> Collective:
    """Blocking receive; the generator's return value is the array."""
    array = yield ep.recv(src)
    return array


def reduce_to_root(
    ep: Endpoint,
    root: int,
    vector: np.ndarray,
    sources: Optional[Iterable[int]] = None,
    profile: Optional[StreamProfile] = None,
) -> Collective:
    """Sum-reduce vectors onto ``root`` (the aggregator's gather leg).

    Non-root nodes send their vector and return ``None``; the root
    receives one vector per source and returns the running sum
    (including its own contribution, when it has one).
    """
    if ep.node_id != root:
        yield ep.isend(root, vector, profile=profile)
        return None
    total = np.array(vector, dtype=np.float32, copy=True)
    srcs = list(sources if sources is not None else [])
    for src in srcs:
        received = yield ep.recv(src)
        total = total + received
    return total


def broadcast_from_root(
    ep: Endpoint,
    root: int,
    vector: Optional[np.ndarray],
    destinations: Optional[Iterable[int]] = None,
    profile: Optional[StreamProfile] = None,
) -> Collective:
    """Root sends ``vector`` to every destination; others receive it."""
    if ep.node_id == root:
        if vector is None:
            raise ValueError("root must supply the vector to broadcast")
        events = [
            ep.isend(dst, vector, profile=profile)
            for dst in destinations or []
        ]
        if events:
            yield ep.comm.sim.all_of(events)
        return vector
    received = yield ep.recv(root)
    return received


def barrier_sum(values: List[float]) -> float:
    """Tiny helper for loss averaging in tests/examples."""
    return float(np.sum(values))
