"""Aggregation sites: where the gradient sum physically happens.

The worker-aggregator exchange has always summed at the *endpoint*: every
worker's stream crosses the whole fabric and the aggregator host folds
arrivals one by one.  With a homomorphic codec (one whose
``aggregate_compressed`` algebra sums payloads without decompressing —
see :mod:`repro.core.homomorphic`) the sum can instead happen at the
*switch*: payloads climb the fabric's reduction tree
(:mod:`repro.network.reduction`) and every merge vertex folds its fan-in
through an :class:`~repro.hardware.aggregation_engine.AggregationEngine`
before forwarding one partial sum upward.  Fewer bytes traverse the
upper tiers — the fan-in reduction INCEPTIONN-style in-network
co-design is after.

This module is the one place that knows both dispositions:

* :data:`AGG_ENDPOINT` / :data:`AGG_SWITCH` — the ``agg_site`` knob's
  values (``ClusterConfig.agg_site``, ``--agg-site``).
* :class:`GatherPart` — one reduction operand: its raw/wire sizes and
  fan-in, plus the functional :class:`~repro.core.CodecResult` when
  real values are moving (``None`` for size-only timing studies).
* :func:`combine_parts` — the shared fold, functional or size-only.
* :class:`SwitchGather` — the runtime: per-edge FIFO stores buffer
  fan-in, persistent reduce processes at each merge vertex charge
  engine cycles and forward partials over explicit route segments with
  plan-assigned arbitration identities (no callback-order races).

Strategies and the perfmodel never inline decompress → sum → recompress
sequences themselves; lint rule R12 holds them to this layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
)

import numpy as np

from repro.core import CodecResult, StreamProfile
from repro.hardware.aggregation_engine import AggregationEngine
from repro.network import Event, Store
from repro.network.multitier import MultiTierFabric
from repro.network.reduction import (
    ReduceInput,
    ReduceStage,
    ReductionPlan,
    build_reduction_plan,
)
from repro.obs import CAT_ENGINE

if TYPE_CHECKING:
    from .endpoint import ClusterComm

#: Sum at the aggregating endpoint (the historical disposition).
AGG_ENDPOINT = "endpoint"
#: Sum in-network, at the fabric's reduction-tree merge vertices.
AGG_SWITCH = "switch"
#: Every valid ``agg_site`` value.
AGG_SITES = (AGG_ENDPOINT, AGG_SWITCH)


def validate_agg_site(site: str) -> str:
    """Check an ``agg_site`` value, returning it for chaining."""
    if site not in AGG_SITES:
        choices = ", ".join(AGG_SITES)
        raise ValueError(f"agg_site must be one of {choices}; got {site!r}")
    return site


@dataclass(frozen=True)
class GatherPart:
    """One operand of a reduction: sizes, fan-in, and (maybe) values.

    ``result`` carries the functional compressed representation; it is
    ``None`` in size-only mode, where only ``payload_nbytes`` moves and
    the codec's ``aggregate_payload_nbytes`` models the folded size.
    """

    raw_nbytes: int
    payload_nbytes: int
    fan_in: int
    result: Optional[CodecResult] = None


def combine_parts(
    stream: StreamProfile, parts: Sequence[GatherPart]
) -> GatherPart:
    """Fold reduction operands in the compressed domain.

    Functional when every part carries a :class:`~repro.core.CodecResult`
    (the codec algebra sums payloads exactly); size-only otherwise.
    """
    if not parts:
        raise ValueError("a reduction needs at least one part")
    raw_nbytes = parts[0].raw_nbytes
    if any(p.raw_nbytes != raw_nbytes for p in parts):
        raise ValueError("reduction parts disagree on raw gradient size")
    fan_in = sum(p.fan_in for p in parts)
    if all(p.result is not None for p in parts):
        results: List[CodecResult] = [p.result for p in parts if p.result is not None]
        agg = stream.aggregate_compressed(results)
        return GatherPart(
            raw_nbytes=raw_nbytes,
            payload_nbytes=agg.payload_nbytes,
            fan_in=agg.fan_in,
            result=agg,
        )
    payload = stream.aggregate_payload_nbytes(
        raw_nbytes, [p.payload_nbytes for p in parts], fan_in
    )
    return GatherPart(
        raw_nbytes=raw_nbytes,
        payload_nbytes=int(payload),
        fan_in=fan_in,
        result=None,
    )


def aggregate_endpoint(
    stream: StreamProfile, gradients: Sequence[np.ndarray]
) -> np.ndarray:
    """Endpoint-site sum of received reconstructions, via the algebra.

    Re-compressing a codec's own reconstruction recovers its exact
    compressed representation (lossless codecs reproduce the values;
    THC re-quantizes lattice points onto themselves), so folding through
    ``aggregate_compressed`` here is bit-identical to the switch site's
    in-flight reduction of the original parts.
    """
    parts = [
        stream.compress(
            np.ascontiguousarray(grad, dtype=np.float32).reshape(-1)
        )
        for grad in gradients
    ]
    if not parts:
        raise ValueError("endpoint aggregation needs at least one gradient")
    return stream.aggregate_compressed(parts).values


class SwitchGather:
    """In-network reduction of one gather tree over a multi-tier fabric.

    Construction validates the co-design triangle — a
    :class:`~repro.network.multitier.MultiTierFabric` to host engines,
    a homomorphic stream codec to fold payloads, active NIC engines to
    mark the ToS class — builds the :class:`ReductionPlan`, and spawns
    one persistent reduce process per switch stage.  Per round:

    * each source calls :meth:`offer` (non-blocking) — its compressed
      part rides the leaf segment toward the first merge vertex;
    * every merge vertex buffers its full fan-in (per-edge FIFO
      stores), folds via :func:`combine_parts`, charges
      :class:`AggregationEngine` cycles, and forwards one partial;
    * the root calls ``yield from collect()`` for the folded part.

    FIFO stores keep successive rounds aligned; plan-assigned segment
    identities keep same-instant link arbitration deterministic.
    """

    def __init__(
        self,
        comm: "ClusterComm",
        root: int,
        sources: Sequence[int],
        stream: Optional[StreamProfile],
        lanes: int = 1,
    ) -> None:
        fabric = comm.topology
        if not isinstance(fabric, MultiTierFabric):
            raise ValueError(
                "agg_site='switch' needs a multi-tier fabric topology "
                "(e.g. --topology fat-tree:k=4); the switched star has "
                "no reduction points"
            )
        if stream is None or not stream.homomorphic:
            codec = "raw" if stream is None else repr(stream.codec)
            raise ValueError(
                f"agg_site='switch' needs a homomorphic codec; {codec} "
                "has no compressed-domain aggregation algebra "
                "(try lossless_hc or thc)"
            )
        if not comm.compression_active():
            raise ValueError(
                "agg_site='switch' needs the NIC engines enabled "
                "(a cluster stream profile) so reduction traffic is "
                "ToS-marked"
            )
        self.comm = comm
        self.fabric = fabric
        self.stream = stream
        self.root = root
        self.plan: ReductionPlan = build_reduction_plan(fabric, sources, root)
        self._lanes = lanes
        self._clock_hz = comm.config.engine_clock_hz
        self._root_vertex = fabric.host_id(root)
        #: One FIFO store per tree edge, keyed by plan segment index.
        self._stores: Dict[int, Store] = {}
        #: Non-root stage index -> its uplink edge at the parent stage.
        self._uplinks: Dict[int, ReduceInput] = {}
        #: Source host -> its leaf edge into the first merge vertex.
        self._leaves: Dict[int, ReduceInput] = {}
        for stage in self.plan.stages:
            for inp in stage.inputs:
                self._stores[inp.segment] = Store(comm.sim)
                if inp.stage is not None:
                    self._uplinks[inp.stage] = inp
                if inp.host is not None:
                    self._leaves[inp.host] = inp
        self._offer_rounds: Dict[int, int] = {}
        #: Reductions performed at switch vertices (not the root NIC).
        self.switch_reductions = 0
        for stage in self.plan.switch_stages:
            comm.spawn(self._reduce_process(stage))

    def engine(self, vertex: str) -> AggregationEngine:
        """The (shared) aggregation engine hosted at a fabric vertex."""
        return self.fabric.aggregation_engine(
            vertex,
            lambda: AggregationEngine(
                lanes=self._lanes, clock_hz=self._clock_hz
            ),
        )

    def engine_cycles(self) -> int:
        """Total cycles across every engine this fabric hosts."""
        engines = self.fabric.aggregation_engines
        return sum(engines[v].total_cycles for v in sorted(engines))

    def offer(
        self,
        host: int,
        array: Optional[np.ndarray] = None,
        *,
        nbytes: Optional[int] = None,
        ratio: Optional[float] = None,
    ) -> Event:
        """Launch one source's contribution for its next round.

        Functional mode passes ``array`` (the stream codec runs once,
        here, at the worker NIC); size-only mode passes ``nbytes`` plus
        an optional measured ``ratio`` — mirroring
        :func:`repro.transport.wire.build_wire_message`.  Non-blocking:
        returns the leaf segment's delivery event.
        """
        leaf = self._leaves.get(host)
        if leaf is None:
            raise ValueError(
                f"host {host} is not a source of this reduction tree"
            )
        if (array is None) == (nbytes is None):
            raise ValueError("pass exactly one of array= or nbytes=")
        if ratio is not None and ratio < 1.0:
            raise ValueError(
                f"compression ratio must be >= 1 (got {ratio!r})"
            )
        if array is not None:
            arr = np.ascontiguousarray(array, dtype=np.float32).reshape(-1)
            result = self.stream.compress(arr)
            part = GatherPart(
                raw_nbytes=arr.nbytes,
                payload_nbytes=result.payload_nbytes,
                fan_in=result.fan_in,
                result=result,
            )
        else:
            raw = int(nbytes)  # type: ignore[arg-type]
            if raw < 0:
                raise ValueError("nbytes cannot be negative")
            wire = int(round(raw / (1.0 if ratio is None else ratio)))
            part = GatherPart(
                raw_nbytes=raw, payload_nbytes=wire, fan_in=1, result=None
            )
        round_no = self._offer_rounds.get(host, 0)
        self._offer_rounds[host] = round_no + 1
        return self._send_segment(leaf, part, round_no)

    def collect(self) -> Generator[Event, Any, GatherPart]:
        """One round's folded part, as seen by the root endpoint.

        A simulation-process generator: buffers the root stage's fan-in,
        charges the root-hosted engine when more than one edge arrives,
        and returns the fully folded :class:`GatherPart`.
        """
        stage = self.plan.root_stage
        parts: List[GatherPart] = []
        for inp in stage.inputs:
            part = yield self._stores[inp.segment].get()
            parts.append(part)
        if len(parts) == 1:
            return parts[0]
        combined, dt = self._reduce(stage, parts)
        if dt:
            yield self.comm.timeout(dt)
        return combined

    # -- internals ----------------------------------------------------

    def _reduce(
        self, stage: ReduceStage, parts: Sequence[GatherPart]
    ) -> "tuple[GatherPart, float]":
        """Fold one stage's operands, charging its engine."""
        start = self.comm.sim.now
        combined = combine_parts(self.stream, parts)
        stats = self.engine(stage.vertex).reduce(
            [p.payload_nbytes for p in parts], combined.payload_nbytes
        )
        dt = stats.elapsed_s(self._clock_hz)
        tracer = self.comm.tracer
        if tracer is not None:
            tracer.span(
                "aggregation.reduce",
                cat=CAT_ENGINE,
                ts=start,
                dur=dt,
                node=self.root,
                vertex=stage.vertex,
                fan_in=stats.fan_in,
                bytes_in=stats.bytes_in,
                bytes_out=stats.bytes_out,
                cycles=stats.cycles,
            )
        return combined, dt

    def _reduce_process(
        self, stage: ReduceStage
    ) -> Generator[Event, Any, None]:
        """Persistent reduce loop at one switch vertex."""
        uplink = self._uplinks[stage.index]
        round_no = 0
        while True:
            parts: List[GatherPart] = []
            for inp in stage.inputs:
                part = yield self._stores[inp.segment].get()
                parts.append(part)
            combined, dt = self._reduce(stage, parts)
            self.switch_reductions += 1
            if dt:
                yield self.comm.timeout(dt)
            self._send_segment(uplink, combined, round_no)
            round_no += 1

    def _send_segment(
        self, inp: ReduceInput, part: GatherPart, round_no: int
    ) -> Event:
        """Move one part along its tree edge; deliver into its store."""
        # Deferred import: endpoint.py imports this module for the
        # agg_site knob, so the log row type resolves at call time.
        from .endpoint import TransferLog

        route = self.fabric.segment_route(inp.vertices)
        src = inp.host if inp.host is not None else self.root
        arb_base = (
            self.root,
            self.root,
            round_no * self.plan.num_segments + inp.segment,
        )
        into_root = inp.vertices[-1] == self._root_vertex
        event = self.comm.network.send_route(
            route,
            src,
            self.root,
            part.raw_nbytes,
            part.payload_nbytes,
            tos=self.stream.resolved_tos,
            payload=part,
            tx_engine_node=inp.host,
            rx_engine_node=self.root if into_root else None,
            arb_base=arb_base,
        )
        self.comm.transfers.append(
            TransferLog(
                src=src,
                dst=self.root,
                nbytes=part.raw_nbytes,
                wire_payload_nbytes=part.payload_nbytes,
                compressed=True,
                sent_at=self.comm.sim.now,
                codec=self.stream.codec,
                hops=len(route.links),
            )
        )
        store = self._stores[inp.segment]
        event.add_callback(lambda _ev: store.put(part))
        return event


__all__ = [
    "AGG_ENDPOINT",
    "AGG_SITES",
    "AGG_SWITCH",
    "GatherPart",
    "SwitchGather",
    "aggregate_endpoint",
    "combine_parts",
    "validate_agg_site",
]
