"""Message-passing endpoints over the simulated network.

This is the reproduction of the paper's software stack (Fig 11): an
OpenMPI-like layer whose ``collec_comm_comp`` APIs set the socket ToS so
the NIC engines pick the stream up.  Endpoints move real NumPy arrays
between simulated nodes: the *values* a receiver observes are the values
the stream's codec reconstructs (lossy when compression is on), and the
*bytes* the network simulator clocks are the codec's measured compressed
sizes — the functional and timing domains stay coupled.

Which codec (and ToS byte) a message uses is a per-stream property: a
:class:`repro.core.StreamProfile` passed to ``isend``.  The historical
``compressible`` boolean survives only as a deprecated keyword alias
that maps to the cluster's default profile.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import ErrorBound, RAW_STREAM, StreamProfile, inceptionn_profile
from repro.core.bounds import DEFAULT_BOUND
from repro.hardware.nic import InceptionnNic
from repro.hardware.timing import engine_latency_s, engine_throughput_bps
from repro.network import (
    BackgroundTraffic,
    Event,
    LossModel,
    Network,
    NicTimingModel,
    PRIORITY_HIGH,
    RetransmitPolicy,
    Simulation,
    Store,
    SwitchedStar,
    TenantSpec,
    TieBreak,
    build_topology,
)
from repro.network.packet import TOS_DEFAULT
from repro.network.topology import DEFAULT_BANDWIDTH_BPS, Topology
from repro.obs import CAT_CODEC, Tracer

from .aggregation import AGG_ENDPOINT, validate_agg_site
from .wire import WireMessage, account_tx_traversal, build_wire_message


@dataclass
class TransferLog:
    """Per-message record kept by the cluster for experiment reporting."""

    src: int
    dst: int
    nbytes: int
    wire_payload_nbytes: int
    compressed: bool
    sent_at: float
    #: Name of the codec that processed the stream (None for raw).
    codec: Optional[str] = None
    #: Links this message's route traverses (1 for a direct hop).  Route
    #: *segments* from the switch aggregation site log their own hop
    #: counts, which is what makes in-network fan-in reduction visible.
    hops: int = 1


@dataclass(frozen=True)
class TransferSummary:
    """Aggregate wire statistics over a set of :class:`TransferLog` rows."""

    messages: int = 0
    nbytes: int = 0
    wire_payload_nbytes: int = 0
    compressed_messages: int = 0
    #: Wire payload weighted by hop count — the link-level load the
    #: fabric actually carries.  The figure the aggregation-site study
    #: compares: switch-site reduction sends *more* (shorter) segments
    #: but loads far fewer link-bytes than hauling every stream
    #: end-to-end.
    link_payload_nbytes: int = 0

    @property
    def wire_ratio(self) -> float:
        """Application bytes per wire payload byte across all messages.

        Zero-byte traffic is explicitly ratio 1.0 — ``None`` and ``0``
        are different things here (the zero-ratio bug's
        falsy-check cousin), so no ``or``-style default is used.
        """
        if self.wire_payload_nbytes == 0:
            return 1.0 if self.nbytes == 0 else float("inf")
        return self.nbytes / self.wire_payload_nbytes


def summarize_transfers(transfers: Sequence[TransferLog]) -> TransferSummary:
    """Fold a transfer log into one :class:`TransferSummary`."""
    messages = 0
    nbytes = 0
    wire_payload = 0
    compressed = 0
    link_payload = 0
    for log in transfers:
        messages += 1
        nbytes += log.nbytes
        wire_payload += log.wire_payload_nbytes
        link_payload += log.wire_payload_nbytes * log.hops
        if log.compressed:
            compressed += 1
    return TransferSummary(
        messages=messages,
        nbytes=nbytes,
        wire_payload_nbytes=wire_payload,
        compressed_messages=compressed,
        link_payload_nbytes=link_payload,
    )


@dataclass
class ClusterConfig:
    """Knobs of a simulated training cluster's communication plane.

    ``profile`` selects the default stream profile applied to gradient
    traffic (and implies NIC engines on every node).  ``compression`` is
    the deprecated boolean shim: ``True`` maps to the default INCEPTIONN
    profile at ``bound``, exactly the paper's ToS-0x28 contract.
    """

    num_nodes: int
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    compression: bool = False
    bound: ErrorBound = DEFAULT_BOUND
    engine_blocks: int = 8
    engine_clock_hz: float = 100e6
    link_latency_s: float = 2e-6
    switch_delay_s: float = 1e-6
    mss: int = 1460
    train_packets: int = 44
    profile: Optional[StreamProfile] = None
    #: Bernoulli per-train drop probability on every link (0 = lossless).
    loss_rate: float = 0.0
    loss_seed: int = 0
    #: Recovery parameters; ``None`` uses the network's defaults.
    retransmit: Optional[RetransmitPolicy] = None
    #: Equal-timestamp event ordering policy; ``None`` is strict FIFO.
    #: The determinism sanitizer re-runs scenarios under a
    #: :class:`~repro.network.SeededTieBreak` to surface order races.
    tie_break: Optional[TieBreak] = None
    #: Fabric spec for :func:`repro.network.build_topology`
    #: (e.g. ``"fat-tree:k=4"``); ``None`` keeps the paper's switched
    #: star on exactly the historical construction path (bit-exact).
    topology: Optional[str] = None
    #: Background tenants placed on the fabric's spare host ports
    #: (empty = the training job has the network to itself).
    tenants: Tuple[TenantSpec, ...] = ()
    #: Honor per-ToS priority classes at multi-tier switch queues:
    #: foreground gradient/weight streams ride PRIORITY_HIGH, each
    #: tenant its spec's class.  Plain FIFO links ignore priority, so
    #: this only matters on priority-queued fabrics.
    prioritize: bool = False
    #: Seed for background-tenant arrival randomness.
    tenant_seed: int = 0
    #: Where gradient summation happens: ``"endpoint"`` (the historical
    #: disposition — every stream crosses the fabric and the aggregating
    #: host folds arrivals) or ``"switch"`` (in-network reduction at the
    #: fabric's merge vertices; needs a multi-tier topology and a
    #: homomorphic stream codec — see :mod:`repro.transport.aggregation`).
    agg_site: str = AGG_ENDPOINT

    def __post_init__(self) -> None:
        validate_agg_site(self.agg_site)
        if self.compression:
            warnings.warn(
                "ClusterConfig(compression=True) is deprecated; pass "
                "profile=inceptionn_profile(bound) instead",
                DeprecationWarning,
                stacklevel=3,
            )

    def default_profile(self) -> StreamProfile:
        """The profile ``compressible``-style callers resolve to."""
        if self.profile is not None:
            return self.profile
        if self.compression:
            return inceptionn_profile(self.bound)
        return RAW_STREAM


class ClusterComm:
    """A simulated cluster's communication fabric with one endpoint per node."""

    def __init__(
        self, config: ClusterConfig, tracer: Optional[Tracer] = None
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.default_profile = config.default_profile()
        self.sim = Simulation(tie_break=config.tie_break)
        self.topology: Topology
        if config.topology is None:
            # The historical construction path, kept verbatim so the
            # default star fabric stays bit-exact.
            self.topology = SwitchedStar(
                self.sim,
                config.num_nodes,
                bandwidth_bps=config.bandwidth_bps,
                link_latency_s=config.link_latency_s,
                switch_delay_s=config.switch_delay_s,
            )
        else:
            self.topology = build_topology(
                config.topology,
                self.sim,
                config.num_nodes,
                bandwidth_bps=config.bandwidth_bps,
                link_latency_s=config.link_latency_s,
                switch_delay_s=config.switch_delay_s,
            )
        nic = NicTimingModel(
            compression=config.compression or config.profile is not None,
            engine_latency_s=engine_latency_s(config.engine_clock_hz),
            engine_throughput_bps=engine_throughput_bps(
                config.engine_blocks, config.engine_clock_hz
            ),
        )
        loss = (
            LossModel(config.loss_rate, seed=config.loss_seed)
            if config.loss_rate > 0.0
            else None
        )
        self.network = Network(
            self.sim,
            self.topology,
            mss=config.mss,
            train_packets=config.train_packets,
            nics={node: nic for node in range(config.num_nodes)},
            loss=loss,
            retransmit=config.retransmit,
            tracer=tracer,
            tos_priority=self._tos_priority(),
        )
        self._background: Optional[BackgroundTraffic] = None
        #: Functional NICs, one per node — the engine dispatch every
        #: WireMessage is built through (paper Fig 8's comparator).
        self.nics: List[InceptionnNic] = [
            InceptionnNic(
                node,
                config.bound,
                enabled=self.compression_active(),
                num_blocks=config.engine_blocks,
                clock_hz=config.engine_clock_hz,
            )
            for node in range(config.num_nodes)
        ]
        self.endpoints: List[Endpoint] = [
            Endpoint(self, node) for node in range(config.num_nodes)
        ]
        self.transfers: List[TransferLog] = []

    def _tos_priority(self) -> Optional[Dict[int, int]]:
        """The ToS -> priority-class map, or ``None`` when not prioritizing.

        Foreground streams (the default profile's ToS and raw weight
        traffic) ride :data:`~repro.network.PRIORITY_HIGH`; each tenant
        rides its spec's class.  A tenant ToS that collides with a
        foreground stream would silently demote the training job, so it
        is rejected.
        """
        if not self.config.prioritize:
            return None
        foreground = {TOS_DEFAULT, self.default_profile.resolved_tos}
        mapping = {tos: PRIORITY_HIGH for tos in sorted(foreground)}
        for tenant in self.config.tenants:
            if tenant.tos in foreground:
                raise ValueError(
                    f"tenant ToS {tenant.tos:#04x} collides with a "
                    "foreground stream; pick a distinct byte"
                )
            mapping[tenant.tos] = tenant.priority
        return mapping

    def start_background(self) -> Optional[BackgroundTraffic]:
        """Launch the configured background tenants (idempotent).

        Tenants occupy fabric host ports from ``num_nodes`` upward —
        callers must have picked a ``topology`` with spare capacity.
        Returns the :class:`~repro.network.BackgroundTraffic` handle
        (call ``stop()`` when the foreground workload completes), or
        ``None`` when no tenants are configured.
        """
        if not self.config.tenants:
            return None
        if self._background is None:
            self._background = BackgroundTraffic(
                self.network,
                self.config.tenants,
                first_host=self.config.num_nodes,
                seed=self.config.tenant_seed,
            )
            self._background.launch()
        return self._background

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    # -- Strategy-agnostic process hooks -------------------------------
    # The distributed strategy layer drives everything through these
    # four, so algorithm plugins never reach into ``comm.sim`` directly.

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    def spawn(self, generator: "Generator[Event, Any, Any]") -> None:
        """Register a process generator with the simulation."""
        self.sim.process(generator)

    def timeout(self, delay: float) -> Event:
        """An event that fires ``delay`` simulated seconds from now."""
        return self.sim.timeout(delay)

    def event(self) -> Event:
        """A bare event for explicit signalling (gates, barriers)."""
        return self.sim.event()

    def compression_active(self) -> bool:
        """Engines present on (all) NICs?"""
        return self.config.compression or self.config.profile is not None

    def transfer_summary(self) -> TransferSummary:
        """Aggregate wire statistics of every message sent so far."""
        return summarize_transfers(self.transfers)

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation; returns the final virtual time."""
        return self.sim.run(until=until)


class Endpoint:
    """One node's send/recv interface.

    Two receive styles exist: ``recv(src)`` (per-source FIFOs, used by
    the synchronous algorithms) and ``recv_any()`` (one shared FIFO,
    used by the asynchronous parameter server).  A delivery lands in
    exactly one of them, selected by the receiver's ``promiscuous``
    flag — mixing both styles on one endpoint is not supported.
    """

    def __init__(self, comm: ClusterComm, node_id: int) -> None:
        self.comm = comm
        self.node_id = node_id
        self._inboxes: Dict[int, Store] = {}
        self._any_inbox: Optional[Store] = None
        #: When True, deliveries go to the shared recv_any() queue.
        self.promiscuous = False
        #: Per-destination send sequence numbers (sender side).
        self._send_seq: Dict[int, int] = {}
        #: Per-source next expected sequence and the reorder buffer
        #: (receiver side).  Retransmission can complete message k
        #: *after* message k+1 of the same src->dst pair; releasing
        #: deliveries in send order keeps the per-source FIFO contract
        #: the synchronous exchanges depend on.
        self._next_seq: Dict[int, int] = {}
        self._reorder: Dict[int, Dict[int, object]] = {}

    def _inbox(self, src: int) -> Store:
        if self.promiscuous:
            return self._any_queue()
        if src not in self._inboxes:
            self._inboxes[src] = Store(self.comm.sim)
        return self._inboxes[src]

    def _any_queue(self) -> Store:
        if self._any_inbox is None:
            self._any_inbox = Store(self.comm.sim)
        return self._any_inbox

    def _deliver(self, src: int, payload: object) -> None:
        if self.promiscuous:
            self._any_queue().put((src, payload))
        else:
            self._inbox(src).put(payload)

    def _deliver_ordered(self, src: int, seq: int, payload: object) -> None:
        """Release completed messages to the inbox in send order."""
        expected = self._next_seq.get(src, 0)
        if seq != expected:
            self._reorder.setdefault(src, {})[seq] = payload
            return
        self._deliver(src, payload)
        expected += 1
        buffered = self._reorder.get(src)
        while buffered and expected in buffered:
            self._deliver(src, buffered.pop(expected))
            expected += 1
        self._next_seq[src] = expected

    def _resolve_profile(
        self,
        profile: Optional[StreamProfile],
        compressible: Optional[bool],
    ) -> StreamProfile:
        """Map the caller's stream selection to a concrete profile.

        An explicit ``profile`` wins; the deprecated ``compressible``
        flag resolves to the cluster's default profile (the INCEPTIONN
        ToS-0x28 stream under the legacy ``compression`` shim).
        """
        if compressible is not None:
            warnings.warn(
                "the compressible= keyword is deprecated; pass a "
                "StreamProfile via profile= instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if profile is not None:
            return profile
        if compressible:
            return self.comm.default_profile
        return RAW_STREAM

    def _trace_codec(
        self,
        tracer: Tracer,
        codec: Optional[str],
        nbytes: int,
        compressed_nbytes: int,
        estimated: bool,
    ) -> None:
        """Record one compress call and its achieved (or assumed) ratio."""
        # Explicit zero handling: an empty message is ratio 1.0, not
        # infinity (and 0 compressed bytes of a non-empty message is).
        if compressed_nbytes:
            ratio = nbytes / compressed_nbytes
        elif nbytes:
            ratio = float("inf")
        else:
            ratio = 1.0
        tracer.instant(
            "codec.compress",
            cat=CAT_CODEC,
            ts=self.comm.sim.now,
            node=self.node_id,
            codec=codec,
            nbytes=nbytes,
            compressed_nbytes=compressed_nbytes,
            ratio=ratio,
            estimated=estimated,
        )
        metrics = tracer.metrics
        metrics.counter("codec_bytes_in", codec=codec).inc(nbytes)
        metrics.counter("codec_bytes_out", codec=codec).inc(compressed_nbytes)
        metrics.histogram(
            "codec_ratio", buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0), codec=codec
        ).observe(ratio)

    def build_message(
        self,
        dst: int,
        array: Optional[np.ndarray] = None,
        *,
        nbytes: Optional[int] = None,
        profile: Optional[StreamProfile] = None,
        ratio: Optional[float] = None,
        compressible: Optional[bool] = None,
    ) -> WireMessage:
        """Build this node's wire representation of one send.

        Runs the stream's codec exactly once through the sender NIC's
        engine dispatch (see :func:`repro.transport.wire.build_wire_message`).
        Functional sends pass ``array``; paper-scale timing sends pass
        ``nbytes`` plus an optional measured ``ratio``.
        """
        stream = self._resolve_profile(profile, compressible)
        return build_wire_message(
            self.node_id,
            dst,
            stream=stream,
            array=array,
            nbytes=nbytes,
            nic=self.comm.nics[self.node_id],
            ratio=ratio,
            mss=self.comm.config.mss,
        )

    def isend_message(self, msg: WireMessage) -> Event:
        """Send a built :class:`WireMessage`; returns the delivery event.

        The one send path: the trace span, the transfer log, the timing
        simulation and the receiver-side Tag-Decoder delivery all read
        from the same message object.  Retransmitted trains tick the
        sender NIC's counters once per extra wire traversal.
        """
        if msg.src != self.node_id:
            raise ValueError(
                f"message built for node {msg.src} sent from {self.node_id}"
            )
        tracer = self.comm.tracer
        if msg.compressed and tracer is not None:
            self._trace_codec(
                tracer,
                msg.codec,
                msg.nbytes,
                msg.wire_payload_nbytes,
                msg.size_only,
            )
        route = self.comm.network.topology.route(
            msg.src, msg.dst, tos=msg.tos
        )
        self.comm.transfers.append(
            TransferLog(
                src=msg.src,
                dst=msg.dst,
                nbytes=msg.nbytes,
                wire_payload_nbytes=msg.wire_payload_nbytes,
                compressed=msg.compressed,
                sent_at=self.comm.sim.now,
                codec=msg.codec,
                hops=len(route.links),
            )
        )
        tx_nic = self.comm.nics[msg.src]

        def retransmitted(packets: int, wire: int, raw: int) -> None:
            account_tx_traversal(tx_nic, msg, packets, raw, wire)

        event = self.comm.network.send_wire(msg, on_retransmit=retransmitted)
        receiver = self.comm.endpoints[msg.dst]
        rx_nic = self.comm.nics[msg.dst]
        seq = self._send_seq.get(msg.dst, 0)
        self._send_seq[msg.dst] = seq + 1
        event.add_callback(
            lambda ev: receiver._deliver_ordered(
                msg.src, seq, ev.value[0].deliver(rx_nic)
            )
        )
        return event

    def isend(
        self,
        dst: int,
        array: np.ndarray,
        profile: Optional[StreamProfile] = None,
        compressible: Optional[bool] = None,
    ) -> Event:
        """Non-blocking send; returns the delivery event.

        With a compressing ``profile`` and engines present, the array is
        passed through the profile's codec: the receiver sees the lossy
        reconstruction and the wire carries the measured compressed
        bytes under the codec's ToS byte.  ``compressible`` is the
        deprecated boolean alias for the cluster default profile.
        """
        return self.isend_message(
            self.build_message(
                dst, array, profile=profile, compressible=compressible
            )
        )

    def recv(self, src: int) -> Event:
        """Event yielding the next array sent by ``src`` to this node."""
        if self.promiscuous:
            raise RuntimeError("promiscuous endpoints must use recv_any()")
        return self._inbox(src).get()

    def recv_any(self) -> Event:
        """Event yielding ``(src, payload)`` for the next arrival.

        Requires ``promiscuous = True`` *before* any message is sent to
        this endpoint.
        """
        if not self.promiscuous:
            raise RuntimeError("set promiscuous = True before using recv_any()")
        return self._any_queue().get()
