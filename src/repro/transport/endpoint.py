"""Message-passing endpoints over the simulated network.

This is the reproduction of the paper's software stack (Fig 11): an
OpenMPI-like layer whose ``collec_comm_comp`` APIs set the socket ToS so
the NIC engines pick the stream up.  Endpoints move real NumPy arrays
between simulated nodes: the *values* a receiver observes are the values
the stream's codec reconstructs (lossy when compression is on), and the
*bytes* the network simulator clocks are the codec's measured compressed
sizes — the functional and timing domains stay coupled.

Which codec (and ToS byte) a message uses is a per-stream property: a
:class:`repro.core.StreamProfile` passed to ``isend``.  The historical
``compressible`` boolean survives only as a deprecated keyword alias
that maps to the cluster's default profile.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core import ErrorBound, RAW_STREAM, StreamProfile, inceptionn_profile
from repro.core.bounds import DEFAULT_BOUND
from repro.hardware.timing import engine_latency_s, engine_throughput_bps
from repro.network import (
    Event,
    Network,
    NicTimingModel,
    Simulation,
    Store,
    SwitchedStar,
    TOS_DEFAULT,
)
from repro.network.topology import DEFAULT_BANDWIDTH_BPS
from repro.obs import CAT_CODEC, Tracer


@dataclass
class TransferLog:
    """Per-message record kept by the cluster for experiment reporting."""

    src: int
    dst: int
    nbytes: int
    wire_payload_nbytes: int
    compressed: bool
    sent_at: float
    #: Name of the codec that processed the stream (None for raw).
    codec: Optional[str] = None


@dataclass
class ClusterConfig:
    """Knobs of a simulated training cluster's communication plane.

    ``profile`` selects the default stream profile applied to gradient
    traffic (and implies NIC engines on every node).  ``compression`` is
    the deprecated boolean shim: ``True`` maps to the default INCEPTIONN
    profile at ``bound``, exactly the paper's ToS-0x28 contract.
    """

    num_nodes: int
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    compression: bool = False
    bound: ErrorBound = DEFAULT_BOUND
    engine_blocks: int = 8
    engine_clock_hz: float = 100e6
    link_latency_s: float = 2e-6
    switch_delay_s: float = 1e-6
    mss: int = 1460
    train_packets: int = 44
    profile: Optional[StreamProfile] = None

    def __post_init__(self) -> None:
        if self.compression:
            warnings.warn(
                "ClusterConfig(compression=True) is deprecated; pass "
                "profile=inceptionn_profile(bound) instead",
                DeprecationWarning,
                stacklevel=3,
            )

    def default_profile(self) -> StreamProfile:
        """The profile ``compressible``-style callers resolve to."""
        if self.profile is not None:
            return self.profile
        if self.compression:
            return inceptionn_profile(self.bound)
        return RAW_STREAM


class ClusterComm:
    """A simulated cluster's communication fabric with one endpoint per node."""

    def __init__(
        self, config: ClusterConfig, tracer: Optional[Tracer] = None
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.default_profile = config.default_profile()
        self.sim = Simulation()
        self.topology = SwitchedStar(
            self.sim,
            config.num_nodes,
            bandwidth_bps=config.bandwidth_bps,
            link_latency_s=config.link_latency_s,
            switch_delay_s=config.switch_delay_s,
        )
        nic = NicTimingModel(
            compression=config.compression or config.profile is not None,
            engine_latency_s=engine_latency_s(config.engine_clock_hz),
            engine_throughput_bps=engine_throughput_bps(
                config.engine_blocks, config.engine_clock_hz
            ),
        )
        self.network = Network(
            self.sim,
            self.topology,
            mss=config.mss,
            train_packets=config.train_packets,
            nics={node: nic for node in range(config.num_nodes)},
            tracer=tracer,
        )
        self.endpoints: List[Endpoint] = [
            Endpoint(self, node) for node in range(config.num_nodes)
        ]
        self.transfers: List[TransferLog] = []

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def compression_active(self) -> bool:
        """Engines present on (all) NICs?"""
        return self.config.compression or self.config.profile is not None

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation; returns the final virtual time."""
        return self.sim.run(until=until)


class Endpoint:
    """One node's send/recv interface.

    Two receive styles exist: ``recv(src)`` (per-source FIFOs, used by
    the synchronous algorithms) and ``recv_any()`` (one shared FIFO,
    used by the asynchronous parameter server).  A delivery lands in
    exactly one of them, selected by the receiver's ``promiscuous``
    flag — mixing both styles on one endpoint is not supported.
    """

    def __init__(self, comm: ClusterComm, node_id: int) -> None:
        self.comm = comm
        self.node_id = node_id
        self._inboxes: Dict[int, Store] = {}
        self._any_inbox: Optional[Store] = None
        #: When True, deliveries go to the shared recv_any() queue.
        self.promiscuous = False

    def _inbox(self, src: int) -> Store:
        if self.promiscuous:
            return self._any_queue()
        if src not in self._inboxes:
            self._inboxes[src] = Store(self.comm.sim)
        return self._inboxes[src]

    def _any_queue(self) -> Store:
        if self._any_inbox is None:
            self._any_inbox = Store(self.comm.sim)
        return self._any_inbox

    def _deliver(self, src: int, payload: object) -> None:
        if self.promiscuous:
            self._any_queue().put((src, payload))
        else:
            self._inbox(src).put(payload)

    def _resolve_profile(
        self,
        profile: Optional[StreamProfile],
        compressible: Optional[bool],
    ) -> StreamProfile:
        """Map the caller's stream selection to a concrete profile.

        An explicit ``profile`` wins; the deprecated ``compressible``
        flag resolves to the cluster's default profile (the INCEPTIONN
        ToS-0x28 stream under the legacy ``compression`` shim).
        """
        if compressible is not None:
            warnings.warn(
                "the compressible= keyword is deprecated; pass a "
                "StreamProfile via profile= instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if profile is not None:
            return profile
        if compressible:
            return self.comm.default_profile
        return RAW_STREAM

    def _trace_codec(
        self,
        tracer: Tracer,
        codec: Optional[str],
        nbytes: int,
        compressed_nbytes: int,
        estimated: bool,
    ) -> None:
        """Record one compress call and its achieved (or assumed) ratio."""
        ratio = nbytes / compressed_nbytes if compressed_nbytes else float("inf")
        tracer.instant(
            "codec.compress",
            cat=CAT_CODEC,
            ts=self.comm.sim.now,
            node=self.node_id,
            codec=codec,
            nbytes=nbytes,
            compressed_nbytes=compressed_nbytes,
            ratio=ratio,
            estimated=estimated,
        )
        metrics = tracer.metrics
        metrics.counter("codec_bytes_in", codec=codec).inc(nbytes)
        metrics.counter("codec_bytes_out", codec=codec).inc(compressed_nbytes)
        metrics.histogram(
            "codec_ratio", buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0), codec=codec
        ).observe(ratio)

    def isend(
        self,
        dst: int,
        array: np.ndarray,
        profile: Optional[StreamProfile] = None,
        compressible: Optional[bool] = None,
    ) -> Event:
        """Non-blocking send; returns the delivery event.

        With a compressing ``profile`` and engines present, the array is
        passed through the profile's codec: the receiver sees the lossy
        reconstruction and the wire carries the measured compressed
        bytes under the codec's ToS byte.  ``compressible`` is the
        deprecated boolean alias for the cluster default profile.
        """
        stream = self._resolve_profile(profile, compressible)
        arr = np.ascontiguousarray(array, dtype=np.float32)
        tos = TOS_DEFAULT
        wire_payload = arr.nbytes
        compressed_nbytes = None
        deliver = arr
        codec_name = None
        if stream.compressing and self.comm.compression_active():
            tos = stream.resolved_tos
            result = stream.compress(arr.reshape(-1))
            compressed_nbytes = result.payload_nbytes
            wire_payload = compressed_nbytes
            deliver = result.values.reshape(arr.shape)
            codec_name = stream.codec
            tracer = self.comm.tracer
            if tracer is not None:
                self._trace_codec(
                    tracer, codec_name, arr.nbytes, compressed_nbytes, False
                )
        self.comm.transfers.append(
            TransferLog(
                src=self.node_id,
                dst=dst,
                nbytes=arr.nbytes,
                wire_payload_nbytes=wire_payload,
                compressed=compressed_nbytes is not None,
                sent_at=self.comm.sim.now,
                codec=codec_name,
            )
        )
        event = self.comm.network.send(
            self.node_id,
            dst,
            arr.nbytes,
            tos=tos,
            payload=deliver,
            compressed_nbytes=compressed_nbytes,
        )
        receiver = self.comm.endpoints[dst]
        event.add_callback(
            lambda ev: receiver._deliver(self.node_id, ev.value[0])
        )
        return event

    def isend_sized(
        self,
        dst: int,
        nbytes: int,
        profile: Optional[StreamProfile] = None,
        compression_ratio: Optional[float] = None,
        compressible: Optional[bool] = None,
    ) -> Event:
        """Timing-only send: bytes move, no array is materialized.

        Paper-scale experiments (hundreds of MB per message) use this
        path with a compression ratio measured on sampled gradients, so
        the wire timing stays faithful without allocating the payload.
        The profile supplies the stream's ToS; the ratio stays
        caller-measured because there are no values to compress here.
        """
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        # Validate the ratio up front: 0.0 is an error, not "unset"
        # (a falsy check here once silently sent uncompressed sizes).
        if compression_ratio is not None and compression_ratio < 1.0:
            raise ValueError(
                "compression ratio must be >= 1 "
                f"(got {compression_ratio!r}); pass None for uncompressed"
            )
        stream = self._resolve_profile(profile, compressible)
        tos = TOS_DEFAULT
        compressed_nbytes = None
        wire_payload = nbytes
        codec_name = None
        if stream.compressing and self.comm.compression_active():
            tos = stream.resolved_tos
            ratio = 1.0 if compression_ratio is None else compression_ratio
            compressed_nbytes = int(round(nbytes / ratio))
            wire_payload = compressed_nbytes
            codec_name = stream.codec
            tracer = self.comm.tracer
            if tracer is not None:
                self._trace_codec(
                    tracer, codec_name, nbytes, compressed_nbytes, True
                )
        self.comm.transfers.append(
            TransferLog(
                src=self.node_id,
                dst=dst,
                nbytes=nbytes,
                wire_payload_nbytes=wire_payload,
                compressed=compressed_nbytes is not None,
                sent_at=self.comm.sim.now,
                codec=codec_name,
            )
        )
        event = self.comm.network.send(
            self.node_id,
            dst,
            nbytes,
            tos=tos,
            payload=None,
            compressed_nbytes=compressed_nbytes,
        )
        receiver = self.comm.endpoints[dst]
        event.add_callback(lambda ev: receiver._deliver(self.node_id, nbytes))
        return event

    def recv(self, src: int) -> Event:
        """Event yielding the next array sent by ``src`` to this node."""
        if self.promiscuous:
            raise RuntimeError("promiscuous endpoints must use recv_any()")
        return self._inbox(src).get()

    def recv_any(self) -> Event:
        """Event yielding ``(src, payload)`` for the next arrival.

        Requires ``promiscuous = True`` *before* any message is sent to
        this endpoint.
        """
        if not self.promiscuous:
            raise RuntimeError("set promiscuous = True before using recv_any()")
        return self._any_queue().get()
