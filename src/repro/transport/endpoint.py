"""Message-passing endpoints over the simulated network.

This is the reproduction of the paper's software stack (Fig 11): an
OpenMPI-like layer whose ``collec_comm_comp`` APIs set the socket ToS to
0x28 so the NIC engines pick the stream up.  Endpoints move real NumPy
arrays between simulated nodes: the *values* a receiver observes are the
values the codec reconstructs (lossy when compression is on), and the
*bytes* the network simulator clocks are the codec's measured compressed
sizes — the functional and timing domains stay coupled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core import ErrorBound, compress, decompress
from repro.core.bounds import DEFAULT_BOUND
from repro.hardware.timing import engine_latency_s, engine_throughput_bps
from repro.network import (
    Event,
    Network,
    NicTimingModel,
    Simulation,
    Store,
    SwitchedStar,
    TOS_COMPRESS,
    TOS_DEFAULT,
)
from repro.network.topology import DEFAULT_BANDWIDTH_BPS


@dataclass
class TransferLog:
    """Per-message record kept by the cluster for experiment reporting."""

    src: int
    dst: int
    nbytes: int
    wire_payload_nbytes: int
    compressed: bool
    sent_at: float


@dataclass
class ClusterConfig:
    """Knobs of a simulated training cluster's communication plane."""

    num_nodes: int
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    compression: bool = False
    bound: ErrorBound = DEFAULT_BOUND
    engine_blocks: int = 8
    engine_clock_hz: float = 100e6
    link_latency_s: float = 2e-6
    switch_delay_s: float = 1e-6
    mss: int = 1460
    train_packets: int = 44


class ClusterComm:
    """A simulated cluster's communication fabric with one endpoint per node."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.sim = Simulation()
        self.topology = SwitchedStar(
            self.sim,
            config.num_nodes,
            bandwidth_bps=config.bandwidth_bps,
            link_latency_s=config.link_latency_s,
            switch_delay_s=config.switch_delay_s,
        )
        nic = NicTimingModel(
            compression=config.compression,
            engine_latency_s=engine_latency_s(config.engine_clock_hz),
            engine_throughput_bps=engine_throughput_bps(
                config.engine_blocks, config.engine_clock_hz
            ),
        )
        self.network = Network(
            self.sim,
            self.topology,
            mss=config.mss,
            train_packets=config.train_packets,
            nics={node: nic for node in range(config.num_nodes)},
        )
        self.endpoints: List[Endpoint] = [
            Endpoint(self, node) for node in range(config.num_nodes)
        ]
        self.transfers: List[TransferLog] = []

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def compression_active(self) -> bool:
        """Engines present on (all) NICs?"""
        return self.config.compression

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation; returns the final virtual time."""
        return self.sim.run(until=until)


class Endpoint:
    """One node's send/recv interface.

    Two receive styles exist: ``recv(src)`` (per-source FIFOs, used by
    the synchronous algorithms) and ``recv_any()`` (one shared FIFO,
    used by the asynchronous parameter server).  A delivery lands in
    exactly one of them, selected by the receiver's ``promiscuous``
    flag — mixing both styles on one endpoint is not supported.
    """

    def __init__(self, comm: ClusterComm, node_id: int) -> None:
        self.comm = comm
        self.node_id = node_id
        self._inboxes: Dict[int, Store] = {}
        self._any_inbox: Optional[Store] = None
        #: When True, deliveries go to the shared recv_any() queue.
        self.promiscuous = False

    def _inbox(self, src: int) -> Store:
        if self.promiscuous:
            return self._any_queue()
        if src not in self._inboxes:
            self._inboxes[src] = Store(self.comm.sim)
        return self._inboxes[src]

    def _any_queue(self) -> Store:
        if self._any_inbox is None:
            self._any_inbox = Store(self.comm.sim)
        return self._any_inbox

    def _deliver(self, src: int, payload: object) -> None:
        if self.promiscuous:
            self._any_queue().put((src, payload))
        else:
            self._inbox(src).put(payload)

    def isend(
        self, dst: int, array: np.ndarray, compressible: bool = False
    ) -> Event:
        """Non-blocking send; returns the delivery event.

        With ``compressible=True`` and engines present, the array is
        passed through the real codec: the receiver sees the lossy
        reconstruction and the wire carries the measured compressed
        bytes under ToS 0x28.
        """
        arr = np.ascontiguousarray(array, dtype=np.float32)
        tos = TOS_DEFAULT
        wire_payload = arr.nbytes
        compressed_nbytes = None
        deliver = arr
        if compressible and self.comm.compression_active():
            tos = TOS_COMPRESS
            cg = compress(arr.reshape(-1), self.comm.config.bound)
            compressed_nbytes = cg.compressed_nbytes
            wire_payload = compressed_nbytes
            deliver = decompress(cg).reshape(arr.shape)
        self.comm.transfers.append(
            TransferLog(
                src=self.node_id,
                dst=dst,
                nbytes=arr.nbytes,
                wire_payload_nbytes=wire_payload,
                compressed=compressed_nbytes is not None,
                sent_at=self.comm.sim.now,
            )
        )
        event = self.comm.network.send(
            self.node_id,
            dst,
            arr.nbytes,
            tos=tos,
            payload=deliver,
            compressed_nbytes=compressed_nbytes,
        )
        receiver = self.comm.endpoints[dst]
        event.add_callback(
            lambda ev: receiver._deliver(self.node_id, ev.value[0])
        )
        return event

    def isend_sized(
        self,
        dst: int,
        nbytes: int,
        compressible: bool = False,
        compression_ratio: Optional[float] = None,
    ) -> Event:
        """Timing-only send: bytes move, no array is materialized.

        Paper-scale experiments (hundreds of MB per message) use this
        path with a compression ratio measured on sampled gradients, so
        the wire timing stays faithful without allocating the payload.
        """
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        tos = TOS_DEFAULT
        compressed_nbytes = None
        wire_payload = nbytes
        if compressible and self.comm.compression_active():
            tos = TOS_COMPRESS
            ratio = compression_ratio if compression_ratio else 1.0
            if ratio < 1.0:
                raise ValueError("compression ratio cannot be below 1")
            compressed_nbytes = int(round(nbytes / ratio))
            wire_payload = compressed_nbytes
        self.comm.transfers.append(
            TransferLog(
                src=self.node_id,
                dst=dst,
                nbytes=nbytes,
                wire_payload_nbytes=wire_payload,
                compressed=compressed_nbytes is not None,
                sent_at=self.comm.sim.now,
            )
        )
        event = self.comm.network.send(
            self.node_id,
            dst,
            nbytes,
            tos=tos,
            payload=None,
            compressed_nbytes=compressed_nbytes,
        )
        receiver = self.comm.endpoints[dst]
        event.add_callback(lambda ev: receiver._deliver(self.node_id, nbytes))
        return event

    def recv(self, src: int) -> Event:
        """Event yielding the next array sent by ``src`` to this node."""
        if self.promiscuous:
            raise RuntimeError("promiscuous endpoints must use recv_any()")
        return self._inbox(src).get()

    def recv_any(self) -> Event:
        """Event yielding ``(src, payload)`` for the next arrival.

        Requires ``promiscuous = True`` *before* any message is sent to
        this endpoint.
        """
        if not self.promiscuous:
            raise RuntimeError("set promiscuous = True before using recv_any()")
        return self._any_queue().get()
