"""Transport layer: endpoints, collectives, ToS tagging over the simulator."""

from .aggregation import (
    AGG_ENDPOINT,
    AGG_SITES,
    AGG_SWITCH,
    GatherPart,
    SwitchGather,
    aggregate_endpoint,
    combine_parts,
    validate_agg_site,
)
from .collectives import (
    broadcast_from_root,
    recv_from,
    reduce_to_root,
    send_to,
)
from .endpoint import (
    ClusterComm,
    ClusterConfig,
    Endpoint,
    TransferLog,
    TransferSummary,
    summarize_transfers,
)
from .wire import (
    WireMessage,
    WireSegment,
    build_wire_message,
    measure_stream_ratio,
)

__all__ = [
    "AGG_ENDPOINT",
    "AGG_SITES",
    "AGG_SWITCH",
    "GatherPart",
    "SwitchGather",
    "aggregate_endpoint",
    "combine_parts",
    "validate_agg_site",
    "broadcast_from_root",
    "recv_from",
    "reduce_to_root",
    "send_to",
    "ClusterComm",
    "ClusterConfig",
    "Endpoint",
    "TransferLog",
    "TransferSummary",
    "summarize_transfers",
    "WireMessage",
    "WireSegment",
    "build_wire_message",
    "measure_stream_ratio",
]
