"""Transport layer: endpoints, collectives, ToS tagging over the simulator."""

from .collectives import (
    broadcast_from_root,
    recv_from,
    reduce_to_root,
    send_to,
)
from .endpoint import (
    ClusterComm,
    ClusterConfig,
    Endpoint,
    TransferLog,
    TransferSummary,
    summarize_transfers,
)
from .wire import (
    WireMessage,
    WireSegment,
    build_wire_message,
    measure_stream_ratio,
)

__all__ = [
    "broadcast_from_root",
    "recv_from",
    "reduce_to_root",
    "send_to",
    "ClusterComm",
    "ClusterConfig",
    "Endpoint",
    "TransferLog",
    "TransferSummary",
    "summarize_transfers",
    "WireMessage",
    "WireSegment",
    "build_wire_message",
    "measure_stream_ratio",
]
