"""One message, one wire representation (paper Figs 8–11).

A :class:`WireMessage` is the single artifact every send produces: the
stream's codec runs **exactly once** through the sender NIC's engine
dispatch, yielding the message's wire size, its ToS tag, the receiver's
reconstruction, and an ordered train of per-packet segments.  Every
consumer then reads from that one object:

* the network simulator clocks ``wire_nbytes`` (timing domain),
* the receiver endpoint hands it to the destination NIC's Tag-Decoder
  path via :meth:`WireMessage.deliver` (functional domain),
* :class:`repro.hardware.nic.NicCounters` and the obs codec spans are
  fed from the same build, not from parallel call sites.

Two build modes share the pipeline: *functional* (``array=``) runs the
real codec and carries the lossy reconstruction; *size-only*
(``nbytes=``) moves bytes for paper-scale timing studies, with the wire
size derived from a caller-measured ratio (see
:func:`measure_stream_ratio`).  This retires the old sized-send
side path entirely.

Per-packet segments are generated lazily — a 250 MB sized message does
not materialize 170k objects unless a consumer actually walks the train
— and their byte counts use cumulative rounding so they always sum to
the message totals exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.core import RAW_STREAM, StreamProfile
from repro.network.packet import (
    DEFAULT_MSS,
    HEADER_BYTES,
    TOS_DEFAULT,
    distribute_payload,
    packet_count,
)

if TYPE_CHECKING:
    from repro.hardware.nic import InceptionnNic

#: Sample size for measuring a stream's compression ratio.  Small enough
#: for the bit-serial Python codecs (sz_like, snappy_like) to stay fast.
RATIO_SAMPLE_VALUES = 1 << 14


@dataclass(frozen=True)
class WireSegment:
    """One ToS-tagged packet of a message's train.

    ``payload_nbytes`` is the packet's on-wire payload (post-engine);
    ``raw_nbytes`` is the application bytes it carries.  They differ
    exactly when the segment's ToS routed it through an engine.
    """

    seq: int
    tos: int
    payload_nbytes: int
    raw_nbytes: int
    #: float32 values carried, when the raw payload is word-aligned.
    num_values: Optional[int] = None

    @property
    def wire_nbytes(self) -> int:
        """Header plus on-wire payload."""
        return HEADER_BYTES + self.payload_nbytes

    @property
    def engine_processed(self) -> bool:
        """True when the NIC comparator dispatched this packet."""
        return self.tos != TOS_DEFAULT


@dataclass
class WireMessage:
    """A message as the wire sees it: header info plus a packet train."""

    src: int
    dst: int
    tos: int
    codec: Optional[str]
    #: Application (uncompressed) bytes.
    nbytes: int
    #: On-wire payload bytes (post-engine, headers excluded).
    wire_payload_nbytes: int
    num_packets: int
    mss: int
    compressed: bool
    #: Size-only messages move bytes, not values (paper-scale timing).
    size_only: bool
    #: Receiver-side reconstruction (codec output); None when size-only.
    values: Optional[np.ndarray] = None

    @property
    def wire_nbytes(self) -> int:
        """Total bytes clocked on the wire (headers + payload)."""
        return self.num_packets * HEADER_BYTES + self.wire_payload_nbytes

    @property
    def ratio(self) -> float:
        """Achieved payload compression ratio (1.0 for empty messages)."""
        if self.wire_payload_nbytes:
            return self.nbytes / self.wire_payload_nbytes
        return float("inf") if self.nbytes else 1.0

    def segments(self) -> Iterator[WireSegment]:
        """The packet train, generated lazily in sequence order.

        Raw bytes fill MSS-sized packets; wire bytes spread over the
        same packets by cumulative rounding, so both sum exactly to the
        message totals (the engine compresses payloads in place — the
        packet count never changes, mirroring Sec. VI-A).
        """
        wire_sizes = distribute_payload(self.wire_payload_nbytes, self.num_packets)
        raw_left = self.nbytes
        for seq in range(self.num_packets):
            raw = min(self.mss, raw_left)
            raw_left -= raw
            num_values = raw // 4 if raw % 4 == 0 else None
            yield WireSegment(
                seq=seq,
                tos=self.tos,
                payload_nbytes=wire_sizes[seq],
                raw_nbytes=raw,
                num_values=num_values,
            )

    def deliver(self, nic: Optional["InceptionnNic"] = None) -> object:
        """What the destination host observes after the RX pipeline.

        Models the paper's Fig 10 receive path: the train lands in the
        Burst Buffer, the Tag Decoder walks it packet by packet, and the
        host sees the reconstructed values (or, size-only, the byte
        count).  ``nic`` is the destination's functional NIC; its RX
        counters tick once per successful delivery regardless of how
        many wire traversals retransmissions needed.
        """
        if nic is not None:
            engine_packets = self.num_packets if self.compressed else 0
            nic.account_rx(self.num_packets, engine_packets)
        if self.size_only:
            return self.nbytes
        return self.values


def build_wire_message(
    src: int,
    dst: int,
    *,
    stream: Optional[StreamProfile] = None,
    array: Optional[np.ndarray] = None,
    nbytes: Optional[int] = None,
    nic: Optional["InceptionnNic"] = None,
    ratio: Optional[float] = None,
    mss: int = DEFAULT_MSS,
) -> WireMessage:
    """Build the single wire representation of one send.

    Exactly one of ``array`` (functional mode: the codec runs on the
    real values) or ``nbytes`` (size-only mode: the wire size comes
    from ``ratio``) must be given.  ``nic`` is the *sender's* functional
    NIC; its comparator decides whether the stream's ToS dispatches to
    an engine, and its TX counters tick for the built train.

    ``ratio`` is validated before the dispatch check — a ratio below
    1.0 (including 0.0, which is not "unset") is a caller bug no matter
    what engines are present.  ``None`` means "caller did not measure",
    i.e. the uncompressed size.
    """
    if (array is None) == (nbytes is None):
        raise ValueError("pass exactly one of array= or nbytes=")
    if nbytes is not None and nbytes < 0:
        raise ValueError("nbytes cannot be negative")
    if ratio is not None:
        if array is not None:
            raise ValueError(
                "ratio= only applies to size-only messages; functional "
                "sends measure their ratio by running the codec"
            )
        if ratio < 1.0:
            raise ValueError(
                "compression ratio must be >= 1 "
                f"(got {ratio!r}); pass None for uncompressed"
            )
    if stream is None:
        stream = RAW_STREAM
    dispatched = (
        stream.compressing
        and nic is not None
        and nic.dispatches(stream.resolved_tos)
    )
    tos = TOS_DEFAULT
    codec_name: Optional[str] = None
    values: Optional[np.ndarray] = None

    if array is not None:
        arr = np.ascontiguousarray(array, dtype=np.float32)
        raw_nbytes = arr.nbytes
        if dispatched:
            result = stream.compress(arr.reshape(-1))
            wire_payload = result.payload_nbytes
            values = result.values.reshape(arr.shape)
            tos = stream.resolved_tos
            codec_name = stream.codec
        else:
            wire_payload = raw_nbytes
            values = arr
        size_only = False
    else:
        raw_nbytes = int(nbytes)  # type: ignore[arg-type]
        if dispatched:
            wire_payload = int(round(raw_nbytes / (1.0 if ratio is None else ratio)))
            tos = stream.resolved_tos
            codec_name = stream.codec
        else:
            wire_payload = raw_nbytes
        size_only = True

    num_packets = packet_count(raw_nbytes, mss)
    msg = WireMessage(
        src=src,
        dst=dst,
        tos=tos,
        codec=codec_name,
        nbytes=raw_nbytes,
        wire_payload_nbytes=wire_payload,
        num_packets=num_packets,
        mss=mss,
        compressed=dispatched,
        size_only=size_only,
        values=values,
    )
    if nic is not None:
        account_tx_traversal(nic, msg, num_packets, raw_nbytes, wire_payload)
    return msg


def account_tx_traversal(
    nic: "InceptionnNic",
    msg: WireMessage,
    packets: int,
    raw_nbytes: int,
    wire_nbytes: int,
) -> None:
    """Tick a sender NIC's TX counters for one wire traversal.

    Called once at build time and once more per retransmission — the
    counters see every traversal of the wire, while RX counters (in
    :meth:`WireMessage.deliver`) see only the successful one.
    """
    if msg.compressed:
        nic.account_tx(packets, packets, raw_nbytes, wire_nbytes)
    else:
        nic.account_tx(packets, 0, 0, 0)


def measure_stream_ratio(
    stream: StreamProfile,
    sample: Optional[np.ndarray] = None,
    seed: int = 0,
) -> float:
    """Compression ratio of a stream's codec on sampled gradients.

    Size-only messages cannot run the codec on real payloads, so
    paper-scale simulations measure the ratio once on a gradient-like
    sample and apply it to every message — the paper's own methodology
    for its Table II/Fig 15 projections.
    """
    if not stream.compressing:
        return 1.0
    if sample is None:
        rng = np.random.default_rng(seed)
        sample = (rng.standard_normal(RATIO_SAMPLE_VALUES) * 0.004).astype(
            np.float32
        )
    result = stream.compress(sample)
    # Sized sends reject ratios below 1 (the wire never inflates), so
    # clamp expansion (e.g. lossless LZ on incompressible floats).
    return max(1.0, sample.nbytes / max(1, result.payload_nbytes))


__all__ = [
    "WireMessage",
    "WireSegment",
    "account_tx_traversal",
    "build_wire_message",
    "measure_stream_ratio",
]
