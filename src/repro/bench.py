"""Wall-clock benchmark harness: ``repro bench``.

Runs a fixed suite — codec encode/decode throughput, packet-vs-flow
exchange wall-clock at several scales, and strategy smoke timings — and
writes a schema-versioned JSON artifact (``BENCH_9.json`` at the repo
root by default) so the performance trajectory is tracked PR over PR.
A comparator reports per-entry deltas against the most recent prior
``BENCH_*.json`` found next to the output file.

This module measures *host* wall-clock by design and is therefore the
R8 lint rule's second exempt module (alongside ``repro.obs.export``);
every simulated-time result it records still comes from the
deterministic event kernel.
"""

from __future__ import annotations

import re
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

#: Artifact identity; bump ``BENCH_VERSION`` on schema changes.
BENCH_SCHEMA = "repro.bench"
BENCH_VERSION = 1
#: Stacked-PR sequence number, also the default artifact suffix.
BENCH_SEQUENCE = 10
DEFAULT_OUTPUT = f"BENCH_{BENCH_SEQUENCE}.json"

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def _timed(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _entry(name: str, wall_s: float, **meta: Any) -> Dict[str, Any]:
    return {"name": name, "wall_s": wall_s, "meta": meta}


def _codec_entries(quick: bool) -> List[Dict[str, Any]]:
    """Codec + container kernel throughput on a shell-model sample."""
    from repro.core import ErrorBound, compress, decompress

    n = 1 << 17 if quick else 1 << 21
    rng = np.random.default_rng(0)
    values = (rng.standard_normal(n) * 0.004).astype(np.float32)
    bound = ErrorBound(10)
    compressed = compress(values, bound)
    data = compressed.to_bytes()
    mb = values.nbytes / 1e6

    entries = []
    for name, fn in (
        ("codec.compress", lambda: compress(values, bound)),
        ("codec.decompress", lambda: decompress(compressed)),
        ("container.to_bytes", compressed.to_bytes),
        (
            "container.from_bytes",
            lambda: type(compressed).from_bytes(data, n, bound),
        ),
    ):
        wall = _timed(fn)
        entries.append(
            _entry(name, wall, num_values=n, mbytes_per_s=mb / wall)
        )
    return entries


def _exchange_entries(quick: bool) -> List[Dict[str, Any]]:
    """Packet-vs-flow exchange wall-clock at several scales."""
    from repro.perfmodel import simulate_ring_exchange, simulate_wa_exchange

    nbytes = 2_000_000
    packet_scales = (4,) if quick else (4, 8)
    flow_scales = (4, 64, 256) if quick else (4, 64, 1024)
    entries = []
    for algo, simulate in (
        ("ring", simulate_ring_exchange),
        ("wa", simulate_wa_exchange),
    ):
        for fidelity, scales in (
            ("packet", packet_scales),
            ("flow", flow_scales),
        ):
            for workers in scales:
                result: Dict[str, float] = {}

                def run() -> None:
                    r = simulate(
                        workers,
                        nbytes,
                        compress_gradients=True,
                        fidelity=fidelity,
                    )
                    result["total_s"] = r.total_s

                wall = _timed(run, repeats=1 if fidelity == "packet" else 2)
                entries.append(
                    _entry(
                        f"exchange.{algo}.{fidelity}.w{workers}",
                        wall,
                        workers=workers,
                        nbytes=nbytes,
                        simulated_s=result["total_s"],
                    )
                )
    return entries


def _contention_entries(quick: bool) -> List[Dict[str, Any]]:
    """Fig-15-style contention study on a shared k=4 fat-tree.

    Six foreground workers span two pods (so the ring shares pod-1
    edge/agg uplinks with the tenants); two background tenants — a
    training job and an inference service — compete for those links.
    Three conditions: dedicated fabric, FIFO sharing, and strict
    per-ToS priority queues protecting the exchange.  Small trains
    (128 packets) give the priority scheduler preemption points;
    ``simulated_s`` is the number the study is about, wall time is
    tracked like every other entry.
    """
    from repro.network import parse_tenants
    from repro.perfmodel import simulate_ring_exchange

    nbytes = 1_000_000 if quick else 2_000_000
    tenants = parse_tenants("train:4,infer:4")
    conditions = (
        ("idle", (), False),
        ("fifo", tenants, False),
        ("priority", tenants, True),
    )
    entries = []
    for label, active, prioritize in conditions:
        result: Dict[str, Any] = {}

        def run() -> None:
            r = simulate_ring_exchange(
                6,
                nbytes,
                topology="fat-tree:k=4",
                tenants=active,
                prioritize=prioritize,
                tenant_seed=3,
                train_packets=128,
            )
            result["simulated_s"] = r.total_s
            result["background_messages"] = r.background_messages

        wall = _timed(run, repeats=1)
        entries.append(
            _entry(
                f"contention.fat-tree.{label}",
                wall,
                workers=6,
                nbytes=nbytes,
                tenants=len(active),
                prioritize=prioritize,
                simulated_s=result["simulated_s"],
                background_messages=result["background_messages"],
            )
        )
    return entries


def _aggregation_entries(quick: bool) -> List[Dict[str, Any]]:
    """Endpoint-vs-switch aggregation sites on a k=4 fat-tree.

    The same worker-aggregator exchange runs once per site with the
    lossless homomorphic stream; ``link_payload_nbytes`` is the metric
    the study is about (in-network partial sums shed fan-in bytes from
    the fabric's links), with engine cycles and reduction counts along
    for the ride.
    """
    from repro.core import profile_for
    from repro.perfmodel import simulate_wa_exchange

    nbytes = 1_000_000 if quick else 2_000_000
    stream = profile_for("lossless_hc")
    entries = []
    for site in ("endpoint", "switch"):
        result: Dict[str, Any] = {}

        def run() -> None:
            r = simulate_wa_exchange(
                4,
                nbytes,
                stream=stream,
                topology="fat-tree:k=4",
                agg_site=site,
            )
            result["simulated_s"] = r.total_s
            result["link_payload_nbytes"] = r.link_payload_nbytes
            result["agg_engine_cycles"] = r.agg_engine_cycles
            result["switch_reductions"] = r.switch_reductions

        wall = _timed(run, repeats=1)
        entries.append(
            _entry(
                f"aggregation.{site}.fat-tree.w4",
                wall,
                workers=4,
                nbytes=nbytes,
                agg_site=site,
                simulated_s=result["simulated_s"],
                link_payload_nbytes=result["link_payload_nbytes"],
                agg_engine_cycles=result["agg_engine_cycles"],
                switch_reductions=result["switch_reductions"],
            )
        )
    return entries


def _strategy_entries(quick: bool) -> List[Dict[str, Any]]:
    """End-to-end strategy smoke timings on the tiny HDC model."""
    from repro.distributed import get_strategy, run_strategy
    from repro.dnn import SGD, LRSchedule, build_hdc, hdc_dataset
    from repro.transport import ClusterConfig

    iterations = 1 if quick else 3
    dataset = hdc_dataset(train_size=120, test_size=30, seed=0)
    entries = []
    for name in ("ring", "wa"):
        strategy = get_strategy(name)
        num_nodes = 2 + strategy.extra_nodes(2, {})
        final: Dict[str, float] = {}

        def run() -> None:
            result = run_strategy(
                strategy,
                build_net=lambda s: build_hdc(seed=s),
                make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
                dataset=dataset,
                num_workers=2,
                iterations=iterations,
                batch_size=10,
                cluster=ClusterConfig(num_nodes=num_nodes),
                seed=0,
            )
            final["virtual_time_s"] = result.virtual_time_s

        wall = _timed(run, repeats=1)
        entries.append(
            _entry(
                f"strategy.{name}.smoke",
                wall,
                iterations=iterations,
                simulated_s=final["virtual_time_s"],
            )
        )
    return entries


def run_bench(quick: bool = False) -> Dict[str, Any]:
    """Run the fixed suite and return the schema-versioned document."""
    results: List[Dict[str, Any]] = []
    results.extend(_codec_entries(quick))
    results.extend(_exchange_entries(quick))
    results.extend(_contention_entries(quick))
    results.extend(_aggregation_entries(quick))
    results.extend(_strategy_entries(quick))
    return {
        "schema": BENCH_SCHEMA,
        "version": BENCH_VERSION,
        "sequence": BENCH_SEQUENCE,
        "quick": quick,
        "results": results,
    }


def validate_bench(doc: Any) -> None:
    """Raise :class:`ValueError` unless ``doc`` is a valid bench artifact."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"schema must be {BENCH_SCHEMA!r}")
    if doc.get("version") != BENCH_VERSION:
        raise ValueError(f"version must be {BENCH_VERSION}")
    if not isinstance(doc.get("sequence"), int) or doc["sequence"] < 0:
        raise ValueError("sequence must be a non-negative integer")
    if not isinstance(doc.get("quick"), bool):
        raise ValueError("quick must be a boolean")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("results must be a non-empty list")
    seen = set()
    for i, entry in enumerate(results):
        if not isinstance(entry, dict):
            raise ValueError(f"results[{i}] must be an object")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"results[{i}].name must be a non-empty string")
        if name in seen:
            raise ValueError(f"duplicate result name {name!r}")
        seen.add(name)
        wall = entry.get("wall_s")
        if not isinstance(wall, (int, float)) or not wall >= 0.0:
            raise ValueError(f"results[{i}].wall_s must be >= 0")
        if not isinstance(entry.get("meta"), dict):
            raise ValueError(f"results[{i}].meta must be an object")


def find_prior(output: Path) -> Optional[Path]:
    """Most recent prior ``BENCH_*.json`` next to ``output``.

    "Prior" means a strictly smaller numeric suffix than the output's
    (or than the current sequence number when the output name doesn't
    follow the convention); the largest such suffix wins.
    """
    match = _BENCH_NAME.match(output.name)
    current = int(match.group(1)) if match else BENCH_SEQUENCE
    best: Optional[Tuple[int, Path]] = None
    for candidate in output.parent.glob("BENCH_*.json"):
        m = _BENCH_NAME.match(candidate.name)
        if m is None:
            continue
        seq = int(m.group(1))
        if seq < current and (best is None or seq > best[0]):
            best = (seq, candidate)
    return best[1] if best else None


def compare_bench(
    current: Dict[str, Any], prior: Dict[str, Any]
) -> List[Tuple[str, float, float]]:
    """Per-entry ``(name, prior_wall_s, current_wall_s)`` for shared names."""
    prior_walls = {
        e["name"]: float(e["wall_s"]) for e in prior.get("results", [])
    }
    out = []
    for entry in current["results"]:
        name = entry["name"]
        if name in prior_walls:
            out.append((name, prior_walls[name], float(entry["wall_s"])))
    return out


def render_comparison(
    rows: List[Tuple[str, float, float]], prior_name: str
) -> str:
    """Human-readable delta table against ``prior_name``."""
    if not rows:
        return f"no overlapping entries with {prior_name}"
    lines = [f"deltas vs {prior_name} (negative = faster now):"]
    for name, before, now in rows:
        delta = (now - before) / before * 100.0 if before > 0 else float("nan")
        lines.append(
            f"  {name:<32} {before * 1e3:10.2f} ms -> {now * 1e3:10.2f} ms "
            f"({delta:+7.1f}%)"
        )
    return "\n".join(lines)
