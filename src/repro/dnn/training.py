"""Single-node training loop and gradient-trace capture.

The local computation of one distributed iteration (Algorithm 1 lines
3–5): draw a minibatch, forward, backward, produce the flat local
gradient.  Distributed algorithms wrap this; the trace capture feeds the
gradient-distribution and compression-statistics experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .data import Dataset
from .metrics import top1_accuracy, top5_accuracy
from .network import Sequential
from .optim import SGD


@dataclass
class TrainResult:
    """History of a training run."""

    losses: List[float] = field(default_factory=list)
    test_top1: List[float] = field(default_factory=list)
    test_top5: List[float] = field(default_factory=list)

    @property
    def final_top1(self) -> float:
        if not self.test_top1:
            raise ValueError("no evaluations recorded")
        return self.test_top1[-1]


class LocalTrainer:
    """Compute-side of one worker: minibatch -> local gradient -> update."""

    def __init__(
        self,
        net: Sequential,
        optimizer: SGD,
        dataset: Dataset,
        batch_size: int,
        seed: "int | Sequence[int]" = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.net = net
        self.optimizer = optimizer
        self.dataset = dataset
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)

    def local_gradient(self) -> "tuple[float, np.ndarray]":
        """Lines 3–5 of Algorithm 1: loss and flat local gradient."""
        x, y = self.dataset.sample_batch(self.batch_size, self.rng)
        loss = self.net.compute_loss(x, y, training=True)
        self.net.backward()
        return loss, self.net.gradient_vector()

    def apply_gradient(self, gradient: np.ndarray) -> None:
        """Line 21 of Algorithm 1: ``w <- w - lr * g``."""
        self.optimizer.step_with_vector(self.net, gradient)

    def evaluate(self) -> "tuple[float, float]":
        """Top-1/top-5 accuracy on the shared test set."""
        logits = self.net.predict(self.dataset.test_x)
        return (
            top1_accuracy(logits, self.dataset.test_y),
            top5_accuracy(logits, self.dataset.test_y),
        )


def train_single_node(
    net: Sequential,
    optimizer: SGD,
    dataset: Dataset,
    batch_size: int,
    iterations: int,
    seed: int = 0,
    eval_every: Optional[int] = None,
    gradient_hook: Optional[Callable[[int, np.ndarray], np.ndarray]] = None,
) -> TrainResult:
    """Plain (non-distributed) SGD training.

    ``gradient_hook(iteration, g) -> g'`` lets experiments perturb the
    gradient before the update — the mechanism behind the truncation and
    lossy-compression accuracy studies (Fig 4 / Fig 14).
    """
    trainer = LocalTrainer(net, optimizer, dataset, batch_size, seed=seed)
    result = TrainResult()
    for iteration in range(iterations):
        loss, grad = trainer.local_gradient()
        if gradient_hook is not None:
            grad = gradient_hook(iteration, grad)
        trainer.apply_gradient(grad)
        result.losses.append(loss)
        if eval_every and (iteration + 1) % eval_every == 0:
            top1, top5 = trainer.evaluate()
            result.test_top1.append(top1)
            result.test_top5.append(top5)
    if not result.test_top1:
        top1, top5 = trainer.evaluate()
        result.test_top1.append(top1)
        result.test_top5.append(top5)
    return result


def capture_gradient_trace(
    net: Sequential,
    optimizer: SGD,
    dataset: Dataset,
    batch_size: int,
    iterations: int,
    capture_at: List[int],
    seed: int = 0,
) -> "dict[int, np.ndarray]":
    """Train and snapshot the gradient vector at chosen iterations.

    Feeds Fig 5 (gradient value distributions over training stages) and
    Table III (bitwidth distributions of compressed gradients).
    """
    snapshots: "dict[int, np.ndarray]" = {}
    wanted = set(capture_at)

    def hook(iteration: int, grad: np.ndarray) -> np.ndarray:
        if iteration in wanted:
            snapshots[iteration] = grad.copy()
        return grad

    train_single_node(
        net,
        optimizer,
        dataset,
        batch_size,
        iterations,
        seed=seed,
        gradient_hook=hook,
    )
    return snapshots
