"""Weight initializers for the NumPy DNN framework."""

from __future__ import annotations

import numpy as np


def he_normal(rng: np.random.Generator, shape: tuple, fan_in: int) -> np.ndarray:
    """He (Kaiming) initialization — the right scale for ReLU stacks."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(
    rng: np.random.Generator, shape: tuple, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot uniform initialization for tanh/linear layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fans must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple) -> np.ndarray:
    """Bias initializer."""
    return np.zeros(shape, dtype=np.float32)
