"""Loss functions."""

from __future__ import annotations

from typing import Optional

import numpy as np


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy with integer class labels."""

    def __init__(self) -> None:
        self._probs: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy over the batch."""
        if logits.ndim != 2:
            raise ValueError("logits must be (batch, classes)")
        if labels.shape[0] != logits.shape[0]:
            raise ValueError("batch size mismatch between logits and labels")
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._probs = probs
        self._labels = labels
        batch = np.arange(logits.shape[0], dtype=np.intp)
        return float(-np.log(probs[batch, labels] + 1e-12).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        batch = np.arange(grad.shape[0], dtype=np.intp)
        grad[batch, self._labels] -= 1.0
        return (grad / grad.shape[0]).astype(np.float32)
