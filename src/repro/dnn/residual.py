"""Batch normalization and residual blocks — the ResNet ingredients.

The paper evaluates ResNet-50/152; at laptop scale we provide a genuine
residual network (skip connections + batch norm), both to make the
accuracy experiments representative of that model family and because a
reproduction a ResNet paper leans on should contain one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, ReLU
from .network import Sequential


class BatchNorm2D(Layer):
    """Per-channel batch normalization over (N, C, H, W) tensors."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        if channels < 1:
            raise ValueError("channels must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.eps = eps
        self.momentum = momentum
        self.params["gamma"] = np.ones(channels, dtype=np.float32)
        self.params["beta"] = np.zeros(channels, dtype=np.float32)
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError("BatchNorm2D expects (N, C, H, W)")
        axes = (0, 2, 3)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(np.float32)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var
        shape = (1, -1, 1, 1)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean.reshape(shape)) * inv_std.reshape(shape)
        out = (
            self.params["gamma"].reshape(shape) * normalized
            + self.params["beta"].reshape(shape)
        ).astype(np.float32)
        if training:
            self._cache = (normalized, inv_std, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (training)")
        normalized, inv_std, x_shape = self._cache
        n = x_shape[0] * x_shape[2] * x_shape[3]
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
        self.grads["gamma"] = (grad_out * normalized).sum(axis=axes)
        self.grads["beta"] = grad_out.sum(axis=axes)
        gamma = self.params["gamma"].reshape(shape)
        grad_norm = grad_out * gamma
        # Standard batch-norm input gradient.
        grad_x = (
            inv_std.reshape(shape)
            / n
            * (
                n * grad_norm
                - grad_norm.sum(axis=axes).reshape(shape)
                - normalized * (grad_norm * normalized).sum(axis=axes).reshape(shape)
            )
        )
        return grad_x.astype(np.float32)


class ResidualBlock(Layer):
    """Two 3x3 convolutions with batch norm and an identity skip.

    When ``out_channels != in_channels`` the skip path uses a 1x1
    convolution projection, as in ResNet's dimension-matching blocks.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.conv1 = Conv2D(in_channels, out_channels, 3, rng, padding=1)
        self.bn1 = BatchNorm2D(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2D(out_channels, out_channels, 3, rng, padding=1)
        self.bn2 = BatchNorm2D(out_channels)
        self.relu2 = ReLU()
        self.projection: Optional[Conv2D] = None
        if in_channels != out_channels:
            self.projection = Conv2D(in_channels, out_channels, 1, rng)
        self._sublayers = [
            layer
            for layer in (
                self.conv1,
                self.bn1,
                self.conv2,
                self.bn2,
                self.projection,
            )
            if layer is not None
        ]
        # Expose sub-layer parameters under prefixed names so the flat
        # parameter/gradient vectors see through the composite.
        for index, layer in enumerate(self._sublayers):
            for name, param in layer.params.items():
                self.params[f"{index}:{name}"] = param

    def _sync_params_down(self) -> None:
        for index, layer in enumerate(self._sublayers):
            for name in layer.params:
                layer.params[name] = self.params[f"{index}:{name}"]

    def _sync_grads_up(self) -> None:
        for index, layer in enumerate(self._sublayers):
            for name, grad in layer.grads.items():
                self.grads[f"{index}:{name}"] = grad

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._sync_params_down()
        out = self.conv1.forward(x, training)
        out = self.bn1.forward(out, training)
        out = self.relu1.forward(out, training)
        out = self.conv2.forward(out, training)
        out = self.bn2.forward(out, training)
        skip = x if self.projection is None else self.projection.forward(x, training)
        return self.relu2.forward(out + skip, training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = self.relu2.backward(grad_out)
        grad_main = self.bn2.backward(grad_sum)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        if self.projection is None:
            grad_skip = grad_sum
        else:
            grad_skip = self.projection.backward(grad_sum)
        self._sync_grads_up()
        return grad_main + grad_skip


def build_mini_resnet(seed: int = 0, num_classes: int = 10) -> Sequential:
    """A small but genuine residual network for 3x16x16 inputs."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(3, 16, kernel_size=3, rng=rng, padding=1),
            BatchNorm2D(16),
            ReLU(),
            ResidualBlock(16, 16, rng),
            MaxPool2D(2),
            ResidualBlock(16, 32, rng),
            MaxPool2D(2),
            Flatten(),
            Dense(32 * 4 * 4, num_classes, rng),
        ]
    )
