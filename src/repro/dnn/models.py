"""Model zoo: trainable networks and communication-size shells.

Two kinds of models, matching the reproduction strategy in DESIGN.md:

* **Trainable** — :func:`build_hdc` is the paper's HDC net (five
  fully-connected layers of width 500, ~2.5 MB); :func:`build_mini_cnn`
  is a small convolutional proxy standing in for AlexNet in accuracy
  experiments (conv/pool/FC with ReLU and dropout, the same structural
  ingredients).
* **Shells** — :class:`ModelSpec` records the paper's exact
  communication-relevant numbers (model size, Table I hyper-parameters,
  Table II compute-time profile) for AlexNet, VGG-16, ResNet-50,
  ResNet-152 and HDC, used by the timing experiments where gradient
  *bytes*, not values, matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU
from .network import Sequential
from .optim import LRSchedule, SGD

MB = 2**20


@dataclass(frozen=True)
class Hyperparameters:
    """One column of the paper's Table I."""

    per_node_batch: int
    learning_rate: float
    lr_reduction: float
    lr_reduction_every: int
    momentum: float
    weight_decay: float
    training_iterations: int

    def make_optimizer(self) -> SGD:
        schedule = LRSchedule(
            base_lr=self.learning_rate,
            factor=self.lr_reduction,
            every=self.lr_reduction_every,
        )
        return SGD(
            schedule, momentum=self.momentum, weight_decay=self.weight_decay
        )


@dataclass(frozen=True)
class ModelSpec:
    """Communication-facing description of a benchmark DNN."""

    name: str
    size_mb: float
    hyper: Hyperparameters
    #: Gradient-distribution mixture, calibrated per model so that the
    #: synthetic gradients reproduce the paper's Table III bitwidth
    #: fractions: a tight near-zero Gaussian core (the Fig 5 peak) plus
    #: a heavier tail component.
    core_std: float = 0.0005
    tail_fraction: float = 0.1
    tail_std: float = 0.1

    @property
    def nbytes(self) -> int:
        return int(self.size_mb * MB)

    @property
    def num_parameters(self) -> int:
        return self.nbytes // 4

    def synthetic_gradients(
        self, rng: np.random.Generator, size: Optional[int] = None
    ) -> np.ndarray:
        """Draw a gradient vector shaped like the model's real ones.

        A two-component Gaussian mixture; used for communication
        experiments on shell models where only value *statistics*
        matter (compression ratios, bitwidth classes).
        """
        n = self.num_parameters if size is None else size
        core = rng.standard_normal(n).astype(np.float32) * self.core_std
        tail_mask = rng.random(n) < self.tail_fraction
        tail = rng.standard_normal(n).astype(np.float32) * self.tail_std
        return np.where(tail_mask, tail, core).astype(np.float32)


#: Table I, column by column.  (The paper prints some learning rates with
#: a minus sign; gradient *descent* direction is handled by the update
#: rule, so magnitudes are what matters.)
PAPER_MODELS: Dict[str, ModelSpec] = {
    "AlexNet": ModelSpec(
        name="AlexNet",
        size_mb=233,
        hyper=Hyperparameters(
            per_node_batch=64,
            learning_rate=0.01,
            lr_reduction=10,
            lr_reduction_every=100_000,
            momentum=0.9,
            weight_decay=0.00005,
            training_iterations=320_000,
        ),
        core_std=0.0005,
        tail_fraction=0.24,
        tail_std=0.35,
    ),
    "HDC": ModelSpec(
        name="HDC",
        size_mb=2.5,
        hyper=Hyperparameters(
            per_node_batch=25,
            learning_rate=0.1,
            lr_reduction=5,
            lr_reduction_every=2_000,
            momentum=0.9,
            weight_decay=0.00005,
            training_iterations=10_000,
        ),
        core_std=0.0004,
        tail_fraction=0.08,
        tail_std=0.10,
    ),
    "ResNet-50": ModelSpec(
        name="ResNet-50",
        size_mb=98,
        hyper=Hyperparameters(
            per_node_batch=16,
            learning_rate=0.1,
            lr_reduction=10,
            lr_reduction_every=200_000,
            momentum=0.9,
            weight_decay=0.0001,
            training_iterations=600_000,
        ),
        core_std=0.0004,
        tail_fraction=0.19,
        tail_std=0.03,
    ),
    "VGG-16": ModelSpec(
        name="VGG-16",
        size_mb=525,
        hyper=Hyperparameters(
            per_node_batch=64,
            learning_rate=0.01,
            lr_reduction=10,
            lr_reduction_every=100_000,
            momentum=0.9,
            weight_decay=0.00005,
            training_iterations=370_000,
        ),
        core_std=0.0004,
        tail_fraction=0.06,
        tail_std=0.40,
    ),
    # Fig 3 additionally reports ResNet-152's model size.
    "ResNet-152": ModelSpec(
        name="ResNet-152",
        size_mb=230,
        hyper=Hyperparameters(
            per_node_batch=16,
            learning_rate=0.1,
            lr_reduction=10,
            lr_reduction_every=200_000,
            momentum=0.9,
            weight_decay=0.0001,
            training_iterations=600_000,
        ),
        core_std=0.0004,
        tail_fraction=0.19,
        tail_std=0.03,
    ),
}


def build_hdc(seed: int = 0, input_dim: int = 784, num_classes: int = 10) -> Sequential:
    """The paper's HDC net: five fully-connected layers, hidden width 500."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(input_dim, 500, rng),
            ReLU(),
            Dense(500, 500, rng),
            ReLU(),
            Dense(500, 500, rng),
            ReLU(),
            Dense(500, 500, rng),
            ReLU(),
            Dense(500, num_classes, rng),
        ]
    )


def build_mini_cnn(seed: int = 0, num_classes: int = 10) -> Sequential:
    """AlexNet-structured proxy at laptop scale.

    Convolution + pooling feature extractor, dropout-regularized
    fully-connected classifier — the ingredients whose gradient
    statistics the compression experiments rely on (3x16x16 inputs).
    """
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(3, 16, kernel_size=3, rng=rng, padding=1),
            ReLU(),
            MaxPool2D(2),
            Conv2D(16, 32, kernel_size=3, rng=rng, padding=1),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dropout(0.25, rng),
            Dense(32 * 4 * 4, 128, rng),
            ReLU(),
            Dropout(0.25, rng),
            Dense(128, num_classes, rng),
        ]
    )


def build_trainable(name: str, seed: int = 0) -> Sequential:
    """Trainable stand-in for a paper benchmark name.

    HDC maps to the real HDC net; the ImageNet-scale CNNs map to the
    convolutional proxy (documented substitution).
    """
    if name == "HDC":
        return build_hdc(seed=seed)
    if name in PAPER_MODELS:
        return build_mini_cnn(seed=seed)
    raise KeyError(f"unknown model {name!r}; options: {sorted(PAPER_MODELS)}")
