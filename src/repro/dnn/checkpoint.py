"""Checkpointing: save/restore model parameters (optionally compressed).

Supports plain ``.npz`` checkpoints and codec-compressed ``.incgrad``
checkpoints.  The compressed form is intended for *gradient traces*;
weights are loss-intolerant (paper Fig 4), so compressed *weight*
checkpoints are refused unless explicitly forced.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core import ErrorBound
from repro.core.gradient_file import load as load_incgrad
from repro.core.gradient_file import save as save_incgrad

from .network import Sequential


def save_checkpoint(path: Union[str, Path], net: Sequential) -> None:
    """Write the network's parameters (and shape metadata) to ``.npz``."""
    path = Path(path)
    arrays = {"__vector__": net.parameter_vector()}
    np.savez_compressed(path, **arrays)


def load_checkpoint(path: Union[str, Path], net: Sequential) -> None:
    """Restore parameters saved by :func:`save_checkpoint` into ``net``."""
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz when the suffix is missing.
        with_suffix = path.with_name(path.name + ".npz")
        if with_suffix.exists():
            path = with_suffix
    with np.load(path) as data:
        vector = data["__vector__"]
    if vector.size != net.num_parameters:
        raise ValueError(
            f"checkpoint holds {vector.size} parameters, "
            f"model has {net.num_parameters}"
        )
    net.set_parameter_vector(vector)


def save_compressed_checkpoint(
    path: Union[str, Path],
    net: Sequential,
    bound: ErrorBound,
    allow_lossy_weights: bool = False,
) -> int:
    """Codec-compressed checkpoint; refuses unless explicitly allowed.

    Weight-precision loss accumulates across restarts the same way it
    accumulates across iterations (the paper's Fig 4 result), so this
    is gated behind ``allow_lossy_weights=True``.
    Returns bytes written.
    """
    if not allow_lossy_weights:
        raise ValueError(
            "weights are loss-intolerant (paper Fig 4); pass "
            "allow_lossy_weights=True to store a lossy checkpoint anyway"
        )
    return save_incgrad(path, net.parameter_vector(), bound)


def load_compressed_checkpoint(path: Union[str, Path], net: Sequential) -> None:
    """Restore a codec-compressed checkpoint."""
    vector = load_incgrad(path)
    if vector.size != net.num_parameters:
        raise ValueError(
            f"checkpoint holds {vector.size} parameters, "
            f"model has {net.num_parameters}"
        )
    net.set_parameter_vector(vector)
