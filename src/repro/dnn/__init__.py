"""From-scratch NumPy DNN framework (the paper's training substrate)."""

from .data import Dataset, cnn_dataset, hdc_dataset, synthetic_images
from .layers import Conv2D, Dense, Dropout, Flatten, Layer, MaxPool2D, ReLU
from .losses import SoftmaxCrossEntropy
from .metrics import top1_accuracy, top5_accuracy, top_k_accuracy
from .models import (
    PAPER_MODELS,
    Hyperparameters,
    ModelSpec,
    build_hdc,
    build_mini_cnn,
    build_trainable,
)
from .network import Sequential
from .residual import BatchNorm2D, ResidualBlock, build_mini_resnet
from .optim import Adam, LRSchedule, SGD
from .checkpoint import (
    load_checkpoint,
    load_compressed_checkpoint,
    save_checkpoint,
    save_compressed_checkpoint,
)
from .training import (
    LocalTrainer,
    TrainResult,
    capture_gradient_trace,
    train_single_node,
)

__all__ = [
    "Dataset",
    "cnn_dataset",
    "hdc_dataset",
    "synthetic_images",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "MaxPool2D",
    "ReLU",
    "SoftmaxCrossEntropy",
    "top1_accuracy",
    "top5_accuracy",
    "top_k_accuracy",
    "PAPER_MODELS",
    "Hyperparameters",
    "ModelSpec",
    "build_hdc",
    "build_mini_cnn",
    "build_trainable",
    "Sequential",
    "BatchNorm2D",
    "ResidualBlock",
    "build_mini_resnet",
    "Adam",
    "LRSchedule",
    "SGD",
    "load_checkpoint",
    "load_compressed_checkpoint",
    "save_checkpoint",
    "save_compressed_checkpoint",
    "LocalTrainer",
    "TrainResult",
    "capture_gradient_trace",
    "train_single_node",
]
