"""Deterministic synthetic datasets.

Substitution note (see DESIGN.md): MNIST and ImageNet are not available
offline, so we synthesize learnable classification tasks — each class is
a random smooth prototype and samples are prototype + structured noise.
The tasks are genuinely learnable (training converges from ~chance to
high accuracy), which is what the paper's accuracy experiments need:
they study how *lossy gradients* perturb a working training run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


def _smooth(images: np.ndarray) -> np.ndarray:
    """Cheap spatial smoothing (box blur along the last two axes)."""
    out = images.copy()
    for axis in (-2, -1):
        out = (
            out
            + np.roll(out, 1, axis=axis)
            + np.roll(out, -1, axis=axis)
        ) / 3.0
    return out


@dataclass
class Dataset:
    """Feature/label arrays with minibatch and sharding helpers."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if len(self.train_x) != len(self.train_y):
            raise ValueError("train features/labels length mismatch")
        if len(self.test_x) != len(self.test_y):
            raise ValueError("test features/labels length mismatch")

    @property
    def train_size(self) -> int:
        return len(self.train_x)

    def shard(self, index: int, num_shards: int) -> "Dataset":
        """Worker ``index``'s partition D_i of the training set.

        The test set is shared (evaluation is global).
        """
        if not 0 <= index < num_shards:
            raise ValueError(f"shard {index} outside [0, {num_shards})")
        sel = slice(index, None, num_shards)
        return Dataset(
            train_x=self.train_x[sel],
            train_y=self.train_y[sel],
            test_x=self.test_x,
            test_y=self.test_y,
            num_classes=self.num_classes,
        )

    def minibatches(
        self, batch_size: int, rng: np.random.Generator
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """One epoch of shuffled minibatches (last partial batch kept)."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        order = rng.permutation(self.train_size)
        for start in range(0, self.train_size, batch_size):
            idx = order[start : start + batch_size]
            yield self.train_x[idx], self.train_y[idx]

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """A random minibatch (stochastic gradient descent sampling)."""
        idx = rng.integers(0, self.train_size, size=batch_size)
        return self.train_x[idx], self.train_y[idx]


def synthetic_images(
    num_classes: int = 10,
    image_shape: Tuple[int, ...] = (1, 28, 28),
    train_size: int = 2000,
    test_size: int = 500,
    noise: float = 0.6,
    seed: int = 0,
    flat: bool = False,
) -> Dataset:
    """Class-prototype image classification task.

    ``flat=True`` returns (N, features) arrays for MLP models; otherwise
    NCHW image tensors for convolutional models.
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    prototypes = _smooth(
        rng.standard_normal((num_classes,) + image_shape).astype(np.float32)
    )

    def make(count: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        base = prototypes[labels]
        samples = base + noise * rng.standard_normal(base.shape).astype(np.float32)
        # Mild per-sample gain variation, like exposure differences.
        gain = rng.uniform(0.8, 1.2, size=(count,) + (1,) * len(image_shape))
        samples = (samples * gain).astype(np.float32)
        if flat:
            samples = samples.reshape(count, -1)
        return samples, labels

    train_x, train_y = make(train_size)
    test_x, test_y = make(test_size)
    return Dataset(
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        num_classes=num_classes,
    )


def hdc_dataset(train_size: int = 2000, test_size: int = 500, seed: int = 0) -> Dataset:
    """MNIST stand-in for the Handwritten Digit Classification net."""
    return synthetic_images(
        num_classes=10,
        image_shape=(1, 28, 28),
        train_size=train_size,
        test_size=test_size,
        noise=0.6,
        seed=seed,
        flat=True,
    )


def cnn_dataset(
    train_size: int = 1500, test_size: int = 400, seed: int = 0
) -> Dataset:
    """Small-image dataset for the convolutional AlexNet proxy."""
    return synthetic_images(
        num_classes=10,
        image_shape=(3, 16, 16),
        train_size=train_size,
        test_size=test_size,
        noise=0.5,
        seed=seed,
        flat=False,
    )
