"""Sequential network container with flat parameter/gradient views.

Distributed training exchanges *vectors*: the trainer flattens every
parameter gradient into one float32 array (the ``g`` of Algorithm 1),
ships it, and scatters the aggregate back.  This module owns that
flatten/unflatten bookkeeping.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .layers import Layer
from .losses import SoftmaxCrossEntropy


class Sequential:
    """A stack of layers trained with softmax cross-entropy."""

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.loss = SoftmaxCrossEntropy()
        self._param_index: List[Tuple[Layer, str]] = [
            (layer, name) for layer in self.layers for name in sorted(layer.params)
        ]

    # -- passes -----------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def compute_loss(
        self, x: np.ndarray, labels: np.ndarray, training: bool = True
    ) -> float:
        return self.loss.forward(self.forward(x, training=training), labels)

    def backward(self) -> None:
        """Backpropagate from the last ``compute_loss`` call."""
        grad = self.loss.backward()
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class logits in evaluation mode."""
        return self.forward(x, training=False)

    # -- flat views --------------------------------------------------------------

    @property
    def num_parameters(self) -> int:
        return sum(layer.params[name].size for layer, name in self._param_index)

    @property
    def nbytes(self) -> int:
        """Model size in bytes (float32 storage)."""
        return self.num_parameters * 4

    def parameter_vector(self) -> np.ndarray:
        """All parameters flattened into one float32 vector."""
        if not self._param_index:
            return np.empty(0, dtype=np.float32)
        return np.concatenate(
            [layer.params[name].reshape(-1) for layer, name in self._param_index]
        ).astype(np.float32, copy=False)

    def set_parameter_vector(self, vec: np.ndarray) -> None:
        """Scatter a flat vector back into the layer parameters."""
        self._scatter(vec, into_grads=False)

    def gradient_vector(self) -> np.ndarray:
        """All gradients (from the last backward) flattened."""
        parts = []
        for layer, name in self._param_index:
            if name not in layer.grads:
                raise RuntimeError(
                    f"gradient for {type(layer).__name__}.{name} missing; "
                    "call backward() first"
                )
            parts.append(layer.grads[name].reshape(-1))
        if not parts:
            return np.empty(0, dtype=np.float32)
        return np.concatenate(parts).astype(np.float32, copy=False)

    def set_gradient_vector(self, vec: np.ndarray) -> None:
        """Scatter a flat gradient vector into the layers' grads."""
        self._scatter(vec, into_grads=True)

    def _scatter(self, vec: np.ndarray, into_grads: bool) -> None:
        flat = np.asarray(vec, dtype=np.float32).reshape(-1)
        if flat.size != self.num_parameters:
            raise ValueError(
                f"vector has {flat.size} values, model has {self.num_parameters}"
            )
        offset = 0
        for layer, name in self._param_index:
            shape = layer.params[name].shape
            size = layer.params[name].size
            chunk = flat[offset : offset + size].reshape(shape)
            if into_grads:
                layer.grads[name] = chunk.copy()
            else:
                layer.params[name] = chunk.copy()
            offset += size
