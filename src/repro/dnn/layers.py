"""Neural-network layers with explicit forward/backward passes.

A small, from-scratch substrate standing in for the paper's
CUDA/MKL-based training framework (Sec. VII-B).  Everything is float32
NumPy; each layer owns its parameters and the gradients of the last
backward pass, which the distributed algorithms flatten into the
gradient vectors they exchange.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .initializers import he_normal, zeros


class Layer:
    """Base layer: stateless unless it declares parameters."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.params.values())


class Dense(Layer):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.params["W"] = he_normal(rng, (in_features, out_features), in_features)
        self.params["b"] = zeros((out_features,))
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] = self._x.T @ grad_out
        self.grads["b"] = grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Flatten(Layer):
    """Collapse all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N*OH*OW, C*kh*kw) patches."""
    n, c, h, w = x.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, -1), oh, ow


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Fold patch gradients back onto the (padded) input."""
    n, c, h, w = x_shape
    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2D(Layer):
    """2-D convolution (NCHW) implemented with im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        if stride < 1 or kernel_size < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        fan_in = in_channels * kernel_size * kernel_size
        self.params["W"] = he_normal(
            rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in
        )
        self.params["b"] = zeros((out_channels,))
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        k = self.kernel_size
        cols, oh, ow = _im2col(x, k, k, self.stride, self.padding)
        w_flat = self.params["W"].reshape(self.params["W"].shape[0], -1)
        out = cols @ w_flat.T + self.params["b"]
        n = x.shape[0]
        self._cache = (x.shape, cols, oh, ow)
        return out.reshape(n, oh, ow, -1).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols, oh, ow = self._cache
        oc = grad_out.shape[1]
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, oc)
        w_flat = self.params["W"].reshape(oc, -1)
        self.grads["W"] = (grad_flat.T @ cols).reshape(self.params["W"].shape)
        self.grads["b"] = grad_flat.sum(axis=0)
        grad_cols = grad_flat @ w_flat
        k = self.kernel_size
        return _col2im(
            grad_cols, x_shape, k, k, self.stride, self.padding, oh, ow
        )


class MaxPool2D(Layer):
    """Non-overlapping max pooling (window == stride)."""

    def __init__(self, size: int):
        super().__init__()
        if size < 1:
            raise ValueError("pool size must be positive")
        self.size = size
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"spatial dims {(h, w)} not divisible by pool {s}")
        reshaped = x.reshape(n, c, h // s, s, w // s, s)
        out = reshaped.max(axis=(3, 5))
        mask = reshaped == out[:, :, :, None, :, None]
        self._cache = (x.shape, mask)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, mask = self._cache
        s = self.size
        expanded = grad_out[:, :, :, None, :, None] * mask
        # Ties split the gradient; normalize by the tie count.
        counts = mask.sum(axis=(3, 5), keepdims=True)
        expanded = expanded / counts
        return expanded.reshape(x_shape)
