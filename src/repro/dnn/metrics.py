"""Prediction-quality metrics (top-1 / top-5 accuracy, paper Fig 4/14)."""

from __future__ import annotations

import numpy as np


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of samples whose label is within the top-k logits."""
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, classes)")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("batch size mismatch")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k={k} outside [1, {logits.shape[1]}]")
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    hits = (top == labels[:, None]).any(axis=1)
    return float(hits.mean())


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    return top_k_accuracy(logits, labels, k=1)


def top5_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    return top_k_accuracy(logits, labels, k=min(5, logits.shape[1]))
