"""SGD with momentum, weight decay and stepped learning-rate reduction.

Matches the training recipe of the paper's Table I: per-model learning
rate, momentum 0.9, weight decay, and a learning-rate reduction by a
constant factor every fixed number of iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .network import Sequential


@dataclass(frozen=True)
class LRSchedule:
    """Step schedule: divide the base LR by ``factor`` every ``every`` iters.

    ``warmup`` iterations of linear ramp-up precede the step schedule —
    the standard large-batch recipe (Goyal et al. [7], which the paper
    cites) that distributed training with summed gradients benefits
    from.
    """

    base_lr: float
    factor: float = 1.0
    every: int = 0  # 0 disables reduction
    warmup: int = 0  # 0 disables warm-up

    def lr_at(self, iteration: int) -> float:
        if iteration < 0:
            raise ValueError("iteration cannot be negative")
        if self.warmup > 0 and iteration < self.warmup:
            return self.base_lr * (iteration + 1) / self.warmup
        if self.every <= 0 or self.factor <= 1.0:
            return self.base_lr
        return self.base_lr / (self.factor ** (iteration // self.every))


class SGD:
    """Momentum SGD over a :class:`Sequential` network."""

    def __init__(
        self,
        schedule: LRSchedule,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight decay cannot be negative")
        self.schedule = schedule
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.iteration = 0
        self._velocity: Dict[int, np.ndarray] = {}

    @property
    def lr(self) -> float:
        return self.schedule.lr_at(self.iteration)

    def step(self, net: Sequential) -> None:
        """Apply one update from the network's current gradients."""
        lr = self.lr
        for index, (layer, name) in enumerate(net._param_index):
            param = layer.params[name]
            grad = layer.grads.get(name)
            if grad is None:
                raise RuntimeError(
                    f"no gradient for {type(layer).__name__}.{name}"
                )
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            vel = self._velocity.get(index)
            if vel is None:
                vel = np.zeros_like(param)
            vel = self.momentum * vel - lr * grad
            self._velocity[index] = vel
            layer.params[name] = (param + vel).astype(np.float32)
        self.iteration += 1

    def step_with_vector(self, net: Sequential, gradient: np.ndarray) -> None:
        """Scatter an (aggregated) flat gradient, then update.

        This is line 21 of Algorithm 1: ``w <- w - lr * g`` where ``g``
        arrived from the ring exchange.
        """
        net.set_gradient_vector(gradient)
        self.step(net)


class Adam:
    """Adam optimizer — the modern counterpart for comparison runs.

    Same interface as :class:`SGD` so trainers accept either.
    """

    def __init__(
        self,
        schedule: LRSchedule,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight decay cannot be negative")
        self.schedule = schedule
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.iteration = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    @property
    def lr(self) -> float:
        return self.schedule.lr_at(self.iteration)

    def step(self, net: Sequential) -> None:
        lr = self.lr
        t = self.iteration + 1
        correction1 = 1.0 - self.beta1**t
        correction2 = 1.0 - self.beta2**t
        for index, (layer, name) in enumerate(net._param_index):
            param = layer.params[name]
            grad = layer.grads.get(name)
            if grad is None:
                raise RuntimeError(
                    f"no gradient for {type(layer).__name__}.{name}"
                )
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            m = self._m.get(index)
            v = self._v.get(index)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[index], self._v[index] = m, v
            m_hat = m / correction1
            v_hat = v / correction2
            layer.params[name] = (
                param - lr * m_hat / (np.sqrt(v_hat) + self.eps)
            ).astype(np.float32)
        self.iteration += 1

    def step_with_vector(self, net: Sequential, gradient: np.ndarray) -> None:
        net.set_gradient_vector(gradient)
        self.step(net)
