"""TCP/IP-style packets with the ToS compression marker (paper Sec. VI-B).

The INCEPTIONN software stack marks compressible TCP streams by setting
the IP header's Type-of-Service byte to the reserved value ``0x28``;
the NIC's comparator classifies packets on that field.  We model exactly
the fields that behaviour depends on: ToS, header size, payload bytes.

The codec registry (:mod:`repro.core.registry`) generalizes the paper's
single reserved value into a small ToS code space: every registered
codec claims one ToS byte via :func:`register_compressible_tos`, and the
NIC/simulator treat any claimed code as "run this stream through the
engines".  ``0x28`` stays reserved for the INCEPTIONN codec.

Invariants: ToS claims are idempotent and ``TOS_DEFAULT`` (0x00) can
never mark a compressible stream; segmentation is deterministic — the
same payload always yields the same packet count and sizes
(``HEADER_BYTES`` per packet, MSS-bounded payloads), with no clocks or
randomness involved; tenant traffic classes
(:mod:`repro.network.tenants`) use ToS bytes no codec claims, so
background flows never enter the NIC engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

#: The reserved ToS value marking a packet for NIC (de)compression.
TOS_COMPRESS = 0x28
#: ToS for ordinary traffic.
TOS_DEFAULT = 0x00

#: ToS codes currently claimed by (de)compression engines.
_COMPRESSIBLE_TOS = {TOS_COMPRESS}


def register_compressible_tos(tos: int) -> int:
    """Claim a ToS byte as marking engine-processed streams.

    Idempotent; returns the registered code.  ``TOS_DEFAULT`` cannot be
    claimed — ordinary traffic must always bypass the engines.
    """
    if not 0 <= tos <= 0xFF:
        raise ValueError(f"ToS must fit one byte, got {tos:#x}")
    if tos == TOS_DEFAULT:
        raise ValueError("the default ToS cannot mark compressible streams")
    _COMPRESSIBLE_TOS.add(tos)
    return tos


def is_compressible_tos(tos: int) -> bool:
    """True when ``tos`` is claimed by a registered codec/engine."""
    return tos in _COMPRESSIBLE_TOS

#: Ethernet (14) + IPv4 (20) + TCP (20) header bytes.
HEADER_BYTES = 54
#: Standard Ethernet MTU payload budget after IP+TCP headers.
DEFAULT_MSS = 1460


@dataclass
class Packet:
    """One simulated TCP/IP packet.

    ``payload`` may carry real bytes (when the hardware model processes
    them bit-exactly) or be ``None`` with only ``payload_nbytes`` set
    (when only timing matters and materializing hundreds of megabytes
    would be wasteful).
    """

    src: int
    dst: int
    seq: int = 0
    tos: int = TOS_DEFAULT
    payload: Optional[bytes] = None
    payload_nbytes: int = 0
    #: Opaque reference travelling with the packet (e.g. a gradient block).
    context: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.payload is not None:
            actual = len(self.payload)
            if self.payload_nbytes and self.payload_nbytes != actual:
                raise ValueError(
                    f"payload_nbytes={self.payload_nbytes} disagrees with "
                    f"len(payload)={actual}"
                )
            self.payload_nbytes = actual
        if self.payload_nbytes < 0:
            raise ValueError("payload size cannot be negative")
        if not 0 <= self.tos <= 0xFF:
            raise ValueError(f"ToS must fit one byte, got {self.tos:#x}")

    @property
    def wire_nbytes(self) -> int:
        """Total bytes on the wire (headers + payload)."""
        return HEADER_BYTES + self.payload_nbytes

    @property
    def compressible(self) -> bool:
        """True when the NIC should run this packet through the engines."""
        return is_compressible_tos(self.tos)


def segment_bytes(
    data: bytes,
    src: int,
    dst: int,
    tos: int = TOS_DEFAULT,
    mss: int = DEFAULT_MSS,
) -> List[Packet]:
    """Split a byte string into MSS-sized packets (TCP segmentation)."""
    if mss <= 0:
        raise ValueError("mss must be positive")
    packets = [
        Packet(src=src, dst=dst, seq=seq, tos=tos, payload=data[off : off + mss])
        for seq, off in enumerate(range(0, len(data), mss))
    ]
    if not packets:  # zero-length send still emits one empty packet
        packets = [Packet(src=src, dst=dst, seq=0, tos=tos, payload=b"")]
    return packets


def segment_size(
    nbytes: int,
    src: int,
    dst: int,
    tos: int = TOS_DEFAULT,
    mss: int = DEFAULT_MSS,
) -> Iterator[Packet]:
    """Size-only segmentation for timing simulations (no payload bytes)."""
    if mss <= 0:
        raise ValueError("mss must be positive")
    if nbytes < 0:
        raise ValueError("nbytes cannot be negative")
    if nbytes == 0:
        yield Packet(src=src, dst=dst, seq=0, tos=tos, payload_nbytes=0)
        return
    full, rem = divmod(nbytes, mss)
    for seq in range(full):
        yield Packet(src=src, dst=dst, seq=seq, tos=tos, payload_nbytes=mss)
    if rem:
        yield Packet(src=src, dst=dst, seq=full, tos=tos, payload_nbytes=rem)


def packet_count(nbytes: int, mss: int = DEFAULT_MSS) -> int:
    """Number of packets a message of ``nbytes`` occupies."""
    return max(1, -(-nbytes // mss))


def distribute_payload(nbytes: int, num_packets: int) -> List[int]:
    """Spread ``nbytes`` of payload over ``num_packets`` packets.

    Cumulative rounding: packet ``k`` carries the difference between the
    rounded ``k``-th and ``(k-1)``-th cumulative shares, so the sizes
    always sum to ``nbytes`` exactly and differ by at most one byte.
    Used for the per-packet view of a compressed stream, whose total
    wire size is measured at message granularity.
    """
    if num_packets < 1:
        raise ValueError("need at least one packet")
    if nbytes < 0:
        raise ValueError("nbytes cannot be negative")
    sizes: List[int] = []
    prev = 0
    for k in range(1, num_packets + 1):
        cur = round(nbytes * k / num_packets)
        sizes.append(cur - prev)
        prev = cur
    return sizes
