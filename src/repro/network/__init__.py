"""Network substrate: event kernel, packets, links, topologies, simulator."""

from .events import (
    FIFO_TIE_BREAK,
    Event,
    Process,
    SeededTieBreak,
    Simulation,
    Store,
    TieBreak,
)
from .fabric import (
    TwoTierFabric,
    rack_aligned_ring_order,
    rack_interleaved_ring_order,
)
from .loss import DeliveryFailure, LossModel, RetransmitPolicy
from .link import Link
from .packet import (
    DEFAULT_MSS,
    HEADER_BYTES,
    TOS_COMPRESS,
    TOS_DEFAULT,
    Packet,
    is_compressible_tos,
    packet_count,
    register_compressible_tos,
    segment_bytes,
    segment_size,
)
from .simulator import (
    ENGINE_THROUGHPUT_BPS,
    MessageReceipt,
    Network,
    NicTimingModel,
    uniform_nics,
)
from .topology import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LINK_LATENCY_S,
    DEFAULT_SWITCH_DELAY_S,
    DirectRing,
    Route,
    SwitchedStar,
    Topology,
)

__all__ = [
    "Event",
    "FIFO_TIE_BREAK",
    "SeededTieBreak",
    "TieBreak",
    "TwoTierFabric",
    "rack_aligned_ring_order",
    "rack_interleaved_ring_order",
    "DeliveryFailure",
    "LossModel",
    "RetransmitPolicy",
    "Process",
    "Simulation",
    "Store",
    "Link",
    "DEFAULT_MSS",
    "HEADER_BYTES",
    "TOS_COMPRESS",
    "TOS_DEFAULT",
    "Packet",
    "is_compressible_tos",
    "register_compressible_tos",
    "packet_count",
    "segment_bytes",
    "segment_size",
    "ENGINE_THROUGHPUT_BPS",
    "MessageReceipt",
    "Network",
    "NicTimingModel",
    "uniform_nics",
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_LINK_LATENCY_S",
    "DEFAULT_SWITCH_DELAY_S",
    "DirectRing",
    "Route",
    "SwitchedStar",
    "Topology",
]
