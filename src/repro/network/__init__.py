"""Network substrate: event kernel, packets, links, topologies, simulator.

Invariants the package as a whole guarantees: simulated time is the only
time source; every random draw is seeded; flows keep FIFO delivery
end-to-end (fixed per-flow routes, FIFO links, priority queues that are
FIFO within a class, and the endpoint reorder buffer above); and
same-instant resource contention resolves by deterministic arbitration
keys, never by event-callback accidents — the properties ``repro lint``
(R5/R8-R11) and ``repro sanitize`` enforce.
"""

from .events import (
    FIFO_TIE_BREAK,
    Event,
    Process,
    SeededTieBreak,
    Simulation,
    Store,
    TieBreak,
    flow_hash,
)
from .fabric import (
    TwoTierFabric,
    rack_aligned_ring_order,
    rack_interleaved_ring_order,
)
from .loss import DeliveryFailure, LossModel, RetransmitPolicy
from .link import Link
from .multitier import (
    FatTree,
    LeafSpine,
    MultiTierFabric,
    build_topology,
    parse_topology_spec,
)
from .reduction import (
    ReduceInput,
    ReduceStage,
    ReductionPlan,
    build_reduction_plan,
)
from .priority import (
    PRIORITY_CLASSES,
    PRIORITY_DEFAULT,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PriorityLink,
)
from .tenants import (
    TOS_TENANT_INFER,
    TOS_TENANT_TRAIN,
    BackgroundTraffic,
    TenantSpec,
    parse_tenants,
)
from .packet import (
    DEFAULT_MSS,
    HEADER_BYTES,
    TOS_COMPRESS,
    TOS_DEFAULT,
    Packet,
    is_compressible_tos,
    packet_count,
    register_compressible_tos,
    segment_bytes,
    segment_size,
)
from .simulator import (
    ENGINE_THROUGHPUT_BPS,
    MessageReceipt,
    Network,
    NicTimingModel,
    uniform_nics,
)
from .topology import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LINK_LATENCY_S,
    DEFAULT_SWITCH_DELAY_S,
    DirectRing,
    Route,
    SwitchedStar,
    Topology,
)

__all__ = [
    "Event",
    "FIFO_TIE_BREAK",
    "SeededTieBreak",
    "TieBreak",
    "flow_hash",
    "FatTree",
    "LeafSpine",
    "MultiTierFabric",
    "build_topology",
    "parse_topology_spec",
    "ReduceInput",
    "ReduceStage",
    "ReductionPlan",
    "build_reduction_plan",
    "PRIORITY_CLASSES",
    "PRIORITY_DEFAULT",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PriorityLink",
    "TOS_TENANT_INFER",
    "TOS_TENANT_TRAIN",
    "BackgroundTraffic",
    "TenantSpec",
    "parse_tenants",
    "TwoTierFabric",
    "rack_aligned_ring_order",
    "rack_interleaved_ring_order",
    "DeliveryFailure",
    "LossModel",
    "RetransmitPolicy",
    "Process",
    "Simulation",
    "Store",
    "Link",
    "DEFAULT_MSS",
    "HEADER_BYTES",
    "TOS_COMPRESS",
    "TOS_DEFAULT",
    "Packet",
    "is_compressible_tos",
    "register_compressible_tos",
    "packet_count",
    "segment_bytes",
    "segment_size",
    "ENGINE_THROUGHPUT_BPS",
    "MessageReceipt",
    "Network",
    "NicTimingModel",
    "uniform_nics",
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_LINK_LATENCY_S",
    "DEFAULT_SWITCH_DELAY_S",
    "DirectRing",
    "Route",
    "SwitchedStar",
    "Topology",
]
