"""A small discrete-event simulation kernel.

The evaluation infrastructure needs wall-clock-faithful modeling of
concurrent transfers (link contention at the aggregator is the paper's
central bottleneck), so we build a generator-based process model in the
style of SimPy: processes are Python generators that ``yield`` events;
the kernel resumes them when those events fire.

Only the features the reproduction needs are implemented: one-shot
events, timeouts, processes, and FIFO stores (used as message queues).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, List, Optional


class Event:
    """A one-shot occurrence processes can wait on."""

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now, delivering ``value`` to waiters."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule_callbacks(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires (immediately if fired)."""
        if self.triggered:
            fn(self)
        else:
            self._callbacks.append(fn)


class Process(Event):
    """A running generator; itself an event that fires on completion."""

    def __init__(self, sim: "Simulation", generator: Generator) -> None:
        super().__init__(sim)
        self._generator = generator
        sim._immediate(lambda: self._resume(None))

    def _resume(self, value: Any) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"processes must yield Event objects, got {type(target).__name__}"
            )
        target.add_callback(lambda ev: self._resume(ev.value))


class Simulation:
    """Event queue and virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List = []
        self._counter = itertools.count()

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event (trigger it with ``succeed``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        ev = Event(self)
        self._at(self.now + delay, lambda: ev.succeed(value))
        return ev

    def process(self, generator: Generator) -> Process:
        """Start a generator as a concurrent process."""
        return Process(self, generator)

    def all_of(self, events: List[Event]) -> Event:
        """An event firing once every event in ``events`` has fired."""
        gate = Event(self)
        remaining = [len(events)]
        if not events:
            self._immediate(lambda: gate.succeed([]))
            return gate

        def arm(ev: Event) -> None:
            def on_fire(_: Event) -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    gate.succeed([e.value for e in events])

            ev.add_callback(on_fire)

        for ev in events:
            arm(ev)
        return gate

    # -- scheduling ----------------------------------------------------------

    def _at(self, time: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (time, next(self._counter), fn))

    def _immediate(self, fn: Callable[[], None]) -> None:
        self._at(self.now, fn)

    def _schedule_callbacks(self, event: Event) -> None:
        callbacks, event._callbacks = event._callbacks, []
        for fn in callbacks:
            self._at(self.now, lambda fn=fn: fn(event))

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains (or ``until`` is reached).

        Returns the final simulation time.
        """
        while self._heap:
            time, _, fn = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            fn()
        return self.now


class Store:
    """Unbounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._items: deque = deque()
        self._getters: deque = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next available item."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
