"""A small discrete-event simulation kernel.

The evaluation infrastructure needs wall-clock-faithful modeling of
concurrent transfers (link contention at the aggregator is the paper's
central bottleneck), so we build a generator-based process model in the
style of SimPy: processes are Python generators that ``yield`` events;
the kernel resumes them when those events fire.

Only the features the reproduction needs are implemented: one-shot
events, timeouts, processes, and FIFO stores (used as message queues).

Equal-timestamp ordering is an explicit, pluggable policy.  The kernel
totally orders simultaneous entries by a :class:`TieBreak` key (FIFO by
default, matching the historical behaviour bit-for-bit); the
determinism sanitizer re-runs scenarios under :class:`SeededTieBreak`
to perturb exactly that ordering — any outcome that changes was racing
on event order all along.

Invariants: the clock only moves forward, and only between instants —
callbacks scheduled at ``now`` (including :meth:`Simulation.at_instant_end`
hooks) run before time advances, which is what same-instant resource
arbitration builds on; simulated time is the sole time source (no
wall-clock reads); all hashing is explicit splitmix64, independent of
``PYTHONHASHSEED``; events fire exactly once.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, List, Optional

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One splitmix64 mixing round (deterministic, hash-seed independent)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def flow_hash(*fields: int) -> int:
    """Deterministic 64-bit hash of integer flow fields.

    Chains one splitmix64 round per field, so the result is a pure
    function of the field values — independent of ``PYTHONHASHSEED``,
    process, and platform.  ECMP route selection
    (:mod:`repro.network.multitier`) hashes ``(src, dst, tos, hop)``
    through this to pick among equal-cost next hops: the same flow
    always takes the same path, which is exactly the property the
    determinism sanitizer's replay check needs.
    """
    acc = len(fields) & _MASK64
    for field in fields:
        acc = _splitmix64(acc ^ (field & _MASK64))
    return acc


class TieBreak:
    """Policy ordering same-timestamp entries in the event queue.

    ``key(seq)`` maps an entry's global insertion sequence number to the
    secondary sort key used when timestamps are equal; the sequence
    number itself remains the final tiebreaker, so every policy yields a
    deterministic total order.  The default policy is strict FIFO.
    """

    name = "fifo"

    def key(self, seq: int) -> int:
        return 0


#: The default policy: simultaneous entries run in insertion order.
FIFO_TIE_BREAK = TieBreak()


class SeededTieBreak(TieBreak):
    """Deterministically shuffled ordering of simultaneous entries.

    Each insertion sequence number maps through splitmix64 keyed by
    ``seed`` — the same seed always produces the same perturbation, and
    no Python ``hash()`` is involved, so runs are reproducible across
    processes regardless of ``PYTHONHASHSEED``.
    """

    name = "seeded"

    def __init__(self, seed: int = 1) -> None:
        self.seed = int(seed)

    def key(self, seq: int) -> int:
        return _splitmix64(seq ^ _splitmix64(self.seed))


class Event:
    """A one-shot occurrence processes can wait on."""

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now, delivering ``value`` to waiters."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule_callbacks(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires (immediately if fired)."""
        if self.triggered:
            fn(self)
        else:
            self._callbacks.append(fn)


class Process(Event):
    """A running generator; itself an event that fires on completion."""

    def __init__(self, sim: "Simulation", generator: Generator) -> None:
        super().__init__(sim)
        self._generator = generator
        sim._immediate(lambda: self._resume(None))

    def _resume(self, value: Any) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"processes must yield Event objects, got {type(target).__name__}"
            )
        target.add_callback(lambda ev: self._resume(ev.value))


class Simulation:
    """Event queue and virtual clock.

    ``tie_break`` orders simultaneous entries (default FIFO); see
    :class:`TieBreak`.
    """

    def __init__(self, tie_break: Optional[TieBreak] = None) -> None:
        self.now = 0.0
        self.tie_break = tie_break if tie_break is not None else FIFO_TIE_BREAK
        self._heap: List = []
        self._counter = itertools.count()
        self._epilogue: List[Callable[[], None]] = []

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event (trigger it with ``succeed``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        ev = Event(self)
        self._at(self.now + delay, lambda: ev.succeed(value))
        return ev

    def process(self, generator: Generator) -> Process:
        """Start a generator as a concurrent process."""
        return Process(self, generator)

    def all_of(self, events: List[Event]) -> Event:
        """An event firing once every event in ``events`` has fired."""
        gate = Event(self)
        remaining = [len(events)]
        if not events:
            self._immediate(lambda: gate.succeed([]))
            return gate

        def arm(ev: Event) -> None:
            def on_fire(_: Event) -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    gate.succeed([e.value for e in events])

            ev.add_callback(on_fire)

        for ev in events:
            arm(ev)
        return gate

    # -- scheduling ----------------------------------------------------------

    def _at(self, time: float, fn: Callable[[], None]) -> None:
        seq = next(self._counter)
        heapq.heappush(self._heap, (time, self.tie_break.key(seq), seq, fn))

    def _immediate(self, fn: Callable[[], None]) -> None:
        self._at(self.now, fn)

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._at(time, fn)

    def at_instant_end(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` once every event at the *current* instant has run.

        The hook fires after the queue holds no further entries at
        ``now`` and before the clock advances — the point where all
        simultaneous requests are known, which is what deterministic
        resource arbitration (see :meth:`Link.transmit_cut_through
        <repro.network.link.Link>`) needs.  Hooks may schedule new
        same-instant work; it is processed before time moves on.
        """
        self._epilogue.append(fn)

    def _schedule_callbacks(self, event: Event) -> None:
        callbacks, event._callbacks = event._callbacks, []
        for fn in callbacks:
            self._at(self.now, lambda fn=fn: fn(event))

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains (or ``until`` is reached).

        Returns the final simulation time.
        """
        while self._heap or self._epilogue:
            next_time = self._heap[0][0] if self._heap else None
            if self._epilogue and (next_time is None or next_time > self.now):
                # The current instant has drained: run instant-end hooks
                # (which may schedule more work at ``now``) before the
                # clock moves.
                hooks, self._epilogue = self._epilogue, []
                for hook in hooks:
                    hook()
                continue
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return self.now
            _, _, _, fn = heapq.heappop(self._heap)
            self.now = next_time
            fn()
        return self.now


class Store:
    """Unbounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._items: deque = deque()
        self._getters: deque = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next available item."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
