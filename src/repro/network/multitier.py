"""Multi-tier Clos fabrics: fat-tree and leaf-spine with ECMP routing.

Production training never has the network to itself (ROADMAP's first
open item); this module generalizes the paper's single switched star
into the datacenter fabrics the INCEPTIONN-vs-baseline comparisons must
survive: a k-ary fat-tree (Al-Fares et al., SIGCOMM 2008) and a
two-level leaf-spine, both built from per-egress-port
:class:`~repro.network.priority.PriorityLink` queues.

Invariants this module maintains:

* **Shortest-path routing from precomputed tables.**  Construction runs
  one reverse BFS per destination host; ``next_hops[node][host]`` holds
  *every* neighbor on a shortest path, sorted by node id, so routing
  state is deterministic and insertion-order free.
* **Deterministic per-flow ECMP.**  Among equal-cost next hops the pick
  is ``flow_hash(src, dst, tos, hop) % fanout``
  (:func:`repro.network.events.flow_hash` — splitmix64-based, so no
  Python ``hash()`` and no ``PYTHONHASHSEED`` dependence).  Every train
  of a flow takes the same path (no intra-flow reordering), replays are
  bit-identical, and path choice never depends on event order — the
  property ``repro sanitize`` verifies under perturbed tie-breaking.
* **FIFO delivery per flow.**  Routes are fixed per ``(src, dst, tos)``
  and every port serves FIFO within a priority class, so a flow never
  overtakes itself in the fabric.
* **Simulated-time discipline.**  Hop timing comes from link
  bandwidth/latency and ``forwarding_delay_s`` between hops; no
  wall-clock reads anywhere.

:func:`build_topology` is the one string-spec factory the CLI and
:class:`~repro.transport.endpoint.ClusterConfig` share
(``"fat-tree:k=4"``, ``"leaf-spine:spines=2,leaves=4,hosts=2"``,
``"two-tier:racks=2,hosts=2"``, ``"star"``, ``"ring"``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from .events import Simulation, flow_hash
from .fabric import TwoTierFabric
from .link import Link
from .packet import TOS_DEFAULT
from .priority import PriorityLink
from .topology import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LINK_LATENCY_S,
    DEFAULT_SWITCH_DELAY_S,
    DirectRing,
    Route,
    SwitchedStar,
    Topology,
)

if TYPE_CHECKING:
    from repro.hardware.aggregation_engine import AggregationEngine


class MultiTierFabric(Topology):
    """Base for graph-shaped fabrics routed via per-destination tables.

    Subclasses add edges with :meth:`_add_duplex` during construction and
    finish with :meth:`_build_routes`.  Hosts are the integer node ids of
    the :class:`Topology` contract, rendered ``"h<i>"`` in the graph;
    switches use subclass-chosen string ids.
    """

    def __init__(
        self, sim: Simulation, num_nodes: int, switch_delay_s: float
    ) -> None:
        super().__init__(sim, num_nodes)
        self.switch_delay_s = switch_delay_s
        #: Directed edge (u, v) -> the egress link carrying u's traffic to v.
        self.links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}
        #: node -> destination host -> sorted equal-cost next hops.
        self._next_hops: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        #: Fabric vertex -> hosted in-network aggregation engine
        #: (see :meth:`aggregation_engine`).
        self.aggregation_engines: Dict[str, "AggregationEngine"] = {}

    @staticmethod
    def host_id(node: int) -> str:
        """Graph id of integer host ``node``."""
        return f"h{node}"

    def _add_duplex(
        self, u: str, v: str, bandwidth_bps: float, latency_s: float
    ) -> None:
        """Wire ``u`` and ``v`` with one priority-queued link per direction."""
        for a, b in ((u, v), (v, u)):
            if (a, b) in self.links:
                raise ValueError(f"duplicate edge {a}->{b}")
            self.links[(a, b)] = PriorityLink(
                self.sim, bandwidth_bps, latency_s, name=f"{a}->{b}"
            )
        self._adjacency.setdefault(u, []).append(v)
        self._adjacency.setdefault(v, []).append(u)

    def _build_routes(self) -> None:
        """One reverse BFS per destination host fills the next-hop tables."""
        for node in range(self.num_nodes):
            target = self.host_id(node)
            if target not in self._adjacency:
                raise ValueError(f"host {target} is not wired to any switch")
            distance: Dict[str, int] = {target: 0}
            frontier = deque([target])
            while frontier:
                current = frontier.popleft()
                for neighbor in self._adjacency[current]:
                    if neighbor not in distance:
                        distance[neighbor] = distance[current] + 1
                        frontier.append(neighbor)
            for vertex, dist in distance.items():
                if vertex == target:
                    continue
                nexts = tuple(
                    sorted(
                        neighbor
                        for neighbor in self._adjacency[vertex]
                        if distance.get(neighbor, -1) == dist - 1
                    )
                )
                self._next_hops.setdefault(vertex, {})[target] = nexts

    def route(self, src: int, dst: int, tos: int = TOS_DEFAULT) -> Route:
        """Hop-by-hop shortest path, ECMP-hashed per flow (see module doc)."""
        self._check_endpoints(src, dst)
        target = self.host_id(dst)
        current = self.host_id(src)
        links: List[Link] = []
        hop = 0
        while current != target:
            choices = self._next_hops[current][target]
            pick = choices[flow_hash(src, dst, tos, hop) % len(choices)]
            links.append(self.links[(current, pick)])
            current = pick
            hop += 1
        return Route(
            links=tuple(links), forwarding_delay_s=self.switch_delay_s
        )

    def tree_path(self, src: int, dst: int) -> Tuple[str, ...]:
        """Deterministic reduction-tree walk from ``src`` to ``dst``.

        Unlike :meth:`route`, which hashes per flow — so paths from
        different sources diverge again downstream of a merge point —
        this walk always takes the *first* sorted next hop.  Every
        source converging on ``dst`` therefore shares path suffixes,
        which is exactly the spanning tree an in-network reduction
        wants (SwitchML-style).  Returns the vertex ids walked,
        endpoints included.
        """
        self._check_endpoints(src, dst)
        target = self.host_id(dst)
        current = self.host_id(src)
        path = [current]
        while current != target:
            current = self._next_hops[current][target][0]
            path.append(current)
        return tuple(path)

    def segment_route(self, vertices: Sequence[str]) -> Route:
        """The :class:`Route` along consecutive fabric ``vertices``."""
        if len(vertices) < 2:
            raise ValueError("a route segment needs at least two vertices")
        links: List[Link] = []
        for a, b in zip(vertices, vertices[1:]):
            link = self.links.get((a, b))
            if link is None:
                raise ValueError(f"no fabric edge {a}->{b}")
            links.append(link)
        return Route(
            links=tuple(links), forwarding_delay_s=self.switch_delay_s
        )

    def aggregation_engine(
        self, vertex: str, factory: Callable[[], "AggregationEngine"]
    ) -> "AggregationEngine":
        """The aggregation engine hosted at ``vertex`` (get-or-create).

        Switch vertices host the in-network reduction engines; the
        aggregating endpoint's host vertex may host one too (its
        NIC-side adder).  Created lazily via ``factory`` so fabrics pay
        nothing until a switch-site gather runs.
        """
        if vertex not in self._adjacency:
            raise ValueError(f"unknown fabric vertex {vertex!r}")
        engine = self.aggregation_engines.get(vertex)
        if engine is None:
            engine = factory()
            self.aggregation_engines[vertex] = engine
        return engine

    def ecmp_path_count(self, src: int, dst: int) -> int:
        """Number of distinct shortest paths between two hosts."""
        self._check_endpoints(src, dst)
        target = self.host_id(dst)
        memo: Dict[str, int] = {target: 1}

        def count(vertex: str) -> int:
            if vertex not in memo:
                memo[vertex] = sum(
                    count(nxt) for nxt in self._next_hops[vertex][target]
                )
            return memo[vertex]

        return count(self.host_id(src))

    def path_length(self, src: int, dst: int) -> int:
        """Link count of the shortest path between two hosts."""
        return len(self.route(src, dst).links)

    def all_links(self) -> List[Link]:
        """Every port link, in deterministic (sorted edge id) order."""
        return [self.links[edge] for edge in sorted(self.links)]


class FatTree(MultiTierFabric):
    """A k-ary fat-tree: k pods of k/2 edge + k/2 aggregation switches.

    ``(k/2)^2`` core switches give full bisection bandwidth and
    ``k^3/4`` host ports.  Inter-pod host pairs see ``(k/2)^2``
    equal-cost paths; intra-pod pairs under different edge switches see
    ``k/2``.  All links run at ``bandwidth_bps`` — the fat-tree's
    defining property is that no tier is oversubscribed.
    """

    def __init__(
        self,
        sim: Simulation,
        k: int = 4,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        link_latency_s: float = DEFAULT_LINK_LATENCY_S,
        switch_delay_s: float = DEFAULT_SWITCH_DELAY_S,
    ) -> None:
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")
        half = k // 2
        super().__init__(sim, k * half * half, switch_delay_s)
        self.k = k
        for pod in range(k):
            for edge in range(half):
                edge_id = f"p{pod}e{edge}"
                for agg in range(half):
                    self._add_duplex(
                        edge_id, f"p{pod}a{agg}", bandwidth_bps, link_latency_s
                    )
                for port in range(half):
                    host = self.host_id(pod * half * half + edge * half + port)
                    self._add_duplex(host, edge_id, bandwidth_bps, link_latency_s)
            for agg in range(half):
                agg_id = f"p{pod}a{agg}"
                for up in range(half):
                    self._add_duplex(
                        agg_id, f"c{agg * half + up}", bandwidth_bps, link_latency_s
                    )
        self._build_routes()

    def pod_of(self, node: int) -> int:
        """Pod index of host ``node``."""
        half = self.k // 2
        return node // (half * half)


class LeafSpine(MultiTierFabric):
    """A two-level leaf-spine: every leaf connects to every spine.

    Hosts under different leaves see ``num_spines`` equal-cost paths.
    ``uplink_bandwidth_bps`` (default: host rate) sets the leaf<->spine
    port speed; choosing it below ``bandwidth_bps * hosts_per_leaf /
    num_spines`` oversubscribes the uplink tier.
    """

    def __init__(
        self,
        sim: Simulation,
        num_spines: int = 2,
        num_leaves: int = 2,
        hosts_per_leaf: int = 2,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        uplink_bandwidth_bps: Optional[float] = None,
        link_latency_s: float = DEFAULT_LINK_LATENCY_S,
        switch_delay_s: float = DEFAULT_SWITCH_DELAY_S,
    ) -> None:
        if num_spines < 1 or num_leaves < 1 or hosts_per_leaf < 1:
            raise ValueError("leaf-spine needs >=1 spine, leaf and host/leaf")
        super().__init__(sim, num_leaves * hosts_per_leaf, switch_delay_s)
        self.num_spines = num_spines
        self.num_leaves = num_leaves
        self.hosts_per_leaf = hosts_per_leaf
        uplink = (
            uplink_bandwidth_bps
            if uplink_bandwidth_bps is not None
            else bandwidth_bps
        )
        for leaf in range(num_leaves):
            leaf_id = f"l{leaf}"
            for port in range(hosts_per_leaf):
                host = self.host_id(leaf * hosts_per_leaf + port)
                self._add_duplex(host, leaf_id, bandwidth_bps, link_latency_s)
            for spine in range(num_spines):
                self._add_duplex(leaf_id, f"s{spine}", uplink, link_latency_s)
        self._build_routes()

    def leaf_of(self, node: int) -> int:
        """Leaf index of host ``node``."""
        return node // self.hosts_per_leaf


def parse_topology_spec(spec: str) -> Tuple[str, Dict[str, float]]:
    """Split ``"kind:key=value,..."`` into ``(kind, params)``."""
    kind, _, rest = spec.strip().partition(":")
    kind = kind.strip().lower()
    if not kind:
        raise ValueError(f"empty topology spec {spec!r}")
    params: Dict[str, float] = {}
    if rest:
        for part in rest.split(","):
            name, sep, value = part.partition("=")
            name = name.strip()
            if not sep or not name:
                raise ValueError(
                    f"topology parameter {part!r} is not key=value (in {spec!r})"
                )
            try:
                params[name] = float(value)
            except ValueError:
                raise ValueError(
                    f"topology parameter {name!r} needs a number, got {value!r}"
                ) from None
    return kind, params


def build_topology(
    spec: Optional[str],
    sim: Simulation,
    num_nodes: int,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    link_latency_s: float = DEFAULT_LINK_LATENCY_S,
    switch_delay_s: float = DEFAULT_SWITCH_DELAY_S,
) -> Topology:
    """Build the fabric a spec string describes, sized for ``num_nodes``.

    ``None`` and ``"star"`` produce the paper's single switched star
    (the bit-exact degenerate single-tier case).  Multi-tier kinds build
    their full host complement — at least ``num_nodes`` ports, with any
    spare hosts available to background tenants:

    ========================  ==============================================
    ``star``                  one switch, ``num_nodes`` ports (the default)
    ``ring``                  direct successor wiring (ablation)
    ``fat-tree:k=4``          k-ary fat-tree, ``k^3/4`` hosts
    ``leaf-spine:spines=2,``  ``leaves x hosts`` ports, ``spines`` ECMP
    ``leaves=2,hosts=2``      paths between leaves
    ``two-tier:racks=2,``     oversubscribed ToR + core
    ``hosts=2,oversub=4``     (:class:`~repro.network.fabric.TwoTierFabric`)
    ========================  ==============================================
    """
    kind, params = parse_topology_spec(spec if spec is not None else "star")

    def take(name: str, default: float) -> float:
        return params.pop(name, default)

    topology: Topology
    if kind == "star":
        topology = SwitchedStar(
            sim,
            num_nodes,
            bandwidth_bps=bandwidth_bps,
            link_latency_s=link_latency_s,
            switch_delay_s=switch_delay_s,
        )
    elif kind == "ring":
        topology = DirectRing(
            sim,
            num_nodes,
            bandwidth_bps=bandwidth_bps,
            link_latency_s=link_latency_s,
        )
    elif kind == "fat-tree":
        topology = FatTree(
            sim,
            k=int(take("k", 4)),
            bandwidth_bps=bandwidth_bps,
            link_latency_s=link_latency_s,
            switch_delay_s=switch_delay_s,
        )
    elif kind == "leaf-spine":
        hosts_per_leaf = int(take("hosts", 2))
        num_leaves = int(take("leaves", max(2, -(-num_nodes // hosts_per_leaf))))
        topology = LeafSpine(
            sim,
            num_spines=int(take("spines", 2)),
            num_leaves=num_leaves,
            hosts_per_leaf=hosts_per_leaf,
            bandwidth_bps=bandwidth_bps,
            link_latency_s=link_latency_s,
            switch_delay_s=switch_delay_s,
        )
    elif kind == "two-tier":
        nodes_per_rack = int(take("hosts", 2))
        num_racks = int(take("racks", max(2, -(-num_nodes // nodes_per_rack))))
        topology = TwoTierFabric(
            sim,
            num_racks=num_racks,
            nodes_per_rack=nodes_per_rack,
            bandwidth_bps=bandwidth_bps,
            oversubscription=take("oversub", 4.0),
            link_latency_s=link_latency_s,
            switch_delay_s=switch_delay_s,
        )
    else:
        raise ValueError(
            f"unknown topology kind {kind!r} "
            "(star, ring, fat-tree, leaf-spine, two-tier)"
        )
    if params:
        unknown = ", ".join(sorted(params))
        raise ValueError(f"unknown {kind} topology parameters: {unknown}")
    if topology.num_nodes < num_nodes:
        raise ValueError(
            f"{kind} topology has {topology.num_nodes} host ports, "
            f"but the cluster needs {num_nodes}"
        )
    return topology
