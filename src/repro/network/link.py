"""Point-to-point link model with bandwidth, propagation latency and FIFO
queueing.

A link is unidirectional; full-duplex connections are a pair of links.
Serialization time is ``bytes * 8 / bandwidth``; contention is modeled by
FIFO reservation (a transmit started while the link is busy queues behind
the in-flight traffic).  The aggregator bottleneck the paper measures is
precisely the FIFO queue on the switch-to-aggregator link.

Requests issued at the *same simulated instant* are a special case: with
naive immediate reservation their FIFO order would be whatever order the
kernel happened to run the requesting callbacks in — an accident of
event-queue insertion, not a modeling decision.  Callers that pass an
arbitration ``key`` instead get deterministic same-instant arbitration:
requests are collected until the instant drains (see
:meth:`Simulation.at_instant_end`) and granted in key order, the way a
hardware arbiter resolves simultaneous port requests by fixed priority.
This makes contention outcomes a pure function of the workload, invariant
under equal-timestamp event reordering.

Invariants: strict FIFO service order (arrival order between instants,
key order within an instant) — the ``priority`` argument is accepted for
interface compatibility and *ignored*, keeping single-tier fabrics
bit-exact (:class:`~repro.network.priority.PriorityLink` honors it);
cut-through hand-off exposes head arrival without ever letting a train
overtake itself; all timing derives from simulated time
(``Simulation.now``), never the host clock.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.obs import Tracer

from .events import Event, Simulation
from .loss import LossModel, LossyLinkMixin


class Link:
    """One direction of a network cable (or a switch port's egress)."""

    def __init__(
        self,
        sim: Simulation,
        bandwidth_bps: float,
        latency_s: float,
        name: str = "",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency cannot be negative")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.name = name
        self._free_at = 0.0
        #: Total bytes ever accepted, for utilization accounting.
        self.bytes_carried = 0
        #: Total time the link spent serializing, for utilization accounting.
        self.busy_time = 0.0
        self._loss = LossyLinkMixin(None)
        #: Packets inside dropped trains (per-packet loss accounting).
        self.packets_dropped = 0
        #: Role of this FIFO resource in trace output ("link" or "engine").
        self.kind = "link"
        #: Nullable tracer; ``None`` keeps the hot path allocation-free.
        self.tracer: Optional[Tracer] = None
        self._inflight: Optional[Deque[float]] = None
        #: Same-instant reservation requests awaiting arbitration.
        self._pending: List[Tuple] = []
        self._arbitrating = False

    def attach_tracer(self, tracer: Tracer, kind: Optional[str] = None) -> None:
        """Enable occupancy tracing on this resource (idempotent)."""
        self.tracer = tracer
        if kind is not None:
            self.kind = kind
        if self._inflight is None:
            self._inflight = deque()

    def _trace_transfer(
        self, now: float, start: float, finish: float, nbytes: int
    ) -> None:
        """Record one reserved transfer: occupancy span + queue metrics."""
        queue = self._inflight
        assert queue is not None and self.tracer is not None
        while queue and queue[0] <= now:
            queue.popleft()
        depth = len(queue)  # trains already holding the FIFO ahead of us
        queue.append(finish)
        self.tracer.span(
            f"{self.kind}.xfer",
            cat=self.kind,
            ts=start,
            dur=finish - start,
            resource=self.name,
            nbytes=nbytes,
            wait_s=start - now,
            queue_depth=depth,
        )
        metrics = self.tracer.metrics
        metrics.counter(f"{self.kind}_bytes", resource=self.name).inc(nbytes)
        metrics.gauge(f"{self.kind}_queue_depth", resource=self.name).set(depth)
        metrics.histogram(f"{self.kind}_queue_wait_s", resource=self.name).observe(
            start - now
        )

    def attach_loss(self, model: LossModel, salt: int = 0) -> None:
        """Enable Bernoulli train loss on this link."""
        salted = LossModel(
            drop_probability=model.drop_probability, seed=model.seed + salt
        )
        self._loss = LossyLinkMixin(salted)

    def should_drop(self, packets: int = 1) -> bool:
        """Decide (and record) whether the next train is lost here.

        ``packets`` is the train's packet count, recorded so loss
        statistics are available at the same granularity the WireMessage
        pipeline uses everywhere else.
        """
        dropped = self._loss.should_drop()
        if dropped:
            self.packets_dropped += packets
        return dropped

    @property
    def trains_dropped(self) -> int:
        return self._loss.trains_dropped

    def serialization_time(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire at line rate."""
        return nbytes * 8.0 / self.bandwidth_bps

    def _reserve(self, nbytes: int) -> Tuple[float, float]:
        """Claim the next FIFO slot; returns ``(start, finish)`` times."""
        now = self.sim.now
        serialization = self.serialization_time(nbytes)
        start = max(now, self._free_at)
        finish = start + serialization
        self._free_at = finish
        self.bytes_carried += nbytes
        self.busy_time += serialization
        if self.tracer is not None:
            self._trace_transfer(now, start, finish, nbytes)
        return start, finish

    def _defer(
        self, key: Tuple, nbytes: int, head_nbytes: Optional[int]
    ) -> Tuple[Event, Event]:
        """Queue an arbitrated reservation; grant happens at instant end."""
        first = Event(self.sim)
        second = Event(self.sim)
        self._pending.append((key, nbytes, head_nbytes, first, second))
        if not self._arbitrating:
            self._arbitrating = True
            self.sim.at_instant_end(self._grant_pending)
        return first, second

    def _grant_pending(self) -> None:
        """Grant every reservation requested this instant, in key order."""
        self._arbitrating = False
        pending, self._pending = self._pending, []
        pending.sort(key=lambda request: request[0])
        for _, nbytes, head_nbytes, first, second in pending:
            start, finish = self._reserve(nbytes)
            if head_nbytes is None:  # plain transmit: (sent, delivered)
                first_at = finish
            else:  # cut-through: (head_arrived, delivered)
                first_at = (
                    start + self.serialization_time(head_nbytes) + self.latency_s
                )
            self.sim.call_at(first_at, lambda ev=first: ev.succeed())
            self.sim.call_at(
                finish + self.latency_s, lambda ev=second: ev.succeed()
            )

    def transmit(
        self,
        nbytes: int,
        key: Optional[Tuple] = None,
        priority: Optional[int] = None,
    ) -> Tuple[Event, Event]:
        """Queue a frame for transmission.

        Returns ``(sent, delivered)``: ``sent`` fires when the last bit
        leaves the sender (the link becomes free), ``delivered`` fires one
        propagation delay later at the receiver.  Calls made while the
        link is busy are served FIFO.  With a ``key``, same-instant
        requests are granted in key order instead of call order (see the
        module docstring).  ``priority`` is ignored here — a plain link
        is a cable, not a scheduler; only
        :class:`~repro.network.priority.PriorityLink` honors it.
        """
        del priority  # FIFO links serve in arrival order regardless of class
        if nbytes < 0:
            raise ValueError("cannot transmit a negative number of bytes")
        if key is not None:
            return self._defer(key, nbytes, None)
        now = self.sim.now
        start, finish = self._reserve(nbytes)
        sent = self.sim.timeout(finish - now)
        delivered = self.sim.timeout(finish + self.latency_s - now)
        return sent, delivered

    def transmit_cut_through(
        self,
        nbytes: int,
        head_nbytes: int,
        key: Optional[Tuple] = None,
        priority: Optional[int] = None,
    ) -> Tuple[Event, Event]:
        """Queue a packet train, exposing when its *head* packet lands.

        Returns ``(head_arrived, delivered)``.  ``head_arrived`` fires
        when the first ``head_nbytes`` reach the far end — the moment a
        cut-through/pipelined next hop may begin forwarding — and
        ``delivered`` when the whole train has.  With homogeneous link
        rates (our topologies) forwarding on head arrival never outruns
        the incoming stream.  With a ``key``, same-instant requests are
        granted in key order instead of call order (see the module
        docstring).  ``priority`` is ignored here (see :meth:`transmit`).
        """
        del priority  # FIFO links serve in arrival order regardless of class
        if nbytes < 0:
            raise ValueError("cannot transmit a negative number of bytes")
        head_nbytes = min(max(head_nbytes, 0), nbytes)
        if key is not None:
            return self._defer(key, nbytes, head_nbytes)
        now = self.sim.now
        start, finish = self._reserve(nbytes)
        head_arrival = start + self.serialization_time(head_nbytes) + self.latency_s
        head_arrived = self.sim.timeout(head_arrival - now)
        delivered = self.sim.timeout(finish + self.latency_s - now)
        return head_arrived, delivered

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the link spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        gbps = self.bandwidth_bps / 1e9
        return f"Link({self.name or 'anon'}, {gbps:g} Gb/s, {self.latency_s*1e6:g} us)"
