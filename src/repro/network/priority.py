"""Strict-priority output-queued switch port for multi-tier fabrics.

Invariants this module maintains:

* **Non-preemptive strict priority.**  A :class:`PriorityLink` serves one
  train at a time; whenever the port frees, the waiting train with the
  numerically *lowest* priority class goes next.  A train already on the
  wire is never preempted, so a low-priority train delays higher classes
  by at most its own serialization time (the classic bounded
  head-of-line term of strict-priority schedulers).
* **FIFO within a class.**  Trains of equal priority are served in
  arrival order; the fabric never reorders a flow against itself.
* **Deterministic same-instant arbitration.**  Requests issued at the
  same simulated instant are collected until the instant drains (see
  :meth:`repro.network.events.Simulation.at_instant_end`) and admitted
  in ``(priority, key)`` order, so queue contents are a pure function of
  the workload — never of equal-timestamp callback order, which the
  determinism sanitizer deliberately perturbs.
* **Simulated-time discipline.**  All timing derives from
  ``Simulation.now`` and link parameters; no wall-clock reads, no
  unseeded randomness.

The plain :class:`~repro.network.link.Link` ignores priority entirely
(single-tier fabrics stay bit-exact); only multi-tier switch egress
ports honor it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from .events import Event, Simulation
from .link import Link

#: Number of priority classes (IEEE 802.1p-style 3-bit code space).
PRIORITY_CLASSES = 8
#: Served first — latency-critical foreground traffic.
PRIORITY_HIGH = 0
#: The class unmapped ToS bytes fall into.
PRIORITY_DEFAULT = 4
#: Served last — scavenger-class background traffic.
PRIORITY_LOW = 7

#: One admitted queue entry:
#: ``(priority, admission seq, nbytes, head_nbytes, first, second)``.
_QueueEntry = Tuple[int, int, int, Optional[int], Event, Event]
#: One not-yet-admitted request:
#: ``(priority, arbitration key, nbytes, head_nbytes, first, second)``.
_Request = Tuple[int, Tuple[int, ...], int, Optional[int], Event, Event]


class PriorityLink(Link):
    """A switch egress port with per-class output queues.

    Drop-in :class:`~repro.network.link.Link` replacement used by
    :mod:`repro.network.multitier`: ``transmit``/``transmit_cut_through``
    keep their contract (``(sent|head_arrived, delivered)`` event pairs)
    but honor the ``priority`` argument — lower values are served first,
    ``None`` maps to :data:`PRIORITY_DEFAULT`.  With every request in
    the same class the port degenerates to the plain link's FIFO
    discipline.
    """

    def __init__(
        self,
        sim: Simulation,
        bandwidth_bps: float,
        latency_s: float,
        name: str = "",
    ) -> None:
        super().__init__(sim, bandwidth_bps, latency_s, name=name)
        #: Admitted trains waiting for the port, ordered by
        #: ``(priority, admission seq)``.
        self._queue: List[_QueueEntry] = []
        #: Same-instant requests awaiting deterministic admission.
        self._requests: List[_Request] = []
        self._admission = itertools.count()
        self._sync_armed = False
        self._serving = False
        #: Peak queue length observed (for reports and tests).
        self.max_queue_depth = 0

    # -- public API (Link contract) ----------------------------------------

    def transmit(
        self,
        nbytes: int,
        key: Optional[Tuple] = None,
        priority: Optional[int] = None,
    ) -> Tuple[Event, Event]:
        """Queue a frame; returns ``(sent, delivered)`` (see ``Link``)."""
        if nbytes < 0:
            raise ValueError("cannot transmit a negative number of bytes")
        return self._enqueue(nbytes, None, key, priority)

    def transmit_cut_through(
        self,
        nbytes: int,
        head_nbytes: int,
        key: Optional[Tuple] = None,
        priority: Optional[int] = None,
    ) -> Tuple[Event, Event]:
        """Queue a train; returns ``(head_arrived, delivered)`` (see ``Link``)."""
        if nbytes < 0:
            raise ValueError("cannot transmit a negative number of bytes")
        head_nbytes = min(max(head_nbytes, 0), nbytes)
        return self._enqueue(nbytes, head_nbytes, key, priority)

    # -- internals ----------------------------------------------------------

    def _enqueue(
        self,
        nbytes: int,
        head_nbytes: Optional[int],
        key: Optional[Tuple],
        priority: Optional[int],
    ) -> Tuple[Event, Event]:
        """Stage a request for admission at the end of this instant."""
        cls = PRIORITY_DEFAULT if priority is None else priority
        if not 0 <= cls < PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be in [0, {PRIORITY_CLASSES}), got {cls}"
            )
        first = Event(self.sim)
        second = Event(self.sim)
        arb_key = tuple(key) if key is not None else ()
        self._requests.append((cls, arb_key, nbytes, head_nbytes, first, second))
        self._arm_sync()
        return first, second

    def _arm_sync(self) -> None:
        """Schedule one admission pass when the current instant drains."""
        if not self._sync_armed:
            self._sync_armed = True
            self.sim.at_instant_end(self._instant_sync)

    def _instant_sync(self) -> None:
        """Admit this instant's requests in (priority, key) order, then serve."""
        self._sync_armed = False
        requests, self._requests = self._requests, []
        requests.sort(key=lambda request: (request[0], request[1]))
        for cls, _, nbytes, head_nbytes, first, second in requests:
            heapq.heappush(
                self._queue,
                (cls, next(self._admission), nbytes, head_nbytes, first, second),
            )
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)
        self._maybe_start()

    def _maybe_start(self) -> None:
        """Put the best waiting train on the wire if the port is idle."""
        if self._serving or not self._queue:
            return
        self._serving = True
        _, _, nbytes, head_nbytes, first, second = heapq.heappop(self._queue)
        now = self.sim.now
        serialization = self.serialization_time(nbytes)
        finish = now + serialization
        self._free_at = finish
        self.bytes_carried += nbytes
        self.busy_time += serialization
        if self.tracer is not None:
            self._trace_transfer(now, now, finish, nbytes)
        if head_nbytes is None:  # plain transmit: (sent, delivered)
            first_at = finish
        else:  # cut-through: (head_arrived, delivered)
            first_at = now + self.serialization_time(head_nbytes) + self.latency_s
        self.sim.call_at(first_at, lambda ev=first: ev.succeed())
        self.sim.call_at(finish + self.latency_s, lambda ev=second: ev.succeed())
        self.sim.call_at(finish, self._finish_service)

    def _finish_service(self) -> None:
        """Free the port; same-instant arrivals compete for the next slot."""
        self._serving = False
        self._arm_sync()
