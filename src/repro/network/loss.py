"""Packet loss and retransmission modeling.

The baseline simulator assumes a lossless fabric (a fine assumption for
a healthy single-switch 10 GbE cluster, and what the paper's numbers
reflect).  For robustness studies we add Bernoulli per-train loss on
links plus a go-back-style retransmission layer with an RTO, so the
benches can ask how much loss the two algorithms tolerate before their
ordering changes.

Invariants: drop decisions come from a per-link seeded
``np.random.default_rng`` stream in link-local request order, so a
replay drops exactly the same trains; loss never reorders a flow (the
sender detects the drop one RTO after the expected delivery and resends
through the same FIFO route, and the endpoint reorder buffer restores
send order); retransmission accounting is observable (``trains_dropped``,
``packets_dropped``) rather than silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class LossModel:
    """Bernoulli train-loss configuration for a link."""

    drop_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1), got {self.drop_probability}"
            )


class LossyLinkMixin:
    """Deterministic drop decisions for a link (keyed by its own RNG)."""

    def __init__(self, loss: Optional[LossModel]) -> None:
        self._loss = loss
        self._rng = (
            np.random.default_rng(loss.seed) if loss is not None else None
        )
        self.trains_dropped = 0

    def should_drop(self) -> bool:
        if self._loss is None or self._loss.drop_probability == 0.0:
            return False
        dropped = bool(self._rng.random() < self._loss.drop_probability)
        if dropped:
            self.trains_dropped += 1
        return dropped


@dataclass(frozen=True)
class RetransmitPolicy:
    """Sender-side recovery parameters."""

    #: Retransmission timeout: how long after the expected delivery time
    #: the sender waits before resending a lost train.
    rto_s: float = 200e-6
    #: Give up after this many attempts (None = retry forever).
    max_attempts: Optional[int] = 16

    def __post_init__(self) -> None:
        if self.rto_s <= 0:
            raise ValueError("RTO must be positive")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")


class DeliveryFailure(RuntimeError):
    """A train exhausted its retransmission budget."""
