"""Reduction trees over multi-tier fabrics for in-network aggregation.

A switch-site gather does not route every gradient stream end-to-end;
it moves payloads along the *spanning tree* that
:meth:`~repro.network.multitier.MultiTierFabric.tree_path` induces
toward the aggregation root, folding streams together wherever the tree
merges.  This module turns that tree into an explicit, deterministic
:class:`ReductionPlan`:

* a **stage** per merge vertex (fan-in >= 2) plus one final stage at
  the root host — each stage is where a partial sum forms and an
  :class:`~repro.hardware.aggregation_engine.AggregationEngine` runs;
* an **input** per incoming tree edge, carrying the fabric vertex walk
  from the child (a contributing host or a deeper stage) up to the
  stage vertex — the route segment its payload travels;
* a global **segment index** per input, the deterministic identity the
  network layer uses for same-instant link arbitration, so reduction
  traffic can never race on event-callback order.

Stages are ordered deepest-first (then by vertex id), so iterating
``plan.stages`` is a valid bottom-up schedule and the last stage is
always the root's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .multitier import MultiTierFabric


@dataclass(frozen=True)
class ReduceInput:
    """One incoming tree edge of a reduce stage.

    Exactly one of ``host`` (a contributing worker) and ``stage`` (a
    deeper stage's output) is set.  ``vertices`` is the fabric walk from
    the child vertex up to and including the stage vertex; ``segment``
    is the plan-global index of this edge.
    """

    host: Optional[int]
    stage: Optional[int]
    vertices: Tuple[str, ...]
    segment: int


@dataclass(frozen=True)
class ReduceStage:
    """One merge point of the reduction tree."""

    index: int
    vertex: str
    inputs: Tuple[ReduceInput, ...]

    @property
    def fan_in(self) -> int:
        return len(self.inputs)


@dataclass(frozen=True)
class ReductionPlan:
    """The full reduction tree from ``sources`` into host ``root``."""

    root: int
    sources: Tuple[int, ...]
    stages: Tuple[ReduceStage, ...]

    @property
    def num_segments(self) -> int:
        """Total route segments (one per stage input)."""
        return sum(len(stage.inputs) for stage in self.stages)

    @property
    def switch_stages(self) -> Tuple[ReduceStage, ...]:
        """Stages at fabric switches (every stage but the root's)."""
        return self.stages[:-1]

    @property
    def root_stage(self) -> ReduceStage:
        """The final combine at the root host (always last)."""
        return self.stages[-1]


def build_reduction_plan(
    fabric: MultiTierFabric, sources: Sequence[int], root: int
) -> ReductionPlan:
    """Build the deterministic reduction tree for ``sources`` -> ``root``.

    The tree is the union of first-sorted-next-hop walks
    (:meth:`MultiTierFabric.tree_path`); merge vertices become stages.
    Everything — stage order, input order, segment indices — is a pure
    function of ``(fabric wiring, sources, root)``.
    """
    ordered_sources = tuple(sorted(set(int(s) for s in sources)))
    if not ordered_sources:
        raise ValueError("a reduction needs at least one source")
    if root in ordered_sources:
        raise ValueError(f"root {root} cannot also be a reduction source")

    root_vertex = fabric.host_id(root)
    parent: Dict[str, str] = {}
    children: Dict[str, Set[str]] = {}
    depth: Dict[str, int] = {root_vertex: 0}
    for src in ordered_sources:
        path = fabric.tree_path(src, root)
        hops = len(path)
        for pos, vertex in enumerate(path[:-1]):
            depth[vertex] = hops - 1 - pos
            nxt = path[pos + 1]
            parent[vertex] = nxt
            children.setdefault(nxt, set()).add(vertex)

    merge_vertices = {
        vertex for vertex, kids in children.items() if len(kids) >= 2
    }
    merge_vertices.add(root_vertex)
    ordered_vertices = sorted(
        merge_vertices, key=lambda vertex: (-depth[vertex], vertex)
    )
    index_of = {vertex: i for i, vertex in enumerate(ordered_vertices)}

    pending: Dict[str, List[Tuple[Optional[int], Optional[str], Tuple[str, ...]]]] = {}

    def climb(start: str) -> Tuple[str, Tuple[str, ...]]:
        """Walk from ``start`` up to the next merge vertex."""
        walk = [start]
        current = start
        while current != root_vertex:
            current = parent[current]
            walk.append(current)
            if current in merge_vertices:
                break
        return current, tuple(walk)

    for src in ordered_sources:
        stop, walk = climb(fabric.host_id(src))
        pending.setdefault(stop, []).append((src, None, walk))
    for vertex in ordered_vertices:
        if vertex == root_vertex:
            continue
        stop, walk = climb(vertex)
        pending.setdefault(stop, []).append((None, vertex, walk))

    def input_key(
        entry: Tuple[Optional[int], Optional[str], Tuple[str, ...]]
    ) -> Tuple[int, int]:
        host, child_vertex, _walk = entry
        if host is not None:
            return (0, host)
        assert child_vertex is not None
        return (1, index_of[child_vertex])

    stages: List[ReduceStage] = []
    segment = 0
    for index, vertex in enumerate(ordered_vertices):
        inputs: List[ReduceInput] = []
        for host, child_vertex, walk in sorted(
            pending.get(vertex, []), key=input_key
        ):
            inputs.append(
                ReduceInput(
                    host=host,
                    stage=(
                        index_of[child_vertex]
                        if child_vertex is not None
                        else None
                    ),
                    vertices=walk,
                    segment=segment,
                )
            )
            segment += 1
        if not inputs:
            raise ValueError(f"merge vertex {vertex!r} collected no inputs")
        stages.append(
            ReduceStage(index=index, vertex=vertex, inputs=tuple(inputs))
        )

    return ReductionPlan(
        root=root, sources=ordered_sources, stages=tuple(stages)
    )
