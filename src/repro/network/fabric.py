"""Two-tier oversubscribed fabric (datacenter context, paper Sec. VII-C).

The paper motivates its 10 GbE assumption with real datacenter designs:
1-10 Gb/s within a rack, with *oversubscribed* uplinks between top-of-
rack (ToR) switches.  This topology models that: nodes attach to per-
rack ToR switches; racks interconnect through a core switch whose
uplinks carry ``oversubscription``-times less aggregate bandwidth than
the edge.  Cross-rack traffic contends on the uplinks, so algorithm
placement (rings within racks vs across them) becomes measurable.

Invariants: single-path routing — every ``(src, dst)`` pair has exactly
one route (intra-rack through the ToR, inter-rack through the core), so
flows keep FIFO delivery on the links' FIFO service with no ECMP
choices to hash; per-hop ``forwarding_delay_s`` models store-and-forward
switches; all timing is simulated time.  For ECMP-routed Clos fabrics
see :mod:`repro.network.multitier`.
"""

from __future__ import annotations

from typing import Dict, List

from .events import Simulation
from .link import Link
from .packet import TOS_DEFAULT
from .topology import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_LINK_LATENCY_S,
    DEFAULT_SWITCH_DELAY_S,
    Route,
    Topology,
)


class TwoTierFabric(Topology):
    """Racks of nodes under ToR switches joined by a core switch.

    A message inside one rack crosses node->ToR->node.  A cross-rack
    message crosses node->ToR->core->ToR->node, where the ToR->core and
    core->ToR hops run at ``edge_bandwidth / oversubscription``.
    """

    def __init__(
        self,
        sim: Simulation,
        num_racks: int,
        nodes_per_rack: int,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        oversubscription: float = 4.0,
        link_latency_s: float = DEFAULT_LINK_LATENCY_S,
        switch_delay_s: float = DEFAULT_SWITCH_DELAY_S,
    ) -> None:
        if num_racks < 1 or nodes_per_rack < 1:
            raise ValueError("need at least one rack with one node")
        if oversubscription < 1.0:
            raise ValueError("oversubscription factor must be >= 1")
        super().__init__(sim, num_racks * nodes_per_rack)
        self.num_racks = num_racks
        self.nodes_per_rack = nodes_per_rack
        self.switch_delay_s = switch_delay_s
        self.oversubscription = oversubscription

        uplink_bandwidth = bandwidth_bps * nodes_per_rack / oversubscription

        self.edge_up: Dict[int, Link] = {}
        self.edge_down: Dict[int, Link] = {}
        for node in range(self.num_nodes):
            self.edge_up[node] = Link(
                sim, bandwidth_bps, link_latency_s, name=f"n{node}->tor"
            )
            self.edge_down[node] = Link(
                sim, bandwidth_bps, link_latency_s, name=f"tor->n{node}"
            )
        self.core_up: Dict[int, Link] = {}
        self.core_down: Dict[int, Link] = {}
        for rack in range(num_racks):
            self.core_up[rack] = Link(
                sim, uplink_bandwidth, link_latency_s, name=f"tor{rack}->core"
            )
            self.core_down[rack] = Link(
                sim, uplink_bandwidth, link_latency_s, name=f"core->tor{rack}"
            )

    def rack_of(self, node: int) -> int:
        return node // self.nodes_per_rack

    def route(self, src: int, dst: int, tos: int = TOS_DEFAULT) -> Route:
        self._check_endpoints(src, dst)
        src_rack, dst_rack = self.rack_of(src), self.rack_of(dst)
        if src_rack == dst_rack:
            links = (self.edge_up[src], self.edge_down[dst])
        else:
            links = (
                self.edge_up[src],
                self.core_up[src_rack],
                self.core_down[dst_rack],
                self.edge_down[dst],
            )
        return Route(links=links, forwarding_delay_s=self.switch_delay_s)

    def all_links(self) -> List[Link]:
        return (
            list(self.edge_up.values())
            + list(self.edge_down.values())
            + list(self.core_up.values())
            + list(self.core_down.values())
        )


def rack_aligned_ring_order(fabric: TwoTierFabric) -> List[int]:
    """Node order that keeps ring neighbours rack-local where possible.

    Consecutive ring positions within a rack use only edge links; only
    one hop per rack pair crosses the oversubscribed core — the natural
    placement for Algorithm 1 on a two-tier fabric.
    """
    return list(range(fabric.num_nodes))


def rack_interleaved_ring_order(fabric: TwoTierFabric) -> List[int]:
    """Adversarial order: every ring hop crosses racks (worst case)."""
    order: List[int] = []
    for offset in range(fabric.nodes_per_rack):
        for rack in range(fabric.num_racks):
            order.append(rack * fabric.nodes_per_rack + offset)
    return order
