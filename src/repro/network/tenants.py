"""Multi-tenant background traffic sharing the simulated fabric.

Datacenter fabrics carry many jobs at once; this module injects the two
competitor shapes the contention study needs against the foreground
training job: a second training job (ring-neighbor gradient bursts,
bandwidth-bound) and inference-style serving (request/response pairs,
latency-bound).  Each tenant's flows carry a dedicated ToS byte, so
per-ToS prioritization at :class:`~repro.network.priority.PriorityLink`
queues can protect (or not) the foreground stream — the Fig 15-style
contention sweep in ``repro bench``.

Invariants this module maintains:

* **Seeded randomness only.**  Inference think times draw from
  ``np.random.default_rng([seed, tenant, flow])``; replays are
  bit-identical (the lint R9 discipline).
* **Disjoint host placement.**  Tenants occupy fabric host ports at and
  above ``first_host``; the foreground job's ports ``[0, first_host)``
  are never reused, and construction fails loudly when the fabric lacks
  capacity.
* **Deterministic flows.**  All traffic goes through
  :meth:`Network.send <repro.network.simulator.Network.send>`, so every
  train gets the same per-flow arbitration keys and ECMP paths as
  foreground traffic — background load never introduces event-order
  races.
* **Bounded lifetime.**  Generators loop until :meth:`BackgroundTraffic.stop`
  is called (when the foreground workload completes); in-flight messages
  then drain and the simulation terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Sequence, Tuple

import numpy as np

from .events import Event
from .priority import PRIORITY_LOW
from .simulator import Network

#: ToS byte carried by background training-job gradients (raw: no codec
#: claims it, so tenant traffic never enters the NIC engines).
TOS_TENANT_TRAIN = 0x08
#: ToS byte carried by inference request/response traffic.
TOS_TENANT_INFER = 0x10

#: Inference request size (a batched embedding lookup, roughly).
INFER_REQUEST_BYTES = 2_000
#: Inference response size (logits/activations back to the caller).
INFER_RESPONSE_BYTES = 500_000
#: Background training-job per-hop gradient block.
TRAIN_BLOCK_BYTES = 2_000_000


@dataclass(frozen=True)
class TenantSpec:
    """One background tenant: its shape, placement size and priority.

    ``kind`` is ``"train"`` (ring-neighbor gradient bursts) or
    ``"infer"`` (request/response pairs between client and server
    halves).  ``priority`` is the class its ToS maps to when the fabric
    prioritizes (:data:`~repro.network.priority.PRIORITY_LOW` by
    default — background traffic yields to the foreground job).
    """

    kind: str
    hosts: int = 4
    tos: int = TOS_TENANT_TRAIN
    priority: int = PRIORITY_LOW
    #: Bytes per message (train: gradient block; infer: response).
    nbytes: int = TRAIN_BLOCK_BYTES
    #: Mean think time between an inference flow's request pairs
    #: (exponentially distributed); unused by train tenants, which send
    #: back-to-back.
    think_s: float = 2e-4

    def __post_init__(self) -> None:
        if self.kind not in ("train", "infer"):
            raise ValueError(
                f"tenant kind must be 'train' or 'infer', got {self.kind!r}"
            )
        if self.hosts < 2:
            raise ValueError(
                f"a {self.kind} tenant needs at least 2 hosts, got {self.hosts}"
            )
        if self.nbytes <= 0:
            raise ValueError("tenant nbytes must be positive")


def parse_tenants(spec: str) -> Tuple[TenantSpec, ...]:
    """Parse a ``--tenants`` string like ``"train:4,infer:8"``.

    Comma-separated ``kind[:hosts]`` entries; ``hosts`` defaults to 4.
    ``train`` tenants default to ToS :data:`TOS_TENANT_TRAIN` and
    2 MB gradient blocks, ``infer`` tenants to :data:`TOS_TENANT_INFER`
    and 500 kB responses.
    """
    tenants: List[TenantSpec] = []
    for part in spec.split(","):
        kind, _, count = part.strip().partition(":")
        kind = kind.strip().lower()
        try:
            hosts = int(count) if count else 4
        except ValueError:
            raise ValueError(
                f"tenant host count must be an integer, got {count!r}"
            ) from None
        if kind == "train":
            tenants.append(TenantSpec(kind="train", hosts=hosts))
        elif kind == "infer":
            tenants.append(
                TenantSpec(
                    kind="infer",
                    hosts=hosts,
                    tos=TOS_TENANT_INFER,
                    nbytes=INFER_RESPONSE_BYTES,
                )
            )
        else:
            raise ValueError(
                f"unknown tenant kind {kind!r} in {spec!r} (train, infer)"
            )
    if not tenants:
        raise ValueError(f"no tenants in spec {spec!r}")
    return tuple(tenants)


class BackgroundTraffic:
    """Competing tenant flows injected into an existing :class:`Network`.

    Placement is contiguous from ``first_host`` upward in spec order;
    per-tenant message/byte counters accumulate until the foreground
    workload stops the generators.
    """

    def __init__(
        self,
        network: Network,
        tenants: Sequence[TenantSpec],
        first_host: int,
        seed: int = 0,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        self.network = network
        self.tenants = tuple(tenants)
        self.seed = seed
        self._stopped = False
        self._launched = False
        capacity = network.topology.num_nodes
        self.placements: List[Tuple[TenantSpec, List[int]]] = []
        cursor = first_host
        for tenant in self.tenants:
            hosts = list(range(cursor, cursor + tenant.hosts))
            cursor += tenant.hosts
            self.placements.append((tenant, hosts))
        if cursor > capacity:
            raise ValueError(
                f"tenants need {cursor - first_host} spare host ports but the "
                f"fabric has {max(0, capacity - first_host)} "
                f"({capacity} total, {first_host} reserved for the training "
                "job); pick a larger --topology"
            )
        #: Per-tenant-index message and payload-byte counters.
        self.messages_sent: Dict[int, int] = {
            index: 0 for index in range(len(self.tenants))
        }
        self.bytes_sent: Dict[int, int] = {
            index: 0 for index in range(len(self.tenants))
        }

    def launch(self) -> None:
        """Spawn every tenant's generator processes (idempotent)."""
        if self._launched:
            return
        self._launched = True
        for index, (tenant, hosts) in enumerate(self.placements):
            if tenant.kind == "train":
                for position in range(len(hosts)):
                    self.network.sim.process(
                        self._train_flow(index, tenant, hosts, position)
                    )
            else:
                half = len(hosts) // 2
                clients, servers = hosts[:half], hosts[half:]
                for flow, client in enumerate(clients):
                    server = servers[flow % len(servers)]
                    self.network.sim.process(
                        self._infer_flow(index, tenant, client, server, flow)
                    )

    def stop(self) -> None:
        """Ask every generator to exit after its in-flight message lands."""
        self._stopped = True

    @property
    def total_messages(self) -> int:
        """Background messages injected across all tenants."""
        return sum(self.messages_sent.values())

    @property
    def total_bytes(self) -> int:
        """Background payload bytes injected across all tenants."""
        return sum(self.bytes_sent.values())

    def _send(
        self, index: int, tenant: TenantSpec, src: int, dst: int, nbytes: int
    ) -> Event:
        """One counted background message on the tenant's ToS."""
        self.messages_sent[index] += 1
        self.bytes_sent[index] += nbytes
        return self.network.send(src, dst, nbytes, tos=tenant.tos)

    def _train_flow(
        self, index: int, tenant: TenantSpec, hosts: List[int], position: int
    ) -> Generator[Event, object, None]:
        """A second training job's ring leg: back-to-back gradient blocks."""
        src = hosts[position]
        dst = hosts[(position + 1) % len(hosts)]
        while not self._stopped:
            yield self._send(index, tenant, src, dst, tenant.nbytes)

    def _infer_flow(
        self,
        index: int,
        tenant: TenantSpec,
        client: int,
        server: int,
        flow: int,
    ) -> Generator[Event, object, None]:
        """One serving flow: small request up, large response back, think."""
        rng = np.random.default_rng([self.seed, index, flow])
        while not self._stopped:
            yield self._send(index, tenant, client, server, INFER_REQUEST_BYTES)
            yield self._send(index, tenant, server, client, tenant.nbytes)
            think = float(rng.exponential(tenant.think_s))
            if think > 0.0:
                yield self.network.sim.timeout(think)
