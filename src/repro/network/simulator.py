"""Message-level network simulator gluing topology, links and NIC timing.

Messages are segmented into packet trains; each train is a process that
store-and-forwards across the route's links, so bandwidth sharing, FIFO
queueing and pipelining across hops all emerge from the event kernel.

The NIC compression engines influence timing in two ways, mirroring the
hardware integration of Sec. VI-A:

* compressible payload shrinks on the wire (the caller supplies the
  compressed byte count measured by the real codec), while the *packet
  count does not change* — the engine compresses payloads in place, so
  per-packet header bytes survive compression.  This reproduces the
  paper's observation that a 15x compression ratio does not yield a 15x
  communication-time reduction.
* the engine adds a small pipeline latency per train and caps streaming
  throughput at its burst rate (256 bits/cycle at 100 MHz = 3.2 GB/s,
  faster than 10 GbE, hence invisible by default but exposed for
  ablation).

Invariants: per-flow FIFO delivery — trains of one message traverse one
fixed route (``topology.route(src, dst, tos)``) in order, and the
receiver-side reorder buffer in :mod:`repro.transport.endpoint` restores
send order across messages; cut-through hand-off between stages starts
the next hop on head arrival, never before; same-instant contention on
any stage resolves by arbitration key, not callback order; with a
``tos_priority`` map, a train's priority class is a pure function of its
ToS byte (unmapped bytes get ``PRIORITY_DEFAULT``); all timing is
simulated time and the only randomness is the seeded loss model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.obs import CAT_MESSAGE, Tracer

from .events import Event, Simulation
from .link import Link
from .loss import DeliveryFailure, LossModel, RetransmitPolicy
from .packet import HEADER_BYTES, TOS_DEFAULT, is_compressible_tos, packet_count
from .priority import PRIORITY_DEFAULT
from .topology import Route, Topology

if TYPE_CHECKING:
    from repro.transport.wire import WireMessage

#: Retransmission hook: ``(packets, wire_payload, raw_payload)`` of the
#: train being resent (payload bytes, headers excluded).
RetransmitHook = Callable[[int, int, int], None]

#: Engine streaming rate: 256 bits per cycle at 100 MHz.
ENGINE_THROUGHPUT_BPS = 256 * 100e6 / 8  # bytes/second


@dataclass(frozen=True)
class NicTimingModel:
    """Timing-relevant NIC parameters (one per node)."""

    #: Whether the in-NIC compression/decompression engines are present.
    compression: bool = False
    #: Pipeline fill latency through the engine per packet train.
    engine_latency_s: float = 1e-6
    #: Engine streaming throughput on the *uncompressed* side.
    engine_throughput_bps: float = ENGINE_THROUGHPUT_BPS


@dataclass
class MessageReceipt:
    """Bookkeeping returned alongside message delivery."""

    src: int
    dst: int
    nbytes: int
    wire_nbytes: int
    num_packets: int
    compressed: bool
    sent_at: float
    #: Delivery time; ``None`` until the message actually lands.
    delivered_at: Optional[float] = None

    @property
    def delivered(self) -> bool:
        """Whether the message has reached its destination yet."""
        return self.delivered_at is not None

    @property
    def duration(self) -> float:
        """Send-to-delivery time; raises while the message is in flight."""
        if self.delivered_at is None:
            raise RuntimeError(
                f"message {self.src}->{self.dst} not delivered yet"
            )
        return self.delivered_at - self.sent_at


class Network:
    """The cluster fabric: send messages, get delivery events."""

    #: Packets per simulated train; large messages are simulated at this
    #: granularity to bound event count while preserving pipelining.
    DEFAULT_TRAIN_PACKETS = 44  # ~64 KB of MSS payload

    def __init__(
        self,
        sim: Simulation,
        topology: Topology,
        mss: int = 1460,
        train_packets: int = DEFAULT_TRAIN_PACKETS,
        nics: Optional[Dict[int, NicTimingModel]] = None,
        loss: Optional[LossModel] = None,
        retransmit: Optional[RetransmitPolicy] = None,
        tracer: Optional[Tracer] = None,
        tos_priority: Optional[Dict[int, int]] = None,
    ) -> None:
        if mss <= 0 or train_packets <= 0:
            raise ValueError("mss and train_packets must be positive")
        self.sim = sim
        self.tracer = tracer
        self.topology = topology
        self.mss = mss
        self.train_packets = train_packets
        #: ToS byte -> priority class honored by priority-queued fabrics
        #: (``None`` disables classification: every train rides the
        #: default class, and plain FIFO links ignore priority anyway).
        self.tos_priority = dict(tos_priority) if tos_priority is not None else None
        self.retransmit = retransmit or RetransmitPolicy()
        if loss is not None:
            links = getattr(topology, "all_links", lambda: [])()
            if not links:
                raise ValueError(
                    "loss modeling requires a topology exposing all_links()"
                )
            for salt, link in enumerate(links):
                link.attach_loss(loss, salt)
        self.trains_retransmitted = 0
        self.packets_retransmitted = 0
        default = NicTimingModel()
        self.nics: Dict[int, NicTimingModel] = {
            node: (nics or {}).get(node, default)
            for node in range(topology.num_nodes)
        }
        # Engines are FIFO resources: a busy engine queues later trains,
        # so a slow engine gates streaming throughput exactly like a
        # slow link would.  They carry the *uncompressed* byte stream.
        self._tx_engines: Dict[int, Link] = {}
        self._rx_engines: Dict[int, Link] = {}
        for node, nic in self.nics.items():
            if nic.compression:
                self._tx_engines[node] = Link(
                    sim,
                    nic.engine_throughput_bps * 8,
                    nic.engine_latency_s,
                    name=f"n{node}-tx-engine",
                )
                self._rx_engines[node] = Link(
                    sim,
                    nic.engine_throughput_bps * 8,
                    nic.engine_latency_s,
                    name=f"n{node}-rx-engine",
                )
        if tracer is not None:
            for engine in (*self._tx_engines.values(), *self._rx_engines.values()):
                engine.attach_tracer(tracer, kind="engine")
            for link in getattr(topology, "all_links", lambda: [])():
                link.attach_tracer(tracer)
        self.total_wire_bytes = 0
        #: Link-level traffic: wire bytes weighted by hop count.  Unlike
        #: ``total_wire_bytes`` (once per message), this grows with every
        #: link a message crosses, so in-network aggregation shows up as
        #: a reduction even though it sends *more* (shorter) segments.
        self.total_link_bytes = 0
        self.messages_sent = 0
        # Per-(src, dst) message sequence numbers feed link arbitration
        # keys.  Unlike the global ``messages_sent`` counter, these only
        # order messages within one flow — a deterministic quantity —
        # so keys never depend on the cross-flow callback execution
        # order the sanitizer deliberately perturbs.
        self._pair_seq: Dict[Tuple[int, int], int] = {}

    # -- public API -----------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tos: int = TOS_DEFAULT,
        payload: object = None,
        compressed_nbytes: Optional[int] = None,
    ) -> Event:
        """Send ``nbytes`` of application data from ``src`` to ``dst``.

        Returns an event firing at delivery with value
        ``(payload, receipt)``.  When ``tos`` is a registered
        compression code (``TOS_COMPRESS`` or any codec ToS claimed via
        :func:`repro.network.packet.register_compressible_tos`) and both
        endpoint NICs have engines, the wire payload is
        ``compressed_nbytes`` (defaulting to ``nbytes`` when the caller
        did not measure it).
        """
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        if compressed_nbytes is not None and compressed_nbytes < 0:
            raise ValueError("compressed_nbytes cannot be negative")
        compress = (
            is_compressible_tos(tos)
            and self.nics[src].compression
            and self.nics[dst].compression
        )
        wire_payload = nbytes
        if compress and compressed_nbytes is not None:
            wire_payload = compressed_nbytes
        return self._launch(
            src, dst, nbytes, wire_payload, tos, compress, payload, None
        )

    def send_wire(
        self,
        msg: "WireMessage",
        on_retransmit: Optional[RetransmitHook] = None,
    ) -> Event:
        """Send a built :class:`~repro.transport.wire.WireMessage`.

        The message's wire sizes were produced by the sender NIC's
        engine dispatch, so they are authoritative; the timing NICs only
        gate whether the engine pipeline stages are traversed.  Returns
        an event firing at delivery with value ``(msg, receipt)``.
        ``on_retransmit`` fires once per resent train with its packet
        and payload counts — the hook that lets functional NIC counters
        see every wire traversal.
        """
        compress = (
            msg.compressed
            and self.nics[msg.src].compression
            and self.nics[msg.dst].compression
        )
        return self._launch(
            msg.src,
            msg.dst,
            msg.nbytes,
            msg.wire_payload_nbytes,
            msg.tos,
            compress,
            msg,
            on_retransmit,
        )

    def send_route(
        self,
        route: Route,
        src: int,
        dst: int,
        nbytes: int,
        wire_payload: int,
        tos: int = TOS_DEFAULT,
        payload: object = None,
        tx_engine_node: Optional[int] = None,
        rx_engine_node: Optional[int] = None,
        arb_base: Optional[Tuple[int, int, int]] = None,
    ) -> Event:
        """Send over an explicit partial route (reduction-tree segments).

        The in-network aggregation runtime moves payloads between hosts
        and reduction points along route *segments* rather than full
        host-to-host routes, with engine stages only where hardware sits:
        ``tx_engine_node``/``rx_engine_node`` name the endpoint whose
        compression engines bracket this segment (``None`` for
        switch-to-switch segments; nodes without engines are skipped).
        ``arb_base`` must be a deterministic identity for the segment —
        the reduction plan assigns one per edge — so same-instant link
        arbitration never depends on callback order.  Returns an event
        firing at segment delivery with value ``(payload, receipt)``.
        """
        tx_engine = (
            self._tx_engines.get(tx_engine_node)
            if tx_engine_node is not None
            else None
        )
        rx_engine = (
            self._rx_engines.get(rx_engine_node)
            if rx_engine_node is not None
            else None
        )
        return self._dispatch(
            route,
            src,
            dst,
            nbytes,
            wire_payload,
            tos,
            tx_engine,
            rx_engine,
            payload,
            None,
            arb_base,
        )

    # -- internals --------------------------------------------------------------

    def _launch(
        self,
        src: int,
        dst: int,
        nbytes: int,
        wire_payload: int,
        tos: int,
        compress: bool,
        payload: object,
        on_retransmit: Optional[RetransmitHook],
    ) -> Event:
        """Common send path: trace, segment into trains, spawn processes."""
        route = self.topology.route(src, dst, tos=tos)
        return self._dispatch(
            route,
            src,
            dst,
            nbytes,
            wire_payload,
            tos,
            self._tx_engines[src] if compress else None,
            self._rx_engines[dst] if compress else None,
            payload,
            on_retransmit,
            None,
        )

    def _dispatch(
        self,
        route: Route,
        src: int,
        dst: int,
        nbytes: int,
        wire_payload: int,
        tos: int,
        tx_engine: Optional[Link],
        rx_engine: Optional[Link],
        payload: object,
        on_retransmit: Optional[RetransmitHook],
        arb_base: Optional[Tuple[int, int, int]],
    ) -> Event:
        """Trace, segment into trains, spawn train processes."""
        priority: Optional[int] = None
        if self.tos_priority is not None:
            priority = self.tos_priority.get(tos, PRIORITY_DEFAULT)
        compress = tx_engine is not None or rx_engine is not None
        num_packets = packet_count(nbytes, self.mss)
        wire_total = num_packets * HEADER_BYTES + wire_payload

        receipt = MessageReceipt(
            src=src,
            dst=dst,
            nbytes=nbytes,
            wire_nbytes=wire_total,
            num_packets=num_packets,
            compressed=compress,
            sent_at=self.sim.now,
        )
        self.total_wire_bytes += wire_total
        self.total_link_bytes += wire_total * len(route.links)
        self.messages_sent += 1
        tracer = self.tracer
        msg_id = self.messages_sent
        if tracer is not None:
            for link in route.links:
                if link.tracer is None:
                    link.attach_tracer(tracer)
            tracer.instant(
                "msg.send",
                cat=CAT_MESSAGE,
                ts=self.sim.now,
                node=src,
                msg=msg_id,
                dst=dst,
                nbytes=nbytes,
                wire_nbytes=wire_total,
                tos=tos,
                packets=num_packets,
                compressed=compress,
            )
            tracer.metrics.counter("messages_sent").inc()
            tracer.metrics.counter("wire_bytes", tos=f"{tos:#04x}").inc(
                wire_total
            )

        if arb_base is None:
            pair = (src, dst)
            pair_seq = self._pair_seq.get(pair, 0)
            self._pair_seq[pair] = pair_seq + 1
            arb_base = (src, dst, pair_seq)

        trains = list(self._split_trains(num_packets, wire_payload, nbytes))
        procs = [
            self.sim.process(
                self._train_process(
                    route,
                    pkts,
                    wire,
                    raw,
                    tx_engine,
                    rx_engine,
                    src,
                    dst,
                    on_retransmit,
                    arb_key=(*arb_base, index),
                    priority=priority,
                )
            )
            for index, (pkts, wire, raw) in enumerate(trains)
        ]
        done = self.sim.event()

        def finish(_: Event) -> None:
            receipt.delivered_at = self.sim.now
            if tracer is not None:
                tracer.instant(
                    "msg.deliver",
                    cat=CAT_MESSAGE,
                    ts=self.sim.now,
                    node=dst,
                    msg=msg_id,
                    src=src,
                )
                tracer.span(
                    "msg.flight",
                    cat=CAT_MESSAGE,
                    ts=receipt.sent_at,
                    dur=self.sim.now - receipt.sent_at,
                    node=src,
                    msg=msg_id,
                    dst=dst,
                    nbytes=nbytes,
                    wire_nbytes=wire_total,
                )
                tracer.metrics.counter("messages_delivered").inc()
            done.succeed((payload, receipt))

        self.sim.all_of(procs).add_callback(finish)
        return done

    def _split_trains(
        self, num_packets: int, wire_payload: int, raw_payload: int
    ) -> Iterable[Tuple[int, int, int]]:
        """Divide the message into packet trains with proportional bytes.

        Yields ``(packets, wire_bytes, raw_bytes)`` per train, byte
        counts including per-packet headers.
        """
        trains: List[Tuple[int, int, int]] = []
        remaining_packets = num_packets
        wire_left, raw_left = wire_payload, raw_payload
        while remaining_packets > 0:
            pkts = min(self.train_packets, remaining_packets)
            frac = pkts / num_packets
            wire = min(wire_left, round(wire_payload * frac))
            raw = min(raw_left, round(raw_payload * frac))
            remaining_packets -= pkts
            if remaining_packets == 0:  # last train absorbs rounding
                wire, raw = wire_left, raw_left
            wire_left -= wire
            raw_left -= raw
            trains.append(
                (pkts, pkts * HEADER_BYTES + wire, pkts * HEADER_BYTES + raw)
            )
        return trains

    def _train_process(
        self,
        route: Route,
        packets: int,
        wire_bytes: int,
        raw_bytes: int,
        tx_engine: Optional[Link],
        rx_engine: Optional[Link],
        src: int,
        dst: int,
        on_retransmit: Optional[RetransmitHook] = None,
        arb_key: Optional[Tuple[int, int, int, int]] = None,
        priority: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """Pipeline one packet train through engines and links.

        Stages hand off with virtual cut-through: the next stage starts
        when the train's head packet arrives, not when the whole train
        has been stored — so results do not depend on the simulation's
        train granularity.  The final stage completes store-and-forward
        (delivery means the last byte arrived).

        ``arb_key`` — ``(src, dst, flow seq, train index)`` — arbitrates
        same-instant contention on every stage: when several trains hit
        one FIFO resource at the same simulated time, grants go in key
        order, not in event-callback order, so contention outcomes
        cannot race on equal-timestamp event scheduling.

        ``priority`` is the train's class at priority-queued switch
        egress ports (multi-tier fabrics); plain FIFO links ignore it.
        """
        head_wire = min(wire_bytes, HEADER_BYTES + self.mss)
        head_raw = min(raw_bytes, HEADER_BYTES + self.mss)

        # (resource, bytes, head bytes, post-stage delay)
        stages = []
        if tx_engine is not None:
            stages.append((tx_engine, raw_bytes, head_raw, 0.0))
        last_hop = len(route.links) - 1
        for hop, link in enumerate(route.links):
            delay = route.forwarding_delay_s if hop < last_hop else 0.0
            stages.append((link, wire_bytes, head_wire, delay))
        if rx_engine is not None:
            stages.append((rx_engine, raw_bytes, head_raw, 0.0))

        attempts = 0
        while True:
            attempts += 1
            dropped = False
            for index, (resource, nbytes, head, post_delay) in enumerate(stages):
                drop_here = resource.should_drop(packets)
                head_arrived, delivered = resource.transmit_cut_through(
                    nbytes, head, key=arb_key, priority=priority
                )
                if drop_here:
                    # The wire time is spent; the loss is discovered at
                    # the sender one RTO after the expected delivery.
                    yield delivered
                    yield self.sim.timeout(self.retransmit.rto_s)
                    dropped = True
                    break
                if index < len(stages) - 1:
                    yield head_arrived
                    if post_delay:
                        yield self.sim.timeout(post_delay)
                else:
                    yield delivered
            if not dropped:
                return
            self.trains_retransmitted += 1
            self.packets_retransmitted += packets
            if on_retransmit is not None:
                on_retransmit(
                    packets,
                    wire_bytes - packets * HEADER_BYTES,
                    raw_bytes - packets * HEADER_BYTES,
                )
            if self.tracer is not None:
                self.tracer.instant(
                    "train.retransmit",
                    cat=CAT_MESSAGE,
                    ts=self.sim.now,
                    node=src,
                    dst=dst,
                    attempt=attempts,
                )
                self.tracer.metrics.counter("trains_retransmitted").inc()
            limit = self.retransmit.max_attempts
            if limit is not None and attempts >= limit:
                raise DeliveryFailure(
                    f"train between nodes {src}->{dst} lost {attempts} times"
                )


def uniform_nics(
    num_nodes: int, compression: bool, **kwargs: object
) -> Dict[int, NicTimingModel]:
    """Convenience: the same NIC model on every node."""
    model = NicTimingModel(compression=compression, **kwargs)
    return {node: model for node in range(num_nodes)}
