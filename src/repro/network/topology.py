"""Cluster topologies: the switched star used by the paper's testbed.

The evaluation cluster (Sec. VII-C) connects every node to one 10 GbE
switch (NETGEAR XS712T).  Both the worker-aggregator tree and the
INCEPTIONN ring run *over the same star*: what differs is the traffic
pattern, not the cabling.  A direct ring wiring is also provided for
ablations.

Invariants: a :class:`Route` is resolved per flow ``(src, dst, tos)``
and is deterministic — repeated calls return the same links, so a flow
never reorders against itself (FIFO delivery rests on this plus the
links' FIFO service); routes are loop-free link sequences with one
``forwarding_delay_s`` applied between consecutive links
(store-and-forward switch latency); construction and routing read only
constructor arguments, never the host clock or unseeded randomness.
Multi-tier graphs with ECMP live in :mod:`repro.network.multitier`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .events import Simulation
from .link import Link
from .packet import TOS_DEFAULT

#: Testbed defaults: 10 GbE links, a few microseconds of port-to-port
#: latency, store-and-forward forwarding in the switch.
DEFAULT_BANDWIDTH_BPS = 10e9
DEFAULT_LINK_LATENCY_S = 2e-6
DEFAULT_SWITCH_DELAY_S = 1e-6


@dataclass(frozen=True)
class Route:
    """The ordered links a packet traverses plus per-hop forwarding delay."""

    links: Tuple[Link, ...]
    forwarding_delay_s: float = 0.0


class Topology:
    """Base class: owns nodes and resolves routes between them."""

    def __init__(self, sim: Simulation, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError("a cluster needs at least two nodes")
        self.sim = sim
        self.num_nodes = num_nodes

    def route(self, src: int, dst: int, tos: int = TOS_DEFAULT) -> Route:
        """Resolve the links a ``src -> dst`` flow traverses.

        ``tos`` identifies the flow's traffic class; single-path
        topologies ignore it, ECMP fabrics hash it into next-hop
        selection so distinct streams between the same hosts can spread
        over equal-cost paths.
        """
        raise NotImplementedError

    def _check_endpoints(self, src: int, dst: int) -> None:
        for node in (src, dst):
            if not 0 <= node < self.num_nodes:
                raise ValueError(f"node {node} outside [0, {self.num_nodes})")
        if src == dst:
            raise ValueError("src and dst must differ")


class SwitchedStar(Topology):
    """Every node connects to one store-and-forward switch.

    A message src -> dst crosses the src uplink then the dst downlink.
    Contention appears when several sources target the same destination:
    their streams queue FIFO on the destination's downlink — the
    aggregator-bottleneck effect of Fig 15.
    """

    def __init__(
        self,
        sim: Simulation,
        num_nodes: int,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        link_latency_s: float = DEFAULT_LINK_LATENCY_S,
        switch_delay_s: float = DEFAULT_SWITCH_DELAY_S,
    ) -> None:
        super().__init__(sim, num_nodes)
        self.switch_delay_s = switch_delay_s
        self.uplinks: Dict[int, Link] = {}
        self.downlinks: Dict[int, Link] = {}
        for node in range(num_nodes):
            self.uplinks[node] = Link(
                sim, bandwidth_bps, link_latency_s, name=f"n{node}->sw"
            )
            self.downlinks[node] = Link(
                sim, bandwidth_bps, link_latency_s, name=f"sw->n{node}"
            )

    def route(self, src: int, dst: int, tos: int = TOS_DEFAULT) -> Route:
        self._check_endpoints(src, dst)
        return Route(
            links=(self.uplinks[src], self.downlinks[dst]),
            forwarding_delay_s=self.switch_delay_s,
        )

    def all_links(self) -> List[Link]:
        """Every link in the fabric (for utilization reports)."""
        return list(self.uplinks.values()) + list(self.downlinks.values())


class DirectRing(Topology):
    """Nodes wired directly to their ring successor (ablation topology).

    Only neighbor routes exist; the INCEPTIONN algorithm never needs
    anything else.
    """

    def __init__(
        self,
        sim: Simulation,
        num_nodes: int,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        link_latency_s: float = DEFAULT_LINK_LATENCY_S,
    ) -> None:
        super().__init__(sim, num_nodes)
        self.forward: Dict[int, Link] = {
            node: Link(
                sim,
                bandwidth_bps,
                link_latency_s,
                name=f"n{node}->n{(node + 1) % num_nodes}",
            )
            for node in range(num_nodes)
        }

    def route(self, src: int, dst: int, tos: int = TOS_DEFAULT) -> Route:
        self._check_endpoints(src, dst)
        if dst != (src + 1) % self.num_nodes:
            raise ValueError(
                f"DirectRing only routes to the successor: {src} -> {dst}"
            )
        return Route(links=(self.forward[src],))

    def all_links(self) -> List[Link]:
        return list(self.forward.values())
