"""Asynchronous parameter server (HogWild!/SSP-style related work).

The paper's Sec. IX discusses asynchronous worker-aggregator systems
(HogWild! [80], DistBelief [1], SSP [81]) that trade gradient staleness
for reduced synchronization.  This module implements that family over
the same simulated cluster so the benches can compare it against the
synchronous WA baseline and the INCEPTIONN ring:

* the server applies each arriving gradient immediately and replies
  with the freshest weights (no global barrier);
* an optional SSP-style ``max_staleness`` bound blocks a worker whose
  iteration count runs more than ``s`` ahead of the slowest worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core import StreamProfile
from repro.dnn.data import Dataset
from repro.obs import CAT_ASYNC, Tracer
from repro.dnn.network import Sequential
from repro.dnn.optim import SGD
from repro.dnn.training import LocalTrainer
from repro.transport.endpoint import (
    ClusterComm,
    ClusterConfig,
    TransferSummary,
)

from .node import ComputeProfile, ZERO_COMPUTE


@dataclass
class AsyncRunResult:
    """Outcome of an asynchronous parameter-server run."""

    num_workers: int
    iterations_per_worker: int
    final_top1: float
    final_top5: float
    virtual_time_s: float
    #: Staleness (server updates between a worker's pull and its push)
    #: observed for every applied gradient.
    staleness: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    #: Wire-level accounting from the WireMessage pipeline.
    transfers: Optional[TransferSummary] = None

    @property
    def mean_staleness(self) -> float:
        return float(np.mean(self.staleness)) if self.staleness else 0.0

    @property
    def max_observed_staleness(self) -> int:
        return max(self.staleness) if self.staleness else 0


def train_async_ps(
    build_net: Callable[[int], Sequential],
    make_optimizer: Callable[[], SGD],
    dataset: Dataset,
    num_workers: int,
    iterations_per_worker: int,
    batch_size: int,
    cluster: Optional[ClusterConfig] = None,
    profile: ComputeProfile = ZERO_COMPUTE,
    compress_gradients: bool = False,
    stream: Optional[StreamProfile] = None,
    max_staleness: Optional[int] = None,
    compute_jitter: float = 0.0,
    tracer: Optional[Tracer] = None,
    seed: int = 0,
) -> AsyncRunResult:
    """Asynchronous training: workers push g, server replies with w.

    ``stream`` selects the codec profile of the gradient (push) leg;
    ``compress_gradients`` is the deprecated boolean alias for the
    cluster's default profile.

    ``compute_jitter`` adds a uniform(+/- fraction) perturbation to each
    worker's compute time so workers actually drift (the phenomenon
    async systems exist to exploit).  ``max_staleness`` enables the SSP
    bound; ``None`` is fully asynchronous (HogWild-style, but with the
    server serializing updates — the simulated cluster has no shared
    memory to race on).
    """
    if num_workers < 2:
        raise ValueError("need at least two workers")
    if iterations_per_worker < 1:
        raise ValueError("need at least one iteration")
    server_id = num_workers
    config = cluster or ClusterConfig(num_nodes=num_workers + 1, profile=stream)
    if config.num_nodes != num_workers + 1:
        raise ValueError("cluster config must have num_workers + 1 nodes")
    comm = ClusterComm(config, tracer=tracer)
    comm.endpoints[server_id].promiscuous = True
    if stream is None and compress_gradients:
        stream = comm.default_profile

    server_net = build_net(seed)
    server_opt = make_optimizer()

    trainers = [
        LocalTrainer(
            net=build_net(seed),
            optimizer=make_optimizer(),
            dataset=dataset.shard(i, num_workers),
            batch_size=batch_size,
            seed=seed + 1000 * i,
        )
        for i in range(num_workers)
    ]

    result = AsyncRunResult(
        num_workers=num_workers,
        iterations_per_worker=iterations_per_worker,
        final_top1=0.0,
        final_top5=0.0,
        virtual_time_s=0.0,
    )
    server_version = [0]  # updates applied so far
    worker_pull_version = [0] * num_workers  # version each worker last saw
    worker_progress = [0] * num_workers
    staleness_waiters: List = []  # (worker, needed_min_progress, event)
    jitter_rng = np.random.default_rng(seed + 77)

    def min_progress() -> int:
        return min(worker_progress)

    def wake_waiters() -> None:
        still = []
        for worker, needed, event in staleness_waiters:
            if min_progress() >= needed:
                event.succeed()
            else:
                still.append((worker, needed, event))
        staleness_waiters[:] = still

    def worker(i: int):
        ep = comm.endpoints[i]
        trainer = trainers[i]
        for iteration in range(iterations_per_worker):
            if max_staleness is not None:
                needed = iteration - max_staleness
                if needed > min_progress():
                    gate = comm.sim.event()
                    staleness_waiters.append((i, needed, gate))
                    yield gate
            compute = profile.local_compute_s
            if compute and compute_jitter:
                compute *= 1.0 + compute_jitter * (2 * jitter_rng.random() - 1)
            if compute:
                yield comm.sim.timeout(compute)
            loss, grad = trainer.local_gradient()
            result.losses.append(loss)
            round_start = comm.sim.now
            ep.isend(server_id, grad, profile=stream)
            weights = yield ep.recv(server_id)
            if tracer is not None:
                tracer.span(
                    "async.round",
                    cat=CAT_ASYNC,
                    ts=round_start,
                    dur=comm.sim.now - round_start,
                    node=i,
                    iteration=iteration,
                )
            trainer.net.set_parameter_vector(weights)
            worker_progress[i] = iteration + 1
            wake_waiters()

    def server():
        ep = comm.endpoints[server_id]
        total_updates = num_workers * iterations_per_worker
        for _ in range(total_updates):
            src, grad = yield ep.recv_any()
            if profile.sum_bandwidth_bps:
                yield comm.sim.timeout(profile.sum_time(grad.nbytes))
            staleness = server_version[0] - worker_pull_version[src]
            result.staleness.append(staleness)
            if tracer is not None:
                tracer.instant(
                    "async.apply",
                    cat=CAT_ASYNC,
                    ts=comm.sim.now,
                    node=server_id,
                    src=src,
                    staleness=staleness,
                )
                tracer.metrics.histogram(
                    "staleness", buckets=(0, 1, 2, 4, 8, 16)
                ).observe(staleness)
            server_opt.step_with_vector(server_net, grad)
            server_version[0] += 1
            if profile.update_s:
                yield comm.sim.timeout(profile.update_s)
            worker_pull_version[src] = server_version[0]
            ep.isend(src, server_net.parameter_vector())

    for i in range(num_workers):
        comm.sim.process(worker(i))
    comm.sim.process(server())
    result.virtual_time_s = comm.run()

    logits = server_net.predict(dataset.test_x)
    from repro.dnn.metrics import top1_accuracy, top5_accuracy

    result.final_top1 = top1_accuracy(logits, dataset.test_y)
    result.final_top5 = top5_accuracy(logits, dataset.test_y)
    result.transfers = comm.transfer_summary()
    return result
