"""Asynchronous parameter server (HogWild!/SSP-style related work).

The paper's Sec. IX discusses asynchronous worker-aggregator systems
(HogWild! [80], DistBelief [1], SSP [81]) that trade gradient staleness
for reduced synchronization.  This module implements that family over
the same simulated cluster so the benches can compare it against the
synchronous WA baseline and the INCEPTIONN ring:

* the server applies each arriving gradient immediately and replies
  with the freshest weights (no global barrier);
* an optional SSP-style ``max_staleness`` bound blocks a worker whose
  iteration count runs more than ``s`` ahead of the slowest worker.

The schedule is the ``"async_ps"`` :class:`GradientStrategy` plugin;
``train_async_ps`` wraps the shared driver and repackages the result.
For the *server-side* bounded-staleness variant with per-worker version
tracking, see :mod:`repro.distributed.stale_async`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Mapping, Optional

import numpy as np

from repro.core import StreamProfile
from repro.dnn.data import Dataset
from repro.network import Event
from repro.obs import CAT_ASYNC, Tracer
from repro.dnn.network import Sequential
from repro.dnn.optim import SGD
from repro.transport.endpoint import (
    ClusterConfig,
    TransferSummary,
)

from .node import ComputeProfile, ZERO_COMPUTE
from .strategy import (
    GradientStrategy,
    NodeContext,
    StrategyRun,
    StrategyUpdate,
    register_strategy,
    run_strategy,
)


@dataclass
class AsyncRunResult:
    """Outcome of an asynchronous parameter-server run."""

    num_workers: int
    iterations_per_worker: int
    final_top1: float
    final_top5: float
    virtual_time_s: float
    #: Staleness (server updates between a worker's pull and its push)
    #: observed for every applied gradient.
    staleness: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    #: Wire-level accounting from the WireMessage pipeline.
    transfers: Optional[TransferSummary] = None
    #: The server's final parameter vector (parity pinning).
    final_weights: Optional[np.ndarray] = None

    @property
    def mean_staleness(self) -> float:
        return float(np.mean(self.staleness)) if self.staleness else 0.0

    @property
    def max_observed_staleness(self) -> int:
        return max(self.staleness) if self.staleness else 0


@register_strategy
class AsyncPSStrategy(GradientStrategy):
    """Fully asynchronous parameter server with an optional SSP bound."""

    name = "async_ps"
    description = (
        "Server applies each gradient on arrival and replies with fresh "
        "weights; optional SSP max_staleness gates runaway workers."
    )
    #: The server owns the canonical optimizer and pays the update.
    worker_applies_update = False

    def extra_nodes(
        self, num_workers: int, options: Mapping[str, Any]
    ) -> int:
        return 1  # the parameter-server node

    def setup(self, run: StrategyRun) -> None:
        self._server_id = run.num_workers
        self._max_staleness: Optional[int] = run.options.get("max_staleness")
        run.comm.endpoints[self._server_id].promiscuous = True
        self._server_net = run.build_net(run.seed)
        self._server_opt = run.make_optimizer()
        self._server_version = 0  # updates applied so far
        self._worker_pull_version = [0] * run.num_workers
        self._worker_progress = [0] * run.num_workers
        self._staleness_waiters: List = []  # (worker, needed, event)
        run.extras["staleness"] = []
        run.comm.spawn(self._server(run))

    def _min_progress(self) -> int:
        return min(self._worker_progress)

    def _wake_waiters(self) -> None:
        still = []
        for worker, needed, event in self._staleness_waiters:
            if self._min_progress() >= needed:
                event.succeed()
            else:
                still.append((worker, needed, event))
        self._staleness_waiters[:] = still

    def iteration_gate(
        self, node: NodeContext, iteration: int
    ) -> Optional[Event]:
        if self._max_staleness is None:
            return None
        needed = iteration - self._max_staleness
        if needed <= self._min_progress():
            return None
        gate = node.comm.event()
        self._staleness_waiters.append((node.node_id, needed, gate))
        return gate

    def exchange(
        self, node: NodeContext, iteration: int, gradient: np.ndarray
    ) -> Generator[Event, Any, StrategyUpdate]:
        ep = node.endpoint
        round_start = node.comm.now
        ep.isend(self._server_id, gradient, profile=node.stream)
        weights = yield ep.recv(self._server_id)
        if node.tracer is not None:
            node.tracer.span(
                "async.round",
                cat=CAT_ASYNC,
                ts=round_start,
                dur=node.comm.now - round_start,
                node=node.node_id,
                iteration=iteration,
            )
        return StrategyUpdate(weights=weights)

    def after_apply(self, node: NodeContext, iteration: int) -> None:
        self._worker_progress[node.node_id] = iteration + 1
        self._wake_waiters()

    def final_model(self, run: StrategyRun) -> Sequential:
        return self._server_net

    def _server(self, run: StrategyRun) -> Generator[Event, Any, None]:
        comm = run.comm
        ep = comm.endpoints[self._server_id]
        profile = run.profile
        tracer = run.tracer
        staleness_log: List[int] = run.extras["staleness"]
        total_updates = run.num_workers * run.iterations
        for _ in range(total_updates):
            src, grad = yield ep.recv_any()
            if profile.sum_bandwidth_bps:
                yield comm.timeout(profile.sum_time(grad.nbytes))
            staleness = self._server_version - self._worker_pull_version[src]
            staleness_log.append(staleness)
            if tracer is not None:
                tracer.instant(
                    "async.apply",
                    cat=CAT_ASYNC,
                    ts=comm.now,
                    node=self._server_id,
                    src=src,
                    staleness=staleness,
                )
                tracer.metrics.histogram(
                    "staleness", buckets=(0, 1, 2, 4, 8, 16)
                ).observe(staleness)
            self._server_opt.step_with_vector(self._server_net, grad)
            self._server_version += 1
            if profile.update_s:
                yield comm.timeout(profile.update_s)
            self._worker_pull_version[src] = self._server_version
            ep.isend(src, self._server_net.parameter_vector())


def train_async_ps(
    build_net: Callable[[int], Sequential],
    make_optimizer: Callable[[], SGD],
    dataset: Dataset,
    num_workers: int,
    iterations_per_worker: int,
    batch_size: int,
    cluster: Optional[ClusterConfig] = None,
    profile: ComputeProfile = ZERO_COMPUTE,
    compress_gradients: bool = False,
    stream: Optional[StreamProfile] = None,
    max_staleness: Optional[int] = None,
    compute_jitter: float = 0.0,
    tracer: Optional[Tracer] = None,
    seed: int = 0,
) -> AsyncRunResult:
    """Asynchronous training: workers push g, server replies with w.

    ``stream`` selects the codec profile of the gradient (push) leg;
    ``compress_gradients`` is the deprecated boolean alias for the
    cluster's default profile.

    ``compute_jitter`` adds a uniform(+/- fraction) perturbation to each
    worker's compute time so workers actually drift (the phenomenon
    async systems exist to exploit).  ``max_staleness`` enables the SSP
    bound; ``None`` is fully asynchronous (HogWild-style, but with the
    server serializing updates — the simulated cluster has no shared
    memory to race on).

    Compatibility wrapper over the ``"async_ps"`` strategy plugin.
    """
    result = run_strategy(
        "async_ps",
        build_net=build_net,
        make_optimizer=make_optimizer,
        dataset=dataset,
        num_workers=num_workers,
        iterations=iterations_per_worker,
        batch_size=batch_size,
        cluster=cluster,
        profile=profile,
        compress_gradients=compress_gradients,
        stream=stream,
        tracer=tracer,
        seed=seed,
        options={
            "max_staleness": max_staleness,
            "compute_jitter": compute_jitter,
        },
    )
    staleness = (
        list(result.report.extras.get("staleness", []))
        if result.report is not None
        else []
    )
    return AsyncRunResult(
        num_workers=num_workers,
        iterations_per_worker=iterations_per_worker,
        final_top1=result.final_top1,
        final_top5=result.final_top5,
        virtual_time_s=result.virtual_time_s,
        staleness=staleness,
        losses=list(result.loss_order),
        transfers=result.transfers,
        final_weights=result.final_weights,
    )
