"""End-to-end distributed training runs in simulated time.

``train_distributed`` trains *real* model replicas under either the
worker-aggregator baseline or the INCEPTIONN ring, over the simulated
cluster fabric.  Gradient values move through the real codec when
compression is on, and every phase of the iteration advances the
virtual clock, so one run yields both the learning curve (accuracy
claims) and the Table II-style time breakdown (performance claims).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core import StreamProfile
from repro.dnn.data import Dataset
from repro.dnn.network import Sequential
from repro.dnn.optim import SGD
from repro.dnn.training import LocalTrainer
from repro.obs import CAT_PHASE, Tracer
from repro.transport.endpoint import (
    ClusterComm,
    ClusterConfig,
    TransferSummary,
)

from .node import ComputeProfile, ZERO_COMPUTE, record_compute_phases
from .ring import ring_exchange
from .worker_aggregator import aggregator_exchange, worker_exchange

#: The Table II phase names, in the paper's row order.
PHASE_NAMES = (
    "forward",
    "backward",
    "gpu_copy",
    "gradient_sum",
    "communicate",
    "update",
)


def phase_seconds_from_trace(
    tracer: Tracer, total_s: float
) -> Dict[str, float]:
    """Rebuild the Table II phase dict from recorded ``phase`` spans.

    Every attributed phase is the sum of its span durations; the
    residual of the run's total time is ``communicate`` — the same
    accounting the paper's harness uses, now sourced from the trace.
    """
    totals = tracer.phase_totals()
    phases = {name: totals.get(name, 0.0) for name in PHASE_NAMES}
    attributed = sum(phases[name] for name in PHASE_NAMES if name != "communicate")
    phases["communicate"] = max(0.0, total_s - attributed)
    return phases


@dataclass
class DistributedRunResult:
    """Outcome of one simulated distributed training run."""

    algorithm: str
    num_workers: int
    iterations: int
    losses: List[float]
    final_top1: float
    final_top5: float
    virtual_time_s: float
    phase_seconds: Dict[str, float]
    eval_top1: List[float] = field(default_factory=list)
    #: Wire-level accounting folded from the cluster's transfer log
    #: (every message of the run went through one WireMessage build).
    transfers: Optional[TransferSummary] = None

    @property
    def communication_fraction(self) -> float:
        """Fraction of total virtual time spent communicating (Fig 3b)."""
        if self.virtual_time_s <= 0:
            return 0.0
        return self.phase_seconds["communicate"] / self.virtual_time_s

    def normalized_phases(self) -> Dict[str, float]:
        """Phase fractions of total time (Table II's 'Norm.' columns)."""
        total = sum(self.phase_seconds.values())
        # Explicit zero check — a falsy ``or`` default here is the same
        # bug class as the retired sized-send API's zero-ratio collapse.
        if total == 0.0:
            return {name: 0.0 for name in self.phase_seconds}
        return {name: t / total for name, t in self.phase_seconds.items()}


def train_distributed(
    algorithm: str,
    build_net: Callable[[int], Sequential],
    make_optimizer: Callable[[], SGD],
    dataset: Dataset,
    num_workers: int,
    iterations: int,
    batch_size: int,
    cluster: Optional[ClusterConfig] = None,
    profile: ComputeProfile = ZERO_COMPUTE,
    compress_gradients: bool = False,
    stream: Optional[StreamProfile] = None,
    eval_every: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    seed: int = 0,
) -> DistributedRunResult:
    """Train replicas of ``build_net(seed)`` across a simulated cluster.

    ``algorithm`` is ``"wa"`` (worker-aggregator; one extra node hosts
    the aggregator) or ``"ring"`` (INCEPTIONN, Algorithm 1).  ``stream``
    selects the codec profile of the gradient traffic (any registered
    codec — INCEPTIONN, truncation, quantization, ...); the convenience
    ``compress_gradients`` flag resolves to the cluster's default
    profile (ToS 0x28) instead.  Either only takes effect when the NIC
    engines are enabled (a cluster profile).
    In the WA baseline only the gradient (up) leg can compress — weights
    are loss-intolerant (paper Fig 4) — while the ring compresses every
    hop.
    """
    if algorithm not in ("wa", "ring"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if num_workers < 2:
        raise ValueError("distributed training needs at least two workers")
    num_nodes = num_workers + 1 if algorithm == "wa" else num_workers
    config = cluster or ClusterConfig(num_nodes=num_nodes, profile=stream)
    if config.num_nodes != num_nodes:
        raise ValueError(
            f"cluster config has {config.num_nodes} nodes, run needs {num_nodes}"
        )
    comm = ClusterComm(config, tracer=tracer)
    if stream is None and compress_gradients:
        stream = comm.default_profile

    # Identical replicas: every worker builds from the same seed.
    trainers = [
        LocalTrainer(
            net=build_net(seed),
            optimizer=make_optimizer(),
            dataset=dataset.shard(i, num_workers),
            batch_size=batch_size,
            seed=seed + 1000 * i,
        )
        for i in range(num_workers)
    ]

    losses: List[List[float]] = [[] for _ in range(iterations)]
    eval_top1: List[float] = []
    phase = {name: 0.0 for name in PHASE_NAMES}

    def account_compute() -> None:
        phase["forward"] += profile.forward_s
        phase["backward"] += profile.backward_s
        phase["gpu_copy"] += profile.gpu_copy_s

    if algorithm == "ring":
        _spawn_ring_processes(
            comm,
            trainers,
            iterations,
            profile,
            stream,
            losses,
            phase,
            account_compute,
            eval_every,
            eval_top1,
            tracer,
        )
    else:
        _spawn_wa_processes(
            comm,
            trainers,
            make_optimizer,
            build_net,
            seed,
            iterations,
            profile,
            stream,
            losses,
            phase,
            account_compute,
            eval_every,
            eval_top1,
            tracer,
        )

    total_time = comm.run()

    # Residual accounting: everything not attributed to a compute phase
    # on the per-iteration critical path is communication (Table II's
    # "Communicate" row is exactly this residual in the paper's harness).
    # With a tracer attached the breakdown is rebuilt from the recorded
    # phase spans — the trace is the authoritative record.
    if tracer is not None:
        phase = phase_seconds_from_trace(tracer, total_time)
    else:
        attributed = sum(phase.values())
        phase["communicate"] = max(0.0, total_time - attributed)

    if eval_every:
        # Checkpoint accuracies are recorded by worker 0 during the run.
        pass
    top1, top5 = trainers[0].evaluate()

    return DistributedRunResult(
        algorithm=algorithm,
        num_workers=num_workers,
        iterations=iterations,
        losses=[float(np.mean(l)) for l in losses],
        final_top1=top1,
        final_top5=top5,
        virtual_time_s=total_time,
        phase_seconds=phase,
        eval_top1=eval_top1,
        transfers=comm.transfer_summary(),
    )


def _spawn_ring_processes(
    comm: ClusterComm,
    trainers: List[LocalTrainer],
    iterations: int,
    profile: ComputeProfile,
    stream: Optional[StreamProfile],
    losses: List[List[float]],
    phase: Dict[str, float],
    account_compute: Callable[[], None],
    eval_every: Optional[int],
    eval_top1: List[float],
    tracer: Optional[Tracer] = None,
) -> None:
    num_workers = len(trainers)

    def worker(i: int):
        ep = comm.endpoints[i]
        trainer = trainers[i]
        for iteration in range(iterations):
            compute_start = comm.sim.now
            if profile.local_compute_s:
                yield comm.sim.timeout(profile.local_compute_s)
            if i == 0:
                account_compute()
                if tracer is not None:
                    record_compute_phases(tracer, profile, compute_start, i)
            loss, grad = trainer.local_gradient()
            losses[iteration].append(loss)
            aggregate = yield from ring_exchange(
                ep,
                grad,
                num_workers,
                profile=profile,
                stream=stream,
            )
            if i == 0:
                # Each node reduces (N-1)/N of the vector during P1.
                sum_dt = profile.sum_time(
                    int(grad.nbytes * (num_workers - 1) / num_workers)
                )
                phase["gradient_sum"] += sum_dt
                if tracer is not None and sum_dt:
                    tracer.span(
                        "gradient_sum",
                        cat=CAT_PHASE,
                        ts=comm.sim.now,
                        dur=sum_dt,
                        node=i,
                    )
            update_start = comm.sim.now
            if profile.update_s:
                yield comm.sim.timeout(profile.update_s)
            if i == 0:
                phase["update"] += profile.update_s
                if tracer is not None and profile.update_s:
                    tracer.span(
                        "update",
                        cat=CAT_PHASE,
                        ts=update_start,
                        dur=profile.update_s,
                        node=i,
                    )
            trainer.apply_gradient(aggregate)
            if i == 0 and eval_every and (iteration + 1) % eval_every == 0:
                eval_top1.append(trainer.evaluate()[0])

    for i in range(num_workers):
        comm.sim.process(worker(i))


def _spawn_wa_processes(
    comm: ClusterComm,
    trainers: List[LocalTrainer],
    make_optimizer: Callable[[], SGD],
    build_net: Callable[[int], Sequential],
    seed: int,
    iterations: int,
    profile: ComputeProfile,
    stream: Optional[StreamProfile],
    losses: List[List[float]],
    phase: Dict[str, float],
    account_compute: Callable[[], None],
    eval_every: Optional[int],
    eval_top1: List[float],
    tracer: Optional[Tracer] = None,
) -> None:
    num_workers = len(trainers)
    aggregator_id = num_workers
    agg_net = build_net(seed)
    agg_opt = make_optimizer()

    def worker(i: int):
        ep = comm.endpoints[i]
        trainer = trainers[i]
        for iteration in range(iterations):
            compute_start = comm.sim.now
            if profile.local_compute_s:
                yield comm.sim.timeout(profile.local_compute_s)
            if i == 0:
                account_compute()
                if tracer is not None:
                    record_compute_phases(tracer, profile, compute_start, i)
            loss, grad = trainer.local_gradient()
            losses[iteration].append(loss)
            weights = yield from worker_exchange(
                ep, aggregator_id, grad, stream=stream
            )
            trainer.net.set_parameter_vector(weights)
            # Keep local optimizer iteration counters aligned with the
            # aggregator's LR schedule.
            trainer.optimizer.iteration += 1
            if i == 0 and eval_every and (iteration + 1) % eval_every == 0:
                eval_top1.append(trainer.evaluate()[0])

    def aggregator():
        ep = comm.endpoints[aggregator_id]
        workers = list(range(num_workers))

        def apply_update(total_grad: np.ndarray) -> np.ndarray:
            agg_opt.step_with_vector(agg_net, total_grad)
            return agg_net.parameter_vector()

        for iteration in range(iterations):
            yield from aggregator_exchange(
                ep, workers, apply_update, profile=profile
            )
            sum_dt = profile.sum_time(agg_net.nbytes * (num_workers - 1))
            phase["gradient_sum"] += sum_dt
            phase["update"] += profile.update_s
            if tracer is not None:
                if sum_dt:
                    tracer.span(
                        "gradient_sum",
                        cat=CAT_PHASE,
                        ts=comm.sim.now,
                        dur=sum_dt,
                        node=aggregator_id,
                    )
                if profile.update_s:
                    tracer.span(
                        "update",
                        cat=CAT_PHASE,
                        ts=comm.sim.now,
                        dur=profile.update_s,
                        node=aggregator_id,
                    )

    for i in range(num_workers):
        comm.sim.process(worker(i))
    comm.sim.process(aggregator())
