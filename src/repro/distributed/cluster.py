"""End-to-end distributed training runs in simulated time.

``train_distributed`` trains *real* model replicas under either the
worker-aggregator baseline or the INCEPTIONN ring, over the simulated
cluster fabric.  Gradient values move through the real codec when
compression is on, and every phase of the iteration advances the
virtual clock, so one run yields both the learning curve (accuracy
claims) and the Table II-style time breakdown (performance claims).

Both algorithms are :class:`~repro.distributed.strategy.GradientStrategy`
plugins driven by :func:`~repro.distributed.strategy.run_strategy`;
``train_distributed`` survives as the thin compatibility wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Mapping, Optional

import numpy as np

from repro.core import StreamProfile
from repro.dnn.data import Dataset
from repro.dnn.network import Sequential
from repro.dnn.optim import SGD
from repro.network import Event
from repro.obs import Tracer
from repro.transport.aggregation import AGG_SWITCH, SwitchGather
from repro.transport.endpoint import ClusterConfig, TransferSummary

from .node import ComputeProfile, ZERO_COMPUTE
from .ring import ring_exchange
from .strategy import (
    GradientStrategy,
    NodeContext,
    PHASE_NAMES,
    StrategyReport,
    StrategyRun,
    StrategyUpdate,
    phase_seconds_from_trace,
    register_strategy,
    run_strategy,
)
from .worker_aggregator import aggregator_exchange, worker_exchange

__all__ = [
    "DistributedRunResult",
    "PHASE_NAMES",
    "RingStrategy",
    "WorkerAggregatorStrategy",
    "phase_seconds_from_trace",
    "train_distributed",
]


@dataclass
class DistributedRunResult:
    """Outcome of one simulated distributed training run."""

    algorithm: str
    num_workers: int
    iterations: int
    losses: List[float]
    final_top1: float
    final_top5: float
    virtual_time_s: float
    phase_seconds: Dict[str, float]
    eval_top1: List[float] = field(default_factory=list)
    #: Wire-level accounting folded from the cluster's transfer log
    #: (every message of the run went through one WireMessage build).
    transfers: Optional[TransferSummary] = None
    #: Node 0's final parameter vector — the replicated model state the
    #: strategy-parity suite pins bit-exactly across refactors.
    final_weights: Optional[np.ndarray] = None
    #: Strategy-specific summary (staleness samples, sync rounds, ...).
    report: Optional[StrategyReport] = None
    #: Every worker's per-iteration losses flattened in completion
    #: order — meaningful for asynchronous strategies where ``losses``'
    #: per-iteration means average across drifting workers.
    loss_order: List[float] = field(default_factory=list)

    @property
    def communication_fraction(self) -> float:
        """Fraction of total virtual time spent communicating (Fig 3b)."""
        if self.virtual_time_s <= 0:
            return 0.0
        return self.phase_seconds["communicate"] / self.virtual_time_s

    def normalized_phases(self) -> Dict[str, float]:
        """Phase fractions of total time (Table II's 'Norm.' columns)."""
        total = sum(self.phase_seconds.values())
        # Explicit zero check — a falsy ``or`` default here is the same
        # bug class as the retired sized-send API's zero-ratio collapse.
        if total == 0.0:
            return {name: 0.0 for name in self.phase_seconds}
        return {name: t / total for name, t in self.phase_seconds.items()}


@register_strategy
class RingStrategy(GradientStrategy):
    """INCEPTIONN's aggregator-free ring (Algorithm 1, paper Fig 1b)."""

    name = "ring"
    description = (
        "Gradient-centric ring reduce-scatter + all-gather; every hop "
        "carries gradients, so every hop compresses."
    )

    def exchange(
        self, node: NodeContext, iteration: int, gradient: np.ndarray
    ) -> Generator[Event, Any, StrategyUpdate]:
        aggregate = yield from ring_exchange(
            node.endpoint,
            gradient,
            node.num_workers,
            profile=node.profile,
            stream=node.stream,
        )
        if node.node_id == 0:
            # Each node reduces (N-1)/N of the vector during P1.
            n = node.num_workers
            sum_dt = node.profile.sum_time(
                int(gradient.nbytes * (n - 1) / n)
            )
            node.run.account("gradient_sum", sum_dt, node=node.node_id)
        return StrategyUpdate(gradient=aggregate)


@register_strategy
class WorkerAggregatorStrategy(GradientStrategy):
    """The conventional worker-aggregator baseline (paper Fig 1a/2)."""

    name = "wa"
    description = (
        "Workers push gradients to one aggregator that owns the "
        "canonical optimizer and broadcasts weights back."
    )
    #: The aggregator pays the update; workers just install weights.
    worker_applies_update = False
    #: The one strategy with a reduction root the fabric can host.
    supports_switch_aggregation = True

    def extra_nodes(
        self, num_workers: int, options: Mapping[str, Any]
    ) -> int:
        return 1  # the aggregator node

    def setup(self, run: StrategyRun) -> None:
        self._aggregator_id = run.num_workers
        self._gather: Optional[SwitchGather] = None
        if run.comm.config.agg_site == AGG_SWITCH:
            self._gather = SwitchGather(
                run.comm,
                root=self._aggregator_id,
                sources=range(run.num_workers),
                stream=run.stream,
            )
        run.comm.spawn(self._aggregator(run))

    def _aggregator(
        self, run: StrategyRun
    ) -> Generator[Event, Any, None]:
        agg_id = self._aggregator_id
        ep = run.comm.endpoints[agg_id]
        agg_net = run.build_net(run.seed)
        agg_opt = run.make_optimizer()
        workers = list(range(run.num_workers))

        def apply_update(total_grad: np.ndarray) -> np.ndarray:
            agg_opt.step_with_vector(agg_net, total_grad)
            return agg_net.parameter_vector()

        for _ in range(run.iterations):
            yield from aggregator_exchange(
                ep,
                workers,
                apply_update,
                profile=run.profile,
                stream=run.stream,
                gather=self._gather,
            )
            if self._gather is None:
                # Switch-site runs pay the sum at the in-network
                # engines (already on the exchange critical path).
                sum_dt = run.profile.sum_time(
                    agg_net.nbytes * (run.num_workers - 1)
                )
                run.account("gradient_sum", sum_dt, node=agg_id)
            run.account("update", run.profile.update_s, node=agg_id)

    def exchange(
        self, node: NodeContext, iteration: int, gradient: np.ndarray
    ) -> Generator[Event, Any, StrategyUpdate]:
        weights = yield from worker_exchange(
            node.endpoint,
            self._aggregator_id,
            gradient,
            stream=node.stream,
            gather=self._gather,
        )
        # Keep local optimizer iteration counters aligned with the
        # aggregator's LR schedule.
        return StrategyUpdate(weights=weights, sync_optimizer_iteration=True)


def train_distributed(
    algorithm: str,
    build_net: Callable[[int], Sequential],
    make_optimizer: Callable[[], SGD],
    dataset: Dataset,
    num_workers: int,
    iterations: int,
    batch_size: int,
    cluster: Optional[ClusterConfig] = None,
    profile: ComputeProfile = ZERO_COMPUTE,
    compress_gradients: bool = False,
    stream: Optional[StreamProfile] = None,
    eval_every: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    seed: int = 0,
) -> DistributedRunResult:
    """Train replicas of ``build_net(seed)`` across a simulated cluster.

    ``algorithm`` is ``"wa"`` (worker-aggregator; one extra node hosts
    the aggregator) or ``"ring"`` (INCEPTIONN, Algorithm 1).  ``stream``
    selects the codec profile of the gradient traffic (any registered
    codec — INCEPTIONN, truncation, quantization, ...); the convenience
    ``compress_gradients`` flag resolves to the cluster's default
    profile (ToS 0x28) instead.  Either only takes effect when the NIC
    engines are enabled (a cluster profile).
    In the WA baseline only the gradient (up) leg can compress — weights
    are loss-intolerant (paper Fig 4) — while the ring compresses every
    hop.

    Compatibility wrapper over :func:`repro.distributed.strategy.run_strategy`
    with the two original algorithm names.
    """
    if algorithm not in ("wa", "ring"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return run_strategy(
        algorithm,
        build_net=build_net,
        make_optimizer=make_optimizer,
        dataset=dataset,
        num_workers=num_workers,
        iterations=iterations,
        batch_size=batch_size,
        cluster=cluster,
        profile=profile,
        compress_gradients=compress_gradients,
        stream=stream,
        eval_every=eval_every,
        tracer=tracer,
        seed=seed,
    )
