"""Worker-node compute profile and partitioning helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.obs import CAT_PHASE, Tracer

#: Spawn-key stream tags: one reserved lane per independent per-node
#: random stream.  Keys are ``(seed, node, stream)`` sequences fed to
#: ``np.random.default_rng`` — unlike the old ``seed + 1000 * i`` /
#: ``seed + 77`` arithmetic, nearby seeds can never collide with other
#: workers' streams (SeedSequence hashes the whole key).
DATA_STREAM = 0
JITTER_STREAM = 1


def spawn_key(seed: int, node: int, stream: int = DATA_STREAM) -> Tuple[int, int, int]:
    """Collision-free RNG spawn key for one node's random stream.

    Every RNG in :mod:`repro.distributed` derives from one of these via
    ``np.random.default_rng(spawn_key(seed, node, stream))``.
    """
    return (seed, node, stream)


@dataclass(frozen=True)
class ComputeProfile:
    """Per-iteration local-computation times of one worker.

    These model the GPU/CPU side the paper measures in Table II; the
    calibrated instances in :mod:`repro.perfmodel.calibration` are
    derived from that table.  Gradient summation is bandwidth-style
    (time proportional to bytes) because it scales with how much data a
    node reduces, which differs between the WA and INCEPTIONN algorithms.
    """

    forward_s: float = 0.0
    backward_s: float = 0.0
    gpu_copy_s: float = 0.0
    update_s: float = 0.0
    #: Memory-bound vector-sum rate (bytes of *input* summed per second).
    sum_bandwidth_bps: float = 10.4e9

    def sum_time(self, nbytes: int) -> float:
        """Time to add ``nbytes`` of incoming gradient into an accumulator."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        if self.sum_bandwidth_bps <= 0:
            return 0.0
        return nbytes / self.sum_bandwidth_bps

    @property
    def local_compute_s(self) -> float:
        """Forward + backward + device copy, the pre-exchange work."""
        return self.forward_s + self.backward_s + self.gpu_copy_s


#: A profile with zero compute time — communication-only experiments.
ZERO_COMPUTE = ComputeProfile(sum_bandwidth_bps=0.0)


def record_compute_phases(
    tracer: Tracer, profile: ComputeProfile, ts: float, node: int
) -> None:
    """Emit the forward/backward/gpu_copy spans of one local-compute block.

    The three spans tile the ``local_compute_s`` timeout back-to-back,
    so their per-phase sums equal the inline ``+=`` accounting exactly.
    """
    t = ts
    for name, dur in (
        ("forward", profile.forward_s),
        ("backward", profile.backward_s),
        ("gpu_copy", profile.gpu_copy_s),
    ):
        if dur:
            tracer.span(name, cat=CAT_PHASE, ts=t, dur=dur, node=node)
            t += dur


def block_sizes(total: int, num_blocks: int) -> List[int]:
    """Element counts of Algorithm 1's near-equal contiguous blocks.

    The single source of truth for reduce-scatter block sizes: the
    first ``total % num_blocks`` blocks carry one extra element — the
    same layout ``np.array_split`` produces.  Both the functional
    :func:`partition_blocks` and the timing-only
    :func:`repro.distributed.ring.ring_exchange_sizes` derive from it.
    """
    if num_blocks < 1:
        raise ValueError("need at least one block")
    if total < 0:
        raise ValueError("total cannot be negative")
    base, rem = divmod(total, num_blocks)
    return [base + (1 if b < rem else 0) for b in range(num_blocks)]


def partition_blocks(vector: np.ndarray, num_blocks: int) -> List[np.ndarray]:
    """Algorithm 1 line 8: split ``g`` evenly into N blocks.

    Contiguous splits with the :func:`block_sizes` layout (sizes differ
    by at most one).
    """
    flat = np.ascontiguousarray(vector, dtype=np.float32).reshape(-1)
    sizes = block_sizes(flat.size, num_blocks)
    offsets = np.cumsum(np.asarray(sizes[:-1], dtype=np.intp))
    return [
        np.array(b, dtype=np.float32, copy=True)
        for b in np.split(flat, offsets)
    ]


def concatenate_blocks(blocks: List[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`partition_blocks`."""
    if not blocks:
        raise ValueError("no blocks to concatenate")
    return np.concatenate(blocks)
