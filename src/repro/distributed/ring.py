"""INCEPTIONN's gradient-centric, aggregator-free exchange (Algorithm 1).

Every node partitions its local gradient into N blocks and the group
performs a ring reduce-scatter (paper "P1", steps 1..N-1) followed by a
ring all-gather ("P2", steps N..2N-2).  Both legs carry *gradients*, so
when the endpoints' NICs have compression engines every hop is
compressed — the property the whole co-design exists to create.

One index arithmetic covers both phases: at step ``s`` node ``i`` sends
block ``(i - s + 1) mod N`` and receives block ``(i - s) mod N``,
reducing during P1 and overwriting during P2.  (The paper's Fig 6
walkthrough fixes the intent of Algorithm 1's printed indices, which are
internally inconsistent by one step in the P2 loop.)
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

import numpy as np

from repro.core import StreamProfile
from repro.network import Event
from repro.obs import CAT_RING
from repro.transport.endpoint import Endpoint

from .node import (
    ComputeProfile,
    block_sizes,
    concatenate_blocks,
    partition_blocks,
)


def ring_exchange(
    ep: Endpoint,
    vector: np.ndarray,
    num_workers: int,
    profile: Optional[ComputeProfile] = None,
    stream: Optional[StreamProfile] = None,
) -> Generator[Event, Any, np.ndarray]:
    """Run Algorithm 1's gradient exchange for one node; returns the
    fully aggregated gradient vector.

    A generator to be driven as a simulation process — all ``num_workers``
    nodes must run it concurrently with consistent arguments.  ``stream``
    selects the codec/ToS profile of every hop (``None`` for raw).
    """
    n = num_workers
    i = ep.node_id
    if not 0 <= i < n:
        raise ValueError(f"node {i} outside the {n}-worker ring")
    if n == 1:
        return np.array(vector, dtype=np.float32, copy=True).reshape(-1)

    blocks: List[np.ndarray] = partition_blocks(vector, n)
    successor = (i + 1) % n
    predecessor = (i - 1) % n

    tracer = ep.comm.tracer
    for step in range(1, 2 * n - 1):
        step_start = ep.comm.sim.now
        send_idx = (i - step + 1) % n
        recv_idx = (i - step) % n
        ep.isend(successor, blocks[send_idx], profile=stream)
        received = yield ep.recv(predecessor)
        if step < n:
            # P1: sum-reduce into the local block.
            if profile is not None:
                yield ep.comm.sim.timeout(profile.sum_time(received.nbytes))
            blocks[recv_idx] = (blocks[recv_idx] + received).astype(np.float32)
        else:
            # P2: propagate the fully aggregated block.
            blocks[recv_idx] = np.array(received, dtype=np.float32, copy=True)
        if tracer is not None:
            tracer.span(
                "ring.step",
                cat=CAT_RING,
                ts=step_start,
                dur=ep.comm.sim.now - step_start,
                node=getattr(ep, "global_node", ep.node_id),
                step=step,
                ring_phase="P1" if step < n else "P2",
                send_block=send_idx,
                recv_block=recv_idx,
            )

    return concatenate_blocks(blocks)


def ring_exchange_sizes(num_workers: int, vector_size: int) -> "list[int]":
    """Block element counts of the exchange (for timing-only callers).

    Delegates to :func:`repro.distributed.node.block_sizes`, the single
    source of truth shared with the functional ``partition_blocks``.
    """
    return block_sizes(vector_size, num_workers)
