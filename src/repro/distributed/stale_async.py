"""Bounded-staleness parameter server with per-worker version tracking.

Where :mod:`repro.distributed.async_ps` bounds staleness on the *worker*
side (an SSP gate on iteration progress), this strategy enforces the
bound at the *server*: the server tracks, per worker, how many of that
worker's gradient rounds it has applied, and

* a gradient for worker ``w``'s round ``t`` is **applied** only once
  every other worker has at least ``t - bound`` rounds applied
  (arrivals that run ahead queue at the server);
* the **reply** to ``w`` (carrying fresh weights for round ``t + 1``)
  is withheld until every other worker has at least
  ``applied[w] - bound`` rounds applied.

So no worker's weights can ever lag the round frontier by more than
``bound`` rounds, regardless of compute jitter.  ``bound == 0``
degenerates to a round barrier: each round's gradients apply in arrival
order and all workers receive identical post-round weights — a fully
synchronous sequential-apply parameter server, which the convergence
suite pins against a pure-NumPy reference.  ``bound → ∞`` recovers the
fully asynchronous server.
"""

from __future__ import annotations

from typing import Any, Generator, List, Mapping, Optional, Set

import numpy as np

from repro.dnn.network import Sequential
from repro.network import Event
from repro.obs import CAT_STRATEGY

from .strategy import (
    GradientStrategy,
    NodeContext,
    StrategyRun,
    StrategyUpdate,
    register_strategy,
)


@register_strategy
class StaleAsyncStrategy(GradientStrategy):
    """Server-side bounded-staleness asynchronous parameter server."""

    name = "stale_async"
    description = (
        "Async PS whose server queues gradients and withholds replies "
        "to keep every worker within `staleness_bound` rounds."
    )
    #: The server owns the canonical optimizer and pays the update.
    worker_applies_update = False

    def extra_nodes(
        self, num_workers: int, options: Mapping[str, Any]
    ) -> int:
        return 1  # the parameter-server node

    def setup(self, run: StrategyRun) -> None:
        bound = run.options.get("staleness_bound", 0)
        bound = 0 if bound is None else int(bound)
        if bound < 0:
            raise ValueError("staleness_bound cannot be negative")
        self._bound = bound
        self._server_id = run.num_workers
        run.comm.endpoints[self._server_id].promiscuous = True
        self._net = run.build_net(run.seed)
        self._opt = run.make_optimizer()
        self._version = 0  # optimizer steps applied so far
        self._applied = [0] * run.num_workers  # rounds applied per worker
        self._pull_version = [0] * run.num_workers
        self._pending: "dict[int, np.ndarray]" = {}  # queued gradients
        self._unreplied: Set[int] = set()  # applied, awaiting reply gate
        run.extras["staleness_bound"] = bound
        run.extras["staleness"] = []  # server updates between pull & apply
        run.extras["round_lead"] = []  # rounds ahead of slowest at apply
        run.extras["queued"] = 0  # arrivals that had to wait
        run.comm.spawn(self._server(run))

    def exchange(
        self, node: NodeContext, iteration: int, gradient: np.ndarray
    ) -> Generator[Event, Any, StrategyUpdate]:
        ep = node.endpoint
        round_start = node.comm.now
        ep.isend(self._server_id, gradient, profile=node.stream)
        weights = yield ep.recv(self._server_id)
        if node.tracer is not None:
            node.tracer.span(
                "stale_async.round",
                cat=CAT_STRATEGY,
                ts=round_start,
                dur=node.comm.now - round_start,
                node=node.node_id,
                iteration=iteration,
            )
        return StrategyUpdate(weights=weights)

    def final_model(self, run: StrategyRun) -> Sequential:
        return self._net

    def _min_other_applied(self, worker: int) -> int:
        return min(
            count
            for w, count in enumerate(self._applied)
            if w != worker
        )

    def _applicable(self, worker: int) -> bool:
        return (
            self._min_other_applied(worker)
            >= self._applied[worker] - self._bound
        )

    def _next_applicable(self) -> Optional[int]:
        """Queued worker whose gradient may apply now, lowest round first."""
        ready = [w for w in self._pending if self._applicable(w)]
        if not ready:
            return None
        return min(ready, key=lambda w: (self._applied[w], w))

    def _server(self, run: StrategyRun) -> Generator[Event, Any, None]:
        comm = run.comm
        ep = comm.endpoints[self._server_id]
        profile = run.profile
        tracer = run.tracer
        staleness_log: List[int] = run.extras["staleness"]
        lead_log: List[int] = run.extras["round_lead"]
        total_updates = run.num_workers * run.iterations
        applied_updates = 0

        while applied_updates < total_updates:
            src, grad = yield ep.recv_any()
            self._pending[src] = grad
            if not self._applicable(src):
                run.extras["queued"] += 1

            # Apply every queued gradient the bound now admits, in
            # (round, worker) order, then release the replies the
            # frontier allows.  Applying can admit further applies but
            # never the reverse, so one apply-drain then one reply
            # sweep settles the server state.
            while True:
                worker = self._next_applicable()
                if worker is None:
                    break
                pending = self._pending.pop(worker)
                if profile.sum_bandwidth_bps:
                    yield comm.timeout(profile.sum_time(pending.nbytes))
                staleness = self._version - self._pull_version[worker]
                lead = max(
                    0,
                    self._applied[worker] - self._min_other_applied(worker),
                )
                staleness_log.append(staleness)
                lead_log.append(lead)
                if tracer is not None:
                    tracer.instant(
                        "stale_async.apply",
                        cat=CAT_STRATEGY,
                        ts=comm.now,
                        node=self._server_id,
                        src=worker,
                        staleness=staleness,
                        round_lead=lead,
                    )
                self._opt.step_with_vector(self._net, pending)
                self._version += 1
                if profile.update_s:
                    yield comm.timeout(profile.update_s)
                self._applied[worker] += 1
                self._unreplied.add(worker)
                applied_updates += 1

            for worker in sorted(self._unreplied):
                if (
                    self._min_other_applied(worker)
                    >= self._applied[worker] - self._bound
                ):
                    self._pull_version[worker] = self._version
                    ep.isend(worker, self._net.parameter_vector())
                    self._unreplied.discard(worker)
