"""Distributed training algorithms: INCEPTIONN ring + WA baseline."""

from .cluster import (
    DistributedRunResult,
    PHASE_NAMES,
    train_distributed,
)
from .async_ps import AsyncRunResult, train_async_ps
from .hierarchy import GroupLayout, hierarchical_exchange, train_hierarchical
from .node import (
    ComputeProfile,
    ZERO_COMPUTE,
    concatenate_blocks,
    partition_blocks,
)
from .ring import ring_exchange, ring_exchange_sizes
from .worker_aggregator import aggregator_exchange, worker_exchange

__all__ = [
    "DistributedRunResult",
    "PHASE_NAMES",
    "train_distributed",
    "AsyncRunResult",
    "train_async_ps",
    "GroupLayout",
    "hierarchical_exchange",
    "train_hierarchical",
    "ComputeProfile",
    "ZERO_COMPUTE",
    "concatenate_blocks",
    "partition_blocks",
    "ring_exchange",
    "ring_exchange_sizes",
    "aggregator_exchange",
    "worker_exchange",
]
