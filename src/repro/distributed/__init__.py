"""Distributed training: pluggable gradient strategies over one driver.

Importing this package registers every built-in
:class:`~repro.distributed.strategy.GradientStrategy` plugin — the
INCEPTIONN ring, the worker-aggregator baseline, the asynchronous and
bounded-staleness parameter servers, the hierarchical rings, and
LocalSGD — in :data:`~repro.distributed.strategy.STRATEGIES`.
"""

from .strategy import (
    GradientStrategy,
    NodeContext,
    PHASE_NAMES,
    STRATEGIES,
    StrategyReport,
    StrategyRun,
    StrategyUpdate,
    available_strategies,
    get_strategy,
    phase_seconds_from_trace,
    phases_with_residual,
    register_strategy,
    run_strategy,
)
from .cluster import (
    DistributedRunResult,
    RingStrategy,
    WorkerAggregatorStrategy,
    train_distributed,
)
from .async_ps import AsyncPSStrategy, AsyncRunResult, train_async_ps
from .hierarchy import (
    GroupLayout,
    HierarchyStrategy,
    hierarchical_exchange,
    train_hierarchical,
)
from .local_sgd import LocalSGDStrategy
from .stale_async import StaleAsyncStrategy
from .node import (
    ComputeProfile,
    ZERO_COMPUTE,
    concatenate_blocks,
    partition_blocks,
    spawn_key,
)
from .ring import ring_exchange, ring_exchange_sizes
from .worker_aggregator import aggregator_exchange, worker_exchange

__all__ = [
    "GradientStrategy",
    "NodeContext",
    "PHASE_NAMES",
    "STRATEGIES",
    "StrategyReport",
    "StrategyRun",
    "StrategyUpdate",
    "available_strategies",
    "get_strategy",
    "phase_seconds_from_trace",
    "phases_with_residual",
    "register_strategy",
    "run_strategy",
    "DistributedRunResult",
    "RingStrategy",
    "WorkerAggregatorStrategy",
    "train_distributed",
    "AsyncPSStrategy",
    "AsyncRunResult",
    "train_async_ps",
    "GroupLayout",
    "HierarchyStrategy",
    "hierarchical_exchange",
    "train_hierarchical",
    "LocalSGDStrategy",
    "StaleAsyncStrategy",
    "ComputeProfile",
    "ZERO_COMPUTE",
    "concatenate_blocks",
    "partition_blocks",
    "spawn_key",
    "ring_exchange",
    "ring_exchange_sizes",
    "aggregator_exchange",
    "worker_exchange",
]
