"""Pluggable gradient-exchange strategies over one shared training driver.

Every distributed algorithm in this repo — the INCEPTIONN ring, the
worker-aggregator baseline, the asynchronous parameter server, the
hierarchical rings, and the communication-avoiding variants — is the
same outer loop with a different answer to one question: *what happens
to the local gradient between backward and update?*  This module owns
the outer loop exactly once:

* :class:`GradientStrategy` — the plugin protocol.  A strategy declares
  how many service nodes it needs (:meth:`~GradientStrategy.extra_nodes`),
  spawns them in :meth:`~GradientStrategy.setup`, and implements the
  per-iteration :meth:`~GradientStrategy.exchange` generator that turns
  a local gradient into a :class:`StrategyUpdate`.
* :data:`STRATEGIES` — a registry mirroring the codec registry in
  :mod:`repro.core.registry`; plugins self-register at import time with
  :func:`register_strategy`.
* :func:`run_strategy` — the one driver that owns process spawning,
  :class:`~repro.distributed.node.ComputeProfile` accounting, tracing
  spans, and :class:`~repro.transport.endpoint.TransferSummary`
  assembly.  Strategy plugins never touch those concerns.

The driver's per-iteration event sequence is bit-compatible with the
four hand-rolled spawn loops it replaced — the strategy-parity suite
pins final weights (sha256) and wire bytes against recordings of the
pre-refactor implementations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    Union,
)

import numpy as np

from repro.core import StreamProfile
from repro.dnn.data import Dataset
from repro.dnn.metrics import top1_accuracy, top5_accuracy
from repro.dnn.network import Sequential
from repro.dnn.optim import SGD
from repro.dnn.training import LocalTrainer
from repro.network import Event
from repro.obs import CAT_PHASE, CAT_STRATEGY, Tracer
from repro.transport.aggregation import AGG_SWITCH
from repro.transport.endpoint import ClusterComm, ClusterConfig, Endpoint

from .node import (
    ComputeProfile,
    JITTER_STREAM,
    ZERO_COMPUTE,
    record_compute_phases,
    spawn_key,
)

#: The Table II phase names, in the paper's row order.
PHASE_NAMES = (
    "forward",
    "backward",
    "gpu_copy",
    "gradient_sum",
    "communicate",
    "update",
)


def phases_with_residual(
    totals: Mapping[str, float], total_s: float
) -> Dict[str, float]:
    """Fold attributed phase totals into the Table II dict.

    Every named compute phase keeps its attributed total; whatever part
    of ``total_s`` is left is ``communicate`` — the same residual
    accounting the paper's harness uses.  Shared by the driver and
    :mod:`repro.perfmodel.breakdown` so the two never drift.
    """
    phases = {name: float(totals.get(name, 0.0)) for name in PHASE_NAMES}
    attributed = sum(
        phases[name] for name in PHASE_NAMES if name != "communicate"
    )
    phases["communicate"] = max(0.0, total_s - attributed)
    return phases


def phase_seconds_from_trace(
    tracer: Tracer, total_s: float
) -> Dict[str, float]:
    """Rebuild the Table II phase dict from recorded ``phase`` spans.

    Every attributed phase is the sum of its span durations; the
    residual of the run's total time is ``communicate`` — with a tracer
    attached, the trace is the authoritative record.
    """
    return phases_with_residual(tracer.phase_totals(), total_s)


@dataclass(frozen=True)
class StrategyUpdate:
    """What one exchange tells the driver to do to the local replica.

    ``gradient`` goes through the worker's own optimizer
    (``apply_gradient``); ``weights`` overwrite the replica's parameter
    vector; ``sync_optimizer_iteration`` bumps the local iteration
    counter so LR schedules stay aligned when a service node owns the
    canonical optimizer.  Fields compose (gradient first, then weights).
    """

    gradient: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    sync_optimizer_iteration: bool = False


@dataclass
class StrategyReport:
    """Per-strategy summary returned by :meth:`GradientStrategy.finalize`."""

    strategy: str
    #: Free-form per-strategy results (staleness samples, sync rounds,
    #: ...) accumulated in :attr:`StrategyRun.extras` during the run.
    extras: Dict[str, Any] = field(default_factory=dict)


@dataclass
class StrategyRun:
    """Shared state of one driven run, handed to every strategy hook."""

    strategy: "GradientStrategy"
    comm: ClusterComm
    num_workers: int
    iterations: int
    trainers: List[LocalTrainer]
    dataset: Dataset
    build_net: Callable[[int], Sequential]
    make_optimizer: Callable[[], SGD]
    profile: ComputeProfile
    stream: Optional[StreamProfile]
    tracer: Optional[Tracer]
    seed: int
    options: Mapping[str, Any]
    eval_every: Optional[int] = None
    #: Per-iteration loss lists (one entry per worker per iteration).
    losses: List[List[float]] = field(default_factory=list)
    #: Flat losses in completion order — what asynchronous strategies
    #: report, where "iteration i" means different times per worker.
    loss_order: List[float] = field(default_factory=list)
    eval_top1: List[float] = field(default_factory=list)
    phase: Dict[str, float] = field(default_factory=dict)
    #: Scratch space for strategy results, folded into StrategyReport.
    extras: Dict[str, Any] = field(default_factory=dict)

    def node(self, node_id: int) -> "NodeContext":
        return NodeContext(
            node_id=node_id,
            endpoint=self.comm.endpoints[node_id],
            trainer=self.trainers[node_id],
            run=self,
        )

    def record_loss(self, iteration: int, loss: float) -> None:
        self.losses[iteration].append(loss)
        self.loss_order.append(loss)

    def account(
        self,
        name: str,
        seconds: float,
        node: int,
        ts: Optional[float] = None,
    ) -> None:
        """Attribute ``seconds`` to a Table II phase (and span it).

        The one accounting entry point for driver and strategies alike:
        updates the inline phase dict and, with a tracer attached, emits
        the matching ``phase`` span so trace-derived breakdowns agree
        with the inline sums exactly.
        """
        self.phase[name] = self.phase.get(name, 0.0) + seconds
        if self.tracer is not None and seconds:
            self.tracer.span(
                name,
                cat=CAT_PHASE,
                ts=self.comm.now if ts is None else ts,
                dur=seconds,
                node=node,
            )

    def account_local_compute(self, ts: float, node: int) -> None:
        """Attribute one forward/backward/gpu_copy block (nominal times)."""
        self.phase["forward"] = (
            self.phase.get("forward", 0.0) + self.profile.forward_s
        )
        self.phase["backward"] = (
            self.phase.get("backward", 0.0) + self.profile.backward_s
        )
        self.phase["gpu_copy"] = (
            self.phase.get("gpu_copy", 0.0) + self.profile.gpu_copy_s
        )
        if self.tracer is not None:
            record_compute_phases(self.tracer, self.profile, ts, node)


@dataclass
class NodeContext:
    """One worker's view of the run, handed to ``exchange``."""

    node_id: int
    endpoint: Endpoint
    trainer: LocalTrainer
    run: StrategyRun

    @property
    def comm(self) -> ClusterComm:
        return self.run.comm

    @property
    def num_workers(self) -> int:
        return self.run.num_workers

    @property
    def profile(self) -> ComputeProfile:
        return self.run.profile

    @property
    def stream(self) -> Optional[StreamProfile]:
        return self.run.stream

    @property
    def tracer(self) -> Optional[Tracer]:
        return self.run.tracer


class GradientStrategy(abc.ABC):
    """One gradient-synchronization discipline, pluggable into the driver.

    Subclasses set ``name``/``description`` class attributes, implement
    :meth:`exchange`, and optionally override the service hooks.  One
    instance serves one run — strategies may keep per-run state on
    ``self`` after :meth:`setup`.
    """

    #: Registry key (``repro train --strategy <name>``).
    name: str = ""
    #: One-line summary for ``repro strategies``.
    description: str = ""
    #: Whether workers pay ``profile.update_s`` locally each iteration.
    #: Server-centric strategies (the service node owns the optimizer)
    #: set this False and account the update at the server instead.
    worker_applies_update: bool = True
    #: Whether the strategy can host its gradient sum in-network
    #: (``ClusterConfig.agg_site = "switch"``).  Only strategies with a
    #: single reduction root can; the driver rejects the combination
    #: for everything else.
    supports_switch_aggregation: bool = False

    def extra_nodes(
        self, num_workers: int, options: Mapping[str, Any]
    ) -> int:
        """Service nodes beyond the workers (aggregator, server, ...)."""
        return 0

    def setup(self, run: StrategyRun) -> None:
        """Validate options and spawn service processes via ``run.comm``."""

    def iteration_gate(
        self, node: NodeContext, iteration: int
    ) -> Optional[Event]:
        """Event the worker must wait on before computing, or ``None``."""
        return None

    @abc.abstractmethod
    def exchange(
        self, node: NodeContext, iteration: int, gradient: np.ndarray
    ) -> Generator[Event, Any, StrategyUpdate]:
        """Turn one local gradient into the replica's next update.

        A simulation-process generator: every yielded event advances the
        virtual clock.  All workers run it concurrently.
        """

    def after_apply(self, node: NodeContext, iteration: int) -> None:
        """Hook after the driver installed the update (progress marks)."""

    def final_model(self, run: StrategyRun) -> Sequential:
        """The network evaluated and pinned as the run's outcome."""
        return run.trainers[0].net

    def finalize(self, run: StrategyRun) -> StrategyReport:
        """Fold per-run scratch state into the report."""
        return StrategyReport(strategy=self.name, extras=dict(run.extras))


#: Registered strategies, keyed by name (the codec-registry pattern).
STRATEGIES: Dict[str, Type[GradientStrategy]] = {}


def register_strategy(cls: Type[GradientStrategy]) -> Type[GradientStrategy]:
    """Class decorator: add a :class:`GradientStrategy` to the registry.

    Idempotent re-registration of the same class is allowed (module
    reloads); a *different* class under an existing name is an error.
    """
    name = cls.name
    if not name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    existing = STRATEGIES.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"strategy {name!r} is already registered")
    STRATEGIES[name] = cls
    return cls


def available_strategies() -> Tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(STRATEGIES))


def get_strategy(name: str) -> GradientStrategy:
    """Instantiate a registered strategy by name."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        known = ", ".join(available_strategies()) or "none"
        raise ValueError(
            f"unknown strategy {name!r} (available: {known})"
        ) from None
    return cls()


def _worker_process(
    run: StrategyRun, strategy: GradientStrategy, node_id: int
) -> Generator[Event, Any, None]:
    """The one training loop every strategy's workers execute."""
    node = run.node(node_id)
    trainer = node.trainer
    comm = run.comm
    profile = run.profile
    tracer = run.tracer
    jitter = float(run.options.get("compute_jitter", 0.0) or 0.0)
    jitter_rng = (
        np.random.default_rng(spawn_key(run.seed, node_id, JITTER_STREAM))
        if jitter
        else None
    )

    for iteration in range(run.iterations):
        gate = strategy.iteration_gate(node, iteration)
        if gate is not None:
            yield gate
        compute_start = comm.now
        compute = profile.local_compute_s
        if compute and jitter_rng is not None:
            compute *= 1.0 + jitter * (2 * jitter_rng.random() - 1)
        if compute:
            yield comm.timeout(compute)
        if node_id == 0:
            run.account_local_compute(compute_start, node_id)
        loss, grad = trainer.local_gradient()
        run.record_loss(iteration, loss)

        exchange_start = comm.now
        update = yield from strategy.exchange(node, iteration, grad)
        if tracer is not None:
            tracer.span(
                "strategy.exchange",
                cat=CAT_STRATEGY,
                ts=exchange_start,
                dur=comm.now - exchange_start,
                node=node_id,
                strategy=strategy.name,
                iteration=iteration,
            )

        if strategy.worker_applies_update:
            update_start = comm.now
            if profile.update_s:
                yield comm.timeout(profile.update_s)
            if node_id == 0:
                run.account(
                    "update", profile.update_s, node=node_id, ts=update_start
                )
        if update.gradient is not None:
            trainer.apply_gradient(update.gradient)
        if update.weights is not None:
            trainer.net.set_parameter_vector(update.weights)
        if update.sync_optimizer_iteration:
            trainer.optimizer.iteration += 1
        strategy.after_apply(node, iteration)
        if (
            node_id == 0
            and run.eval_every
            and (iteration + 1) % run.eval_every == 0
        ):
            run.eval_top1.append(trainer.evaluate()[0])


def run_strategy(
    strategy: "Union[str, GradientStrategy]",
    build_net: Callable[[int], Sequential],
    make_optimizer: Callable[[], SGD],
    dataset: Dataset,
    num_workers: int,
    iterations: int,
    batch_size: int,
    cluster: Optional[ClusterConfig] = None,
    profile: ComputeProfile = ZERO_COMPUTE,
    compress_gradients: bool = False,
    stream: Optional[StreamProfile] = None,
    eval_every: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    seed: int = 0,
    options: Optional[Mapping[str, Any]] = None,
) -> "DistributedRunResult":
    """Train replicas of ``build_net(seed)`` under any registered strategy.

    The single entry point behind ``train_distributed``,
    ``train_hierarchical`` and ``train_async_ps``: builds the cluster,
    seeds the trainers (collision-free spawn keys), drives one
    :func:`_worker_process` per worker plus whatever service processes
    the strategy spawns, and assembles the result — phase breakdown,
    wire accounting, final weights — exactly once.

    ``stream`` selects the codec profile of the gradient traffic;
    ``compress_gradients`` is the deprecated boolean alias for the
    cluster's default profile.  ``options`` is the strategy's keyword
    namespace (``sync_period``, ``staleness_bound``, ``layout``,
    ``compute_jitter``, ...).
    """
    from .cluster import DistributedRunResult

    strat = get_strategy(strategy) if isinstance(strategy, str) else strategy
    opts: Mapping[str, Any] = dict(options or {})
    if num_workers < 2:
        raise ValueError("distributed training needs at least two workers")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    num_nodes = num_workers + strat.extra_nodes(num_workers, opts)
    config = cluster or ClusterConfig(num_nodes=num_nodes, profile=stream)
    if config.num_nodes != num_nodes:
        raise ValueError(
            f"cluster config has {config.num_nodes} nodes, run needs {num_nodes}"
        )
    comm = ClusterComm(config, tracer=tracer)
    if config.agg_site == AGG_SWITCH and not strat.supports_switch_aggregation:
        raise ValueError(
            f"strategy {strat.name!r} has no single reduction root; "
            "agg_site='switch' only applies to the worker-aggregator "
            "family"
        )
    if stream is None and compress_gradients:
        stream = comm.default_profile

    # Identical replicas: every worker builds from the same seed; data
    # streams derive from collision-free spawn keys.
    trainers = [
        LocalTrainer(
            net=build_net(seed),
            optimizer=make_optimizer(),
            dataset=dataset.shard(i, num_workers),
            batch_size=batch_size,
            seed=spawn_key(seed, i),
        )
        for i in range(num_workers)
    ]

    run = StrategyRun(
        strategy=strat,
        comm=comm,
        num_workers=num_workers,
        iterations=iterations,
        trainers=trainers,
        dataset=dataset,
        build_net=build_net,
        make_optimizer=make_optimizer,
        profile=profile,
        stream=stream,
        tracer=tracer,
        seed=seed,
        options=opts,
        eval_every=eval_every,
        losses=[[] for _ in range(iterations)],
        phase={name: 0.0 for name in PHASE_NAMES},
    )
    strat.setup(run)
    for i in range(num_workers):
        comm.spawn(_worker_process(run, strat, i))
    total_time = comm.run()

    # Residual accounting: everything not attributed to a compute phase
    # on the per-iteration critical path is communication (Table II's
    # "Communicate" row is exactly this residual in the paper's
    # harness).  With a tracer attached the breakdown is rebuilt from
    # the recorded phase spans — the trace is the authoritative record.
    if tracer is not None:
        phase = phase_seconds_from_trace(tracer, total_time)
    else:
        phase = phases_with_residual(run.phase, total_time)

    net = strat.final_model(run)
    logits = net.predict(dataset.test_x)
    top1 = top1_accuracy(logits, dataset.test_y)
    top5 = top5_accuracy(logits, dataset.test_y)
    report = strat.finalize(run)

    return DistributedRunResult(
        algorithm=strat.name,
        num_workers=num_workers,
        iterations=iterations,
        losses=[float(np.mean(l)) for l in run.losses],
        final_top1=top1,
        final_top5=top5,
        virtual_time_s=total_time,
        phase_seconds=phase,
        eval_top1=run.eval_top1,
        transfers=comm.transfer_summary(),
        final_weights=net.parameter_vector(),
        report=report,
        loss_order=list(run.loss_order),
    )
