"""Hierarchical composition of the gradient-centric algorithm (Fig 1c).

The worker group is the paper's building block; at scale, groups compose
hierarchically.  This module implements the two-level variant: each leaf
group ring-aggregates its members' gradients, the group leaders form a
second-level ring over the group-aggregated gradients, and leaders then
broadcast the global aggregate back into their groups.  Every leg is a
*gradient* leg, so everything stays compressible.

The schedule is a :class:`~repro.distributed.strategy.GradientStrategy`
plugin (``"hierarchy"``); ``train_hierarchical`` wraps the shared
driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, List, Sequence

import numpy as np

from repro.core import StreamProfile
from repro.network import Event
from repro.obs import CAT_HIER, Tracer
from repro.transport.endpoint import ClusterComm

from .node import ComputeProfile
from .ring import ring_exchange
from .strategy import (
    GradientStrategy,
    NodeContext,
    StrategyRun,
    StrategyUpdate,
    register_strategy,
    run_strategy,
)

if TYPE_CHECKING:
    from repro.dnn.data import Dataset
    from repro.dnn.network import Sequential
    from repro.dnn.optim import SGD
    from repro.transport.endpoint import ClusterConfig

    from .cluster import DistributedRunResult


@dataclass(frozen=True)
class GroupLayout:
    """Partition of cluster nodes into equal leaf groups."""

    groups: "tuple[tuple[int, ...], ...]"

    @classmethod
    def even(cls, num_nodes: int, group_size: int) -> "GroupLayout":
        if group_size < 2:
            raise ValueError("groups need at least two members")
        if num_nodes % group_size:
            raise ValueError(
                f"{num_nodes} nodes do not divide into groups of {group_size}"
            )
        groups = tuple(
            tuple(range(start, start + group_size))
            for start in range(0, num_nodes, group_size)
        )
        return cls(groups=groups)

    @property
    def num_nodes(self) -> int:
        return sum(len(group) for group in self.groups)

    @property
    def leaders(self) -> "tuple[int, ...]":
        """First member of each group participates in the upper ring."""
        return tuple(group[0] for group in self.groups)

    def group_of(self, node: int) -> "tuple[int, ...]":
        for group in self.groups:
            if node in group:
                return group
        raise ValueError(f"node {node} not in any group")


class _ScopedEndpoint:
    """Endpoint view that renumbers a node subset as a 0..k-1 ring.

    ``ring_exchange`` expects ring-local ranks; this adapter maps them
    onto the global node ids of a group (or the leader set).
    """

    def __init__(self, comm: ClusterComm, members: Sequence[int], node: int):
        self._inner = comm.endpoints[node]
        self._members = list(members)
        self.comm = comm
        self.node_id = self._members.index(node)
        #: Cluster-global id, so trace events keep stable node labels.
        self.global_node = node

    def isend(
        self,
        dst: int,
        array: np.ndarray,
        profile: "StreamProfile | None" = None,
    ) -> Event:
        return self._inner.isend(
            self._members[dst], array, profile=profile
        )

    def recv(self, src: int) -> Event:
        return self._inner.recv(self._members[src])


def hierarchical_exchange(
    comm: ClusterComm,
    node: int,
    vector: np.ndarray,
    layout: GroupLayout,
    profile: "ComputeProfile | None" = None,
    stream: "StreamProfile | None" = None,
) -> Generator[Event, Any, np.ndarray]:
    """Two-level gradient exchange for one node; returns the global sum.

    Level 1: ring inside the leaf group.  Level 2: leaders ring over the
    group sums.  Level 3: leaders send the global aggregate to their
    group members (a gradient broadcast — still on the compressed
    stream).  ``stream`` selects the codec profile for every leg.
    """
    group = layout.group_of(node)
    leader = group[0]
    tracer = comm.tracer

    level1_start = comm.sim.now
    group_ep = _ScopedEndpoint(comm, group, node)
    group_sum = yield from ring_exchange(
        group_ep,
        vector,
        len(group),
        profile=profile,
        stream=stream,
    )
    if tracer is not None:
        tracer.span(
            "hier.group_ring",
            cat=CAT_HIER,
            ts=level1_start,
            dur=comm.sim.now - level1_start,
            node=node,
            group_size=len(group),
        )

    leaders: List[int] = list(layout.leaders)
    if len(leaders) == 1:
        return group_sum

    ep = comm.endpoints[node]
    if node == leader:
        level2_start = comm.sim.now
        leader_ep = _ScopedEndpoint(comm, leaders, node)
        global_sum = yield from ring_exchange(
            leader_ep,
            group_sum,
            len(leaders),
            profile=profile,
            stream=stream,
        )
        if tracer is not None:
            tracer.span(
                "hier.leader_ring",
                cat=CAT_HIER,
                ts=level2_start,
                dur=comm.sim.now - level2_start,
                node=node,
                num_leaders=len(leaders),
            )
        bcast_start = comm.sim.now
        events = [
            ep.isend(member, global_sum, profile=stream)
            for member in group[1:]
        ]
        if events:
            yield comm.sim.all_of(events)
            if tracer is not None:
                tracer.span(
                    "hier.broadcast",
                    cat=CAT_HIER,
                    ts=bcast_start,
                    dur=comm.sim.now - bcast_start,
                    node=node,
                    fanout=len(events),
                )
        return global_sum

    global_sum = yield ep.recv(leader)
    return global_sum


@register_strategy
class HierarchyStrategy(GradientStrategy):
    """Two-level ring-of-rings schedule (paper Fig 1c)."""

    name = "hierarchy"
    description = (
        "Leaf-group rings, a leader ring over group sums, and a "
        "gradient broadcast back — all legs compressible."
    )

    def setup(self, run: StrategyRun) -> None:
        layout = run.options.get("layout")
        if layout is None:
            group_size = int(run.options.get("group_size", 2))
            layout = GroupLayout.even(run.num_workers, group_size)
        if layout.num_nodes != run.num_workers:
            raise ValueError(
                f"layout covers {layout.num_nodes} nodes, "
                f"run has {run.num_workers} workers"
            )
        self._layout = layout

    def exchange(
        self, node: NodeContext, iteration: int, gradient: np.ndarray
    ) -> Generator[Event, Any, StrategyUpdate]:
        aggregate = yield from hierarchical_exchange(
            node.comm,
            node.node_id,
            gradient,
            self._layout,
            profile=node.profile,
            stream=node.stream,
        )
        return StrategyUpdate(gradient=aggregate)


def train_hierarchical(
    build_net: "Callable[[int], Sequential]",
    make_optimizer: "Callable[[], SGD]",
    dataset: "Dataset",
    layout: GroupLayout,
    iterations: int,
    batch_size: int,
    cluster: "ClusterConfig | None" = None,
    profile: "ComputeProfile | None" = None,
    compress_gradients: bool = False,
    stream: "StreamProfile | None" = None,
    tracer: "Tracer | None" = None,
    seed: int = 0,
) -> "DistributedRunResult":
    """End-to-end training with the two-level exchange (Fig 1c).

    Mirrors :func:`repro.distributed.cluster.train_distributed` for the
    hierarchical organization; returns the same result type with
    ``algorithm == "hierarchy"``.  ``compress_gradients`` resolves to
    the cluster's default profile when no explicit ``stream`` is given.

    Compatibility wrapper over the ``"hierarchy"`` strategy plugin.
    """
    from .node import ZERO_COMPUTE

    return run_strategy(
        "hierarchy",
        build_net=build_net,
        make_optimizer=make_optimizer,
        dataset=dataset,
        num_workers=layout.num_nodes,
        iterations=iterations,
        batch_size=batch_size,
        cluster=cluster,
        profile=profile or ZERO_COMPUTE,
        compress_gradients=compress_gradients,
        stream=stream,
        tracer=tracer,
        seed=seed,
        options={"layout": layout},
    )
