"""Communication-avoiding LocalSGD / DiLoCo-style periodic sync.

Each worker runs plain local SGD and only every ``sync_period`` (H)
iterations the group synchronizes: worker ``i`` forms its parameter
delta against the last synchronized *anchor* weights,
``Δ_i = w_i - w_anchor``, the group ring-allreduces ``ΣΔ`` over the
same INCEPTIONN ring the ``"ring"`` strategy uses (every hop is a
gradient-like delta, so every hop compresses), and everyone installs
``w_anchor + ΣΔ`` as the new anchor.

Summing deltas (rather than averaging weights) makes ``H == 1``
*mathematically identical* to the synchronous ring with momentum SGD:
each worker's velocity tracks its own gradient stream, and by linearity
``Σ_i v_i`` equals the ring's velocity for the summed gradient — so the
convergence suite can pin ``local_sgd(H=1)`` against ``ring`` to
floating-point reordering noise.  (Exactness requires zero weight
decay, which breaks the linearity.)  With ``H > 1`` the ring runs
``1/H`` as often — the communication-avoiding trade the strategy
exists to measure.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

import numpy as np

from repro.network import Event
from repro.obs import CAT_STRATEGY

from .ring import ring_exchange
from .strategy import (
    GradientStrategy,
    NodeContext,
    StrategyRun,
    StrategyUpdate,
    register_strategy,
)


@register_strategy
class LocalSGDStrategy(GradientStrategy):
    """Local steps with periodic delta-sum synchronization."""

    name = "local_sgd"
    description = (
        "Workers take H local SGD steps, then ring-allreduce parameter "
        "deltas against the last sync anchor (DiLoCo-style)."
    )

    def setup(self, run: StrategyRun) -> None:
        period = int(run.options.get("sync_period", 4))
        if period < 1:
            raise ValueError("sync_period must be at least 1")
        self._period = period
        self._anchors: Dict[int, np.ndarray] = {}
        run.extras["sync_period"] = period
        run.extras["sync_rounds"] = 0

    def exchange(
        self, node: NodeContext, iteration: int, gradient: np.ndarray
    ) -> Generator[Event, Any, StrategyUpdate]:
        trainer = node.trainer
        if node.node_id not in self._anchors:
            # The anchor is the replica state before any local step —
            # identical across workers (same seed) at iteration 0.
            self._anchors[node.node_id] = trainer.net.parameter_vector()

        # The local step always happens: LocalSGD workers own their
        # optimizer (momentum keeps tracking the local gradient stream).
        trainer.apply_gradient(gradient)
        if (iteration + 1) % self._period:
            return StrategyUpdate()  # no communication this iteration

        anchor = self._anchors[node.node_id]
        sync_start = node.comm.now
        delta = (trainer.net.parameter_vector() - anchor).astype(np.float32)
        total_delta = yield from ring_exchange(
            node.endpoint,
            delta,
            node.num_workers,
            profile=node.profile,
            stream=node.stream,
        )
        new_weights = (anchor + total_delta).astype(np.float32)
        self._anchors[node.node_id] = new_weights
        if node.node_id == 0:
            n = node.num_workers
            sum_dt = node.profile.sum_time(int(delta.nbytes * (n - 1) / n))
            node.run.account("gradient_sum", sum_dt, node=node.node_id)
            node.run.extras["sync_rounds"] += 1
            if node.tracer is not None:
                node.tracer.span(
                    "local_sgd.sync",
                    cat=CAT_STRATEGY,
                    ts=sync_start,
                    dur=node.comm.now - sync_start,
                    node=node.node_id,
                    sync_period=self._period,
                    iteration=iteration,
                )
        return StrategyUpdate(weights=new_weights)
