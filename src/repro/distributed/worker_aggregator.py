"""The conventional worker-aggregator exchange (paper Fig 2, baseline).

Workers push local gradients up to a designated aggregator, which sums
them, applies the weight update, and broadcasts the new weights down.
Only the gradient (up) leg is compressible — weights do not tolerate
loss (paper Fig 4), which is exactly the asymmetry INCEPTIONN's
algorithm removes.

Where the sum happens is the cluster's ``agg_site`` knob.  At the
endpoint (default) arrivals fold at the aggregator host — through the
codec algebra when the stream is homomorphic, element-wise otherwise.
At the switch, a :class:`~repro.transport.aggregation.SwitchGather`
reduces payloads in-flight and the aggregator only collects the folded
result; both exchange legs here just pick the site, the mechanics live
in :mod:`repro.transport.aggregation`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

import numpy as np

from repro.core import StreamProfile
from repro.network import Event
from repro.transport.aggregation import SwitchGather, aggregate_endpoint
from repro.transport.endpoint import Endpoint

from .node import ComputeProfile


def worker_exchange(
    ep: Endpoint,
    aggregator: int,
    gradient: np.ndarray,
    stream: Optional[StreamProfile] = None,
    gather: Optional[SwitchGather] = None,
) -> Generator[Event, Any, np.ndarray]:
    """One worker's iteration legs: send g up, receive w down.

    ``stream`` selects the codec profile of the gradient leg (the
    weight leg down is always raw).  With a ``gather`` (the switch
    aggregation site) the gradient rides the reduction tree instead of
    a host-to-host message.  Returns the updated weight vector from the
    aggregator.
    """
    if gather is not None:
        gather.offer(ep.node_id, gradient)
    else:
        ep.isend(aggregator, gradient, profile=stream)
    weights = yield ep.recv(aggregator)
    return weights


def aggregator_exchange(
    ep: Endpoint,
    workers: List[int],
    apply_update: Callable[[np.ndarray], np.ndarray],
    profile: Optional[ComputeProfile] = None,
    stream: Optional[StreamProfile] = None,
    gather: Optional[SwitchGather] = None,
) -> Generator[Event, Any, np.ndarray]:
    """One aggregator iteration: gather, sum, update, broadcast.

    ``apply_update(total_gradient) -> weight_vector`` is the update rule
    (the aggregator owns the canonical weights and optimizer state).
    Three gather dispositions share the update/broadcast tail: the
    switch site collects the in-network folded part; a homomorphic
    endpoint stream folds arrivals through the codec algebra (bit-equal
    to the switch tree); everything else keeps the historical
    element-wise float32 accumulation verbatim.  Returns the broadcast
    weight vector.
    """
    total: Optional[np.ndarray] = None
    if gather is not None:
        part = yield from gather.collect()
        if part.result is None:
            raise RuntimeError(
                "switch gather returned a size-only part; functional "
                "exchanges must offer real gradient arrays"
            )
        total = part.result.values
    elif (
        stream is not None
        and stream.homomorphic
        and ep.comm.compression_active()
    ):
        arrivals: List[np.ndarray] = []
        for count, src in enumerate(workers):
            grad = yield ep.recv(src)
            if count > 0 and profile is not None:
                yield ep.comm.sim.timeout(profile.sum_time(grad.nbytes))
            arrivals.append(grad)
        if not arrivals:
            raise ValueError("aggregator needs at least one worker")
        total = aggregate_endpoint(stream, arrivals)
    else:
        for src in workers:
            grad = yield ep.recv(src)
            if total is None:
                total = np.array(grad, dtype=np.float32, copy=True)
            else:
                if profile is not None:
                    yield ep.comm.sim.timeout(profile.sum_time(grad.nbytes))
                total = (total + grad).astype(np.float32)
        if total is None:
            raise ValueError("aggregator needs at least one worker")
    if profile is not None and profile.update_s:
        yield ep.comm.sim.timeout(profile.update_s)
    weights = apply_update(total)
    events = [ep.isend(dst, weights) for dst in workers]
    yield ep.comm.sim.all_of(events)
    return weights
