"""The conventional worker-aggregator exchange (paper Fig 2, baseline).

Workers push local gradients up to a designated aggregator, which sums
them, applies the weight update, and broadcasts the new weights down.
Only the gradient (up) leg is compressible — weights do not tolerate
loss (paper Fig 4), which is exactly the asymmetry INCEPTIONN's
algorithm removes.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

import numpy as np

from repro.core import StreamProfile
from repro.network import Event
from repro.transport.endpoint import Endpoint

from .node import ComputeProfile


def worker_exchange(
    ep: Endpoint,
    aggregator: int,
    gradient: np.ndarray,
    stream: Optional[StreamProfile] = None,
) -> Generator[Event, Any, np.ndarray]:
    """One worker's iteration legs: send g up, receive w down.

    ``stream`` selects the codec profile of the gradient leg (the
    weight leg down is always raw).  Returns the updated weight vector
    from the aggregator.
    """
    ep.isend(aggregator, gradient, profile=stream)
    weights = yield ep.recv(aggregator)
    return weights


def aggregator_exchange(
    ep: Endpoint,
    workers: List[int],
    apply_update: Callable[[np.ndarray], np.ndarray],
    profile: Optional[ComputeProfile] = None,
) -> Generator[Event, Any, np.ndarray]:
    """One aggregator iteration: gather, sum, update, broadcast.

    ``apply_update(total_gradient) -> weight_vector`` is the update rule
    (the aggregator owns the canonical weights and optimizer state).
    Returns the broadcast weight vector.
    """
    total: Optional[np.ndarray] = None
    for src in workers:
        grad = yield ep.recv(src)
        if total is None:
            total = np.array(grad, dtype=np.float32, copy=True)
        else:
            if profile is not None:
                yield ep.comm.sim.timeout(profile.sum_time(grad.nbytes))
            total = (total + grad).astype(np.float32)
    if total is None:
        raise ValueError("aggregator needs at least one worker")
    if profile is not None and profile.update_s:
        yield ep.comm.sim.timeout(profile.update_s)
    weights = apply_update(total)
    events = [ep.isend(dst, weights) for dst in workers]
    yield ep.comm.sim.all_of(events)
    return weights
