"""Calibration constants taken from the paper's measurements.

The reproduction cannot rerun the authors' Titan XP + 10 GbE testbed, so
the *local-computation* side of the timing experiments is calibrated to
the paper's own Table II (absolute seconds per 100 iterations of the
five-node worker-aggregator cluster).  The *communication* side is
simulated, not calibrated — reproducing it is the point — and we verify
in tests/benchmarks that the simulated WA communication times land near
Table II's "Communicate" row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.distributed.node import ComputeProfile

#: Workers in the paper's measurement cluster (plus one aggregator).
TABLE2_NUM_WORKERS = 4
#: Table II reports totals over this many iterations.
TABLE2_ITERATIONS = 100


@dataclass(frozen=True)
class Table2Row:
    """One column of Table II: absolute seconds per 100 iterations."""

    forward: float
    backward: float
    gpu_copy: float
    gradient_sum: float
    communicate: float
    update: float

    @property
    def total(self) -> float:
        return (
            self.forward
            + self.backward
            + self.gpu_copy
            + self.gradient_sum
            + self.communicate
            + self.update
        )

    @property
    def communication_fraction(self) -> float:
        return self.communicate / self.total


#: Table II verbatim (seconds per 100 iterations, 4 workers + aggregator).
TABLE2: Dict[str, Table2Row] = {
    "AlexNet": Table2Row(3.13, 16.22, 5.68, 8.94, 148.71, 13.67),
    "HDC": Table2Row(0.08, 0.07, 0.0, 0.09, 1.36, 0.09),
    "ResNet-50": Table2Row(2.63, 4.87, 2.24, 3.68, 60.58, 1.55),
    "VGG-16": Table2Row(32.25, 142.34, 12.09, 19.89, 583.58, 30.50),
}


def compute_profile_for(model_name: str) -> ComputeProfile:
    """Per-iteration compute profile calibrated from Table II.

    ``gradient_sum`` in Table II is the aggregator summing
    ``TABLE2_NUM_WORKERS - 1`` incoming vectors of the model size, which
    fixes the memory-bound summation bandwidth; forward/backward/copy/
    update divide by the iteration count directly.

    ResNet-152 has no Table II column (it appears only in Fig 3); its
    profile is synthesized from ResNet-50's by scaling compute with
    depth (x3) and copy/update with model size (x2.35).
    """
    from repro.dnn.models import PAPER_MODELS

    if model_name == "ResNet-152":
        base = compute_profile_for("ResNet-50")
        size_scale = (
            PAPER_MODELS["ResNet-152"].size_mb / PAPER_MODELS["ResNet-50"].size_mb
        )
        return ComputeProfile(
            forward_s=base.forward_s * 3.0,
            backward_s=base.backward_s * 3.0,
            gpu_copy_s=base.gpu_copy_s * size_scale,
            update_s=base.update_s * size_scale,
            sum_bandwidth_bps=base.sum_bandwidth_bps,
        )

    row = TABLE2[model_name]
    spec = PAPER_MODELS[model_name]
    summed_bytes = (TABLE2_NUM_WORKERS - 1) * spec.nbytes * TABLE2_ITERATIONS
    sum_bandwidth = summed_bytes / row.gradient_sum if row.gradient_sum else 0.0
    return ComputeProfile(
        forward_s=row.forward / TABLE2_ITERATIONS,
        backward_s=row.backward / TABLE2_ITERATIONS,
        gpu_copy_s=row.gpu_copy / TABLE2_ITERATIONS,
        update_s=row.update / TABLE2_ITERATIONS,
        sum_bandwidth_bps=sum_bandwidth,
    )


#: Fig 13's convergence data: epochs to reach the same final accuracy
#: under the lossless baseline (WA) and the compressed system (INC+C),
#: plus that accuracy.  Used by the Fig 13 bench to weight per-epoch
#: times; the "one or two extra epochs" effect is the paper's finding,
#: and our small-model runs in the accuracy benches confirm the shape.
FIG13_EPOCHS: Dict[str, "tuple[int, int, float]"] = {
    "AlexNet": (64, 65, 0.572),
    "HDC": (17, 18, 0.985),
    "ResNet-50": (90, 92, 0.753),
    "VGG-16": (74, 75, 0.715),
}

#: Iterations per epoch implied by the paper's total-iteration counts
#: and epoch counts (approximate; used to convert per-iteration times
#: into the per-epoch scale Fig 12/13 quote).
def iterations_per_epoch(model_name: str) -> float:
    from repro.dnn.models import PAPER_MODELS

    spec = PAPER_MODELS[model_name]
    epochs_lossless = FIG13_EPOCHS[model_name][0]
    return spec.hyper.training_iterations / epochs_lossless
