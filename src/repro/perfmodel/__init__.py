"""Performance models: α/β/γ analytics, Table II calibration, estimators."""

from .analytical import (
    CostParameters,
    exchange_speedup,
    ring_exchange_time,
    wa_exchange_time,
)
from .breakdown import Breakdown, paper_breakdown, simulated_breakdown
from .calibration import (
    FIG13_EPOCHS,
    TABLE2,
    TABLE2_ITERATIONS,
    TABLE2_NUM_WORKERS,
    Table2Row,
    compute_profile_for,
    iterations_per_epoch,
)
from .estimator import (
    CONFIGURATIONS,
    SpeedupEstimate,
    SystemEstimate,
    equal_accuracy_speedup,
    estimate_iteration_time,
    fig12_estimates,
)
from .exchange import (
    ExchangeResult,
    measure_compression_ratio,
    measure_profile_ratio,
    simulate_ring_exchange,
    simulate_wa_exchange,
)
from .flowsim import (
    FlowFabric,
    simulate_ring_exchange_flow,
    simulate_wa_exchange_flow,
)

__all__ = [
    "CostParameters",
    "exchange_speedup",
    "ring_exchange_time",
    "wa_exchange_time",
    "Breakdown",
    "paper_breakdown",
    "simulated_breakdown",
    "FIG13_EPOCHS",
    "TABLE2",
    "TABLE2_ITERATIONS",
    "TABLE2_NUM_WORKERS",
    "Table2Row",
    "compute_profile_for",
    "iterations_per_epoch",
    "CONFIGURATIONS",
    "SpeedupEstimate",
    "SystemEstimate",
    "equal_accuracy_speedup",
    "estimate_iteration_time",
    "fig12_estimates",
    "ExchangeResult",
    "measure_compression_ratio",
    "measure_profile_ratio",
    "simulate_ring_exchange",
    "simulate_wa_exchange",
    "FlowFabric",
    "simulate_ring_exchange_flow",
    "simulate_wa_exchange_flow",
]
