"""Paper-scale gradient-exchange simulation (timing only).

Drives the event-driven network with *sized* messages — no
multi-hundred-megabyte arrays are materialized — while compression
ratios come from the real codec run on sampled gradient vectors with
the model's empirical value distribution.  This is the machinery behind
Table II, Fig 12 and Fig 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import (
    ErrorBound,
    StreamProfile,
    compression_ratio,
    inceptionn_profile,
)
from repro.core.bounds import DEFAULT_BOUND
from repro.distributed.node import (
    ComputeProfile,
    ZERO_COMPUTE,
    record_compute_phases,
)
from repro.distributed.ring import ring_exchange_sizes
from repro.dnn.models import ModelSpec
from repro.obs import CAT_PHASE, Tracer
from repro.transport.endpoint import ClusterComm, ClusterConfig

#: Sample size for measuring a model's compression ratio; large enough
#: for the ratio to be stable to three digits.
RATIO_SAMPLE_VALUES = 1 << 18

#: Smaller sample for arbitrary registry codecs, some of which run
#: bit-serial Python loops (sz_like, snappy_like).
PROFILE_RATIO_SAMPLE_VALUES = 1 << 14


def measure_compression_ratio(
    spec: ModelSpec, bound: ErrorBound = DEFAULT_BOUND, seed: int = 0
) -> float:
    """Compression ratio of the model's (synthetic) gradients."""
    rng = np.random.default_rng(seed)
    sample = spec.synthetic_gradients(rng, size=RATIO_SAMPLE_VALUES)
    return compression_ratio(sample, bound)


def measure_profile_ratio(
    stream: StreamProfile,
    sample: Optional[np.ndarray] = None,
    seed: int = 0,
) -> float:
    """Compression ratio of a stream profile's codec on sampled gradients.

    Sized (timing-only) sends cannot run the codec on real payloads, so
    paper-scale simulations measure the ratio once on a gradient-like
    sample and apply it to every message — the same methodology the
    INCEPTIONN path uses via :func:`measure_compression_ratio`.
    """
    if not stream.compressing:
        return 1.0
    if sample is None:
        rng = np.random.default_rng(seed)
        sample = (
            rng.standard_normal(PROFILE_RATIO_SAMPLE_VALUES) * 0.004
        ).astype(np.float32)
    result = stream.compress(sample)
    # Sized sends reject ratios below 1 (the wire never inflates), so
    # clamp expansion (e.g. lossless LZ on incompressible floats).
    return max(1.0, sample.nbytes / max(1, result.payload_nbytes))


@dataclass
class ExchangeResult:
    """Timing of a simulated multi-iteration exchange."""

    algorithm: str
    num_workers: int
    nbytes: int
    iterations: int
    total_s: float
    gradient_sum_s: float
    update_s: float

    @property
    def per_iteration_s(self) -> float:
        return self.total_s / self.iterations

    @property
    def communicate_s(self) -> float:
        """Total time minus the attributed non-communication phases."""
        return max(0.0, self.total_s - self.gradient_sum_s - self.update_s)


def _make_comm(
    num_nodes: int,
    bandwidth_bps: float,
    bound: ErrorBound,
    train_packets: int,
    stream: Optional[StreamProfile] = None,
    tracer: Optional[Tracer] = None,
) -> ClusterComm:
    return ClusterComm(
        ClusterConfig(
            num_nodes=num_nodes,
            bandwidth_bps=bandwidth_bps,
            bound=bound,
            train_packets=train_packets,
            profile=stream,
        ),
        tracer=tracer,
    )


def simulate_wa_exchange(
    num_workers: int,
    nbytes: int,
    iterations: int = 1,
    bandwidth_bps: float = 10e9,
    profile: ComputeProfile = ZERO_COMPUTE,
    compress_gradients: bool = False,
    stream: Optional[StreamProfile] = None,
    gradient_ratio: Optional[float] = None,
    bound: ErrorBound = DEFAULT_BOUND,
    include_local_compute: bool = False,
    train_packets: int = 4400,
    tracer: Optional[Tracer] = None,
) -> ExchangeResult:
    """Worker-aggregator iterations: gather g up, sum, update, scatter w.

    Only the gradient leg may compress (``stream``, or the convenience
    ``compress_gradients`` flag which resolves to the INCEPTIONN
    profile at ``bound``); the weight leg is always raw.  With a
    ``stream`` and no ``gradient_ratio``, the codec's ratio is measured
    on a sampled gradient.  ``include_local_compute`` prepends each
    iteration's forward/backward/copy time (for full-iteration studies
    like Table II); exchange-only studies (Fig 15) leave it off.
    """
    if num_workers < 2:
        raise ValueError("need at least two workers")
    aggregator = num_workers
    explicit_stream = stream
    if stream is None and compress_gradients:
        stream = inceptionn_profile(bound)
    comm = _make_comm(
        num_workers + 1,
        bandwidth_bps,
        bound,
        train_packets,
        stream,
        tracer,
    )
    if explicit_stream is not None and gradient_ratio is None:
        gradient_ratio = measure_profile_ratio(explicit_stream)
    sums = {"sum_s": 0.0, "update_s": 0.0}

    def worker(i: int):
        ep = comm.endpoints[i]
        for _ in range(iterations):
            if include_local_compute and profile.local_compute_s:
                compute_start = comm.sim.now
                yield comm.sim.timeout(profile.local_compute_s)
                if tracer is not None and i == 0:
                    record_compute_phases(tracer, profile, compute_start, i)
            ep.isend_sized(
                aggregator,
                nbytes,
                profile=stream,
                compression_ratio=gradient_ratio,
            )
            yield ep.recv(aggregator)

    def agg():
        ep = comm.endpoints[aggregator]
        for _ in range(iterations):
            for count, src in enumerate(range(num_workers)):
                yield ep.recv(src)
                if count > 0:
                    dt = profile.sum_time(nbytes)
                    sums["sum_s"] += dt
                    if dt:
                        sum_start = comm.sim.now
                        yield comm.sim.timeout(dt)
                        if tracer is not None:
                            tracer.span(
                                "gradient_sum",
                                cat=CAT_PHASE,
                                ts=sum_start,
                                dur=dt,
                                node=aggregator,
                            )
            if profile.update_s:
                sums["update_s"] += profile.update_s
                update_start = comm.sim.now
                yield comm.sim.timeout(profile.update_s)
                if tracer is not None:
                    tracer.span(
                        "update",
                        cat=CAT_PHASE,
                        ts=update_start,
                        dur=profile.update_s,
                        node=aggregator,
                    )
            events = [
                ep.isend_sized(dst, nbytes) for dst in range(num_workers)
            ]
            yield comm.sim.all_of(events)

    for i in range(num_workers):
        comm.sim.process(worker(i))
    comm.sim.process(agg())
    total = comm.run()
    return ExchangeResult(
        algorithm="wa",
        num_workers=num_workers,
        nbytes=nbytes,
        iterations=iterations,
        total_s=total,
        gradient_sum_s=sums["sum_s"],
        update_s=sums["update_s"],
    )


def simulate_ring_exchange(
    num_workers: int,
    nbytes: int,
    iterations: int = 1,
    bandwidth_bps: float = 10e9,
    profile: ComputeProfile = ZERO_COMPUTE,
    compress_gradients: bool = False,
    stream: Optional[StreamProfile] = None,
    gradient_ratio: Optional[float] = None,
    bound: ErrorBound = DEFAULT_BOUND,
    include_local_compute: bool = False,
    train_packets: int = 4400,
    tracer: Optional[Tracer] = None,
) -> ExchangeResult:
    """Ring iterations at paper scale (every hop on the gradient stream).

    ``stream`` selects the codec profile (any registered codec); with no
    ``gradient_ratio`` its ratio is measured on a sampled gradient.
    """
    if num_workers < 2:
        raise ValueError("need at least two workers")
    explicit_stream = stream
    if stream is None and compress_gradients:
        stream = inceptionn_profile(bound)
    comm = _make_comm(
        num_workers,
        bandwidth_bps,
        bound,
        train_packets,
        stream,
        tracer,
    )
    if explicit_stream is not None and gradient_ratio is None:
        gradient_ratio = measure_profile_ratio(explicit_stream)
    block_bytes = [s * 4 for s in ring_exchange_sizes(num_workers, nbytes // 4)]
    sums = {"sum_s": 0.0, "update_s": 0.0}

    def worker(i: int):
        ep = comm.endpoints[i]
        n = num_workers
        successor, predecessor = (i + 1) % n, (i - 1) % n
        for _ in range(iterations):
            if include_local_compute and profile.local_compute_s:
                compute_start = comm.sim.now
                yield comm.sim.timeout(profile.local_compute_s)
                if tracer is not None and i == 0:
                    record_compute_phases(tracer, profile, compute_start, i)
            for step in range(1, 2 * n - 1):
                send_idx = (i - step + 1) % n
                recv_idx = (i - step) % n
                ep.isend_sized(
                    successor,
                    block_bytes[send_idx],
                    profile=stream,
                    compression_ratio=gradient_ratio,
                )
                yield ep.recv(predecessor)
                if step < n:
                    dt = profile.sum_time(block_bytes[recv_idx])
                    if i == 0:
                        sums["sum_s"] += dt
                    if dt:
                        sum_start = comm.sim.now
                        yield comm.sim.timeout(dt)
                        if tracer is not None and i == 0:
                            tracer.span(
                                "gradient_sum",
                                cat=CAT_PHASE,
                                ts=sum_start,
                                dur=dt,
                                node=i,
                            )
            if profile.update_s:
                if i == 0:
                    sums["update_s"] += profile.update_s
                update_start = comm.sim.now
                yield comm.sim.timeout(profile.update_s)
                if tracer is not None and i == 0:
                    tracer.span(
                        "update",
                        cat=CAT_PHASE,
                        ts=update_start,
                        dur=profile.update_s,
                        node=i,
                    )

    for i in range(num_workers):
        comm.sim.process(worker(i))
    total = comm.run()
    return ExchangeResult(
        algorithm="ring",
        num_workers=num_workers,
        nbytes=nbytes,
        iterations=iterations,
        total_s=total,
        gradient_sum_s=sums["sum_s"],
        update_s=sums["update_s"],
    )
