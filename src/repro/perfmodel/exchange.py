"""Paper-scale gradient-exchange simulation (timing only).

Drives the event-driven network with *size-only* WireMessages — no
multi-hundred-megabyte arrays are materialized — while compression
ratios come from the real codec run on sampled gradient vectors with
the model's empirical value distribution.  This is the machinery behind
Table II, Fig 12 and Fig 15.

Wire sizes come from the same :func:`repro.transport.wire.build_wire_message`
builder the functional ``Endpoint.isend`` path uses, so the timing and
functional domains cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import (
    ErrorBound,
    StreamProfile,
    compression_ratio,
    inceptionn_profile,
)
from repro.core.bounds import DEFAULT_BOUND
from repro.distributed.node import (
    ComputeProfile,
    ZERO_COMPUTE,
    record_compute_phases,
)
from repro.distributed.ring import ring_exchange_sizes
from repro.dnn.models import ModelSpec
from repro.network import Event, RetransmitPolicy, TenantSpec
from repro.obs import CAT_PHASE, Tracer
from repro.transport.aggregation import (
    AGG_ENDPOINT,
    AGG_SWITCH,
    SwitchGather,
    validate_agg_site,
)
from repro.transport.endpoint import ClusterComm, ClusterConfig
from repro.transport.wire import measure_stream_ratio

#: Sample size for measuring a model's compression ratio; large enough
#: for the ratio to be stable to three digits.
RATIO_SAMPLE_VALUES = 1 << 18


def measure_compression_ratio(
    spec: ModelSpec, bound: ErrorBound = DEFAULT_BOUND, seed: int = 0
) -> float:
    """Compression ratio of the model's (synthetic) gradients."""
    rng = np.random.default_rng(seed)
    sample = spec.synthetic_gradients(rng, size=RATIO_SAMPLE_VALUES)
    return compression_ratio(sample, bound)


def measure_profile_ratio(
    stream: StreamProfile,
    sample: Optional[np.ndarray] = None,
    seed: int = 0,
) -> float:
    """Compression ratio of a stream profile's codec on sampled gradients.

    Thin alias of :func:`repro.transport.wire.measure_stream_ratio`,
    kept here because perfmodel callers historically import it from this
    module.
    """
    return measure_stream_ratio(stream, sample=sample, seed=seed)


@dataclass
class ExchangeResult:
    """Timing of a simulated multi-iteration exchange."""

    algorithm: str
    num_workers: int
    nbytes: int
    iterations: int
    total_s: float
    gradient_sum_s: float
    update_s: float
    #: Application bytes sent and their on-wire payload (from the
    #: cluster's transfer log — the WireMessage pipeline's accounting).
    sent_nbytes: int = 0
    wire_payload_nbytes: int = 0
    #: Trains resent due to simulated loss (0 on a lossless fabric).
    trains_retransmitted: int = 0
    #: Background-tenant messages and payload bytes that shared the
    #: fabric during the exchange (0 = dedicated network).
    background_messages: int = 0
    background_nbytes: int = 0
    #: Wire payload weighted by hop count — the link-level load the
    #: fabric carried (the aggregation-site study's comparison figure).
    link_payload_nbytes: int = 0
    #: In-network aggregation accounting (0 under the endpoint site).
    agg_engine_cycles: int = 0
    switch_reductions: int = 0

    @property
    def per_iteration_s(self) -> float:
        return self.total_s / self.iterations

    @property
    def communicate_s(self) -> float:
        """Total time minus the attributed non-communication phases."""
        return max(0.0, self.total_s - self.gradient_sum_s - self.update_s)

    @property
    def wire_ratio(self) -> float:
        """Achieved wire-level compression across the whole exchange."""
        if self.wire_payload_nbytes == 0:
            return 1.0 if self.sent_nbytes == 0 else float("inf")
        return self.sent_nbytes / self.wire_payload_nbytes


def _check_flow_supported(
    tracer: Optional[Tracer],
    loss_rate: float,
    retransmit: Optional[RetransmitPolicy],
    topology: Optional[str] = None,
    tenants: Sequence[TenantSpec] = (),
    prioritize: bool = False,
    agg_site: str = AGG_ENDPOINT,
) -> None:
    """Flow fidelity models dedicated, lossless, untraced stars only."""
    if (
        tracer is not None
        or loss_rate != 0.0
        or retransmit is not None
        or (topology is not None and topology != "star")
        or tenants
        or prioritize
        or agg_site != AGG_ENDPOINT
    ):
        raise ValueError(
            "fidelity='flow' does not model tracing, loss, retransmission, "
            "multi-tier topologies, background tenants or in-network "
            "aggregation; use fidelity='packet' for those studies"
        )


def _make_comm(
    num_nodes: int,
    bandwidth_bps: float,
    bound: ErrorBound,
    train_packets: int,
    stream: Optional[StreamProfile] = None,
    tracer: Optional[Tracer] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    retransmit: Optional[RetransmitPolicy] = None,
    topology: Optional[str] = None,
    tenants: Sequence[TenantSpec] = (),
    prioritize: bool = False,
    tenant_seed: int = 0,
    agg_site: str = AGG_ENDPOINT,
) -> ClusterComm:
    return ClusterComm(
        ClusterConfig(
            num_nodes=num_nodes,
            bandwidth_bps=bandwidth_bps,
            bound=bound,
            train_packets=train_packets,
            profile=stream,
            loss_rate=loss_rate,
            loss_seed=loss_seed,
            retransmit=retransmit,
            topology=topology,
            tenants=tuple(tenants),
            prioritize=prioritize,
            tenant_seed=tenant_seed,
            agg_site=agg_site,
        ),
        tracer=tracer,
    )


def _run_with_background(comm: ClusterComm, procs: List[Event]) -> float:
    """Run the cluster to completion, timing the foreground processes.

    On a dedicated network the makespan *is* the exchange time.  With
    background tenants the fabric never goes idle, so the measured
    quantity is when the last foreground process finishes; tenant flows
    are stopped at that point and the queue drains (their in-flight
    trains complete but no longer matter for timing).
    """
    background = comm.start_background()
    if background is None:
        return comm.run()
    finish: Dict[str, float] = {}

    def _foreground_done(_: Event) -> None:
        finish["t"] = comm.sim.now
        background.stop()

    comm.sim.all_of(procs).add_callback(_foreground_done)
    comm.run()
    return finish["t"]


def simulate_wa_exchange(
    num_workers: int,
    nbytes: int,
    iterations: int = 1,
    bandwidth_bps: float = 10e9,
    profile: ComputeProfile = ZERO_COMPUTE,
    compress_gradients: bool = False,
    stream: Optional[StreamProfile] = None,
    gradient_ratio: Optional[float] = None,
    bound: ErrorBound = DEFAULT_BOUND,
    include_local_compute: bool = False,
    train_packets: int = 4400,
    tracer: Optional[Tracer] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    retransmit: Optional[RetransmitPolicy] = None,
    fidelity: str = "packet",
    topology: Optional[str] = None,
    tenants: Sequence[TenantSpec] = (),
    prioritize: bool = False,
    tenant_seed: int = 0,
    agg_site: str = AGG_ENDPOINT,
) -> ExchangeResult:
    """Worker-aggregator iterations: gather g up, sum, update, scatter w.

    Only the gradient leg may compress (``stream``, or the convenience
    ``compress_gradients`` flag which resolves to the INCEPTIONN
    profile at ``bound``); the weight leg is always raw.  With a
    compressing stream and no ``gradient_ratio``, the codec's ratio is
    measured on a sampled gradient — including when the stream came
    from ``compress_gradients=True`` (historically that path silently
    simulated uncompressed traffic).  ``include_local_compute``
    prepends each iteration's forward/backward/copy time (for
    full-iteration studies like Table II); exchange-only studies
    (Fig 15) leave it off.  ``fidelity="flow"`` switches to the
    vectorized flow-level model (:mod:`repro.perfmodel.flowsim`) for
    large sweeps; it rejects tracing/loss/retransmission.

    ``topology`` selects the fabric (default: the historical switched
    star); ``tenants`` adds background traffic competing for it, and
    ``prioritize`` enables strict per-ToS priority queueing protecting
    the exchange.  With tenants present the reported ``total_s`` is the
    foreground completion time (the fabric itself never idles).

    ``agg_site="switch"`` moves the gradient sum in-network: sized
    payloads ride the fabric's reduction tree and every merge vertex
    folds its fan-in through an aggregation engine (needs a multi-tier
    ``topology``, a homomorphic ``stream``, and packet fidelity).
    """
    validate_agg_site(agg_site)
    if num_workers < 2:
        raise ValueError("need at least two workers")
    aggregator = num_workers
    if stream is None and compress_gradients:
        stream = inceptionn_profile(bound)
    if stream is not None and gradient_ratio is None:
        gradient_ratio = measure_profile_ratio(stream)
    if fidelity == "flow":
        _check_flow_supported(
            tracer,
            loss_rate,
            retransmit,
            topology,
            tenants,
            prioritize,
            agg_site,
        )
        from .flowsim import simulate_wa_exchange_flow

        return simulate_wa_exchange_flow(
            num_workers,
            nbytes,
            iterations=iterations,
            bandwidth_bps=bandwidth_bps,
            profile=profile,
            stream=stream,
            gradient_ratio=gradient_ratio,
            bound=bound,
            include_local_compute=include_local_compute,
            train_packets=train_packets,
        )
    if fidelity != "packet":
        raise ValueError(
            f"fidelity must be 'packet' or 'flow', got {fidelity!r}"
        )
    comm = _make_comm(
        num_workers + 1,
        bandwidth_bps,
        bound,
        train_packets,
        stream,
        tracer,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        retransmit=retransmit,
        topology=topology,
        tenants=tenants,
        prioritize=prioritize,
        tenant_seed=tenant_seed,
        agg_site=agg_site,
    )
    gather: Optional[SwitchGather] = None
    if agg_site == AGG_SWITCH:
        gather = SwitchGather(
            comm,
            root=aggregator,
            sources=range(num_workers),
            stream=stream,
        )
    sums = {"sum_s": 0.0, "update_s": 0.0}

    def worker(i: int):
        ep = comm.endpoints[i]
        for _ in range(iterations):
            if include_local_compute and profile.local_compute_s:
                compute_start = comm.sim.now
                yield comm.sim.timeout(profile.local_compute_s)
                if tracer is not None and i == 0:
                    record_compute_phases(tracer, profile, compute_start, i)
            if gather is not None:
                gather.offer(i, nbytes=nbytes, ratio=gradient_ratio)
            else:
                ep.isend_message(
                    ep.build_message(
                        aggregator,
                        nbytes=nbytes,
                        profile=stream,
                        ratio=gradient_ratio,
                    )
                )
            yield ep.recv(aggregator)

    def agg():
        ep = comm.endpoints[aggregator]
        for _ in range(iterations):
            if gather is not None:
                # The sum rides the reduction tree; its engine time is
                # inside collect()'s critical path.
                yield from gather.collect()
            else:
                for count, src in enumerate(range(num_workers)):
                    yield ep.recv(src)
                    if count > 0:
                        dt = profile.sum_time(nbytes)
                        sums["sum_s"] += dt
                        if dt:
                            sum_start = comm.sim.now
                            yield comm.sim.timeout(dt)
                            if tracer is not None:
                                tracer.span(
                                    "gradient_sum",
                                    cat=CAT_PHASE,
                                    ts=sum_start,
                                    dur=dt,
                                    node=aggregator,
                                )
            if profile.update_s:
                sums["update_s"] += profile.update_s
                update_start = comm.sim.now
                yield comm.sim.timeout(profile.update_s)
                if tracer is not None:
                    tracer.span(
                        "update",
                        cat=CAT_PHASE,
                        ts=update_start,
                        dur=profile.update_s,
                        node=aggregator,
                    )
            events = [
                ep.isend_message(ep.build_message(dst, nbytes=nbytes))
                for dst in range(num_workers)
            ]
            yield comm.sim.all_of(events)

    procs: List[Event] = [comm.sim.process(worker(i)) for i in range(num_workers)]
    procs.append(comm.sim.process(agg()))
    total = _run_with_background(comm, procs)
    background = comm.start_background()
    summary = comm.transfer_summary()
    return ExchangeResult(
        algorithm="wa",
        num_workers=num_workers,
        nbytes=nbytes,
        iterations=iterations,
        total_s=total,
        gradient_sum_s=sums["sum_s"],
        update_s=sums["update_s"],
        sent_nbytes=summary.nbytes,
        wire_payload_nbytes=summary.wire_payload_nbytes,
        trains_retransmitted=comm.network.trains_retransmitted,
        background_messages=background.total_messages if background else 0,
        background_nbytes=background.total_bytes if background else 0,
        link_payload_nbytes=summary.link_payload_nbytes,
        agg_engine_cycles=gather.engine_cycles() if gather else 0,
        switch_reductions=gather.switch_reductions if gather else 0,
    )


def simulate_ring_exchange(
    num_workers: int,
    nbytes: int,
    iterations: int = 1,
    bandwidth_bps: float = 10e9,
    profile: ComputeProfile = ZERO_COMPUTE,
    compress_gradients: bool = False,
    stream: Optional[StreamProfile] = None,
    gradient_ratio: Optional[float] = None,
    bound: ErrorBound = DEFAULT_BOUND,
    include_local_compute: bool = False,
    train_packets: int = 4400,
    tracer: Optional[Tracer] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    retransmit: Optional[RetransmitPolicy] = None,
    fidelity: str = "packet",
    topology: Optional[str] = None,
    tenants: Sequence[TenantSpec] = (),
    prioritize: bool = False,
    tenant_seed: int = 0,
    agg_site: str = AGG_ENDPOINT,
) -> ExchangeResult:
    """Ring iterations at paper scale (every hop on the gradient stream).

    ``stream`` selects the codec profile (any registered codec); with no
    ``gradient_ratio`` its ratio is measured on a sampled gradient —
    including the stream ``compress_gradients=True`` resolves to.
    ``fidelity="flow"`` switches to the vectorized flow-level model
    (:mod:`repro.perfmodel.flowsim`), which on the ring's
    contention-free star fabric reproduces packet timing to
    floating-point noise while reaching 1024-4096 workers in seconds.

    ``topology``, ``tenants``, ``prioritize`` and ``tenant_seed`` model
    a shared multi-tier fabric exactly as in
    :func:`simulate_wa_exchange`; with tenants present ``total_s`` is
    the foreground completion time.
    """
    validate_agg_site(agg_site)
    if agg_site != AGG_ENDPOINT:
        raise ValueError(
            "the ring has no single reduction root; agg_site='switch' "
            "only applies to the worker-aggregator exchange"
        )
    if num_workers < 2:
        raise ValueError("need at least two workers")
    if stream is None and compress_gradients:
        stream = inceptionn_profile(bound)
    if stream is not None and gradient_ratio is None:
        gradient_ratio = measure_profile_ratio(stream)
    if fidelity == "flow":
        _check_flow_supported(
            tracer, loss_rate, retransmit, topology, tenants, prioritize
        )
        from .flowsim import simulate_ring_exchange_flow

        return simulate_ring_exchange_flow(
            num_workers,
            nbytes,
            iterations=iterations,
            bandwidth_bps=bandwidth_bps,
            profile=profile,
            stream=stream,
            gradient_ratio=gradient_ratio,
            bound=bound,
            include_local_compute=include_local_compute,
            train_packets=train_packets,
        )
    if fidelity != "packet":
        raise ValueError(
            f"fidelity must be 'packet' or 'flow', got {fidelity!r}"
        )
    comm = _make_comm(
        num_workers,
        bandwidth_bps,
        bound,
        train_packets,
        stream,
        tracer,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        retransmit=retransmit,
        topology=topology,
        tenants=tenants,
        prioritize=prioritize,
        tenant_seed=tenant_seed,
    )
    block_bytes = [s * 4 for s in ring_exchange_sizes(num_workers, nbytes // 4)]
    sums = {"sum_s": 0.0, "update_s": 0.0}

    def worker(i: int):
        ep = comm.endpoints[i]
        n = num_workers
        successor, predecessor = (i + 1) % n, (i - 1) % n
        for _ in range(iterations):
            if include_local_compute and profile.local_compute_s:
                compute_start = comm.sim.now
                yield comm.sim.timeout(profile.local_compute_s)
                if tracer is not None and i == 0:
                    record_compute_phases(tracer, profile, compute_start, i)
            for step in range(1, 2 * n - 1):
                send_idx = (i - step + 1) % n
                recv_idx = (i - step) % n
                ep.isend_message(
                    ep.build_message(
                        successor,
                        nbytes=block_bytes[send_idx],
                        profile=stream,
                        ratio=gradient_ratio,
                    )
                )
                yield ep.recv(predecessor)
                if step < n:
                    dt = profile.sum_time(block_bytes[recv_idx])
                    if i == 0:
                        sums["sum_s"] += dt
                    if dt:
                        sum_start = comm.sim.now
                        yield comm.sim.timeout(dt)
                        if tracer is not None and i == 0:
                            tracer.span(
                                "gradient_sum",
                                cat=CAT_PHASE,
                                ts=sum_start,
                                dur=dt,
                                node=i,
                            )
            if profile.update_s:
                if i == 0:
                    sums["update_s"] += profile.update_s
                update_start = comm.sim.now
                yield comm.sim.timeout(profile.update_s)
                if tracer is not None and i == 0:
                    tracer.span(
                        "update",
                        cat=CAT_PHASE,
                        ts=update_start,
                        dur=profile.update_s,
                        node=i,
                    )

    procs: List[Event] = [comm.sim.process(worker(i)) for i in range(num_workers)]
    total = _run_with_background(comm, procs)
    background = comm.start_background()
    summary = comm.transfer_summary()
    return ExchangeResult(
        algorithm="ring",
        num_workers=num_workers,
        nbytes=nbytes,
        iterations=iterations,
        total_s=total,
        gradient_sum_s=sums["sum_s"],
        update_s=sums["update_s"],
        sent_nbytes=summary.nbytes,
        wire_payload_nbytes=summary.wire_payload_nbytes,
        trains_retransmitted=comm.network.trains_retransmitted,
        background_messages=background.total_messages if background else 0,
        background_nbytes=background.total_bytes if background else 0,
        link_payload_nbytes=summary.link_payload_nbytes,
    )
