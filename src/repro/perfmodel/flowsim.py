"""Flow-level fast path for the exchange simulators (Sec. VIII-D model).

The packet-granular pipeline is O(packets) in events and cannot reach
Fig-15-style sweeps at 1024-4096 nodes.  This module replays the *same*
per-train timing recurrence the event kernel executes — cut-through
stage chaining, FIFO reservation per resource, keyed same-instant
arbitration order — as a vectorized dynamic program over numpy arrays,
one entry per concurrent flow, generalizing the paper's per-hop
``alpha + nbytes / beta`` cost model to every wire traversal (engine,
uplink, downlink, engine).

Exactness: on the switched-star fabric the ring exchange has zero
cross-flow contention (each uplink and downlink serves exactly one
flow), so the flow DP reproduces the packet pipeline to floating-point
noise.  The WA exchange shares the aggregator's links; single-train
messages arrive in arbitration-key order and stay exact, while
multi-train gathers interleave trains round-robin in the packet model
and whole-message FIFO here — the one approximation, bounded by the
parity suite's pinned tolerance (``tests/perfmodel/test_flow_parity.py``).

Loss, retransmission and tracing remain packet-mode features; the
``fidelity="flow"`` wrappers in :mod:`repro.perfmodel.exchange` reject
them up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core import ErrorBound, StreamProfile
from repro.core.bounds import DEFAULT_BOUND
from repro.distributed.node import ComputeProfile, ZERO_COMPUTE
from repro.distributed.ring import ring_exchange_sizes
from repro.hardware.nic import InceptionnNic
from repro.hardware.timing import engine_latency_s, engine_throughput_bps
from repro.network.packet import HEADER_BYTES
from repro.transport.endpoint import ClusterConfig

if TYPE_CHECKING:
    from .exchange import ExchangeResult


@dataclass(frozen=True)
class FlowFabric:
    """Per-traversal cost parameters mirroring one :class:`ClusterConfig`.

    Each wire traversal is an ``(alpha, beta)`` pair — a latency plus a
    serialization rate — applied per stage of a flow's path, exactly the
    quantities the packet pipeline's :class:`repro.network.link.Link`
    uses.
    """

    bandwidth_bps: float
    link_latency_s: float
    switch_delay_s: float
    engine_bandwidth_bps: float
    engine_latency_s: float
    mss: int
    train_packets: int

    @classmethod
    def from_config(cls, config: ClusterConfig) -> "FlowFabric":
        """Derive the flow costs from the packet mode's own config."""
        return cls(
            bandwidth_bps=config.bandwidth_bps,
            link_latency_s=config.link_latency_s,
            switch_delay_s=config.switch_delay_s,
            engine_bandwidth_bps=engine_throughput_bps(
                config.engine_blocks, config.engine_clock_hz
            )
            * 8,
            engine_latency_s=engine_latency_s(config.engine_clock_hz),
            mss=config.mss,
            train_packets=config.train_packets,
        )

    @property
    def head_cap(self) -> int:
        """Largest head-packet size (header plus one MSS payload)."""
        return HEADER_BYTES + self.mss


def stream_compresses(
    stream: Optional[StreamProfile], bound: ErrorBound = DEFAULT_BOUND
) -> bool:
    """Whether gradient messages traverse the NIC engines.

    Mirrors the packet path: the sender NIC's comparator dispatches the
    stream's ToS (``build_wire_message``), and engines are present on
    the timing NICs exactly when a profile is configured.
    """
    if stream is None:
        return False
    nic = InceptionnNic(0, bound, enabled=True)
    return stream.compressing and nic.dispatches(stream.resolved_tos)


def wire_payload_nbytes(
    nbytes: np.ndarray, ratio: Optional[float], compressed: bool
) -> np.ndarray:
    """On-wire payload per message, as ``build_wire_message`` computes it."""
    if not compressed:
        return nbytes.astype(np.int64)
    divisor = 1.0 if ratio is None else ratio
    return np.rint(nbytes / divisor).astype(np.int64)


def split_trains(
    nbytes: np.ndarray, wire_payload: np.ndarray, fabric: FlowFabric
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Vectorized mirror of ``Network._split_trains`` over a batch.

    Returns one ``(packets, wire_bytes, raw_bytes)`` triple per train
    index (int64 arrays over the batch, byte counts including
    per-packet headers).  Batch entries whose message has fewer trains
    get zero-packet padding entries.
    """
    raw = nbytes.astype(np.int64)
    wire = wire_payload.astype(np.int64)
    num_packets = np.maximum(1, -(-raw // fabric.mss))
    remaining = num_packets.copy()
    wire_left, raw_left = wire.copy(), raw.copy()
    trains: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    while int(remaining.max()) > 0:
        pkts = np.minimum(fabric.train_packets, remaining)
        frac = pkts / num_packets
        wire_t = np.minimum(wire_left, np.rint(wire * frac).astype(np.int64))
        raw_t = np.minimum(raw_left, np.rint(raw * frac).astype(np.int64))
        last = remaining - pkts == 0
        wire_t = np.where(last, wire_left, wire_t)
        raw_t = np.where(last, raw_left, raw_t)
        remaining = remaining - pkts
        wire_left = wire_left - wire_t
        raw_left = raw_left - raw_t
        trains.append(
            (pkts, pkts * HEADER_BYTES + wire_t, pkts * HEADER_BYTES + raw_t)
        )
    return trains


def _traverse(
    enter: np.ndarray,
    free: np.ndarray,
    nbytes: np.ndarray,
    head: np.ndarray,
    bandwidth_bps: float,
    latency_s: float,
    active: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One batch of trains over one batch of *distinct* FIFO resources.

    The packet kernel's ``Link._reserve`` + ``transmit_cut_through``
    arithmetic, element-wise: returns ``(head_arrival, delivered,
    new_free)``.  ``active`` masks padding trains out of the
    reservation.
    """
    start = np.maximum(enter, free)
    finish = start + nbytes * 8.0 / bandwidth_bps
    head_arrival = start + head * 8.0 / bandwidth_bps + latency_s
    delivered = finish + latency_s
    return head_arrival, delivered, np.where(active, finish, free)


def _serve_fifo(
    arrivals: np.ndarray, serialization: np.ndarray, free_at: float
) -> Tuple[np.ndarray, float]:
    """FIFO starts on one shared resource, in the given order.

    ``start[k] = max(arrival[k], finish[k-1])`` solved in closed form:
    with exclusive prefix sums ``c`` of the serialization times,
    ``start[k] - c[k]`` is the running maximum of ``arrival - c``
    (floored by the resource's prior ``free_at``).
    """
    prefix = np.zeros_like(serialization)
    np.cumsum(serialization[:-1], out=prefix[1:])
    starts = prefix + np.maximum(
        np.maximum.accumulate(arrivals - prefix), free_at
    )
    new_free = float(starts[-1] + serialization[-1]) if starts.size else free_at
    return starts, new_free


def _transfer_distinct(
    t_send: np.ndarray,
    trains: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    fabric: FlowFabric,
    compressed: bool,
    free_tx: np.ndarray,
    free_up: np.ndarray,
    free_down: np.ndarray,
    free_rx: np.ndarray,
) -> np.ndarray:
    """Deliver a batch of messages whose stage resources are all distinct.

    The ``free_*`` arrays are this batch's resource slices (already
    gathered per message); they are updated in place.  Returns each
    message's delivery time (last train fully received).
    """
    delivered_msg = np.full(t_send.shape, -np.inf)
    for pkts, wire_b, raw_b, in trains:
        active = pkts > 0
        head_w = np.minimum(wire_b, fabric.head_cap)
        head_r = np.minimum(raw_b, fabric.head_cap)
        cursor = t_send
        if compressed:
            head_arr, _, free_tx[:] = _traverse(
                cursor,
                free_tx,
                raw_b,
                head_r,
                fabric.engine_bandwidth_bps,
                fabric.engine_latency_s,
                active,
            )
            cursor = head_arr
        head_arr, delivered, free_up[:] = _traverse(
            cursor,
            free_up,
            wire_b,
            head_w,
            fabric.bandwidth_bps,
            fabric.link_latency_s,
            active,
        )
        cursor = head_arr + fabric.switch_delay_s
        head_arr, delivered, free_down[:] = _traverse(
            cursor,
            free_down,
            wire_b,
            head_w,
            fabric.bandwidth_bps,
            fabric.link_latency_s,
            active,
        )
        if compressed:
            _, delivered, free_rx[:] = _traverse(
                head_arr,
                free_rx,
                raw_b,
                head_r,
                fabric.engine_bandwidth_bps,
                fabric.engine_latency_s,
                active,
            )
        delivered_msg = np.maximum(
            delivered_msg, np.where(active, delivered, -np.inf)
        )
    return delivered_msg


def simulate_ring_exchange_flow(
    num_workers: int,
    nbytes: int,
    iterations: int = 1,
    bandwidth_bps: float = 10e9,
    profile: ComputeProfile = ZERO_COMPUTE,
    stream: Optional[StreamProfile] = None,
    gradient_ratio: Optional[float] = None,
    bound: ErrorBound = DEFAULT_BOUND,
    include_local_compute: bool = False,
    train_packets: int = 4400,
) -> "ExchangeResult":
    """Flow-level replica of :func:`repro.perfmodel.exchange.simulate_ring_exchange`.

    ``stream`` and ``gradient_ratio`` arrive already resolved (the
    packet-mode wrapper owns the ``compress_gradients`` convenience flag
    and the ratio measurement).
    """
    from .exchange import ExchangeResult

    if num_workers < 2:
        raise ValueError("need at least two workers")
    n = num_workers
    config = ClusterConfig(
        num_nodes=n,
        bandwidth_bps=bandwidth_bps,
        bound=bound,
        train_packets=train_packets,
        profile=stream,
    )
    fabric = FlowFabric.from_config(config)
    compressed = stream_compresses(stream, bound)

    block = np.array(
        [s * 4 for s in ring_exchange_sizes(n, nbytes // 4)], dtype=np.int64
    )
    wire_block = wire_payload_nbytes(block, gradient_ratio, compressed)
    workers = np.arange(n)
    succ = (workers + 1) % n
    pred = (workers - 1) % n

    free_up = np.zeros(n)
    free_down = np.zeros(n)
    free_tx = np.zeros(n)
    free_rx = np.zeros(n)
    t_ready = np.zeros(n)
    sum_s = 0.0
    update_s = 0.0
    sum_bw = profile.sum_bandwidth_bps

    for _ in range(iterations):
        if include_local_compute and profile.local_compute_s:
            t_ready = t_ready + profile.local_compute_s
        for step in range(1, 2 * n - 1):
            send_idx = (workers - step + 1) % n
            sizes = block[send_idx]
            trains = split_trains(sizes, wire_block[send_idx], fabric)
            down_slice = free_down[succ]
            rx_slice = free_rx[succ]
            delivered = _transfer_distinct(
                t_ready,
                trains,
                fabric,
                compressed,
                free_tx,
                free_up,
                down_slice,
                rx_slice,
            )
            free_down[succ] = down_slice
            free_rx[succ] = rx_slice
            t_ready = delivered[pred]
            if step < n:
                recv_sizes = block[(workers - step) % n]
                if sum_bw > 0:
                    dt = recv_sizes / sum_bw
                    t_ready = t_ready + dt
                    sum_s += float(dt[0])
        if profile.update_s:
            update_s += profile.update_s
            t_ready = t_ready + profile.update_s

    steps_per_iter = 2 * n - 2
    sent = int(block.sum()) * steps_per_iter * iterations
    wire_sent = int(wire_block.sum()) * steps_per_iter * iterations
    return ExchangeResult(
        algorithm="ring",
        num_workers=n,
        nbytes=nbytes,
        iterations=iterations,
        total_s=float(t_ready.max()),
        gradient_sum_s=sum_s,
        update_s=update_s,
        sent_nbytes=sent,
        wire_payload_nbytes=wire_sent,
        trains_retransmitted=0,
    )


def simulate_wa_exchange_flow(
    num_workers: int,
    nbytes: int,
    iterations: int = 1,
    bandwidth_bps: float = 10e9,
    profile: ComputeProfile = ZERO_COMPUTE,
    stream: Optional[StreamProfile] = None,
    gradient_ratio: Optional[float] = None,
    bound: ErrorBound = DEFAULT_BOUND,
    include_local_compute: bool = False,
    train_packets: int = 4400,
) -> "ExchangeResult":
    """Flow-level replica of :func:`repro.perfmodel.exchange.simulate_wa_exchange`.

    Gather and scatter legs share the aggregator's downlink/uplink; the
    shared-resource FIFO is served in arbitration-key order, matching
    the packet kernel exactly for single-train messages and
    whole-message FIFO for multi-train gathers.
    """
    from .exchange import ExchangeResult

    if num_workers < 2:
        raise ValueError("need at least two workers")
    p = num_workers
    config = ClusterConfig(
        num_nodes=p + 1,
        bandwidth_bps=bandwidth_bps,
        bound=bound,
        train_packets=train_packets,
        profile=stream,
    )
    fabric = FlowFabric.from_config(config)
    compressed = stream_compresses(stream, bound)

    sizes = np.full(p, nbytes, dtype=np.int64)
    wire_g = wire_payload_nbytes(sizes, gradient_ratio, compressed)
    gather_trains = split_trains(sizes, wire_g, fabric)
    scatter_trains = split_trains(sizes, sizes, fabric)

    free_up = np.zeros(p + 1)
    free_down = np.zeros(p + 1)
    free_tx = np.zeros(p + 1)
    free_rx = np.zeros(p + 1)
    t_workers = np.zeros(p)
    agg_free = 0.0
    sum_s = 0.0
    update_s = 0.0
    dt_sum = profile.sum_time(nbytes)

    for _ in range(iterations):
        if include_local_compute and profile.local_compute_s:
            t_workers = t_workers + profile.local_compute_s

        # -- gather: workers -> aggregator (engines when compressed) ----
        # Distinct stages (tx engine, own uplink) run vectorized; the
        # shared aggregator downlink and rx engine serve whole messages
        # in worker order (the arbitration key order).
        num_trains = len(gather_trains)
        arr_down = np.empty((p, num_trains))
        ser_down = np.empty((p, num_trains))
        head_down = np.empty((p, num_trains))
        raw_ser = np.empty((p, num_trains))
        raw_head = np.empty((p, num_trains))
        for t, (pkts, wire_b, raw_b) in enumerate(gather_trains):
            active = pkts > 0
            head_w = np.minimum(wire_b, fabric.head_cap)
            head_r = np.minimum(raw_b, fabric.head_cap)
            cursor = t_workers
            if compressed:
                head_arr, _, free_tx[:p] = _traverse(
                    cursor,
                    free_tx[:p],
                    raw_b,
                    head_r,
                    fabric.engine_bandwidth_bps,
                    fabric.engine_latency_s,
                    active,
                )
                cursor = head_arr
            head_arr, _, free_up[:p] = _traverse(
                cursor,
                free_up[:p],
                wire_b,
                head_w,
                fabric.bandwidth_bps,
                fabric.link_latency_s,
                active,
            )
            arr_down[:, t] = head_arr + fabric.switch_delay_s
            ser_down[:, t] = wire_b * 8.0 / fabric.bandwidth_bps
            head_down[:, t] = head_w * 8.0 / fabric.bandwidth_bps
            raw_ser[:, t] = raw_b * 8.0 / fabric.engine_bandwidth_bps
            raw_head[:, t] = head_r * 8.0 / fabric.engine_bandwidth_bps
        starts, new_free = _serve_fifo(
            arr_down.ravel(), ser_down.ravel(), float(free_down[p])
        )
        free_down[p] = new_free
        down_head = starts + head_down.ravel() + fabric.link_latency_s
        down_done = starts + ser_down.ravel() + fabric.link_latency_s
        if compressed:
            starts, new_free = _serve_fifo(
                down_head, raw_ser.ravel(), float(free_rx[p])
            )
            free_rx[p] = new_free
            gathered = starts + raw_ser.ravel() + fabric.engine_latency_s
        else:
            gathered = down_done
        delivered_g = gathered.reshape(p, num_trains)[:, -1]

        # -- aggregator: ordered recv, sum, update ----------------------
        t_agg = max(agg_free, float(delivered_g[0]))
        for i in range(1, p):
            t_agg = max(t_agg, float(delivered_g[i])) + dt_sum
            sum_s += dt_sum
        if profile.update_s:
            update_s += profile.update_s
            t_agg += profile.update_s

        # -- scatter: aggregator -> workers (always raw) ----------------
        # All sends spawn at the same instant; the shared uplink grants
        # whole messages in destination order (the key order), exactly.
        num_trains = len(scatter_trains)
        ser_up = np.empty((p, num_trains))
        head_up = np.empty((p, num_trains))
        for t, (pkts, wire_b, _raw_b) in enumerate(scatter_trains):
            ser_up[:, t] = wire_b * 8.0 / fabric.bandwidth_bps
            head_up[:, t] = (
                np.minimum(wire_b, fabric.head_cap) * 8.0 / fabric.bandwidth_bps
            )
        starts, new_free = _serve_fifo(
            np.full(p * num_trains, t_agg), ser_up.ravel(), float(free_up[p])
        )
        free_up[p] = new_free
        enter_down = (
            (starts + head_up.ravel() + fabric.link_latency_s)
            + fabric.switch_delay_s
        ).reshape(p, num_trains)
        delivered_s = np.full(p, -np.inf)
        for t, (pkts, wire_b, _raw_b) in enumerate(scatter_trains):
            active = pkts > 0
            head_w = np.minimum(wire_b, fabric.head_cap)
            _, delivered, free_down[:p] = _traverse(
                enter_down[:, t],
                free_down[:p],
                wire_b,
                head_w,
                fabric.bandwidth_bps,
                fabric.link_latency_s,
                active,
            )
            delivered_s = np.maximum(
                delivered_s, np.where(active, delivered, -np.inf)
            )
        t_workers = delivered_s
        agg_free = float(delivered_s.max())

    sent = 2 * p * nbytes * iterations
    wire_sent = (int(wire_g.sum()) + p * nbytes) * iterations
    return ExchangeResult(
        algorithm="wa",
        num_workers=p,
        nbytes=nbytes,
        iterations=iterations,
        total_s=agg_free,
        gradient_sum_s=sum_s,
        update_s=update_s,
        sent_nbytes=sent,
        wire_payload_nbytes=wire_sent,
        trains_retransmitted=0,
    )


__all__ = [
    "FlowFabric",
    "simulate_ring_exchange_flow",
    "simulate_wa_exchange_flow",
    "split_trains",
    "stream_compresses",
    "wire_payload_nbytes",
]
