"""End-to-end training-time estimation (Fig 12 / Fig 13).

Per-iteration times come from the exchange simulator plus the calibrated
compute profiles; multiplying by iteration/epoch counts yields the
training-time comparisons of Fig 12 and the equal-accuracy speedups of
Fig 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import ErrorBound
from repro.core.bounds import DEFAULT_BOUND
from repro.dnn.models import PAPER_MODELS

from .calibration import FIG13_EPOCHS, compute_profile_for, iterations_per_epoch
from .exchange import (
    measure_compression_ratio,
    simulate_ring_exchange,
    simulate_wa_exchange,
)

#: The four system configurations of Fig 12.
CONFIGURATIONS = ("WA", "WA+C", "INC", "INC+C")


@dataclass(frozen=True)
class SystemEstimate:
    """Per-iteration and per-training-run times of one configuration."""

    model: str
    configuration: str
    iteration_s: float
    computation_s: float

    @property
    def communication_s(self) -> float:
        return max(0.0, self.iteration_s - self.computation_s)


def estimate_iteration_time(
    model_name: str,
    configuration: str,
    num_workers: int = 4,
    bandwidth_bps: float = 10e9,
    bound: ErrorBound = DEFAULT_BOUND,
    sim_iterations: int = 3,
) -> SystemEstimate:
    """Simulate a few iterations of one Fig 12 configuration."""
    if configuration not in CONFIGURATIONS:
        raise ValueError(
            f"unknown configuration {configuration!r}; options {CONFIGURATIONS}"
        )
    spec = PAPER_MODELS[model_name]
    profile = compute_profile_for(model_name)
    compressed = configuration.endswith("+C")
    ratio = (
        measure_compression_ratio(spec, bound) if compressed else None
    )
    simulate = (
        simulate_wa_exchange
        if configuration.startswith("WA")
        else simulate_ring_exchange
    )
    result = simulate(
        num_workers=num_workers,
        nbytes=spec.nbytes,
        iterations=sim_iterations,
        bandwidth_bps=bandwidth_bps,
        profile=profile,
        compress_gradients=compressed,
        gradient_ratio=ratio,
        bound=bound,
        include_local_compute=True,
    )
    computation = (
        profile.local_compute_s
        + result.gradient_sum_s / sim_iterations
        + profile.update_s
    )
    return SystemEstimate(
        model=model_name,
        configuration=configuration,
        iteration_s=result.per_iteration_s,
        computation_s=computation,
    )


def fig12_estimates(
    model_name: str,
    num_workers: int = 4,
    bandwidth_bps: float = 10e9,
    bound: ErrorBound = DEFAULT_BOUND,
) -> Dict[str, SystemEstimate]:
    """All four configurations for one model (one Fig 12 group)."""
    return {
        conf: estimate_iteration_time(
            model_name, conf, num_workers, bandwidth_bps, bound
        )
        for conf in CONFIGURATIONS
    }


@dataclass(frozen=True)
class SpeedupEstimate:
    """Fig 13: equal-accuracy speedup of INC+C over WA."""

    model: str
    wa_epochs: int
    inc_epochs: int
    final_accuracy: float
    wa_training_s: float
    inc_training_s: float

    @property
    def speedup(self) -> float:
        return self.wa_training_s / self.inc_training_s


def equal_accuracy_speedup(
    model_name: str,
    num_workers: int = 4,
    bandwidth_bps: float = 10e9,
    bound: ErrorBound = DEFAULT_BOUND,
    epochs: Optional["tuple[int, int]"] = None,
) -> SpeedupEstimate:
    """Fig 13's speedup: per-epoch times x epochs-to-equal-accuracy.

    Epoch counts default to the paper's measured convergence (the
    lossy system needs one or two extra epochs); pass ``epochs`` to use
    counts measured on your own runs.
    """
    wa_epochs, inc_epochs, accuracy = FIG13_EPOCHS[model_name]
    if epochs is not None:
        wa_epochs, inc_epochs = epochs
    iters_per_epoch = iterations_per_epoch(model_name)
    wa = estimate_iteration_time(
        model_name, "WA", num_workers, bandwidth_bps, bound
    )
    inc = estimate_iteration_time(
        model_name, "INC+C", num_workers, bandwidth_bps, bound
    )
    return SpeedupEstimate(
        model=model_name,
        wa_epochs=wa_epochs,
        inc_epochs=inc_epochs,
        final_accuracy=accuracy,
        wa_training_s=wa.iteration_s * iters_per_epoch * wa_epochs,
        inc_training_s=inc.iteration_s * iters_per_epoch * inc_epochs,
    )
