"""Closed-form gradient-exchange time models (paper Sec. VIII-D).

The paper adopts the collective-communication cost models of Thakur et
al. [24]:

* worker-aggregator:  ``(1 + log p)·α + (p + log p)·n·β + (p − 1)·n·γ``
* INCEPTIONN ring:    ``2(p − 1)·α + 2((p − 1)/p)·n·β + ((p − 1)/p)·n·γ``

with ``p`` workers, ``n`` bytes of gradient, ``α`` link latency,
``β`` per-byte transfer time and ``γ`` per-byte reduction time.  The WA
expression is linear in ``p`` (the aggregator serializes everything);
the ring's ``p`` cancels — the scalability claim of Fig 15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostParameters:
    """The α/β/γ of the analytical model."""

    alpha_s: float
    beta_s_per_byte: float
    gamma_s_per_byte: float

    @classmethod
    def from_rates(
        cls,
        link_latency_s: float,
        bandwidth_bps: float,
        sum_bandwidth_bps: float,
    ) -> "CostParameters":
        """Derive β and γ from link and memory rates."""
        if bandwidth_bps <= 0 or sum_bandwidth_bps <= 0:
            raise ValueError("rates must be positive")
        return cls(
            alpha_s=link_latency_s,
            beta_s_per_byte=8.0 / bandwidth_bps,
            gamma_s_per_byte=1.0 / sum_bandwidth_bps,
        )


def _check(num_workers: int, nbytes: float) -> None:
    if num_workers < 2:
        raise ValueError("the models are defined for at least two workers")
    if nbytes < 0:
        raise ValueError("nbytes cannot be negative")


def wa_exchange_time(
    num_workers: int, nbytes: float, params: CostParameters
) -> float:
    """Worker-aggregator gradient-exchange time (gather + sum + scatter)."""
    _check(num_workers, nbytes)
    p = num_workers
    log_p = math.log2(p)
    return (
        (1 + log_p) * params.alpha_s
        + (p + log_p) * nbytes * params.beta_s_per_byte
        + (p - 1) * nbytes * params.gamma_s_per_byte
    )


def ring_exchange_time(
    num_workers: int, nbytes: float, params: CostParameters
) -> float:
    """INCEPTIONN ring gradient-exchange time (reduce-scatter + all-gather)."""
    _check(num_workers, nbytes)
    p = num_workers
    frac = (p - 1) / p
    return (
        2 * (p - 1) * params.alpha_s
        + 2 * frac * nbytes * params.beta_s_per_byte
        + frac * nbytes * params.gamma_s_per_byte
    )


def exchange_speedup(
    num_workers: int, nbytes: float, params: CostParameters
) -> float:
    """WA time over ring time — how much the algorithm alone buys."""
    return wa_exchange_time(num_workers, nbytes, params) / ring_exchange_time(
        num_workers, nbytes, params
    )
