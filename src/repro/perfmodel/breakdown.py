"""Table II reproduction: full-iteration time breakdown per model.

Combines the Table II-calibrated compute profiles with the simulated
worker-aggregator exchange to regenerate the paper's breakdown — the
compute rows are calibrated (they come from the authors' GPUs), the
Communicate row is *simulated* and validated against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.distributed.strategy import phases_with_residual
from repro.dnn.models import PAPER_MODELS
from repro.obs import Tracer

from .calibration import TABLE2, TABLE2_ITERATIONS, compute_profile_for
from .exchange import simulate_wa_exchange


@dataclass(frozen=True)
class Breakdown:
    """Seconds per phase over ``iterations`` iterations."""

    model: str
    iterations: int
    forward: float
    backward: float
    gpu_copy: float
    gradient_sum: float
    communicate: float
    update: float

    @property
    def total(self) -> float:
        return (
            self.forward
            + self.backward
            + self.gpu_copy
            + self.gradient_sum
            + self.communicate
            + self.update
        )

    def normalized(self) -> Dict[str, float]:
        # Explicit zero check instead of a falsy ``or`` default (the
        # zero-ratio bug's cousin): an empty breakdown is all-zero
        # fractions, not divided by a fabricated 1.0 total.
        total = self.total
        if total == 0.0:
            total = 1.0
        return {
            "forward": self.forward / total,
            "backward": self.backward / total,
            "gpu_copy": self.gpu_copy / total,
            "gradient_sum": self.gradient_sum / total,
            "communicate": self.communicate / total,
            "update": self.update / total,
        }


def simulated_breakdown(
    model_name: str,
    num_workers: int = 4,
    iterations: int = TABLE2_ITERATIONS,
    bandwidth_bps: float = 10e9,
    tracer: Optional[Tracer] = None,
) -> Breakdown:
    """Regenerate one Table II column on the simulated cluster.

    The breakdown is read back from the recorded ``phase`` spans (one
    span per phase occurrence, emitted at the simulation sites), not
    from a parallel set of accumulators — the trace is the single
    source of the attribution.  Pass a ``tracer`` to also capture the
    run's message/link/codec events; otherwise a private one is used.
    """
    spec = PAPER_MODELS[model_name]
    profile = compute_profile_for(model_name)
    if tracer is None:
        tracer = Tracer()
    result = simulate_wa_exchange(
        num_workers=num_workers,
        nbytes=spec.nbytes,
        iterations=iterations,
        bandwidth_bps=bandwidth_bps,
        profile=profile,
        include_local_compute=True,
        tracer=tracer,
    )
    # Exchange simulation interleaves compute/sum/update with transfers;
    # the attributed phases come from the recorded spans and the
    # residual is Communicate — the same fold the strategy driver uses,
    # shared so the two accountings can never drift.
    phases = phases_with_residual(tracer.phase_totals(), result.total_s)
    return Breakdown(
        model=model_name,
        iterations=iterations,
        forward=phases["forward"],
        backward=phases["backward"],
        gpu_copy=phases["gpu_copy"],
        gradient_sum=phases["gradient_sum"],
        communicate=phases["communicate"],
        update=phases["update"],
    )


def paper_breakdown(model_name: str) -> Breakdown:
    """Table II verbatim, as a Breakdown for side-by-side reporting."""
    row = TABLE2[model_name]
    return Breakdown(
        model=model_name,
        iterations=TABLE2_ITERATIONS,
        forward=row.forward,
        backward=row.backward,
        gpu_copy=row.gpu_copy,
        gradient_sum=row.gradient_sum,
        communicate=row.communicate,
        update=row.update,
    )
