"""Programmatic experiment reports (JSON-friendly).

The benches print human tables; downstream tooling often wants the same
numbers as data.  ``full_report`` runs the key paper experiments at a
configurable scale and returns one nested dict, which the CLI-adjacent
script ``tools/regenerate_report.py`` serializes to JSON.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Sequence

import numpy as np

from repro.core import ErrorBound, bitwidth_distribution, compression_ratio
from repro.dnn import PAPER_MODELS
from repro.perfmodel import (
    CONFIGURATIONS,
    equal_accuracy_speedup,
    fig12_estimates,
    simulate_ring_exchange,
    simulate_wa_exchange,
    simulated_breakdown,
)

#: Models used in the timing experiments.
TIMING_MODELS = ("AlexNet", "HDC", "ResNet-50", "VGG-16")


def json_safe(obj: Any) -> Any:
    """Recursively replace non-finite floats with ``None``.

    ``wire_ratio`` (and friends) legitimately evaluate to ``inf`` on
    zero-byte transfers, but ``json.dumps`` would emit the non-standard
    ``Infinity`` token that strict parsers reject.  All report/bench
    JSON is routed through here so non-finite values become ``null``.
    Numpy scalars are converted to native Python numbers on the way.
    """
    if isinstance(obj, dict):
        return {k: json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_safe(v) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        return value if math.isfinite(value) else None
    return obj


def dumps_strict(obj: Any, **kwargs: Any) -> str:
    """``json.dumps`` with ``allow_nan=False`` after :func:`json_safe`."""
    return json.dumps(json_safe(obj), allow_nan=False, **kwargs)


def fig12_report(num_workers: int = 4) -> Dict:
    """Normalized training time per configuration per model."""
    out: Dict = {}
    for model in TIMING_MODELS:
        est = fig12_estimates(model, num_workers=num_workers)
        base = est["WA"].iteration_s
        out[model] = {
            conf: est[conf].iteration_s / base for conf in CONFIGURATIONS
        }
    return out


def fig13_report() -> Dict:
    """Equal-accuracy speedups."""
    return {
        model: {
            "speedup": equal_accuracy_speedup(model).speedup,
            "wa_epochs": equal_accuracy_speedup(model).wa_epochs,
            "inc_epochs": equal_accuracy_speedup(model).inc_epochs,
        }
        for model in TIMING_MODELS
    }


def fig15_report(node_counts: Sequence[int] = (4, 6, 8)) -> Dict:
    """Gradient-exchange scaling, normalized to 4-node WA.

    Alongside the normalized times, each configuration reports the
    achieved wire-level compression of the largest run — straight from
    the WireMessage pipeline's transfer accounting.
    """
    out: Dict = {}
    for model in TIMING_MODELS:
        nbytes = PAPER_MODELS[model].nbytes
        wa = {p: simulate_wa_exchange(p, nbytes) for p in node_counts}
        inc = {p: simulate_ring_exchange(p, nbytes) for p in node_counts}
        base = wa[node_counts[0]].total_s
        largest = node_counts[-1]
        out[model] = {
            "WA": {p: r.total_s / base for p, r in wa.items()},
            "INC": {p: r.total_s / base for p, r in inc.items()},
            "wire": {
                "WA": {
                    "sent_nbytes": wa[largest].sent_nbytes,
                    "wire_payload_nbytes": wa[largest].wire_payload_nbytes,
                    "wire_ratio": wa[largest].wire_ratio,
                },
                "INC": {
                    "sent_nbytes": inc[largest].sent_nbytes,
                    "wire_payload_nbytes": inc[largest].wire_payload_nbytes,
                    "wire_ratio": inc[largest].wire_ratio,
                },
            },
        }
    return out


def table2_report(iterations: int = 5) -> Dict:
    """Simulated Table II breakdown fractions."""
    out: Dict = {}
    for model in TIMING_MODELS:
        bd = simulated_breakdown(model, iterations=iterations)
        out[model] = bd.normalized()
    return out


def table3_report(sample: int = 1 << 17, seed: int = 42) -> Dict:
    """Bitwidth distributions of shell-model gradients."""
    rng = np.random.default_rng(seed)
    out: Dict = {}
    for model in TIMING_MODELS:
        grads = PAPER_MODELS[model].synthetic_gradients(rng, size=sample)
        out[model] = {
            f"2^-{b}": {
                "classes": {
                    k: float(v)
                    for k, v in bitwidth_distribution(
                        grads, ErrorBound(b)
                    ).as_row.items()
                },
                "ratio": compression_ratio(grads, ErrorBound(b)),
            }
            for b in (10, 8, 6)
        }
    return out


def full_report(num_workers: int = 4, table2_iterations: int = 5) -> Dict:
    """Every timing/statistics experiment as one nested dict."""
    return {
        "fig12_normalized_time": fig12_report(num_workers),
        "fig13_speedup": fig13_report(),
        "fig15_scaling": fig15_report(),
        "table2_fractions": table2_report(table2_iterations),
        "table3_bitwidths": table3_report(),
    }
