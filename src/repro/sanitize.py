"""Runtime determinism sanitizer: replay check + event-order race detector.

The reproduction's results are pinned sha256-exact, which only holds if
every run is a pure function of its seeds.  Two failure classes break
that silently:

* *replay nondeterminism* — wall-clock reads, unseeded RNG draws, or
  hash-ordered iteration leaking into the simulation.  Detected by
  running the scenario twice with identical seeds and comparing both
  the semantic outcome and the full trace fingerprint.
* *event-order races* — outcomes that depend on which of two
  equal-timestamp events the kernel happens to run first.  Today's FIFO
  tie-breaking makes such runs reproducible, but the result is then an
  accident of insertion order and will shift under any scheduling
  change (fault injection, flow-level fast paths, topology rework).
  Detected by re-running under :class:`~repro.network.SeededTieBreak`,
  which perturbs exactly the equal-timestamp ordering and nothing else,
  and comparing semantic outcomes.

On divergence the report carries a postmortem built from the PR 3
tracer: :func:`repro.obs.diff_traces` locates the first event where the
two runs part ways.

``repro sanitize`` (see :mod:`repro.cli`) drives this over the strategy
scenarios; tests inject synthetic racy scenarios through the same
:class:`Scenario` interface.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.network import SeededTieBreak, TieBreak
from repro.obs import TraceDiff, Tracer, diff_traces, trace_fingerprint

#: Perturbation seeds tried by default: each reshuffles equal-timestamp
#: ties differently, so a race that survives one shuffle by luck is
#: caught by the next.
DEFAULT_PERTURB_SEEDS = (1, 2, 3)


@dataclass(frozen=True)
class ScenarioOutcome:
    """What one execution of a scenario produced.

    ``fingerprint`` hashes the *semantic* result (final weights, loss
    trajectory, simulated duration) — the quantity that must be
    invariant under equal-timestamp reordering.  ``events`` is the full
    trace, used for replay fingerprinting and divergence postmortems.
    """

    fingerprint: str
    details: Dict[str, object]
    events: List[object]
    virtual_time_s: float

    @property
    def trace_fingerprint(self) -> str:
        return trace_fingerprint(self.events)


def outcome_fingerprint(*parts: object) -> str:
    """sha256 over the repr of each semantic result component.

    NumPy arrays hash their raw bytes (dtype/shape included) so two
    outcomes match only when bit-exactly equal.
    """
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            digest.update(str(part.dtype).encode())
            digest.update(str(part.shape).encode())
            digest.update(part.tobytes())
        else:
            digest.update(repr(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


class Scenario:
    """One sanitizable workload: run it under a given tie-break policy.

    Subclasses implement :meth:`execute`; every call must build a fresh
    simulation from the same seeds, so consecutive calls are replays.
    """

    name: str = "scenario"

    def execute(
        self, tie_break: Optional[TieBreak], tracer: Tracer
    ) -> ScenarioOutcome:
        raise NotImplementedError


class StrategyScenario(Scenario):
    """A small simulated-cluster training run under any registered strategy.

    The semantic outcome is the final parameter vector (bit-exact), the
    per-iteration loss trajectory, and the simulated duration — exactly
    the quantities the parity suites pin.
    """

    def __init__(
        self,
        strategy: str = "ring",
        workers: int = 4,
        iterations: int = 2,
        seed: int = 0,
        loss_rate: float = 0.0,
        codec: Optional[str] = None,
        train_size: int = 120,
        test_size: int = 40,
        batch_size: int = 10,
        topology: Optional[str] = None,
        agg_site: str = "endpoint",
        options: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.strategy = strategy
        self.workers = workers
        self.iterations = iterations
        self.seed = seed
        self.loss_rate = loss_rate
        self.codec = codec
        self.train_size = train_size
        self.test_size = test_size
        self.batch_size = batch_size
        self.topology = topology
        self.agg_site = agg_site
        self.options = dict(options or {})
        tag = f"{strategy}+loss" if loss_rate else strategy
        if topology is not None:
            tag = f"{tag}@{topology}"
        if agg_site != "endpoint":
            tag = f"{tag}%{agg_site}"
        self.name = f"{tag} x{workers}"

    def execute(
        self, tie_break: Optional[TieBreak], tracer: Tracer
    ) -> ScenarioOutcome:
        from repro.core import profile_for
        from repro.distributed import get_strategy, run_strategy
        from repro.dnn import LRSchedule, SGD, build_hdc, hdc_dataset
        from repro.network import RetransmitPolicy
        from repro.transport import ClusterConfig

        strategy = get_strategy(self.strategy)
        stream = profile_for(self.codec) if self.codec else None
        num_nodes = self.workers + strategy.extra_nodes(
            self.workers, self.options
        )
        result = run_strategy(
            strategy,
            build_net=lambda s: build_hdc(seed=s),
            make_optimizer=lambda: SGD(LRSchedule(0.02), momentum=0.9),
            dataset=hdc_dataset(
                train_size=self.train_size,
                test_size=self.test_size,
                seed=self.seed,
            ),
            num_workers=self.workers,
            iterations=self.iterations,
            batch_size=self.batch_size,
            cluster=ClusterConfig(
                num_nodes=num_nodes,
                profile=stream,
                loss_rate=self.loss_rate,
                retransmit=RetransmitPolicy() if self.loss_rate else None,
                tie_break=tie_break,
                topology=self.topology,
                agg_site=self.agg_site,
            ),
            stream=stream,
            tracer=tracer,
            seed=self.seed,
            options=self.options,
        )
        losses = [round(loss, 12) for loss in result.losses]
        details: Dict[str, object] = {
            "weights_sha256": outcome_fingerprint(result.final_weights),
            "losses": losses,
            "virtual_time_s": result.virtual_time_s,
            "final_top1": result.final_top1,
        }
        # The fingerprint pins the *functional* outcome: final weights
        # bit-exact plus the per-iteration mean losses (rounded — the
        # accumulation order over simultaneous workers is
        # schedule-dependent at the last-ulp level).  Simulated duration
        # stays out: reordering simultaneous trains on a shared link
        # legally changes FCFS interleaving and hence the makespan;
        # sanitize() reports such shifts informationally instead.
        return ScenarioOutcome(
            fingerprint=outcome_fingerprint(result.final_weights, losses),
            details=details,
            events=list(tracer.events),
            virtual_time_s=result.virtual_time_s,
        )


@dataclass
class SanitizeReport:
    """Everything one sanitizer pass learned about a scenario."""

    scenario: str
    #: Identical-seed rerun matched the baseline bit-for-bit.
    replay_clean: bool
    #: Some perturbed tie-break changed the semantic outcome.
    race_detected: bool
    #: Tie-break seed that exposed the race (None when clean).
    racy_seed: Optional[int] = None
    #: First-divergence postmortems (replay: baseline vs rerun;
    #: race: baseline vs the racy perturbed run).
    replay_diff: Optional[TraceDiff] = None
    race_diff: Optional[TraceDiff] = None
    baseline: Optional[Dict[str, object]] = None
    divergent: Optional[Dict[str, object]] = None
    perturb_seeds: Sequence[int] = field(default_factory=tuple)
    events_traced: int = 0
    #: Perturbed runs whose functional outcome matched but whose
    #: simulated duration shifted — legal FCFS re-interleaving, reported
    #: so schedule-sensitive makespans stay visible.
    timing_shifts: List[Dict[str, float]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.replay_clean and not self.race_detected

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "passed": self.passed,
            "replay_clean": self.replay_clean,
            "race_detected": self.race_detected,
            "racy_seed": self.racy_seed,
            "perturb_seeds": list(self.perturb_seeds),
            "events_traced": self.events_traced,
            "baseline": self.baseline,
            "divergent": self.divergent,
            "timing_shifts": list(self.timing_shifts),
            "replay_diff": self.replay_diff.to_dict()
            if self.replay_diff
            else None,
            "race_diff": self.race_diff.to_dict() if self.race_diff else None,
        }

    def render(self) -> str:
        lines = [f"sanitize {self.scenario}:"]
        if self.replay_clean:
            lines.append(
                f"  replay      OK ({self.events_traced} events bit-identical)"
            )
        else:
            lines.append("  replay      NONDETERMINISTIC with identical seeds")
            if self.replay_diff is not None:
                lines.extend(
                    "  " + line for line in self.replay_diff.render().splitlines()
                )
        if self.race_detected:
            lines.append(
                f"  tie-break   RACE under SeededTieBreak({self.racy_seed}): "
                "outcome depends on equal-timestamp event order"
            )
            if self.baseline and self.divergent:
                lines.append(f"    baseline:  {self.baseline}")
                lines.append(f"    perturbed: {self.divergent}")
            if self.race_diff is not None:
                lines.extend(
                    "  " + line for line in self.race_diff.render().splitlines()
                )
        else:
            seeds = ",".join(str(s) for s in self.perturb_seeds)
            lines.append(f"  tie-break   OK (perturbation seeds {seeds})")
        for shift in self.timing_shifts:
            lines.append(
                f"  note        makespan shifted under "
                f"SeededTieBreak({shift['seed']:.0f}): "
                f"{shift['baseline_s']:.6g}s -> {shift['perturbed_s']:.6g}s "
                "(functional outcome unchanged)"
            )
        lines.append(f"  verdict     {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def sanitize(
    scenario: Scenario,
    perturb_seeds: Sequence[int] = DEFAULT_PERTURB_SEEDS,
    context: int = 3,
) -> SanitizeReport:
    """Run the two determinism checks over ``scenario``.

    1. *Replay*: execute twice with identical seeds and FIFO ordering;
       semantic outcome **and** trace fingerprint must match exactly.
    2. *Race*: execute once per perturbation seed with shuffled
       equal-timestamp ordering; the semantic outcome must match the
       baseline (the trace event *order* may legitimately differ — only
       the outcome is pinned).  The first seed that changes the outcome
       stops the scan and yields a first-divergence postmortem.
    """
    baseline = scenario.execute(None, Tracer())
    replay = scenario.execute(None, Tracer())

    replay_clean = (
        baseline.fingerprint == replay.fingerprint
        and baseline.trace_fingerprint == replay.trace_fingerprint
    )
    replay_diff = None
    if not replay_clean:
        replay_diff = diff_traces(
            baseline.events, replay.events, context=context
        )

    race_detected = False
    racy_seed: Optional[int] = None
    race_diff: Optional[TraceDiff] = None
    divergent: Optional[Dict[str, object]] = None
    timing_shifts: List[Dict[str, float]] = []
    for seed in perturb_seeds:
        perturbed = scenario.execute(SeededTieBreak(seed), Tracer())
        if perturbed.fingerprint != baseline.fingerprint:
            race_detected = True
            racy_seed = seed
            divergent = dict(perturbed.details)
            race_diff = diff_traces(
                baseline.events, perturbed.events, context=context
            )
            break
        if perturbed.virtual_time_s != baseline.virtual_time_s:
            timing_shifts.append(
                {
                    "seed": float(seed),
                    "baseline_s": baseline.virtual_time_s,
                    "perturbed_s": perturbed.virtual_time_s,
                }
            )

    return SanitizeReport(
        scenario=scenario.name,
        replay_clean=replay_clean,
        race_detected=race_detected,
        racy_seed=racy_seed,
        replay_diff=replay_diff,
        race_diff=race_diff,
        baseline=dict(baseline.details),
        divergent=divergent,
        perturb_seeds=tuple(perturb_seeds),
        events_traced=len(baseline.events),
        timing_shifts=timing_shifts,
    )
