"""Bridges the bit-exact hardware model to the network simulator's timing.

The network simulator only needs two numbers per NIC: the engine's
uncompressed-side streaming throughput and its pipeline-fill latency.
Both are derived from the engine configuration (block count, clock), so
ablations over engine width automatically propagate into communication
times.
"""

from __future__ import annotations

from repro.network.simulator import NicTimingModel

from .axi import BURST_BITS, WORDS_PER_BURST
from .compression_engine import DEFAULT_CLOCK_HZ, PIPELINE_DEPTH, CompressionEngine
from .nic import InceptionnNic


def engine_throughput_bps(
    num_blocks: int = WORDS_PER_BURST, clock_hz: float = DEFAULT_CLOCK_HZ
) -> float:
    """Bytes/second of uncompressed data an engine can stream."""
    beats_per_burst = -(-WORDS_PER_BURST // num_blocks)
    return (BURST_BITS / 8) * clock_hz / beats_per_burst


def engine_latency_s(clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Pipeline-fill latency through the engine."""
    return PIPELINE_DEPTH / clock_hz


def timing_model_for(nic: InceptionnNic) -> NicTimingModel:
    """The network-simulator view of a functional NIC instance."""
    engine: CompressionEngine = nic.compressor
    return NicTimingModel(
        compression=nic.enabled,
        engine_latency_s=engine_latency_s(engine.clock_hz),
        engine_throughput_bps=engine_throughput_bps(
            engine.num_blocks, engine.clock_hz
        ),
    )
