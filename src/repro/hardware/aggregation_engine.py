"""Switch-side gradient aggregation engine (cycle/throughput model).

The sibling of :class:`~repro.hardware.compression_engine.CompressionEngine`
for the in-network aggregation site: a streaming adder tree beside a
switch egress port (or the aggregating endpoint's NIC) that folds
compressed gradient payloads into a running partial sum held in SRAM.
Operand bursts stream in one 256-bit beat per cycle per lane, so one
reduction costs one beat per input burst (divided across ``lanes``)
plus the adder pipeline drain — the same burst/pipeline accounting
shape as the compression engines, which keeps engine comparisons in
``repro bench`` apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .axi import BURST_BITS
from .compression_engine import DEFAULT_CLOCK_HZ, PIPELINE_DEPTH


@dataclass(frozen=True)
class AggregationStats:
    """Accounting for one reduction pass through the engine."""

    fan_in: int
    bytes_in: int
    bytes_out: int
    cycles: int

    def elapsed_s(self, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
        """Wall-clock time of the pass at the given engine clock."""
        return self.cycles / clock_hz


class AggregationEngine:
    """Folds compressed gradient streams burst-by-burst.

    ``lanes`` scales how many input beats fold per cycle (a wider adder
    tree); the default single lane matches the reference compression
    engine's one-burst-per-cycle streaming rate.
    """

    def __init__(
        self, lanes: int = 1, clock_hz: float = DEFAULT_CLOCK_HZ
    ) -> None:
        if lanes < 1:
            raise ValueError("aggregation engine needs at least one lane")
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        self.lanes = lanes
        self.clock_hz = clock_hz
        self.total_cycles = 0
        self.total_reductions = 0
        self.total_bytes_in = 0
        self.total_bytes_out = 0

    @staticmethod
    def _bursts(nbytes: int) -> int:
        return -(-(nbytes * 8) // BURST_BITS)

    def reduce(
        self, payload_nbytes: Sequence[int], output_nbytes: int
    ) -> AggregationStats:
        """Account one reduction of the given input payloads.

        Returns the pass stats and accumulates the engine totals; the
        caller turns ``cycles`` into simulated time via
        :meth:`AggregationStats.elapsed_s`.
        """
        if not payload_nbytes:
            raise ValueError("a reduction needs at least one input")
        if any(n < 0 for n in payload_nbytes) or output_nbytes < 0:
            raise ValueError("payload sizes cannot be negative")
        bursts_in = sum(self._bursts(n) for n in payload_nbytes)
        cycles = -(-bursts_in // self.lanes) + PIPELINE_DEPTH
        stats = AggregationStats(
            fan_in=len(payload_nbytes),
            bytes_in=sum(payload_nbytes),
            bytes_out=output_nbytes,
            cycles=cycles,
        )
        self.total_cycles += stats.cycles
        self.total_reductions += 1
        self.total_bytes_in += stats.bytes_in
        self.total_bytes_out += stats.bytes_out
        return stats

    def elapsed_s(self) -> float:
        """Total engine-busy time across all reductions so far."""
        return self.total_cycles / self.clock_hz

    def throughput_bps(self) -> float:
        """Achieved input throughput (bits/s) across all reductions."""
        if self.total_cycles == 0:
            return 0.0
        return self.total_bytes_in * 8 * self.clock_hz / self.total_cycles
