"""Cycle-approximate, bit-exact model of the INCEPTIONN NIC hardware.

Substitutes for the paper's Xilinx VC709 implementation: the same burst
structure (8 compression/decompression blocks over a 256-bit AXI
stream), ToS-based packet classification, and a 100 MHz clock driving
the timing figures the network simulator consumes.
"""

from .aggregation_engine import AggregationEngine, AggregationStats
from .axi import BURST_BITS, BURST_BYTES, WORDS_PER_BURST, BurstError, burst_count
from .blocks import CompressionBlock, DecompressionBlock
from .compression_engine import (
    DEFAULT_CLOCK_HZ,
    PIPELINE_DEPTH,
    AlignmentUnit,
    CompressionEngine,
    EngineStats,
)
from .decompression_engine import (
    BurstBuffer,
    DecompressionEngine,
    DecompressionError,
    TagDecoder,
)
from .nic import (
    InceptionnNic,
    NicCounters,
    PacketEngine,
    snappy_engine,
    sz_engine,
)
from .timing import engine_latency_s, engine_throughput_bps, timing_model_for

__all__ = [
    "AggregationEngine",
    "AggregationStats",
    "BURST_BITS",
    "BURST_BYTES",
    "WORDS_PER_BURST",
    "BurstError",
    "burst_count",
    "CompressionBlock",
    "DecompressionBlock",
    "DEFAULT_CLOCK_HZ",
    "PIPELINE_DEPTH",
    "AlignmentUnit",
    "CompressionEngine",
    "EngineStats",
    "BurstBuffer",
    "DecompressionEngine",
    "DecompressionError",
    "TagDecoder",
    "InceptionnNic",
    "NicCounters",
    "PacketEngine",
    "snappy_engine",
    "sz_engine",
    "engine_latency_s",
    "engine_throughput_bps",
    "timing_model_for",
]
