"""Virtual FIFO model (the staging buffers of Fig 8).

The reference NIC design stores packets in *virtual FIFOs* between the
packet DMA, the engines and the Ethernet MACs.  This module models one
such FIFO at byte granularity with fluid (rate-based) fill/drain, which
is what sizing questions need: given the producer/consumer rates on
each side of an engine, how much buffering keeps the datapath from
overflowing or underrunning?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


class FifoOverflow(RuntimeError):
    """Producer pushed into a full FIFO."""


@dataclass
class VirtualFifo:
    """Byte-level FIFO with occupancy tracking."""

    capacity: int
    occupancy: int = 0
    high_watermark: int = 0
    total_in: int = 0
    total_out: int = 0
    #: (time, occupancy) samples recorded by ``sample``.
    trace: List[Tuple[float, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")

    def push(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot push negative bytes")
        if self.occupancy + nbytes > self.capacity:
            raise FifoOverflow(
                f"push of {nbytes} B overflows FIFO "
                f"({self.occupancy}/{self.capacity} B occupied)"
            )
        self.occupancy += nbytes
        self.total_in += nbytes
        self.high_watermark = max(self.high_watermark, self.occupancy)

    def pop(self, nbytes: int) -> int:
        """Drain up to ``nbytes``; returns what was actually available."""
        if nbytes < 0:
            raise ValueError("cannot pop negative bytes")
        taken = min(nbytes, self.occupancy)
        self.occupancy -= taken
        self.total_out += taken
        return taken

    def sample(self, time: float) -> None:
        self.trace.append((time, self.occupancy))


@dataclass(frozen=True)
class FifoSizingResult:
    """Outcome of a fluid fill/drain simulation."""

    high_watermark: int
    overflowed: bool
    underrun_time_s: float  # consumer idle time waiting on data


def simulate_fifo(
    producer_bps: float,
    consumer_bps: float,
    burst_bytes: int,
    capacity: int,
    idle_gap_s: float = 0.0,
    bursts: int = 1,
    step_s: float = 1e-7,
) -> FifoSizingResult:
    """Fluid simulation of a produce/consume FIFO over packet bursts.

    The producer streams ``burst_bytes`` at ``producer_bps``, idles for
    ``idle_gap_s``, and repeats; the consumer drains continuously at
    ``consumer_bps``.  Returns the high watermark, whether the FIFO
    would overflow ``capacity``, and how long the consumer starved.
    """
    if producer_bps <= 0 or consumer_bps <= 0:
        raise ValueError("rates must be positive")
    if burst_bytes <= 0 or bursts < 1:
        raise ValueError("need at least one positive burst")
    fifo = VirtualFifo(capacity=max(capacity, 1))
    overflowed = False
    underrun = 0.0
    time = 0.0
    for _ in range(bursts):
        remaining = float(burst_bytes)
        while remaining > 0:
            produced = min(remaining, producer_bps * step_s)
            remaining -= produced
            drained = consumer_bps * step_s
            # Net fill for this step.
            incoming = int(round(produced))
            space = fifo.capacity - fifo.occupancy
            if incoming > space:
                overflowed = True
                incoming = space
            if incoming:
                fifo.push(incoming)
            got = fifo.pop(int(round(drained)))
            if got < int(round(drained)):
                underrun += step_s * (1 - got / max(1, int(round(drained))))
            time += step_s
        # Idle gap: consumer keeps draining.
        gap_left = idle_gap_s
        while gap_left > 0:
            got = fifo.pop(int(round(consumer_bps * step_s)))
            if got == 0:
                underrun += step_s
            gap_left -= step_s
            time += step_s
    return FifoSizingResult(
        high_watermark=fifo.high_watermark,
        overflowed=overflowed,
        underrun_time_s=underrun,
    )
