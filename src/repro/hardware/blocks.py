"""Compression Blocks (CBs) and Decompression Blocks (DBs).

A CB is one lane of the Compression Unit (paper Fig 9): it takes a
32-bit word off the 256-bit AXI burst and produces a variable-size
compressed vector (32/16/8/0 bits) plus a 2-bit tag.  A DB is the
inverse lane in the Decompression Unit (Fig 10).

Functionally each block realizes Algorithm 2/3; the implementations
delegate to the scalar reference codec so the hardware model is
bit-exact with the specification by construction, while the classes add
the hardware-facing interface (32-bit word in/out) and per-block
operation counters used by the timing model.
"""

from __future__ import annotations

from repro.core.bounds import ErrorBound
from repro.core.reference import (
    bits_to_float,
    compress_value,
    decompress_value,
    float_to_bits,
)
from repro.core.tags import payload_bits


class CompressionBlock:
    """One CB lane: 32-bit float word in, (tag, payload, nbits) out."""

    def __init__(self, bound: ErrorBound) -> None:
        self.bound = bound
        self.words_processed = 0

    def process(self, word: int) -> "tuple[int, int, int]":
        """Compress one 32-bit word; returns ``(tag, payload, nbits)``."""
        self.words_processed += 1
        tag, payload = compress_value(bits_to_float(word), self.bound)
        return tag, payload, payload_bits(tag)


class DecompressionBlock:
    """One DB lane: (tag, payload) in, 32-bit float word out."""

    def __init__(self, bound: ErrorBound) -> None:
        self.bound = bound
        self.words_produced = 0

    def process(self, tag: int, payload: int) -> int:
        """Decompress one compressed vector back to a 32-bit word."""
        self.words_produced += 1
        return float_to_bits(decompress_value(tag, payload, self.bound))
