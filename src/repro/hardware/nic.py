"""NIC datapath with integrated (de)compression engines (paper Fig 8).

Transmit side: packets arrive from the host over the (modeled) DMA, a
comparator checks the IP ToS byte against the engine dispatch table,
and payloads of matching packets stream through that ToS's engine
before entering the MAC FIFOs; everything else bypasses.  Receive side
mirrors this with the paired decompression engine.

The INCEPTIONN engines sit at ToS ``0x28`` by default; additional
byte-level engines (e.g. the snappy-like LZ or SZ-style codec) can be
attached at other registered codec ToS bytes via
:meth:`InceptionnNic.register_engine`, so the comparator dispatches on
ToS → codec instead of assuming one engine.

This is the *functional* model — it transforms real packet bytes
bit-exactly.  Its timing surface is exported to the network simulator
via :func:`repro.hardware.timing.timing_model_for`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.bounds import ErrorBound
from repro.network.packet import (
    TOS_COMPRESS,
    Packet,
    is_compressible_tos,
    segment_bytes,
)
from repro.obs import CAT_CODEC, Tracer

from .axi import WORDS_PER_BURST
from .compression_engine import DEFAULT_CLOCK_HZ, CompressionEngine
from .decompression_engine import DecompressionEngine

#: TX transform: payload bytes -> compressed bytes.
CompressFn = Callable[[bytes], bytes]
#: RX transform: (compressed bytes, num_values or None) -> payload bytes.
DecompressFn = Callable[[bytes, Optional[int]], bytes]


@dataclass(frozen=True)
class PacketEngine:
    """One ToS slot of the NIC's engine dispatch table."""

    name: str
    compress: CompressFn
    decompress: DecompressFn


def snappy_engine() -> PacketEngine:
    """Byte-level lossless LZ engine (the snappy-like baseline)."""
    from repro.baselines import snappy_like

    return PacketEngine(
        name="snappy_like",
        compress=snappy_like.compress,
        decompress=lambda blob, _num_values: snappy_like.decompress(blob),
    )


def sz_engine(bound: float = 2.0**-10) -> PacketEngine:
    """Error-bounded SZ-style engine over float32 payload words."""
    from repro.baselines import sz_like

    def _compress(payload: bytes) -> bytes:
        values = np.frombuffer(payload, dtype=np.float32)
        return sz_like.compress(values, bound)

    def _decompress(blob: bytes, _num_values: Optional[int]) -> bytes:
        return sz_like.decompress(blob, bound).tobytes()

    return PacketEngine(name="sz_like", compress=_compress, decompress=_decompress)


@dataclass
class NicCounters:
    """Traffic counters maintained by the datapath."""

    tx_packets: int = 0
    tx_compressed: int = 0
    tx_bypassed: int = 0
    tx_payload_bytes_in: int = 0
    tx_payload_bytes_out: int = 0
    rx_packets: int = 0
    rx_decompressed: int = 0
    rx_bypassed: int = 0

    @property
    def tx_compression_ratio(self) -> float:
        """Payload-level compression ratio achieved so far."""
        if self.tx_payload_bytes_out == 0:
            return 1.0
        return self.tx_payload_bytes_in / self.tx_payload_bytes_out


@dataclass
class _CompressionContext:
    """Sidecar metadata carried by compressed packets.

    In the physical system the receive host knows the logical message
    length (the MPI receive posts it); in the simulation we carry it on
    the packet so the RX path can trim group padding.
    """

    num_values: int
    original_context: object = None


class InceptionnNic:
    """A NIC whose comparator dispatches ToS bytes to paired engines.

    The INCEPTIONN compression/decompression engines are installed at
    ToS ``0x28``; further engines attach with :meth:`register_engine`.
    Packets whose ToS matches no table entry bypass untouched.
    """

    def __init__(
        self,
        node_id: int,
        bound: ErrorBound,
        enabled: bool = True,
        num_blocks: int = WORDS_PER_BURST,
        clock_hz: float = DEFAULT_CLOCK_HZ,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.node_id = node_id
        self.bound = bound
        self.enabled = enabled
        #: Nullable tracer: records per-packet engine calls + tag classes.
        self.tracer = tracer
        self.compressor = CompressionEngine(bound, num_blocks, clock_hz)
        self.decompressor = DecompressionEngine(bound, num_blocks, clock_hz)
        self.counters = NicCounters()
        self._engines: Dict[int, PacketEngine] = {}
        self.register_engine(
            TOS_COMPRESS,
            PacketEngine(
                name="inceptionn",
                compress=lambda payload: self.compressor.compress(payload)[0],
                decompress=lambda blob, num_values: self.decompressor.decompress(
                    blob, num_values
                )[0],
            ),
        )

    # -- engine dispatch table ---------------------------------------------------

    def register_engine(self, tos: int, engine: PacketEngine) -> PacketEngine:
        """Attach an engine pair at a ToS byte (replacing any previous)."""
        if not 0 <= tos <= 0xFF:
            raise ValueError(f"ToS must fit one byte, got {tos:#x}")
        self._engines[tos] = engine
        return engine

    def engine_for(self, tos: int) -> Optional[PacketEngine]:
        """The engine the comparator selects for ``tos`` (None = bypass)."""
        if not self.enabled:
            return None
        return self._engines.get(tos)

    def dispatches(self, tos: int) -> bool:
        """Would the comparator route ``tos`` traffic through an engine?

        Message-granular variant of :meth:`engine_for`, used by the
        :mod:`repro.transport.wire` builder: any ToS claimed by a
        registered codec dispatches (the stream's own codec does the
        byte work there), in addition to locally attached packet
        engines.  A disabled NIC bypasses everything.
        """
        if not self.enabled:
            return False
        return tos in self._engines or is_compressible_tos(tos)

    # -- aggregate accounting (WireMessage pipeline) -----------------------------

    def account_tx(
        self,
        packets: int,
        engine_packets: int,
        payload_bytes_in: int,
        payload_bytes_out: int,
    ) -> None:
        """Tick TX counters for one wire traversal of a packet train.

        Equivalent to running :meth:`process_tx` over every packet, but
        at message granularity so size-only (paper-scale) sends never
        walk per-packet objects.  Payload bytes count only the
        engine-processed stream, matching the per-packet path.
        """
        self.counters.tx_packets += packets
        self.counters.tx_compressed += engine_packets
        self.counters.tx_bypassed += packets - engine_packets
        self.counters.tx_payload_bytes_in += payload_bytes_in
        self.counters.tx_payload_bytes_out += payload_bytes_out

    def account_rx(self, packets: int, engine_packets: int) -> None:
        """Tick RX counters for one delivered packet train."""
        self.counters.rx_packets += packets
        self.counters.rx_decompressed += engine_packets
        self.counters.rx_bypassed += packets - engine_packets

    # -- per-packet datapath -----------------------------------------------------

    def _trace_engine_call(
        self, name: str, engine: str, packet: Packet, out_nbytes: int
    ) -> None:
        """Record one engine pass (and, for INCEPTIONN, its tag classes).

        The functional NIC model runs outside simulated time, so these
        events carry ``ts=0`` — they order by record sequence, and their
        value is the per-packet achieved ratio and tag-class census.
        """
        assert self.tracer is not None
        in_nbytes = packet.payload_nbytes
        # Explicit zero handling: an empty packet compressed to nothing
        # is ratio 1.0, not infinity (the falsy-check cousin of the
        # zero-ratio bug fixed in the sized-send path).
        if out_nbytes:
            ratio = in_nbytes / out_nbytes
        elif in_nbytes:
            ratio = float("inf")
        else:
            ratio = 1.0
        self.tracer.instant(
            name,
            cat=CAT_CODEC,
            ts=0.0,
            node=self.node_id,
            engine=engine,
            seq=packet.seq,
            tos=packet.tos,
            nbytes_in=in_nbytes,
            nbytes_out=out_nbytes,
            ratio=ratio,
        )
        metrics = self.tracer.metrics
        metrics.counter(f"{name}_packets", engine=engine).inc()
        if (
            name == "nic.compress"
            and engine == "inceptionn"
            and packet.payload is not None
            and in_nbytes % 4 == 0
            and in_nbytes
        ):
            from repro.core.codec import classify

            values = np.frombuffer(packet.payload, dtype=np.float32)
            tags = classify(values, self.bound)
            counts = np.bincount(tags, minlength=4)
            for tag in range(4):
                if counts[tag]:
                    metrics.counter("tag_class_values", tag=tag).inc(
                        int(counts[tag])
                    )

    def process_tx(self, packet: Packet) -> Packet:
        """Transmit-side classification + compression of one packet."""
        self.counters.tx_packets += 1
        engine = self.engine_for(packet.tos)
        if engine is None:
            self.counters.tx_bypassed += 1
            return packet
        if packet.payload is None:
            raise ValueError(
                "bit-exact NIC processing needs materialized payload bytes"
            )
        compressed = engine.compress(packet.payload)
        self.counters.tx_compressed += 1
        self.counters.tx_payload_bytes_in += len(packet.payload)
        self.counters.tx_payload_bytes_out += len(compressed)
        if self.tracer is not None:
            self._trace_engine_call(
                "nic.compress", engine.name, packet, len(compressed)
            )
        return Packet(
            src=packet.src,
            dst=packet.dst,
            seq=packet.seq,
            tos=packet.tos,
            payload=compressed,
            context=_CompressionContext(
                num_values=len(packet.payload) // 4,
                original_context=packet.context,
            ),
        )

    def process_rx(self, packet: Packet) -> Packet:
        """Receive-side classification + decompression of one packet."""
        self.counters.rx_packets += 1
        engine = self.engine_for(packet.tos)
        if engine is None:
            self.counters.rx_bypassed += 1
            return packet
        if packet.payload is None:
            raise ValueError(
                "bit-exact NIC processing needs materialized payload bytes"
            )
        context = packet.context
        num_values = (
            context.num_values if isinstance(context, _CompressionContext) else None
        )
        restored = engine.decompress(packet.payload, num_values)
        self.counters.rx_decompressed += 1
        if self.tracer is not None:
            self._trace_engine_call(
                "nic.decompress", engine.name, packet, len(restored)
            )
        original_context = (
            context.original_context
            if isinstance(context, _CompressionContext)
            else context
        )
        return Packet(
            src=packet.src,
            dst=packet.dst,
            seq=packet.seq,
            tos=packet.tos,
            payload=restored,
            context=original_context,
        )

    # -- message-level convenience -------------------------------------------------

    def transmit_message(
        self, data: bytes, dst: int, tos: int, mss: int = 1460
    ) -> List[Packet]:
        """Segment a byte stream and run every packet through TX."""
        packets = segment_bytes(data, src=self.node_id, dst=dst, tos=tos, mss=mss)
        return [self.process_tx(pkt) for pkt in packets]

    def receive_message(self, packets: List[Packet]) -> bytes:
        """Run packets through RX in sequence order and reassemble."""
        restored = [self.process_rx(pkt) for pkt in packets]
        restored.sort(key=lambda p: p.seq)
        return b"".join(p.payload for p in restored)
