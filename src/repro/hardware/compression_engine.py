"""The 256-bit burst compressor (paper Fig 9).

Structure mirrors the hardware: a Compression Unit with eight
Compression Blocks working on one burst per cycle, whose eight
variable-size outputs (0–256 bits) are concatenated behind a 16-bit tag
vector and pushed through an Alignment Unit (a shifter tree plus
accumulator) that emits full 256-bit output beats.

The produced bitstream is byte-identical to
``repro.core.compress(values).to_bytes()`` — the software codec defines
the wire format, the engine is validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.bitstream import BitWriter
from repro.core.bounds import ErrorBound
from repro.core.codec import compress as codec_compress
from repro.core.container import GROUP_TAG_BITS

from .axi import BURST_BITS, WORDS_PER_BURST, BurstError, iter_word_bursts
from .blocks import CompressionBlock

#: Reference-design clock (paper Sec. VII-C: 100 MHz, bandwidth-neutral).
DEFAULT_CLOCK_HZ = 100e6
#: Cycles for a burst to traverse the CB + alignment pipeline.
PIPELINE_DEPTH = 4


@dataclass
class EngineStats:
    """Operation counters for one engine pass."""

    bursts_in: int = 0
    bursts_out: int = 0
    bits_out: int = 0
    cycles: int = 0
    output_beats: List[bytes] = field(default_factory=list, repr=False)

    def elapsed_s(self, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
        """Wall-clock time of the pass at the given engine clock."""
        return self.cycles / clock_hz


class AlignmentUnit:
    """Accumulates variable-size compressed vectors into 256-bit beats.

    The hardware uses a binary shifter tree feeding a (16–272)-bit
    staging register; behaviourally that is bit accumulation with a beat
    emitted whenever 256 bits are ready.
    """

    def __init__(self) -> None:
        self._writer = BitWriter()
        self._emitted_beats = 0

    def push(self, value: int, nbits: int) -> int:
        """Append a bit vector; returns how many new full beats exist."""
        self._writer.write(value, nbits)
        full = self._writer.bit_length // BURST_BITS
        fresh = full - self._emitted_beats
        self._emitted_beats = full
        return fresh

    @property
    def bit_length(self) -> int:
        return self._writer.bit_length

    def flush(self) -> bytes:
        """Return everything accumulated (final partial beat included)."""
        return self._writer.getvalue()


class CompressionEngine:
    """Processes packet payloads burst-by-burst, like the RTL would."""

    def __init__(
        self,
        bound: ErrorBound,
        num_blocks: int = WORDS_PER_BURST,
        clock_hz: float = DEFAULT_CLOCK_HZ,
    ) -> None:
        if num_blocks < 1:
            raise ValueError("need at least one compression block")
        self.bound = bound
        self.clock_hz = clock_hz
        self.blocks = [CompressionBlock(bound) for _ in range(num_blocks)]
        self.total_cycles = 0
        self.total_bursts = 0

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def compress(self, payload: bytes) -> "tuple[bytes, EngineStats]":
        """Compress a packet payload of float32 words.

        Returns the compressed bitstream (the NIC reattaches it as the
        packet's new payload) and the pass statistics.

        This is the bulk path: the vectorized software codec produces
        the stream and the stats are computed in closed form.  It is
        pinned byte- and stats-identical to the burst-by-burst
        behavioural model, which remains available as
        :meth:`compress_structural`.
        """
        if len(payload) % 4:
            raise BurstError(
                "compressible payload must be whole float32 words, "
                f"got {len(payload)} bytes"
            )
        stats = EngineStats()
        values = np.frombuffer(payload, dtype="<f4")
        compressed = codec_compress(values, self.bound)
        data = compressed.to_bytes()
        num_words = int(values.shape[0])
        stats.bursts_in = -(-num_words // WORDS_PER_BURST)
        stats.bits_out = compressed.compressed_bits
        stats.bursts_out = stats.bits_out // BURST_BITS
        stats.cycles = self._cycles_for(stats.bursts_in)
        self._count_lane_words(num_words)
        self.total_cycles += stats.cycles
        self.total_bursts += stats.bursts_in
        return data, stats

    def compress_structural(self, payload: bytes) -> "tuple[bytes, EngineStats]":
        """Burst-by-burst behavioural model (one CB lane per word).

        Drop-in equivalent of :meth:`compress`; kept as the structural
        reference the bulk path is validated against.
        """
        stats = EngineStats()
        align = AlignmentUnit()
        for burst in iter_word_bursts(payload):
            stats.bursts_in += 1
            self._process_group(burst, align, stats)
        data = align.flush()
        stats.bits_out = align.bit_length
        stats.cycles = self._cycles_for(stats.bursts_in)
        self.total_cycles += stats.cycles
        self.total_bursts += stats.bursts_in
        return data, stats

    # -- internals -------------------------------------------------------------

    def _count_lane_words(self, num_words: int) -> None:
        """Attribute ``num_words`` round-robin words to the CB lanes."""
        lane_counts = np.full(
            WORDS_PER_BURST, num_words // WORDS_PER_BURST, dtype=np.int64
        )
        lane_counts[: num_words % WORDS_PER_BURST] += 1
        lanes = np.arange(WORDS_PER_BURST, dtype=np.int64) % self.num_blocks
        for lane, count in zip(lanes, lane_counts):
            self.blocks[int(lane)].words_processed += int(count)

    def _process_group(
        self, burst: Sequence[int], align: AlignmentUnit, stats: EngineStats
    ) -> None:
        """One input beat: 8 CBs fire, tags + payloads are concatenated."""
        tag_word = 0
        payloads: List[Optional[tuple]] = []
        for lane in range(WORDS_PER_BURST):
            if lane < len(burst):
                block = self.blocks[lane % self.num_blocks]
                tag, payload, nbits = block.process(burst[lane])
            else:
                # Partial final burst: unused lanes emit ZERO (no payload),
                # matching the software wire format's group padding.
                tag, payload, nbits = 0, 0, 0
            tag_word |= (tag & 0b11) << (2 * lane)
            payloads.append((payload, nbits))
        stats.bursts_out += align.push(tag_word, GROUP_TAG_BITS)
        for payload, nbits in payloads:
            stats.bursts_out += align.push(payload, nbits)

    def _cycles_for(self, bursts_in: int) -> int:
        """Engine occupancy in cycles.

        With 8 CBs, one input beat retires per cycle; with fewer blocks
        a beat needs ``ceil(8 / num_blocks)`` cycles (the ablation case).
        """
        if bursts_in == 0:
            return 0
        beats_per_burst = -(-WORDS_PER_BURST // self.num_blocks)
        return bursts_in * beats_per_burst + PIPELINE_DEPTH

    def throughput_bps(self) -> float:
        """Uncompressed-side streaming throughput in bytes/second."""
        beats_per_burst = -(-WORDS_PER_BURST // self.num_blocks)
        return (BURST_BITS / 8) * self.clock_hz / beats_per_burst
