"""AXI-stream burst helpers.

Both engines exchange data with the rest of the NIC over a standard
256-bit AXI-stream bus (paper Sec. VI-A): every beat carries 8 float32
words.  These helpers slice byte payloads into bursts and back.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Sequence

#: AXI-stream data width used by the reference design.
BURST_BITS = 256
BURST_BYTES = BURST_BITS // 8
#: float32 words per burst.
WORDS_PER_BURST = BURST_BYTES // 4


class BurstError(ValueError):
    """Raised for payloads that cannot form whole float32 words."""


def iter_word_bursts(data: bytes) -> Iterator[List[int]]:
    """Yield bursts of up to 8 little-endian 32-bit words.

    The final burst may be partial (fewer than 8 words); compressible
    packet payloads must hold whole float32 values.
    """
    if len(data) % 4:
        raise BurstError(
            f"compressible payload must be whole float32 words, got {len(data)} bytes"
        )
    num_words = len(data) // 4
    words = list(struct.unpack(f"<{num_words}I", data)) if num_words else []
    for start in range(0, num_words, WORDS_PER_BURST):
        yield words[start : start + WORDS_PER_BURST]


def words_to_bytes(words: Sequence[int]) -> bytes:
    """Pack 32-bit words back into little-endian bytes."""
    return struct.pack(f"<{len(words)}I", *[w & 0xFFFFFFFF for w in words])


def burst_count(nbytes: int) -> int:
    """Number of 256-bit beats a payload of ``nbytes`` occupies."""
    return -(-nbytes // BURST_BYTES)
